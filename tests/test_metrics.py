"""Unit tests for performance/fairness metrics (Equation 1 etc.)."""

import pytest

from repro.core.metrics import (
    box_stats,
    cdf_points,
    fairness,
    geomean,
    percentile,
    slowdown,
    speedup,
)


class TestSpeedupSlowdown:
    def test_speedup_below_one_means_slower(self):
        assert speedup(100, 200) == 0.5

    def test_slowdown_is_inverse(self):
        assert slowdown(100, 200) == 2.0
        assert speedup(100, 200) * slowdown(100, 200) == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            speedup(0, 10)
        with pytest.raises(ValueError):
            speedup(10, 0)


class TestGeomean:
    def test_matches_closed_form(self):
        assert geomean([2, 8]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geomean([3.3]) == pytest.approx(3.3)

    def test_below_arithmetic_mean(self):
        values = [0.5, 1.5, 0.9]
        assert geomean(values) <= sum(values) / 3

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestFairness:
    def test_equal_slowdowns_are_perfectly_fair(self):
        assert fairness([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_single_workload_is_fair(self):
        assert fairness([5.0]) == 1.0

    def test_equation1_hand_computed(self):
        # slowdowns 1 and 3: mu=2, sigma=1, fairness = 1 - 1/2.
        assert fairness([1.0, 3.0]) == pytest.approx(0.5)

    def test_more_imbalance_less_fairness(self):
        assert fairness([1.0, 1.2]) > fairness([1.0, 2.0]) > fairness([1.0, 4.0])

    def test_paper_range(self):
        # Typical mix slowdowns produce fairness in the paper's 0.8-1 band.
        value = fairness([1.25, 1.35, 1.30, 1.28])
        assert 0.9 < value <= 1.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fairness([])
        with pytest.raises(ValueError):
            fairness([1.0, -1.0])


class TestCdf:
    def test_points_monotone(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]

    def test_empty(self):
        assert cdf_points([]) == []

    def test_last_fraction_is_one(self):
        assert cdf_points([5.0, 7.0])[-1][1] == 1.0


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([1, 2, 3], 0.5) == 2

    def test_interpolates(self):
        assert percentile([0, 10], 0.25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [4, 8, 15, 16, 23, 42]
        assert percentile(values, 0.0) == 4
        assert percentile(values, 1.0) == 42

    def test_single(self):
        assert percentile([7], 0.9) == 7

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)
        with pytest.raises(ValueError):
            percentile([], 0.5)


class TestBoxStats:
    def test_fields(self):
        box = box_stats([1, 2, 3, 4, 5])
        assert box["min"] == 1
        assert box["max"] == 5
        assert box["median"] == 3
        assert box["q1"] == 2
        assert box["q3"] == 4

    def test_ordering_invariant(self):
        box = box_stats([0.31, 0.97, 0.55, 0.72, 0.44])
        assert (
            box["min"] <= box["q1"] <= box["median"] <= box["q3"] <= box["max"]
        )

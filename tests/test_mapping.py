"""Unit tests for pairings, the predictor features, and the mapping study."""

import math

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.mapping.mapper import pairings
from repro.mapping.predictor import (
    SlowdownPredictor,
    WorkloadProfile,
    profile_workload,
)
from repro.models.layers import DenseLayer, Network


class TestPairings:
    def test_eight_distinct_items_give_105_pairings(self):
        items = tuple("abcdefgh")
        assert len(pairings(items)) == 7 * 5 * 3 * 1

    def test_four_items(self):
        result = pairings(("a", "b", "c", "d"))
        assert len(result) == 3

    def test_repeats_deduplicated(self):
        # aabb -> {ab,ab} and {aa,bb}: only two distinct pairings.
        result = pairings(("a", "a", "b", "b"))
        assert len(result) == 2

    def test_all_identical(self):
        result = pairings(("x",) * 8)
        assert len(result) == 1

    def test_every_pairing_covers_all_items(self):
        items = ("a", "b", "c", "d", "e", "f", "g", "h")
        for pairing in pairings(items):
            flat = sorted(w for pair in pairing for w in pair)
            assert flat == sorted(items)

    def test_pairs_sorted_canonically(self):
        for pairing in pairings(("d", "c", "b", "a")):
            for a, b in pairing:
                assert a <= b

    def test_odd_count_rejected(self):
        with pytest.raises(ValueError):
            pairings(("a", "b", "c"))


class TestPredictor:
    def _profile(self, name, util, traffic, cycles):
        return WorkloadProfile(
            name=name, pe_utilization=util,
            traffic_per_cycle=traffic, ideal_cycles=cycles,
        )

    def test_untrained_predict_raises(self):
        predictor = SlowdownPredictor()
        a = self._profile("a", 0.5, 1.0, 1000)
        with pytest.raises(RuntimeError):
            predictor.predict(a, a)

    def test_training_on_tiny_runner(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path / "c")
        predictor = SlowdownPredictor()
        predictor.train(runner, num_random_nets=4, seed=11)
        assert predictor.is_trained
        assert predictor.training_error is not None
        assert predictor.training_error < 1.0  # slowdowns are O(1)
        a = self._profile("a", 0.1, 2.0, 1000)
        b = self._profile("b", 0.9, 0.1, 1000)
        # Predictions are finite slowdowns >= 1.
        assert 1.0 <= predictor.predict(a, b) < 10.0
        assert 1.0 <= predictor.predict(b, a) < 10.0

    def test_profile_workload_features(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path / "c")
        network = Network("prof", (DenseLayer("l0", 32, 64, 32),))
        profile = profile_workload(runner, network)
        assert profile.name == "prof"
        assert 0 < profile.pe_utilization <= 1
        assert profile.traffic_per_cycle > 0
        assert profile.ideal_cycles > 0
        assert math.isfinite(profile.ideal_cycles)

"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compute.requestgen import RequestGenerator
from repro.compute.systolic import gemm_on_array
from repro.compute.tiling import choose_tile_shape, tile_count, tiles_for_gemm
from repro.config.arch import ArchConfig
from repro.core.clock import ClockDomain
from repro.core.engine import Engine
from repro.core.metrics import cdf_points, fairness, geomean, percentile
from repro.dram.controller import DramController
from repro.config.dram import DramConfig
from repro.mapping.mapper import pairings
from repro.mmu.pagetable import PageTable, PhysicalLayout
from repro.mmu.tlb import Tlb
from repro.models.layers import DenseLayer, GemmOp, Network

dims = st.integers(min_value=1, max_value=600)
small_arch = ArchConfig(
    name="p", array_rows=8, array_cols=8, spm_bytes=8192,
    dram_transaction_bytes=64,
)


@st.composite
def gemms(draw):
    return GemmOp("g", draw(dims), draw(dims), draw(dims))


class TestTilingProperties:
    @given(gemms())
    @settings(max_examples=60, deadline=None)
    def test_tiles_partition_the_iteration_space(self, gemm):
        shape = choose_tile_shape(gemm, small_arch)
        tiles = list(tiles_for_gemm(gemm, shape))
        assert len(tiles) == tile_count(gemm, shape)
        assert sum(tile.macs for tile in tiles) == gemm.macs
        # Exactly one last_k per (m, n) tile position.
        last_flags = sum(1 for tile in tiles if tile.last_k)
        positions = {(tile.m0, tile.n0) for tile in tiles}
        assert last_flags == len(positions)

    @given(gemms())
    @settings(max_examples=60, deadline=None)
    def test_tile_fits_budget(self, gemm):
        shape = choose_tile_shape(gemm, small_arch)
        budget = small_arch.half_spm_bytes // small_arch.element_bytes
        assert shape.footprint_elems() <= max(budget, gemm.total_bytes)

    @given(gemms())
    @settings(max_examples=40, deadline=None)
    def test_write_traffic_covers_output_exactly_once(self, gemm):
        gen = RequestGenerator(
            Network("n", (DenseLayer("l", gemm.m, gemm.k, gemm.n),)), small_arch
        )
        write_txns = sum(t.write_txns for t in gen.all_tiles())
        txn = small_arch.dram_transaction_bytes
        # Writes cover the C matrix rows; alignment may round each row
        # segment up to one extra transaction on both ends.
        min_txns = gemm.m * gemm.n // txn
        assert write_txns >= max(1, min_txns)
        shape = choose_tile_shape(gemm, small_arch)
        segments = gemm.m * -(-gemm.n // shape.tn)
        assert write_txns <= min_txns + 2 * segments + 2


class TestSystolicProperties:
    @given(gemms())
    @settings(max_examples=60, deadline=None)
    def test_utilization_in_unit_interval(self, gemm):
        est = gemm_on_array(small_arch, gemm.m, gemm.k, gemm.n)
        assert 0 < est.pe_utilization <= 1.0
        assert est.cycles > 0

    @given(gemms(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_cycles_monotone_in_k(self, gemm, factor):
        base = gemm_on_array(small_arch, gemm.m, gemm.k, gemm.n)
        bigger = gemm_on_array(small_arch, gemm.m, gemm.k * factor, gemm.n)
        assert bigger.cycles > base.cycles


class TestTlbProperties:
    @given(
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 500)), max_size=300),
        st.sampled_from([(16, 4), (8, 8), (32, 2)]),
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, accesses, geometry):
        entries, assoc = geometry
        tlb = Tlb(entries, assoc)
        for asid, vpn in accesses:
            if not tlb.lookup(asid, vpn):
                tlb.fill(asid, vpn)
        assert tlb.occupancy() <= entries
        assert tlb.stats.hits <= tlb.stats.lookups

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_immediate_relookup_hits(self, vpns):
        tlb = Tlb(64, 8)
        for vpn in vpns:
            if not tlb.lookup(0, vpn):
                tlb.fill(0, vpn)
            assert tlb.lookup(0, vpn)


class TestEngineProperties:
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_events_observed_in_sorted_order(self, times):
        engine = Engine()
        seen = []
        for time in times:
            engine.at(time, lambda t=time: seen.append(t))
        engine.run()
        assert seen == sorted(times)
        assert engine.now == max(times)


class TestClockProperties:
    @given(
        st.integers(1, 4000), st.integers(1, 4000), st.integers(0, 100_000)
    )
    @settings(max_examples=80, deadline=None)
    def test_to_global_covers_duration(self, local_mhz, global_mhz, cycles):
        clock = ClockDomain(local_mhz, global_mhz)
        ticks = clock.to_global(cycles)
        # The global span must cover the local duration (never shorter).
        assert ticks * local_mhz >= cycles * global_mhz
        # ... and not overshoot by more than one global tick.
        assert (ticks - 1) * local_mhz < cycles * global_mhz or cycles == 0


class TestMetricsProperties:
    positive_lists = st.lists(
        st.floats(min_value=0.01, max_value=100, allow_nan=False),
        min_size=1, max_size=20,
    )

    @given(positive_lists)
    @settings(max_examples=80, deadline=None)
    def test_geomean_between_min_and_max(self, values):
        result = geomean(values)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9

    @given(positive_lists)
    @settings(max_examples=80, deadline=None)
    def test_fairness_at_most_one(self, values):
        assert fairness(values) <= 1.0

    @given(st.floats(0.01, 100), st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_fairness_of_identical_slowdowns_is_one(self, value, count):
        assert abs(fairness([value] * count) - 1.0) < 1e-9

    @given(positive_lists)
    @settings(max_examples=50, deadline=None)
    def test_cdf_is_monotone(self, values):
        points = cdf_points(values)
        for (v1, f1), (v2, f2) in zip(points, points[1:]):
            assert v1 <= v2 and f1 <= f2

    @given(positive_lists, st.floats(0, 1))
    @settings(max_examples=50, deadline=None)
    def test_percentile_within_range(self, values, fraction):
        result = percentile(values, fraction)
        tolerance = 1e-9 * max(abs(v) for v in values)
        assert min(values) - tolerance <= result <= max(values) + tolerance


class TestAddressMappingProperties:
    @given(st.lists(st.integers(0, 1 << 32), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_distinct_transactions_distinct_targets_within_row_span(self, addrs):
        engine = Engine()
        cfg = DramConfig(channels=4, channel_bytes_per_cycle=32)
        controller = DramController(
            cfg, engine, transaction_bytes=64,
            channels_per_core={0: (0, 1, 2, 3)},
        )
        # Mapping is a function: same address -> same target.
        for addr in addrs:
            aligned = addr - addr % 64
            assert controller.decompose(0, aligned) == controller.decompose(0, aligned)

    @given(st.integers(0, 1 << 20))
    @settings(max_examples=50, deadline=None)
    def test_consecutive_transactions_change_channel(self, index):
        engine = Engine()
        cfg = DramConfig(channels=4, channel_bytes_per_cycle=32)
        controller = DramController(
            cfg, engine, transaction_bytes=64,
            channels_per_core={0: (0, 1, 2, 3)},
        )
        a = controller.decompose(0, index * 64)[0]
        b = controller.decompose(0, (index + 1) * 64)[0]
        assert a != b  # adjacent transactions stripe across channels


class TestPageTableProperties:
    layout = PhysicalLayout(capacity_bytes=1 << 30, num_cores=2)

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_translation_is_injective_until_wrap(self, vpns):
        table = PageTable(0, 4096, 4, self.layout)
        unique = list(dict.fromkeys(vpns))
        frames = [table.translate(vpn) for vpn in unique]
        assert len(set(frames)) == len(unique)

    @given(st.integers(0, 1 << 20))
    @settings(max_examples=50, deadline=None)
    def test_walk_addresses_pte_aligned(self, vpn):
        table = PageTable(1, 4096, 4, self.layout)
        for addr in table.walk_addresses(vpn):
            assert addr % 8 == 0


class TestPairingProperties:
    @given(st.lists(st.sampled_from("abcd"), min_size=2, max_size=8).filter(
        lambda items: len(items) % 2 == 0
    ))
    @settings(max_examples=50, deadline=None)
    def test_pairings_unique_and_complete(self, items):
        result = pairings(tuple(items))
        assert len(set(result)) == len(result)
        for pairing in result:
            flat = sorted(w for pair in pairing for w in pair)
            assert flat == sorted(items)

"""Property tests (hypothesis) for the event kernel and channel hot path.

These pin the *contracts* the hot-loop optimizations must preserve:

* same-tick events fire in insertion order, including events inserted
  while the tick is being processed (the engine's fast same-tick path);
* a channel's data bus serializes bursts — no two bursts ever overlap;
* a channel never moves more bytes per tick than its peak bandwidth.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.dram.channel as channel_mod
from repro.config.dram import DramConfig
from repro.core.engine import Engine
from repro.dram.channel import Channel, DramRequest
from repro.dram.stats import DramStats

TXN = 64


class TestEngineOrdering:
    @given(st.lists(st.integers(0, 40), min_size=1, max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_same_tick_events_fire_in_insertion_order(self, times):
        engine = Engine()
        seen = []
        for index, time in enumerate(times):
            engine.at(time, lambda t=time, i=index: seen.append((t, i)))
        engine.run()
        # Stable by insertion: sorting by time alone must not reorder.
        assert seen == sorted(seen, key=lambda item: item[0])
        assert engine.events_processed == len(times)

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 3)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_nested_same_tick_schedules_append_after_pending(self, events):
        """An event scheduled *at the current tick* runs this tick, after
        everything already pending for it — exactly like a reference
        stable priority queue."""
        engine = Engine()
        seen = []

        def reference(times):
            # (time, seq) stable ordering with children appended live.
            pending = sorted(
                ((t, i, ("root", i)) for i, (t, _) in enumerate(times)),
                key=lambda item: (item[0], item[1]),
            )
            seq = len(times)
            out = []
            while pending:
                time, _, ident = pending.pop(0)
                out.append(ident)
                kind = ident[0]
                if kind == "root":
                    children = times[ident[1]][1]
                    for child in range(children):
                        pending.append((time, seq, ("child", ident[1], child)))
                        seq += 1
                    pending.sort(key=lambda item: (item[0], item[1]))
            return out

        def fire(index):
            seen.append(("root", index))
            for child in range(events[index][1]):
                engine.at(
                    engine.now,
                    lambda i=index, c=child: seen.append(("child", i, c)),
                )

        for index, (time, _) in enumerate(events):
            engine.at(time, lambda i=index: fire(i))
        engine.run()
        assert seen == reference(events)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=50), st.integers(0, 25))
    @settings(max_examples=40, deadline=None)
    def test_run_until_leaves_future_events_pending(self, times, until):
        engine = Engine()
        seen = []
        for time in times:
            engine.at(time, lambda t=time: seen.append(t))
        engine.run(until=until)
        assert seen == sorted(t for t in times if t <= until)
        assert engine.pending == sum(1 for t in times if t > until)
        engine.run()
        assert sorted(seen) == sorted(times)


def _requests():
    return st.lists(
        st.tuples(
            st.integers(0, 3),     # bank
            st.integers(0, 5),     # row
            st.booleans(),         # write
            st.booleans(),         # is_walk
            st.integers(0, 40),    # inter-arrival gap (ticks)
        ),
        min_size=1,
        max_size=80,
    )


class TestChannelBusInvariants:
    def _drive(self, requests, *, prioritize_walks, refresh_enabled, batch=True):
        engine = Engine()
        cfg = DramConfig(
            channels=1,
            channel_bytes_per_cycle=32,
            prioritize_walks=prioritize_walks,
            refresh_enabled=refresh_enabled,
        )
        bursts: list[tuple[int, int, int]] = []
        saved = channel_mod.BATCH_ISSUE
        channel_mod.BATCH_ISSUE = batch
        try:
            channel = Channel(
                index=0,
                cfg=cfg,
                engine=engine,
                burst_ticks=cfg.burst_cycles(TXN),
                stats=DramStats(),
                trace=lambda end, nbytes, core: bursts.append((end, nbytes, core)),
                transaction_bytes=TXN,
            )
        finally:
            channel_mod.BATCH_ISSUE = saved
        completions = []
        arrival = 0
        for index, (bank, row, write, is_walk, gap) in enumerate(requests):
            arrival += gap
            request = DramRequest(
                addr=index * TXN,
                write=write,
                core=index % 3,
                callback=lambda i=index: completions.append(i),
                bank=bank,
                row=row,
                is_walk=is_walk,
            )
            engine.at(arrival, lambda r=request: channel.enqueue(r))
        engine.run()
        assert len(completions) == len(requests)
        assert channel.occupancy == 0
        return channel, bursts, completions

    @given(
        _requests(),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_two_bursts_overlap_on_the_bus(
        self, requests, prioritize_walks, refresh_enabled
    ):
        channel, bursts, _ = self._drive(
            requests,
            prioritize_walks=prioritize_walks,
            refresh_enabled=refresh_enabled,
        )
        assert len(bursts) == len(requests)
        intervals = sorted(
            (end - channel.burst_ticks, end) for end, _, _ in bursts
        )
        for (_, first_end), (second_start, _) in zip(intervals, intervals[1:]):
            assert second_start >= first_end, "data bursts overlap on one bus"

    @given(_requests(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_bytes_per_tick_never_exceed_peak_bandwidth(
        self, requests, prioritize_walks
    ):
        channel, bursts, _ = self._drive(
            requests, prioritize_walks=prioritize_walks, refresh_enabled=True
        )
        peak = channel.cfg.channel_bytes_per_cycle
        # Each burst individually respects the pin rate ...
        for _, nbytes, _ in bursts:
            assert nbytes <= channel.burst_ticks * peak
        # ... and (with bursts serialized) so does every busy span.
        intervals = sorted(
            (end - channel.burst_ticks, end) for end, _, _ in bursts
        )
        span_start = intervals[0][0]
        span_end = intervals[-1][1]
        total_bytes = sum(nbytes for _, nbytes, _ in bursts)
        assert total_bytes <= (span_end - span_start) * peak

    @given(_requests())
    @settings(max_examples=40, deadline=None)
    def test_every_request_counted_exactly_once(self, requests):
        channel, _, _ = self._drive(
            requests, prioritize_walks=True, refresh_enabled=False
        )
        stats = channel.stats
        assert stats.reads + stats.writes == len(requests)
        assert stats.row_hits + stats.row_misses == len(requests)
        assert sum(stats.bytes_per_core.values()) == len(requests) * TXN

    @given(_requests(), st.booleans(), st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_batched_issue_matches_per_event_scheduling(
        self, requests, prioritize_walks, refresh_enabled
    ):
        """The batched drain must be *observationally equivalent* to the
        one-request-per-event scheduler on arbitrary traffic: identical
        burst trace (timing, sizes, attribution), identical completion
        order, identical stats."""
        batched = self._drive(
            requests,
            prioritize_walks=prioritize_walks,
            refresh_enabled=refresh_enabled,
            batch=True,
        )
        per_event = self._drive(
            requests,
            prioritize_walks=prioritize_walks,
            refresh_enabled=refresh_enabled,
            batch=False,
        )
        assert batched[1] == per_event[1], "burst traces diverge"
        assert batched[2] == per_event[2], "completion order diverges"
        for field in ("reads", "writes", "row_hits", "row_misses", "refreshes",
                      "queueing_ticks_total"):
            assert getattr(batched[0].stats, field) == getattr(
                per_event[0].stats, field
            ), field
        assert dict(batched[0].stats.bytes_per_core) == dict(
            per_event[0].stats.bytes_per_core
        )

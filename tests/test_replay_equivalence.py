"""Differential-testing harness: batched/auto replay vs per-event replay.

The replay kernel (:mod:`repro.core.replay`) claims *byte-identity*: for
any configuration, ``batched`` and ``auto`` modes produce exactly the
results of per-event replay — same integer metrics, same counter
snapshot, same pinned ``events_processed``.  This suite holds it to that
across:

* the golden corpus's own spec shapes (solo slices and contended mixes);
* hypothesis-generated random networks × {1, 2} cores × shared/private
  TLB × 1/2 DRAM channels per core × translation on/off — including the
  configurations where eligibility *fails* and the governor must fall
  back (a fallback that diverged would be the worst possible bug);
* the experiment runner path, where each mode keys a distinct cache
  shard whose simulated payload must nonetheless be identical.

``assert_equivalent`` is the reusable entry point: hand it any
:class:`RunSpec` (or a prebuilt system + networks) and it performs the
full three-way comparison.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import presets
from repro.config.misc import MiscConfig
from repro.config.system import SystemConfig
from repro.core.replay import REPLAY_MODES, TurboDma
from repro.core.simulator import MultiCoreNPUSim
from repro.experiments.spec import RunSpec
from repro.models import random_network, zoo
from repro.obs.registry import CounterRegistry

from tests.test_golden_equivalence import MAX_TICKS, metrics

# --------------------------------------------------------------------- #
# The reusable differential helper
# --------------------------------------------------------------------- #


def _counter_snapshot(sim: MultiCoreNPUSim) -> dict:
    """Post-hoc counter snapshot of a finished simulation.

    Observation is registered *after* the run (the registry only holds
    pull callables over stats the components maintain anyway), so the
    run itself executed unobserved — which is exactly the condition
    under which the batched governor engages.  Replay-kernel
    bookkeeping (``replay.*``) differs across modes by design and is
    excluded; everything else must match exactly.
    """
    registry = CounterRegistry()
    sim._register_counters(registry)
    snap = registry.snapshot()["metrics"]
    return {
        path: value
        for path, value in snap.items()
        if not path.startswith("replay.")
    }


def _run_system(system: SystemConfig, networks, mode: str):
    system = dataclasses.replace(
        system, misc=dataclasses.replace(system.misc, replay_mode=mode)
    )
    sim = MultiCoreNPUSim(system, networks)
    result = sim.run(max_ticks=MAX_TICKS)
    return sim, result


def assert_system_equivalent(
    system: SystemConfig, networks
) -> dict[str, MultiCoreNPUSim]:
    """Simulate ``system`` under every replay mode; assert byte-identity.

    Returns the per-mode simulators so callers can make additional
    assertions (e.g. that fast-forwarding actually engaged).
    """
    sims: dict[str, MultiCoreNPUSim] = {}
    baseline = None
    for mode in REPLAY_MODES:
        sim, result = _run_system(system, networks, mode)
        observed = (
            metrics(result),
            _counter_snapshot(sim),
            sim.engine.events_processed,
        )
        if baseline is None:
            baseline = observed
        else:
            assert observed[0] == baseline[0], f"{mode}: metrics diverged"
            assert observed[1] == baseline[1], f"{mode}: counters diverged"
            assert observed[2] == baseline[2], f"{mode}: event count diverged"
        sims[mode] = sim
    return sims


def assert_equivalent(spec: RunSpec) -> dict[str, MultiCoreNPUSim]:
    """Three-way differential run of one :class:`RunSpec`."""
    networks = [zoo.get(name, spec.scale) for name in spec.workloads]
    return assert_system_equivalent(spec.system(), networks)


# --------------------------------------------------------------------- #
# Fixed corpus: the spec shapes behind the golden suite
# --------------------------------------------------------------------- #

SPEC_CORPUS: tuple[tuple[str, RunSpec], ...] = (
    (
        "solo-dlrm-1ch-notrans",
        RunSpec.solo("dlrm", scale="mini", channels=1, translation=False),
    ),
    ("solo-ncf-2ch", RunSpec.solo("ncf", scale="mini", channels=2)),
    ("mix-ncf-dlrm-D", RunSpec.mix(("ncf", "dlrm"), "D", scale="mini")),
    (
        "mix-ncf-dlrm-D-notrans",
        RunSpec.mix(("ncf", "dlrm"), "D", scale="mini", translation=False),
    ),
)


@pytest.mark.parametrize(
    "spec", [spec for _, spec in SPEC_CORPUS], ids=[name for name, _ in SPEC_CORPUS]
)
def test_spec_corpus_equivalent(spec):
    assert_equivalent(spec)


def test_solo_auto_fast_forwards():
    """The headline scenario actually exercises the analytic warp."""
    spec = RunSpec.solo("dlrm", scale="mini", channels=1, translation=False)
    sims = assert_equivalent(spec)
    turbo = sims["auto"].dmas[0]
    assert isinstance(turbo, TurboDma)
    assert turbo.rstats.fast_forwards >= 1
    assert turbo.rstats.fast_forwarded_ticks > 0


# --------------------------------------------------------------------- #
# Hypothesis sweep: random networks across the sharing/topology matrix
# --------------------------------------------------------------------- #


def _build_system(
    num_cores: int,
    channels_per_core: int,
    shared: bool,
    translation: bool,
) -> SystemConfig:
    arch = presets.cloud_arch("mini")
    npumem = presets.cloud_npumem("mini", translation_enabled=translation)
    dram = presets.hbm2_dram("mini", channels=num_cores * channels_per_core)
    misc = MiscConfig(
        iterations=1,
        start_stagger_cycles=presets.MIX_STAGGER_CYCLES if num_cores > 1 else 0,
    )
    return SystemConfig(
        arch=(arch,) * num_cores,
        npumem=(npumem,) * num_cores,
        dram=dram,
        misc=misc,
        share_dram=shared,
        share_ptw=shared,
        share_tlb=shared,
    )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_cores=st.sampled_from((1, 2)),
    channels_per_core=st.sampled_from((1, 2)),
    shared=st.booleans(),
    translation=st.booleans(),
)
def test_random_networks_equivalent(
    seed, num_cores, channels_per_core, shared, translation
):
    system = _build_system(num_cores, channels_per_core, shared, translation)
    networks = [
        random_network(seed + core, min_layers=2, max_layers=4)
        for core in range(num_cores)
    ]
    assert_system_equivalent(system, networks)


# --------------------------------------------------------------------- #
# Runner path: distinct cache shards, identical simulated payloads
# --------------------------------------------------------------------- #


def test_runner_results_identical_across_modes(tmp_path):
    from repro.experiments.runner import ExperimentRunner

    base = RunSpec.solo("dlrm", scale="mini", channels=1, translation=False)
    results = {}
    keys = {}
    for mode in REPLAY_MODES:
        spec = dataclasses.replace(base, replay_mode=mode)
        runner = ExperimentRunner(scale="mini", cache_dir=tmp_path / mode)
        # run() returns the serialized per-workload result rows — the
        # exact payload the cache shard stores.
        results[mode] = runner.run(spec)
        keys[mode] = spec.cache_key()
    assert len(set(keys.values())) == len(REPLAY_MODES), (
        "each replay mode must key a distinct cache shard"
    )
    assert results["batched"] == results["event"]
    assert results["auto"] == results["event"]

"""Unit tests for sharing levels and the preset system builders."""

import pytest

from repro.config import presets
from repro.core.sharing import CONTENDED_LEVELS, SWEEP_LEVELS, SharingLevel


class TestSharingLevel:
    def test_flags_match_paper_table(self):
        assert not SharingLevel.STATIC.share_dram
        assert not SharingLevel.STATIC.share_ptw
        assert not SharingLevel.STATIC.share_tlb
        assert SharingLevel.D.share_dram
        assert not SharingLevel.D.share_ptw
        assert SharingLevel.DW.share_dram and SharingLevel.DW.share_ptw
        assert not SharingLevel.DW.share_tlb
        assert SharingLevel.DWT.share_tlb

    def test_sharing_is_cumulative(self):
        # Each level shares a superset of the previous one's resources.
        ordered = [
            SharingLevel.STATIC, SharingLevel.D, SharingLevel.DW, SharingLevel.DWT,
        ]
        for prev, cur in zip(ordered, ordered[1:]):
            for flag in ("share_dram", "share_ptw", "share_tlb"):
                assert getattr(cur, flag) >= getattr(prev, flag)

    def test_contended_levels(self):
        assert not SharingLevel.IDEAL.is_contended
        assert not SharingLevel.STATIC.is_contended
        for level in CONTENDED_LEVELS:
            assert level.is_contended

    def test_labels(self):
        assert SharingLevel.DW.label == "+DW"
        assert [level.label for level in SWEEP_LEVELS] == [
            "Static", "+D", "+DW", "+DWT",
        ]


class TestPresets:
    def test_full_matches_table2(self):
        arch = presets.cloud_arch("full")
        assert (arch.array_rows, arch.array_cols) == (128, 128)
        assert arch.spm_bytes == 36 * 1024 * 1024
        npumem = presets.cloud_npumem("full")
        assert npumem.tlb_entries == 2048
        assert npumem.num_ptw == 8
        dram = presets.hbm2_dram("full")
        assert dram.peak_bandwidth_bytes_per_sec() == pytest.approx(128e9)

    def test_mini_is_smaller_but_same_shape(self):
        full = presets.cloud_arch("full")
        mini = presets.cloud_arch("mini")
        assert mini.array_rows < full.array_rows
        assert mini.spm_bytes < full.spm_bytes
        assert mini.array_rows == mini.array_cols

    def test_cloud_npu_aggregates_per_core_resources(self):
        system = presets.cloud_npu(2, SharingLevel.DWT)
        per = presets.per_core_resources()
        assert system.dram.channels == per["channels"] * 2
        assert system.total_ptw == per["num_ptw"] * 2
        assert system.num_cores == 2

    def test_cloud_npu_rejects_multicore_ideal(self):
        with pytest.raises(ValueError, match="solo_slice"):
            presets.cloud_npu(2, SharingLevel.IDEAL)

    def test_static_level_partitions_everything(self):
        system = presets.cloud_npu(2, SharingLevel.STATIC)
        assert not system.share_dram
        assert not system.share_ptw
        assert not system.share_tlb
        a = set(system.channels_for_core(0))
        b = set(system.channels_for_core(1))
        assert not a & b

    def test_solo_slice_shapes(self):
        system = presets.solo_slice(channels=8, num_ptw=2, tlb_entries=128)
        assert system.num_cores == 1
        assert system.dram.channels == 8
        assert system.npumem[0].num_ptw == 2
        assert system.npumem[0].tlb_entries == 128

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            presets.cloud_arch("nano")

    def test_page_bytes_propagates(self):
        system = presets.cloud_npu(2, SharingLevel.DWT, page_bytes=65536)
        assert all(cfg.page_bytes == 65536 for cfg in system.npumem)

    def test_translation_toggle_propagates(self):
        system = presets.solo_slice(translation_enabled=False)
        assert not system.npumem[0].translation_enabled

"""Integration orderings the sharing model must respect.

These are the paper's qualitative invariants at mix granularity, checked
end-to-end on a handful of fast mixes (not the full sweeps, which live in
benchmarks/).
"""

import pytest

from repro.core.metrics import fairness, geomean
from repro.core.sharing import SharingLevel
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    return ExperimentRunner(cache_dir=tmp_path_factory.mktemp("cache"))


MIX = ("ncf", "dlrm")  # two small, memory-sensitive workloads: fast to run


class TestSharingOrderings:
    def test_ideal_is_an_upper_bound(self, runner):
        ideal = {name: runner.ideal(name, 2)["cycles"] for name in MIX}
        results = runner.mix(MIX, SharingLevel.DWT)
        for name, result in zip(MIX, results):
            # Contended runs cannot beat the uncontended full pool by
            # more than scheduling noise.
            assert result["cycles"] >= ideal[name] * 0.98

    def test_static_is_a_contention_free_floor(self, runner):
        static = {name: runner.static_equal(name)["cycles"] for name in MIX}
        ideal = {name: runner.ideal(name, 2)["cycles"] for name in MIX}
        for name in MIX:
            assert static[name] >= ideal[name]

    def test_sharing_helps_this_memory_bound_mix(self, runner):
        ideal = {name: runner.ideal(name, 2)["cycles"] for name in MIX}
        static = {name: runner.static_equal(name)["cycles"] for name in MIX}
        static_gm = geomean([ideal[n] / static[n] for n in MIX])
        dwt = runner.mix(MIX, SharingLevel.DWT)
        shared_gm = geomean(
            [ideal[n] / r["cycles"] for n, r in zip(MIX, dwt)]
        )
        assert shared_gm > static_gm

    def test_fairness_in_unit_interval(self, runner):
        ideal = {name: runner.ideal(name, 2)["cycles"] for name in MIX}
        for level in (SharingLevel.D, SharingLevel.DW, SharingLevel.DWT):
            results = runner.mix(MIX, level)
            slowdowns = [
                r["cycles"] / ideal[n] for n, r in zip(MIX, results)
            ]
            value = fairness(slowdowns)
            assert 0.0 < value <= 1.0

    def test_larger_pages_never_slow_a_mix(self, runner):
        small = runner.mix(MIX, SharingLevel.DWT, page_bytes=4096)
        big = runner.mix(MIX, SharingLevel.DWT, page_bytes=65536)
        small_gm = geomean([r["cycles"] for r in small])
        big_gm = geomean([r["cycles"] for r in big])
        assert big_gm <= small_gm * 1.02

    def test_translation_off_is_fastest(self, runner):
        with_mmu = runner.mix(MIX, SharingLevel.D, translation=True)
        without = runner.mix(MIX, SharingLevel.D, translation=False)
        for a, b in zip(with_mmu, without):
            assert b["cycles"] <= a["cycles"]
            assert b["walks"] == 0

    def test_stagger_recorded_in_results(self, runner):
        results = runner.mix(MIX, SharingLevel.DWT)
        # Both workloads completed exactly one iteration.
        assert all(r["completed_iterations"] == 1 for r in results)

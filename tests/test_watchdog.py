"""Tests of the engine stall watchdog and the typed simulation errors."""

import pytest

from repro.config.arch import ArchConfig
from repro.config.dram import DramConfig
from repro.config.misc import MiscConfig
from repro.config.npumem import NpuMemConfig
from repro.config.system import SystemConfig
from repro.core.sharing import SharingLevel
from repro.core.simulator import DEFAULT_STALL_WINDOW_TICKS, MultiCoreNPUSim
from repro.errors import (
    CoreDiagnostics,
    SimulationError,
    SimulationStallError,
    SimulatorReuseError,
)
from repro.models.layers import DenseLayer, Network

ARCH = ArchConfig(
    name="t", array_rows=8, array_cols=8, spm_bytes=16 * 1024,
    dram_transaction_bytes=64,
)
NPUMEM = NpuMemConfig(tlb_entries=16, tlb_assoc=4, num_ptw=1, pwc_entries=8)

WINDOW = 50_000


def _net(name="w"):
    return Network(name, (DenseLayer(f"{name}_l0", 32, 64, 32),))


def _system(cores=1, sharing=SharingLevel.DWT):
    return SystemConfig(
        arch=(ARCH,) * cores,
        npumem=(NPUMEM,) * cores,
        dram=DramConfig(channels=2, channel_bytes_per_cycle=16),
        misc=MiscConfig(iterations=1),
        share_dram=sharing.share_dram,
        share_ptw=sharing.share_ptw,
        share_tlb=sharing.share_tlb,
    )


def _wedge(sim):
    """Livelock ``sim``: swallow every DMA transfer, keep events firing."""
    for dma in sim.dmas.values():
        dma.transfer = lambda runs, on_complete: None

    def keepalive():
        sim.engine.after(1_000, keepalive)

    sim.engine.after(1, keepalive)


class TestStallDetection:
    def test_livelock_raises_with_diagnostics(self):
        sim = MultiCoreNPUSim(_system(), [_net()], stall_window_ticks=WINDOW)
        _wedge(sim)
        with pytest.raises(SimulationStallError) as excinfo:
            sim.run(max_ticks=10**9)
        error = excinfo.value
        assert "livelocked" in str(error)
        assert error.total_ticks is not None and error.total_ticks < 10**7
        assert error.events_processed
        assert len(error.diagnostics) == 1
        diag = error.diagnostics[0]
        assert isinstance(diag, CoreDiagnostics)
        assert diag.core == 0
        assert diag.workload == "w"
        assert diag.tiles_computed == 0
        assert diag.completed_iterations == 0

    def test_detail_names_every_core(self):
        sim = MultiCoreNPUSim(
            _system(cores=2), [_net("w0"), _net("w1")], stall_window_ticks=WINDOW
        )
        _wedge(sim)
        with pytest.raises(SimulationStallError) as excinfo:
            sim.run(max_ticks=10**9)
        detail = excinfo.value.detail()
        assert "core 0 (w0)" in detail
        assert "core 1 (w1)" in detail
        assert "dram queues" in detail

    def test_detection_is_prompt_not_max_ticks(self):
        # The watchdog fires within a few windows, not at the tick ceiling.
        sim = MultiCoreNPUSim(_system(), [_net()], stall_window_ticks=WINDOW)
        _wedge(sim)
        with pytest.raises(SimulationStallError) as excinfo:
            sim.run(max_ticks=10**12)
        assert excinfo.value.total_ticks < 10 * WINDOW

    def test_unwatched_wedged_sim_hits_ceiling_instead(self):
        # Without the watchdog the same livelock burns to max_ticks and
        # is only caught by the never-completed check.
        sim = MultiCoreNPUSim(_system(), [_net()])
        _wedge(sim)
        with pytest.raises(SimulationStallError, match="never completed"):
            sim.run(max_ticks=200_000)


class TestWatchdogEquivalence:
    def test_results_identical_with_and_without_watchdog(self):
        plain = MultiCoreNPUSim(_system(), [_net()]).run(max_ticks=10**8)
        watched = MultiCoreNPUSim(
            _system(), [_net()], stall_window_ticks=WINDOW
        ).run(max_ticks=10**8)
        assert watched.cycles_per_core() == plain.cycles_per_core()
        assert watched.total_ticks == plain.total_ticks
        assert watched.dram.requests == plain.dram.requests

    def test_multicore_results_identical(self):
        nets = lambda: [_net("w0"), _net("w1")]
        plain = MultiCoreNPUSim(_system(cores=2), nets()).run(max_ticks=10**8)
        watched = MultiCoreNPUSim(
            _system(cores=2), nets(), stall_window_ticks=WINDOW
        ).run(max_ticks=10**8)
        assert watched.cycles_per_core() == plain.cycles_per_core()
        assert watched.total_ticks == plain.total_ticks

    def test_zero_window_disables_watchdog(self):
        sim = MultiCoreNPUSim(_system(), [_net()], stall_window_ticks=0)
        assert sim.stall_window_ticks is None
        result = sim.run(max_ticks=10**8)
        assert result.workloads[0].completed_iterations == 1

    def test_default_window_constant_is_sane(self):
        assert DEFAULT_STALL_WINDOW_TICKS > 0


class TestTypedErrors:
    def test_stall_error_is_runtime_error(self):
        # Callers written against the old bare-RuntimeError contract
        # (e.g. `except RuntimeError` around run()) must keep working.
        assert issubclass(SimulationStallError, RuntimeError)
        assert issubclass(SimulationStallError, SimulationError)
        assert issubclass(SimulatorReuseError, RuntimeError)

    def test_legacy_runtime_error_handler_catches_stall(self):
        sim = MultiCoreNPUSim(_system(), [_net()], stall_window_ticks=WINDOW)
        _wedge(sim)
        with pytest.raises(RuntimeError):
            sim.run(max_ticks=10**9)

    def test_reuse_raises_typed_error(self):
        sim = MultiCoreNPUSim(_system(), [_net()])
        sim.run(max_ticks=10**8)
        with pytest.raises(SimulatorReuseError, match="runs once"):
            sim.run(max_ticks=10**8)

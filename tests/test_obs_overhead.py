"""Zero-overhead-when-off guarantees for the observability layer.

Two kinds of pin: *structural* proofs that the default (``observe``
off) path never constructs or touches an observability object, and a
wall-time guard asserting that having used observability in-process does
not slow subsequent non-observed runs by more than 2% — the registry is
pull-based and the timeline per-instance, so any cross-run slowdown
would mean state leaked into the hot path.
"""

from __future__ import annotations

import time

import pytest

from repro.core.simulator import MultiCoreNPUSim
from repro.experiments.spec import RunSpec
from repro.models import zoo

SPEC = RunSpec.solo("ncf", scale="mini")
MAX_TICKS = 50_000_000_000


def run_once(observe: bool = False):
    networks = [zoo.get(name, SPEC.scale) for name in SPEC.workloads]
    sim = MultiCoreNPUSim(SPEC.system(), networks, observe=observe)
    return sim, sim.run(max_ticks=MAX_TICKS)


class TestStructuralZeroOverhead:
    def test_default_runs_hold_no_observability_objects(self):
        sim, result = run_once(observe=False)
        assert sim.registry is None
        assert sim.timeline is None
        assert result.counters is None
        for core in sim.cores.values():
            assert core._timeline is None

    def test_default_construction_never_touches_obs_classes(self, monkeypatch):
        """If the default path so much as constructs a registry or
        tracer, these poisoned constructors blow up the run."""
        import repro.core.simulator as simulator_mod

        def boom(*args, **kwargs):
            raise AssertionError("observability object built with observe=False")

        monkeypatch.setattr(simulator_mod, "CounterRegistry", boom)
        monkeypatch.setattr(simulator_mod, "TimelineTracer", boom)
        _, result = run_once(observe=False)
        assert result.workloads[0].cycles > 0

    def test_observe_on_changes_no_metric(self):
        """The cheap in-suite equivalence check (the byte-level pin lives
        in the golden suite): identical workload metrics on/off."""
        _, off = run_once(observe=False)
        _, on = run_once(observe=True)
        assert off.total_ticks == on.total_ticks
        for a, b in zip(off.workloads, on.workloads):
            assert (a.cycles, a.traffic_bytes, a.walks, a.tlb_misses) == (
                b.cycles, b.traffic_bytes, b.walks, b.tlb_misses
            )


def best_of(n: int, func) -> float:
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark
def test_observability_off_wall_time_within_2_percent():
    """Using observability once must not slow later non-observed runs.

    Interleaved best-of-N keeps scheduler noise out of the comparison;
    a couple of retry rounds keep a single noisy core from flaking CI.
    """
    run_once(observe=False)  # warm imports, zoo caches, trace memo

    deltas = []
    for _ in range(3):
        before = best_of(5, lambda: run_once(observe=False))
        run_once(observe=True)  # arm and use the whole obs stack
        after = best_of(5, lambda: run_once(observe=False))
        delta = (after - before) / before
        deltas.append(delta)
        if delta < 0.02:
            return
    pytest.fail(
        f"observe=False runs slowed by {min(deltas):.1%} after using "
        f"observability (>{0.02:.0%} in all rounds: {deltas})"
    )

"""Tests of the serve client's retry discipline.

The transport is stubbed (scripted ``(status, headers, body)`` responses
or raised socket errors), so every schedule decision — what gets
retried, how long each backoff pause is, how ``Retry-After`` and the
deadline interact — is asserted deterministically, with no real sockets
or clocks.
"""

import json

import pytest

from repro.errors import (
    DeadlineExceededError,
    ProtocolError,
    RemoteRunFailedError,
    ServerOverloadedError,
    ServiceUnavailableError,
)
from repro.experiments.spec import RunSpec
from repro.serve import protocol
from repro.serve.client import ServeClient


SPEC = RunSpec.solo("ncf")


def _ok_payload(spec=SPEC):
    resolved = spec.resolve()
    body = json.dumps(
        {"descriptor": resolved.descriptor(), "results": [{"cycles": 1}]}
    ).encode()
    headers = {
        protocol.KEY_HEADER: resolved.cache_key(),
        protocol.SOURCE_HEADER: "cold",
    }
    return 200, headers, body


def _error(code, message="nope", **extra):
    return (
        protocol.error_status(code),
        {},
        protocol.encode_error(code, message, **extra),
    )


class FakeRng:
    """random() always returns 1.0: jitter lands on its upper bound."""

    def random(self):
        return 1.0


class StubClient(ServeClient):
    """A ServeClient whose transport replays a scripted response list."""

    def __init__(self, responses, **kwargs):
        kwargs.setdefault("backoff_seconds", 1.0)
        kwargs.setdefault("jitter", 0.0)
        kwargs.setdefault("rng", FakeRng())
        self.sleeps = []
        self.now = 0.0

        def fake_sleep(seconds):
            self.sleeps.append(seconds)
            self.now += seconds

        super().__init__(
            "http://127.0.0.1:1",
            sleep=fake_sleep,
            clock=lambda: self.now,
            **kwargs,
        )
        self._responses = list(responses)
        self.requests = 0

    def _request(self, method, path, body=None, *, timeout):
        self.requests += 1
        if not self._responses:
            raise AssertionError("stub ran out of scripted responses")
        response = self._responses.pop(0)
        if isinstance(response, Exception):
            raise response
        status, headers, raw = response
        return status, {k.title(): v for k, v in headers.items()}, raw


class TestRetrySchedule:
    def test_sheds_then_succeeds_with_exponential_backoff(self):
        client = StubClient(
            [_error("overloaded"), _error("overloaded"), _ok_payload()]
        )
        result = client.run(SPEC)
        assert result.attempts == 3
        assert result.source == "cold"
        assert result.key == SPEC.resolve().cache_key()
        assert client.sleeps == [1.0, 2.0]  # base * 2**(attempt-1)

    def test_retry_after_is_a_floor_on_the_pause(self):
        client = StubClient(
            [_error("overloaded", retry_after=7.5), _ok_payload()]
        )
        client.run(SPEC)
        assert client.sleeps == [7.5]

    def test_jitter_inflates_up_to_its_bound(self):
        client = StubClient(
            [_error("unavailable"), _ok_payload()], jitter=0.5
        )
        client.run(SPEC)
        assert client.sleeps == [pytest.approx(1.5)]  # 1.0 * (1 + 0.5*1.0)

    def test_backoff_is_capped(self):
        client = StubClient(
            [_error("overloaded")] * 6 + [_ok_payload()],
            backoff_cap_seconds=4.0,
            deadline_seconds=None,
        )
        client.run(SPEC)
        assert client.sleeps == [1.0, 2.0, 4.0, 4.0, 4.0, 4.0]

    def test_transport_faults_are_retried(self):
        client = StubClient([ConnectionRefusedError("down"), _ok_payload()])
        result = client.run(SPEC)
        assert result.attempts == 2

    def test_exhausted_attempts_raise_the_last_shed_error(self):
        client = StubClient(
            [_error("overloaded")] * 3,
            max_attempts=3,
            deadline_seconds=None,
        )
        with pytest.raises(ServerOverloadedError):
            client.run(SPEC)
        assert client.requests == 3


class TestNonRetriable:
    def test_protocol_error_raises_immediately(self):
        client = StubClient([_error("protocol", "bad spec")])
        with pytest.raises(ProtocolError, match="bad spec"):
            client.run(SPEC)
        assert client.requests == 1

    def test_run_failed_raises_immediately_with_details(self):
        client = StubClient(
            [_error("run-failed", "sim died", kind="stall", attempts=2)]
        )
        with pytest.raises(RemoteRunFailedError) as excinfo:
            client.run(SPEC)
        assert excinfo.value.kind == "stall"
        assert excinfo.value.attempts == 2
        assert client.requests == 1

    def test_unparseable_success_payload_is_a_protocol_error(self):
        client = StubClient([(200, {}, b"gibberish")])
        with pytest.raises(ProtocolError, match="unparseable"):
            client.run(SPEC)


class TestDeadline:
    def test_deadline_bounds_the_retry_loop(self):
        # Each shed costs a 1s/2s/4s... pause; a 5s budget admits the
        # pauses summing past it to be clipped, then expires.
        client = StubClient(
            [_error("overloaded")] * 10,
            deadline_seconds=5.0,
            max_attempts=10,
        )
        with pytest.raises(DeadlineExceededError):
            client.run(SPEC)
        assert client.now <= 5.0  # pauses were clipped to the budget

    def test_deadline_rides_to_the_server(self):
        captured = {}

        class Capturing(StubClient):
            def _request(self, method, path, body=None, *, timeout):
                if body is not None:
                    captured["deadline"] = json.loads(body).get(
                        "deadline_seconds"
                    )
                return super()._request(method, path, body, timeout=timeout)

        client = Capturing([_ok_payload()], deadline_seconds=30.0)
        client.run(SPEC)
        assert captured["deadline"] == pytest.approx(30.0)

    def test_server_side_deadline_is_retried_within_budget(self):
        # A 504 with client budget remaining means "queued too long" —
        # the rerun is idempotent and likely a cache hit by then.
        client = StubClient(
            [_error("deadline"), _ok_payload()], deadline_seconds=100.0
        )
        result = client.run(SPEC)
        assert result.attempts == 2

    def test_expired_budget_raises_without_another_request(self):
        client = StubClient([_error("overloaded")], deadline_seconds=0.5)
        with pytest.raises(DeadlineExceededError):
            client.run(SPEC)
        assert client.requests == 1  # the retry was never sent


class TestConstruction:
    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError):
            ServeClient("ftp://example:1")
        with pytest.raises(ValueError):
            ServeClient("localhost:8080")

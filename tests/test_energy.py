"""Tests for the DRAM and NPU energy models."""

import pytest

from repro.config.arch import ArchConfig
from repro.config.dram import DramConfig
from repro.config.misc import MiscConfig
from repro.config.npumem import NpuMemConfig
from repro.config.system import SystemConfig
from repro.core.energy import (
    NpuEnergy,
    NpuEnergyParams,
    energy_delay_product,
    workload_energy,
)
from repro.core.simulator import MultiCoreNPUSim
from repro.dram.energy import DramEnergyParams, EnergyBreakdown, dram_energy
from repro.dram.stats import DramStats
from repro.models.layers import DenseLayer, Network


class TestDramEnergy:
    def _stats(self, reads=10, writes=5, misses=3, refreshes=2):
        stats = DramStats()
        stats.reads = reads
        stats.writes = writes
        stats.row_misses = misses
        stats.refreshes = refreshes
        return stats

    def test_components_add_up(self):
        breakdown = dram_energy(self._stats(), DramConfig(), 1000, 64)
        total = (
            breakdown.activate_pj + breakdown.read_pj + breakdown.write_pj
            + breakdown.refresh_pj + breakdown.background_pj
        )
        assert breakdown.total_pj == pytest.approx(total)
        assert breakdown.dynamic_pj == pytest.approx(total - breakdown.background_pj)

    def test_hand_computed_read_energy(self):
        params = DramEnergyParams(read_pj_per_byte=2.0)
        breakdown = dram_energy(self._stats(reads=4), DramConfig(), 0, 64, params)
        assert breakdown.read_pj == pytest.approx(4 * 64 * 2.0)

    def test_background_scales_with_time_and_channels(self):
        short = dram_energy(self._stats(), DramConfig(channels=2), 100, 64)
        long = dram_energy(self._stats(), DramConfig(channels=2), 200, 64)
        wide = dram_energy(self._stats(), DramConfig(channels=4), 100, 64)
        assert long.background_pj == pytest.approx(2 * short.background_pj)
        assert wide.background_pj == pytest.approx(2 * short.background_pj)

    def test_zero_activity_zero_dynamic(self):
        breakdown = dram_energy(DramStats(), DramConfig(), 0, 64)
        assert breakdown.dynamic_pj == 0
        assert breakdown.total_pj == 0

    def test_as_dict(self):
        breakdown = dram_energy(self._stats(), DramConfig(), 10, 64)
        payload = breakdown.as_dict()
        assert payload["total_pj"] == pytest.approx(breakdown.total_pj)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            dram_energy(DramStats(), DramConfig(), -1, 64)
        with pytest.raises(ValueError):
            DramEnergyParams(act_pre_pj=-1)


class TestNpuEnergy:
    def _run(self):
        arch = ArchConfig(
            name="t", array_rows=8, array_cols=8, spm_bytes=16 * 1024,
            dram_transaction_bytes=64,
        )
        system = SystemConfig(
            arch=(arch,),
            npumem=(NpuMemConfig(tlb_entries=16, tlb_assoc=4, num_ptw=1),),
            dram=DramConfig(channels=2, channel_bytes_per_cycle=16),
            misc=MiscConfig(iterations=1),
        )
        net = Network("w", (DenseLayer("l0", 32, 64, 32),))
        result = MultiCoreNPUSim(system, [net]).run(max_ticks=50_000_000)
        return result.workloads[0], arch, net

    def test_end_to_end_breakdown(self):
        workload, arch, net = self._run()
        energy = workload_energy(workload, arch, net.total_macs)
        assert energy.compute_pj > 0
        assert energy.spm_pj > 0
        assert energy.translation_pj > 0
        assert energy.leakage_pj > 0
        assert energy.total_pj == pytest.approx(
            energy.compute_pj + energy.spm_pj
            + energy.translation_pj + energy.leakage_pj
        )

    def test_compute_energy_hand_computed(self):
        workload, arch, net = self._run()
        params = NpuEnergyParams(mac_pj=1.0, spm_pj_per_byte=0, tlb_lookup_pj=0,
                                 walk_pj=0, leakage_pw_per_pe=0)
        energy = workload_energy(workload, arch, net.total_macs, params)
        assert energy.total_pj == pytest.approx(net.total_macs)

    def test_edp(self):
        npu = NpuEnergy(10, 10, 10, 10)
        dram = EnergyBreakdown(1, 1, 1, 1, 1)
        assert energy_delay_product(npu, dram, 100) == pytest.approx(4500)
        with pytest.raises(ValueError):
            energy_delay_product(npu, dram, 0)

    def test_rejects_negative_macs(self):
        workload, arch, _ = self._run()
        with pytest.raises(ValueError):
            workload_energy(workload, arch, -1)

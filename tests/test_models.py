"""Unit tests for layer specs, im2col translation, and the model zoo."""

import pytest

from repro.models import zoo
from repro.models.layers import (
    ConvLayer,
    DenseLayer,
    EmbeddingLayer,
    GemmOp,
    Network,
)
from repro.models.random_net import random_network


class TestGemmOp:
    def test_macs(self):
        assert GemmOp("g", 2, 3, 4).macs == 24

    def test_operand_bytes(self):
        assert GemmOp("g", 2, 3, 4).operand_bytes(2) == (12, 24, 16)

    def test_total_bytes(self):
        gemm = GemmOp("g", 2, 3, 4)
        assert gemm.total_bytes == 6 + 12 + 8

    def test_arithmetic_intensity(self):
        gemm = GemmOp("g", 10, 10, 10)
        assert gemm.arithmetic_intensity == pytest.approx(1000 / 300)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GemmOp("g", 0, 1, 1)


class TestConvLayer:
    def test_im2col_dimensions(self):
        conv = ConvLayer("c", in_channels=3, in_h=8, in_w=8,
                         out_channels=16, kernel_h=3, kernel_w=3, padding=1)
        gemm = conv.to_gemm()
        assert gemm.m == 16
        assert gemm.k == 3 * 3 * 3
        assert gemm.n == 8 * 8  # same padding keeps spatial size

    def test_stride_shrinks_output(self):
        conv = ConvLayer("c", 3, 32, 32, 8, 3, 3, stride=2)
        out_h, out_w = conv.out_hw
        assert (out_h, out_w) == (15, 15)

    def test_invalid_geometry_raises_at_construction(self):
        with pytest.raises(ValueError):
            ConvLayer("c", 3, 4, 4, 8, 7, 7)  # kernel larger than input

    def test_alexnet_conv1_classic_dims(self):
        conv = ConvLayer("c", 3, 227, 227, 96, 11, 11, stride=4)
        gemm = conv.to_gemm()
        assert gemm.n == 55 * 55
        assert gemm.k == 363


class TestEmbeddingLayer:
    def test_gather_gemm_shape(self):
        emb = EmbeddingLayer("e", lookups=4, dim=64, batch=8)
        gemm = emb.to_gemm()
        assert gemm.m == 1
        assert gemm.k == 32
        assert gemm.n == 64
        assert gemm.b_scatter

    def test_gather_traffic_counts_all_rows(self):
        emb = EmbeddingLayer("e", lookups=10, dim=16, batch=4)
        gemm = emb.to_gemm()
        _, b_bytes, _ = gemm.operand_bytes(1)
        assert b_bytes == 10 * 4 * 16

    def test_low_intensity(self):
        emb = EmbeddingLayer("e", lookups=64, dim=64, batch=64)
        assert emb.to_gemm().arithmetic_intensity < 1.01


class TestNetwork:
    def test_rejects_duplicate_layer_names(self):
        layer = DenseLayer("a", 2, 2, 2)
        with pytest.raises(ValueError, match="duplicate"):
            Network("n", (layer, layer))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Network("n", ())

    def test_totals_sum_layers(self):
        net = Network("n", (DenseLayer("a", 2, 3, 4), DenseLayer("b", 5, 6, 7)))
        assert net.total_macs == 24 + 210
        gemms = net.gemms()
        assert len(gemms) == 2


class TestZoo:
    def test_all_eight_models_present(self):
        assert len(zoo.NAMES) == 8
        assert set(zoo.CATEGORIES) == set(zoo.NAMES)

    @pytest.mark.parametrize("name", zoo.NAMES)
    def test_mini_builds_and_is_nontrivial(self, name):
        net = zoo.mini(name)
        assert net.name == name
        assert net.total_macs > 0
        assert len(net.layers) >= 4

    @pytest.mark.parametrize("name", zoo.NAMES)
    def test_full_builds_and_dwarfs_mini(self, name):
        full = zoo.full(name)
        mini = zoo.mini(name)
        assert full.total_macs > 4 * mini.total_macs

    def test_resnet50_has_53_weight_layers(self):
        # stem + 16 blocks x 3 convs + fc = 50 convs + fc.
        net = zoo.full("res")
        assert len(net.layers) == 1 + 16 * 3 + 1

    def test_full_resnet50_mac_count_is_realistic(self):
        # ~4 GMACs for 224x224 ResNet-50 (batch 1).
        macs = zoo.full("res").total_macs
        assert 2e9 < macs < 8e9

    def test_categories_match_table1(self):
        assert zoo.CATEGORIES["res"] == "CNN"
        assert zoo.CATEGORIES["sfrnn"] == "RNN"
        assert zoo.CATEGORIES["dlrm"] == "Recommendation"
        assert zoo.CATEGORIES["gpt2"] == "Attention"

    def test_recommendation_models_have_scattered_gathers(self):
        for name in ("dlrm", "ncf"):
            gemms = zoo.mini(name).gemms()
            assert any(g.b_scatter for g in gemms)

    def test_memory_vs_compute_intensity_ordering(self):
        # The paper's contention-sensitivity story (Fig 8) rests on dlrm
        # being much more memory-intensive than gpt2/ds2.
        intensity = {n: zoo.mini(n).arithmetic_intensity for n in zoo.NAMES}
        assert intensity["dlrm"] < intensity["gpt2"]
        assert intensity["dlrm"] < intensity["ds2"]

    def test_get_rejects_unknown(self):
        with pytest.raises(ValueError):
            zoo.get("vgg", "mini")
        with pytest.raises(ValueError):
            zoo.get("res", "huge")


class TestRandomNetwork:
    def test_deterministic_per_seed(self):
        a = random_network(7)
        b = random_network(7)
        assert a.gemms() == b.gemms()

    def test_distinct_across_seeds(self):
        assert random_network(1).gemms() != random_network(2).gemms()

    def test_layer_count_bounds(self):
        for seed in range(20):
            net = random_network(seed, min_layers=3, max_layers=10)
            assert 3 <= len(net.layers) <= 10

    def test_all_layers_valid_gemms(self):
        for seed in range(20):
            for gemm in random_network(seed).gemms():
                assert gemm.macs > 0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            random_network(1, min_layers=5, max_layers=3)

"""CounterRegistry semantics: registration, snapshot, merge, reset."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    COUNTERS_SCHEMA,
    CounterRegistry,
    Histogram,
    format_tree,
    merge_snapshots,
)
from repro.obs.registry import json_copy


class TestRegistration:
    def test_owned_counter_increments(self):
        registry = CounterRegistry()
        counter = registry.counter("dram.ch0.reads")
        counter.inc()
        counter.inc(41)
        assert registry.value("dram.ch0.reads") == 42

    def test_owned_gauge_holds_level(self):
        registry = CounterRegistry()
        gauge = registry.gauge("ptw.queue_depth")
        gauge.set(7)
        assert registry.value("ptw.queue_depth") == 7

    def test_bound_counter_reads_external_state(self):
        registry = CounterRegistry()
        state = {"hits": 0}
        registry.bind_counter("mmu.core0.tlb.hits", lambda: state["hits"])
        state["hits"] = 13
        assert registry.value("mmu.core0.tlb.hits") == 13

    def test_bind_many_prefixes_paths(self):
        registry = CounterRegistry()
        registry.bind_many("dram.ch1", {"reads": lambda: 1, "writes": lambda: 2})
        assert registry.value("dram.ch1.reads") == 1
        assert registry.value("dram.ch1.writes") == 2
        with pytest.raises(ValueError):
            registry.bind_many("x", {"y": lambda: 0}, kind="histogram")

    def test_duplicate_path_rejected(self):
        registry = CounterRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError, match="already registered"):
            registry.bind_counter("a.b", lambda: 0)

    @pytest.mark.parametrize("path", ["", ".", "a..b", "a b", "a/b", ".a"])
    def test_invalid_paths_rejected(self, path):
        with pytest.raises(ValueError):
            CounterRegistry().counter(path)

    def test_paths_sorted_and_introspection(self):
        registry = CounterRegistry()
        registry.counter("z.last")
        registry.gauge("a.first")
        assert registry.paths() == ["a.first", "z.last"]
        assert "z.last" in registry
        assert "missing" not in registry
        assert len(registry) == 2


class TestHistogram:
    def test_bucket_placement_and_overflow(self):
        histogram = Histogram(bounds=(10, 100))
        for value in (5, 10, 50, 1000):
            histogram.record(value)
        read = histogram.read()
        assert read["count"] == 4
        assert read["sum"] == 1065
        assert read["buckets"] == [[10, 2], [100, 1], ["inf", 1]]

    def test_bounds_must_be_sorted_distinct(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(10, 10))
        with pytest.raises(ValueError):
            Histogram(bounds=(100, 10))
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_reset_clears_everything(self):
        histogram = Histogram(bounds=(10,))
        histogram.record(3)
        histogram.reset()
        assert histogram.read() == {
            "count": 0, "sum": 0, "buckets": [[10, 0], ["inf", 0]],
        }


class TestSnapshot:
    def test_schema_and_sorted_paths(self):
        registry = CounterRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.level").set(1.5)
        registry.histogram("c.dist", bounds=(10,)).record(4)
        snap = registry.snapshot()
        assert snap["schema"] == COUNTERS_SCHEMA
        assert list(snap["metrics"]) == ["a.level", "b.count", "c.dist"]
        assert snap["metrics"]["b.count"] == {"kind": "counter", "value": 2}
        assert snap["metrics"]["a.level"] == {"kind": "gauge", "value": 1.5}
        assert snap["metrics"]["c.dist"]["kind"] == "histogram"

    def test_snapshot_serializes_byte_identically(self):
        def build() -> CounterRegistry:
            registry = CounterRegistry()
            registry.counter("x.n").inc(3)
            registry.histogram("y.h").record(12)
            return registry

        a = json.dumps(build().snapshot(), sort_keys=True)
        b = json.dumps(build().snapshot(), sort_keys=True)
        assert a == b


class TestReset:
    def test_owned_metrics_cleared_in_place(self):
        registry = CounterRegistry()
        counter = registry.counter("a.n")
        gauge = registry.gauge("a.g")
        histogram = registry.histogram("a.h")
        counter.inc(5)
        gauge.set(9)
        histogram.record(1)
        registry.reset()
        assert registry.value("a.n") == 0
        assert registry.value("a.g") == 0
        assert registry.value("a.h")["count"] == 0

    def test_bound_counter_gets_baseline(self):
        registry = CounterRegistry()
        state = {"n": 10}
        registry.bind_counter("a.n", lambda: state["n"])
        registry.reset()
        assert registry.value("a.n") == 0
        state["n"] = 17
        assert registry.value("a.n") == 7
        assert registry.snapshot()["metrics"]["a.n"]["value"] == 7

    def test_bound_gauge_unaffected_by_reset(self):
        registry = CounterRegistry()
        registry.bind_gauge("a.g", lambda: 42)
        registry.reset()
        assert registry.value("a.g") == 42


class TestMerge:
    def snap(self, **values) -> dict:
        registry = CounterRegistry()
        for path, value in values.items():
            registry.counter(path).inc(value)
        return registry.snapshot()

    def test_counters_add(self):
        merged = merge_snapshots(self.snap(a=1), self.snap(a=2, b=5))
        assert merged["metrics"]["a"]["value"] == 3
        assert merged["metrics"]["b"]["value"] == 5
        assert merged["schema"] == COUNTERS_SCHEMA

    def test_gauges_last_wins(self):
        def gauge_snap(value):
            registry = CounterRegistry()
            registry.gauge("g").set(value)
            return registry.snapshot()

        merged = merge_snapshots(gauge_snap(1), gauge_snap(9))
        assert merged["metrics"]["g"]["value"] == 9

    def test_histograms_add_bucketwise(self):
        def hist_snap(*samples):
            registry = CounterRegistry()
            histogram = registry.histogram("h", bounds=(10, 100))
            for sample in samples:
                histogram.record(sample)
            return registry.snapshot()

        merged = merge_snapshots(hist_snap(5, 50), hist_snap(5, 500))
        metric = merged["metrics"]["h"]
        assert metric["count"] == 4
        assert metric["buckets"] == [[10, 2], [100, 1], ["inf", 1]]

    def test_histogram_bounds_mismatch_raises(self):
        def hist_snap(bounds):
            registry = CounterRegistry()
            registry.histogram("h", bounds=bounds)
            return registry.snapshot()

        with pytest.raises(ValueError, match="bounds mismatch"):
            merge_snapshots(hist_snap((10,)), hist_snap((20,)))

    def test_kind_and_schema_mismatches_raise(self):
        gauge_registry = CounterRegistry()
        gauge_registry.gauge("x")
        with pytest.raises(ValueError, match="kind mismatch"):
            merge_snapshots(self.snap(x=1), gauge_registry.snapshot())
        with pytest.raises(ValueError, match="schema"):
            merge_snapshots({"schema": "bogus/9", "metrics": {}})

    def test_merge_does_not_mutate_inputs(self):
        first = self.snap(a=1)
        merge_snapshots(first, self.snap(a=2))
        assert first["metrics"]["a"]["value"] == 1

    def test_json_copy_is_deep(self):
        original = {"buckets": [[10, 1]]}
        copy = json_copy(original)
        copy["buckets"][0][1] = 99
        assert original["buckets"][0][1] == 1


class TestFormatTree:
    def test_renders_indented_hierarchy(self):
        registry = CounterRegistry()
        registry.counter("dram.ch0.row_hits").inc(42)
        registry.histogram("dram.latency", bounds=(10,)).record(4)
        text = format_tree(registry.snapshot())
        lines = text.splitlines()
        assert lines[0] == "dram"
        assert any(line.startswith("  ch0") for line in lines)
        assert any("row_hits" in line and "42" in line for line in lines)
        assert any("count=1 mean=4.0" in line for line in lines)

    def test_max_depth_truncates(self):
        registry = CounterRegistry()
        registry.counter("a.b.c").inc(1)
        registry.counter("top").inc(2)
        text = format_tree(registry.snapshot(), max_depth=1)
        assert "top" in text
        assert "c" not in text.replace("top", "")

"""Tests of the serve daemon's robustness machinery.

The transport-independent :class:`SweepService` is exercised directly
(single-flight dedup, load shedding, deadline expiry, circuit breaker,
drain-then-resume), then one HTTP slice proves the daemon end to end:
concurrent clients, byte-identical payloads, typed errors on the wire.
"""

import hashlib
import threading

import pytest

from repro.errors import (
    DeadlineExceededError,
    RunFailedError,
    ServerOverloadedError,
    ServiceUnavailableError,
)
from repro.experiments import faults
from repro.experiments.runner import ExperimentRunner
from repro.models.layers import DenseLayer, Network
from repro.serve.client import ServeClient
from repro.serve.server import CircuitBreaker, ServeDaemon, SweepService


def _tiny(name):
    return Network(name, (DenseLayer(f"{name}_l0", 16, 32, 16),))


def _make_runner(cache_dir, **kwargs):
    kwargs.setdefault("retry_backoff", 0.0)
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("keep_pool", True)
    runner = ExperimentRunner(cache_dir=cache_dir, **kwargs)
    runner._sleep = lambda seconds: None
    for name in ("a", "b", "c", "d"):
        runner.register_network(_tiny(name))
    return runner


def _make_service(cache_dir, **kwargs):
    runner_kwargs = kwargs.pop("runner_kwargs", {})
    kwargs.setdefault("default_deadline_seconds", None)
    return SweepService(_make_runner(cache_dir, **runner_kwargs), **kwargs)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# --------------------------------------------------------------------- #
# Circuit breaker unit behaviour
# --------------------------------------------------------------------- #


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_crashes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=30.0, clock=clock)
        breaker.record_crash()
        breaker.record_crash()
        assert breaker.state == "closed" and breaker.admit() is None
        breaker.record_crash()
        assert breaker.state == "open"
        assert breaker.admit() == pytest.approx(30.0)

    def test_success_resets_the_crash_streak(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_crash()
        breaker.record_success()
        breaker.record_crash()
        assert breaker.state == "closed"

    def test_half_open_probe_and_recovery(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=30.0, clock=clock)
        breaker.record_crash()
        assert not breaker.allow_probe()
        clock.advance(31.0)
        assert breaker.admit() is None
        assert breaker.allow_probe()
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_crash_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=5, cooldown=30.0, clock=clock)
        for _ in range(5):
            breaker.record_crash()
        clock.advance(31.0)
        assert breaker.allow_probe()
        breaker.record_crash()  # one probe crash, not five, reopens
        assert breaker.state == "open"
        assert breaker.retry_after() == pytest.approx(30.0)

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


# --------------------------------------------------------------------- #
# Admission: dedup, shedding, deadlines
# --------------------------------------------------------------------- #


class TestAdmission:
    def test_single_flight_dedup_under_concurrent_submitters(self, tmp_path):
        service = _make_service(tmp_path / "cache")
        spec = service.runner.plan_solo("a")
        service.start()
        try:
            outcomes = []

            def submit():
                future, source = service.submit(spec)
                outcomes.append((future.result(timeout=60), source))

            threads = [threading.Thread(target=submit) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            payloads = {payload for payload, _ in outcomes}
            assert len(payloads) == 1  # byte-identical for every waiter
            assert service.runner.runs_executed == 1
            sources = sorted(source for _, source in outcomes)
            assert "dedup" in sources or "memo" in sources
            assert sources.count("cold") == 1
        finally:
            service.shutdown(drain_timeout=10)

    def test_payload_matches_an_independent_cold_run(self, tmp_path):
        service = _make_service(tmp_path / "cache")
        spec = service.runner.plan_solo("a")
        service.start()
        try:
            future, source = service.submit(spec)
            payload = future.result(timeout=60)
            assert source == "cold"
        finally:
            service.shutdown(drain_timeout=10)
        solo = _make_runner(tmp_path / "other", keep_pool=False, jobs=1)
        solo.run_many([spec])
        expected = solo.cached_payload(spec)
        assert hashlib.sha256(payload).hexdigest() == (
            hashlib.sha256(expected).hexdigest()
        )

    def test_memo_then_disk_hits_without_recompute(self, tmp_path):
        cache = tmp_path / "cache"
        service = _make_service(cache)
        spec = service.runner.plan_solo("a")
        service.start()
        try:
            first, _ = service.submit(spec)
            payload = first.result(timeout=60)
            warm, source = service.submit(spec)
            assert source == "memo"
            assert warm.result(timeout=1) == payload
        finally:
            service.shutdown(drain_timeout=10)

        resumed = _make_service(cache)
        resumed.start()
        try:
            future, source = resumed.submit(spec)
            assert source == "disk"
            assert future.result(timeout=1) == payload
            assert resumed.runner.runs_executed == 0
            assert resumed.registry.value("serve.cold_runs") == 0
        finally:
            resumed.shutdown(drain_timeout=10)

    def test_full_queue_sheds_with_retry_after(self, tmp_path):
        # No dispatch thread: the queue cannot drain, so overflow is
        # deterministic rather than a race against execution speed.
        service = _make_service(
            tmp_path / "cache", queue_limit=1, shed_retry_after=2.5
        )
        runner = service.runner
        try:
            _, source = service.submit(runner.plan_solo("a"))
            assert source == "cold"
            with pytest.raises(ServerOverloadedError) as excinfo:
                service.submit(runner.plan_solo("b"))
            assert excinfo.value.retry_after == 2.5
            assert service.registry.value("serve.shed") == 1
            # Identical specs still dedup instead of shedding.
            _, source = service.submit(runner.plan_solo("a"))
            assert source == "dedup"
        finally:
            runner.close()

    def test_deadline_expires_while_queued(self, tmp_path):
        clock = FakeClock()
        service = _make_service(tmp_path / "cache", clock=clock)
        spec = service.runner.plan_solo("a")
        future, _ = service.submit(spec, deadline_seconds=5.0)
        clock.advance(10.0)
        service.start()
        try:
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=30)
            assert service.registry.value("serve.deadline_expired") == 1
        finally:
            service.shutdown(drain_timeout=10)

    def test_draining_service_rejects_submissions(self, tmp_path):
        service = _make_service(tmp_path / "cache")
        service.begin_drain()
        try:
            with pytest.raises(ServiceUnavailableError):
                service.submit(service.runner.plan_solo("a"))
            assert not service.ready()
        finally:
            service.runner.close()


# --------------------------------------------------------------------- #
# Breaker integration: crash-looping specs open it, probes close it
# --------------------------------------------------------------------- #


class TestBreakerIntegration:
    def test_trip_shed_and_half_open_recovery(self, tmp_path):
        clock = FakeClock()
        service = _make_service(
            tmp_path / "cache",
            breaker=CircuitBreaker(threshold=1, cooldown=100.0, clock=clock),
            clock=clock,
            runner_kwargs={"max_attempts": 1},
        )
        runner = service.runner
        bad = runner.plan_solo("a")
        runner.fault_plan = faults.FaultPlan.for_specs(
            {bad: faults.Fault("crash")}
        )
        service.start()
        try:
            future, _ = service.submit(bad)
            with pytest.raises(RunFailedError) as excinfo:
                future.result(timeout=60)
            assert excinfo.value.failure.kind == "crash"
            assert service.breaker.state == "open"
            assert not service.ready()

            with pytest.raises(ServiceUnavailableError) as unavailable:
                service.submit(runner.plan_solo("b"))
            assert unavailable.value.retry_after is not None
            assert service.registry.value("serve.unavailable") == 1

            clock.advance(150.0)  # cooldown over: next job is the probe
            probe, source = service.submit(runner.plan_solo("b"))
            assert source == "cold"
            assert probe.result(timeout=60)
            assert service.breaker.state == "closed"
            assert service.ready()
        finally:
            service.shutdown(drain_timeout=10)

    def test_deterministic_failure_does_not_trip_breaker(self, tmp_path):
        service = _make_service(
            tmp_path / "cache", runner_kwargs={"max_attempts": 1}
        )
        runner = service.runner
        bad = runner.plan_solo("a")
        runner.fault_plan = faults.FaultPlan.for_specs(
            {bad: faults.Fault("error")}
        )
        service.start()
        try:
            future, _ = service.submit(bad)
            with pytest.raises(RunFailedError):
                future.result(timeout=60)
            # A misconfigured spec is the spec's fault, not the pool's.
            assert service.breaker.state == "closed"
            assert service.ready()
            assert service.registry.value("serve.run_failures") == 1
        finally:
            service.shutdown(drain_timeout=10)


# --------------------------------------------------------------------- #
# Drain and resume
# --------------------------------------------------------------------- #


class TestDrainAndResume:
    def test_shutdown_fails_abandoned_jobs_and_journals_them(self, tmp_path):
        # Never started: the queued job cannot run, so shutdown must
        # abandon it — journaled, and its waiter gets a retriable error.
        service = _make_service(tmp_path / "cache")
        spec = service.runner.plan_solo("a")
        future, _ = service.submit(spec)
        service.shutdown(drain_timeout=0.2)
        with pytest.raises(ServiceUnavailableError):
            future.result(timeout=1)
        events = service.runner.journal.read()
        abandon = [r for r in events if r["event"] == "serve_abandon"]
        assert abandon and spec.cache_key() in abandon[0]["keys"]
        assert any(r["event"] == "serve_stop" for r in events)

    def test_restart_serves_completed_work_from_cache(self, tmp_path):
        cache = tmp_path / "cache"
        service = _make_service(cache)
        specs = [service.runner.plan_solo(n) for n in ("a", "b")]
        service.start()
        try:
            futures = [service.submit(spec)[0] for spec in specs]
            payloads = [future.result(timeout=60) for future in futures]
        finally:
            assert service.shutdown(drain_timeout=10)

        resumed = _make_service(cache)
        resumed.start()
        try:
            for spec, expected in zip(specs, payloads):
                future, source = resumed.submit(spec)
                assert source == "disk"
                assert future.result(timeout=1) == expected
            # Zero recompute, proven by counters on both layers.
            assert resumed.runner.runs_executed == 0
            assert resumed.registry.value("serve.cold_runs") == 0
            assert resumed.registry.value("serve.disk_hits") == 2
            events = [r["event"] for r in resumed.runner.journal.read()]
            assert events.count("serve_start") == 2
        finally:
            resumed.shutdown(drain_timeout=10)

    def test_stats_reports_state_and_hit_rate(self, tmp_path):
        service = _make_service(tmp_path / "cache")
        spec = service.runner.plan_solo("a")
        service.start()
        try:
            service.submit(spec)[0].result(timeout=60)
            service.submit(spec)
            stats = service.stats()
            assert stats["ready"] is True
            assert stats["breaker"] == "closed"
            assert stats["cache_hit_rate"] == 0.5
            metrics = stats["counters"]["metrics"]
            assert metrics["serve.requests"]["value"] == 2
            assert metrics["serve.memo_hits"]["value"] == 1
            assert metrics["serve.queue_depth"]["value"] == 0
        finally:
            service.shutdown(drain_timeout=10)


# --------------------------------------------------------------------- #
# The HTTP slice, end to end
# --------------------------------------------------------------------- #


class TestHTTPDaemon:
    @pytest.fixture()
    def daemon(self, tmp_path):
        daemon = ServeDaemon(_make_service(tmp_path / "cache"))
        daemon.start()
        yield daemon
        daemon.stop(drain_timeout=10)

    def test_concurrent_clients_share_one_cold_run(self, daemon):
        spec = daemon.service.runner.plan_solo("a")
        client = ServeClient(daemon.url, deadline_seconds=60.0)
        assert client.wait_ready(10.0)

        results = []

        def fetch():
            results.append(client.run(spec))

        threads = [threading.Thread(target=fetch) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({r.payload for r in results}) == 1
        assert len({r.key for r in results}) == 1
        assert daemon.service.runner.runs_executed == 1
        assert {r.source for r in results} <= {"cold", "dedup", "memo"}
        digest = hashlib.sha256(results[0].payload).hexdigest()
        cached = daemon.service.runner.cached_payload(spec)
        assert hashlib.sha256(cached).hexdigest() == digest

    def test_health_ready_stats_endpoints(self, daemon):
        client = ServeClient(daemon.url)
        assert client.healthy()
        assert client.wait_ready(10.0)
        stats = client.stats()
        assert stats["breaker"] == "closed"
        assert "serve.requests" in stats["counters"]["metrics"]

    def test_malformed_body_is_a_typed_400(self, daemon):
        client = ServeClient(daemon.url)
        status, _, raw = client._request(
            "POST", "/v1/run", b"not json", timeout=10
        )
        assert status == 400
        assert b'"protocol"' in raw

    def test_unknown_path_is_404(self, daemon):
        client = ServeClient(daemon.url)
        status, _, _ = client._request("GET", "/v1/nonsense", timeout=10)
        assert status == 404

    def test_stopped_daemon_refuses_connections(self, tmp_path):
        daemon = ServeDaemon(_make_service(tmp_path / "cache"))
        daemon.start()
        client = ServeClient(daemon.url)
        assert client.wait_ready(10.0)
        daemon.request_stop()
        assert daemon.wait_for_stop(1.0)
        assert daemon.stop(drain_timeout=10)
        assert not client.healthy()

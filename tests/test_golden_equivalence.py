"""Golden-equivalence suite: exact results pinned for a corpus of small runs.

Every hot-path optimization of the simulator must be *observationally
equivalent*: the corpus below — solo and mix runs across private/shared
TLBs, 1/2/8-channel DRAM, translation on/off — is simulated end to end
and every integer metric (cycles, row hits/misses, walks, traffic bytes,
refreshes, queueing ticks) is asserted **exactly** against the committed
goldens in ``tests/golden/expected.json``.  The experiment-runner cache
shard for each spec must additionally stay **byte-identical** (pinned by
sha256), which covers the full serialized result including floats.

Refreshing goldens is an intentional, reviewed act (only when simulator
*semantics* change, never for a performance patch):

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/test_golden_equivalence.py -q

and commit the resulting ``tests/golden/expected.json`` alongside an
explanation of the semantic change (see DESIGN.md, "Performance
methodology").
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.core.simulator import MultiCoreNPUSim
from repro.experiments.runner import ExperimentRunner
from repro.experiments.spec import RunSpec
from repro.models import serving
from repro.models.serving import ServingParams

GOLDEN_PATH = Path(__file__).parent / "golden" / "expected.json"

#: The pinned corpus.  Keep these *small* (the whole suite simulates each
#: twice — once directly, once through the runner — in a few seconds) but
#: diverse: private vs shared TLB, 1/2/8 DRAM channels, translation
#: on/off, walk-priority traffic present and absent.
CORPUS: tuple[tuple[str, RunSpec], ...] = (
    ("solo-ncf-4ch", RunSpec.solo("ncf", scale="mini")),
    ("solo-ncf-2ch", RunSpec.solo("ncf", scale="mini", channels=2)),
    (
        "solo-dlrm-1ch-notrans",
        RunSpec.solo("dlrm", scale="mini", channels=1, translation=False),
    ),
    ("mix-ncf-dlrm-D", RunSpec.mix(("ncf", "dlrm"), "D", scale="mini")),
    ("mix-ncf-dlrm-DWT", RunSpec.mix(("ncf", "dlrm"), "DWT", scale="mini")),
    ("mix-dlrm-dlrm-DW", RunSpec.mix(("dlrm", "dlrm"), "DW", scale="mini")),
    # Per-dataflow goldens: one pinned run per non-default engine, on the
    # same slice as solo-ncf-2ch so any divergence is the engine alone.
    (
        "solo-ncf-2ch-ws",
        RunSpec.solo("ncf", scale="mini", channels=2, dataflow="ws"),
    ),
    (
        "solo-ncf-2ch-is",
        RunSpec.solo("ncf", scale="mini", channels=2, dataflow="is"),
    ),
    # Per-replay-mode goldens on the same slice as solo-dlrm-1ch-notrans
    # (the scenario ``auto`` actually fast-forwards), so any divergence
    # is the replay kernel alone.  Their integer metrics must stay equal
    # to the event-mode entry; only the cache key and shard differ.
    (
        "solo-dlrm-1ch-notrans-batched",
        RunSpec.solo(
            "dlrm",
            scale="mini",
            channels=1,
            translation=False,
            replay_mode="batched",
        ),
    ),
    (
        "solo-dlrm-1ch-notrans-auto",
        RunSpec.solo(
            "dlrm",
            scale="mini",
            channels=1,
            translation=False,
            replay_mode="auto",
        ),
    ),
    # Auto must fall back byte-identically under sharing — pin the mix.
    (
        "mix-ncf-dlrm-D-auto",
        RunSpec.mix(("ncf", "dlrm"), "D", scale="mini", replay_mode="auto"),
    ),
    # LLM-serving goldens: both phases solo, a prefill/decode co-location
    # under a shared TLB, and a zipf-routed decode pair under private
    # TLBs.  These pin the seeded arrival + MoE routing traces end to
    # end: any drift in the serving frontend changes integer cycles here.
    (
        "solo-gpt2-prefill-2ch",
        RunSpec.solo("gpt2:prefill", scale="mini", channels=2),
    ),
    (
        "solo-gpt2-decode-2ch",
        RunSpec.solo("gpt2:decode", scale="mini", channels=2),
    ),
    (
        "mix-gpt2-prefill-decode-DWT",
        RunSpec.mix(("gpt2:prefill", "gpt2:decode"), "DWT", scale="mini"),
    ),
    (
        "mix-gpt2-decode-decode-zipf-DW",
        RunSpec.mix(
            ("gpt2:decode", "gpt2:decode"),
            "DW",
            scale="mini",
            serving=ServingParams(moe_skew="zipf"),
        ),
    ),
)

CORPUS_IDS = [name for name, _ in CORPUS]
MAX_TICKS = 50_000_000_000


def simulate(spec: RunSpec):
    """One direct :class:`MultiCoreNPUSim` run of ``spec``."""
    networks = serving.networks_for(
        spec.workloads, spec.scale, params=spec.serving, default_phase=spec.phase
    )
    sim = MultiCoreNPUSim(spec.system(), networks)
    return sim.run(max_ticks=MAX_TICKS)


def metrics(mix) -> dict:
    """Every pinned integer observable of one simulation."""
    return {
        "total_ticks": mix.total_ticks,
        "dram": {
            "reads": mix.dram.reads,
            "writes": mix.dram.writes,
            "row_hits": mix.dram.row_hits,
            "row_misses": mix.dram.row_misses,
            "refreshes": mix.dram.refreshes,
            "queueing_ticks_total": mix.dram.queueing_ticks_total,
            "bytes_per_core": {
                str(core): count
                for core, count in sorted(mix.dram.bytes_per_core.items())
            },
        },
        "workloads": [
            {
                "workload": result.workload,
                "core": result.core,
                "cycles": result.cycles,
                "ticks": result.ticks,
                "traffic_bytes": result.traffic_bytes,
                "tlb_lookups": result.tlb_lookups,
                "tlb_misses": result.tlb_misses,
                "walks": result.walks,
                "completed_iterations": result.completed_iterations,
                "layer_cycles": list(result.layer_cycles),
            }
            for result in mix.workloads
        ],
    }


def snapshot(spec: RunSpec, cache_dir: Path) -> dict:
    """Simulate ``spec`` and capture every pinned observable.

    Integer metrics come from a direct :class:`MultiCoreNPUSim` run; the
    cache shard (and its hash) from an :class:`ExperimentRunner` run of
    the same spec into ``cache_dir``.
    """
    mix = simulate(spec)
    runner = ExperimentRunner(scale=spec.scale, cache_dir=cache_dir)
    runner.run(spec)
    shard = (cache_dir / f"{spec.cache_key()}.json").read_bytes()
    return {
        "cache_key": spec.cache_key(),
        "shard_sha256": hashlib.sha256(shard).hexdigest(),
        **metrics(mix),
    }


@pytest.fixture(scope="module")
def snapshots(tmp_path_factory) -> dict[str, dict]:
    cache_root = tmp_path_factory.mktemp("golden-cache")
    computed = {}
    for name, spec in CORPUS:
        cache_dir = cache_root / name
        cache_dir.mkdir()
        computed[name] = snapshot(spec, cache_dir)
    if os.environ.get("REPRO_REGEN_GOLDENS"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(computed, indent=1, sort_keys=True) + "\n")
    return computed


@pytest.fixture(scope="module")
def expected() -> dict[str, dict]:
    if os.environ.get("REPRO_REGEN_GOLDENS"):
        pytest.skip("regenerating goldens; assertions deferred to the next run")
    if not GOLDEN_PATH.exists():
        pytest.fail(
            "tests/golden/expected.json is missing; regenerate with "
            "REPRO_REGEN_GOLDENS=1 (see module docstring)"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("name", CORPUS_IDS)
def test_metrics_match_golden_exactly(name, snapshots, expected):
    assert name in expected, f"no golden recorded for corpus entry {name!r}"
    golden = dict(expected[name])
    got = dict(snapshots[name])
    golden.pop("shard_sha256")
    got.pop("shard_sha256")
    assert got == golden


@pytest.mark.parametrize("name", CORPUS_IDS)
def test_cache_shard_byte_identical(name, snapshots, expected):
    assert name in expected, f"no golden recorded for corpus entry {name!r}"
    assert snapshots[name]["shard_sha256"] == expected[name]["shard_sha256"]
    assert snapshots[name]["cache_key"] == expected[name]["cache_key"]


def test_corpus_covers_required_axes():
    """The corpus must keep exercising the axes the goldens exist to pin."""
    specs = dict(CORPUS)
    channel_counts = set()
    for spec in specs.values():
        system = spec.system()
        channel_counts.add(system.dram.channels)
    assert len(specs) >= 4
    assert {1, 2} <= channel_counts, "need 1- and 2-channel DRAM configs"
    assert any(s.kind == "mix" and s.sharing == "DWT" for s in specs.values()), (
        "need a shared-TLB mix"
    )
    assert any(s.kind == "mix" and s.sharing in ("D", "DW") for s in specs.values()), (
        "need a private-TLB mix"
    )
    assert any(not s.translation for s in specs.values()), (
        "need a translation-off config (no walk traffic)"
    )
    from repro.compute.dataflow import registered_dataflows

    pinned_dataflows = {s.dataflow for s in specs.values()}
    assert pinned_dataflows == set(registered_dataflows()), (
        "every registered dataflow engine needs a pinned golden run"
    )
    from repro.core.replay import REPLAY_MODES

    pinned_modes = {s.replay_mode for s in specs.values()}
    assert pinned_modes == set(REPLAY_MODES), (
        "every replay mode needs a pinned golden run"
    )
    assert any(
        s.kind == "mix" and s.replay_mode == "auto" for s in specs.values()
    ), "need a mix where auto must fall back to per-event replay"
    pinned_phases = {
        phase
        for s in specs.values()
        for phase in (serving.split_name(name)[1] for name in s.workloads)
        if phase is not None
    }
    assert pinned_phases == set(serving.PHASES), (
        "both serving phases need pinned golden runs"
    )
    assert any(s.serving is not None for s in specs.values()), (
        "need a non-default ServingParams golden (seeded MoE routing)"
    )


@pytest.mark.parametrize(
    "name, baseline",
    [
        ("solo-dlrm-1ch-notrans-batched", "solo-dlrm-1ch-notrans"),
        ("solo-dlrm-1ch-notrans-auto", "solo-dlrm-1ch-notrans"),
        ("mix-ncf-dlrm-D-auto", "mix-ncf-dlrm-D"),
    ],
)
def test_replay_mode_goldens_match_event_baseline(name, baseline, snapshots):
    """The mode-tagged goldens are the *same simulation* as their event-
    mode sibling: every pinned integer metric must be equal, while the
    cache key (and hence the result shard) must differ so the modes can
    never silently share a cache entry.
    """

    def payload(entry: dict) -> dict:
        return {
            key: value
            for key, value in entry.items()
            if key not in ("cache_key", "shard_sha256")
        }

    assert payload(snapshots[name]) == payload(snapshots[baseline])
    assert snapshots[name]["cache_key"] != snapshots[baseline]["cache_key"]


@pytest.mark.parametrize("name", ["solo-ncf-2ch", "mix-ncf-dlrm-DWT"])
def test_trace_cache_modes_are_byte_equivalent(name, snapshots, tmp_path):
    """Replay must be invisible: disabled, cold and warm trace caches all
    produce the exact pinned metrics AND byte-identical result shards.

    This is the correctness pin of the compile/replay split — a compiled
    trace that drifted from live generation by even one request would
    change integer DRAM counters here.
    """
    from repro.compute import tracecache

    spec = dict(CORPUS)[name]
    cache = tracecache.process_cache()
    saved_store, saved_enabled = cache.store, tracecache.is_enabled()
    want = {
        key: value
        for key, value in snapshots[name].items()
        if key not in ("cache_key", "shard_sha256")
    }

    def shard_digest(mode: str, trace_cache: bool) -> str:
        cache_dir = tmp_path / mode
        runner = ExperimentRunner(
            scale=spec.scale, cache_dir=cache_dir, trace_cache=trace_cache
        )
        runner.run(spec)
        shard = (cache_dir / f"{spec.cache_key()}.json").read_bytes()
        return hashlib.sha256(shard).hexdigest()

    try:
        cache.clear_memo()
        tracecache.configure(enabled=False)
        assert metrics(simulate(spec)) == want, "trace cache disabled"
        digests = {shard_digest("disabled", trace_cache=False)}

        tracecache.configure(directory=tmp_path / "traces", enabled=True)
        cache.clear_memo()
        assert metrics(simulate(spec)) == want, "cold trace cache"
        digests.add(shard_digest("cold", trace_cache=True))

        cache.clear_memo()  # shards on disk now: the warm cross-process path
        tracecache.configure(directory=tmp_path / "traces", enabled=True)
        assert metrics(simulate(spec)) == want, "warm disk trace cache"
        assert metrics(simulate(spec)) == want, "warm memo trace cache"
        digests.add(shard_digest("warm", trace_cache=True))

        assert digests == {snapshots[name]["shard_sha256"]}
    finally:
        cache.store = saved_store
        tracecache.configure(enabled=saved_enabled)


@pytest.mark.parametrize("name", CORPUS_IDS)
def test_observability_is_byte_invisible(name, snapshots):
    """``observe=True`` must not perturb a single pinned metric.

    The observability layer is pull-based (counters read at snapshot
    time, spans recorded from completion callbacks that already existed
    for the trace logger), so arming it must leave every golden integer
    — and therefore the result-shard bytes, which serialize only those
    workload metrics — exactly as the goldens pin them.
    """
    spec = dict(CORPUS)[name]
    networks = serving.networks_for(
        spec.workloads, spec.scale, params=spec.serving, default_phase=spec.phase
    )
    sim = MultiCoreNPUSim(spec.system(), networks, observe=True)
    mix = sim.run(max_ticks=MAX_TICKS)
    want = {
        key: value
        for key, value in snapshots[name].items()
        if key not in ("cache_key", "shard_sha256")
    }
    assert metrics(mix) == want

    # The snapshot rides along and agrees with the pinned aggregates.
    assert mix.counters is not None
    namespaces = {path.split(".")[0] for path in mix.counters["metrics"]}
    assert {"dram", "mmu", "ptw", "dma", "compute", "engine"} <= namespaces
    registry = sim.registry
    assert registry is not None
    assert registry.value("dram.requests") == mix.dram.reads + mix.dram.writes
    channel_reads = sum(
        registry.value(path)
        for path in registry.paths()
        if path.startswith("dram.ch") and path.endswith(".reads")
    )
    assert channel_reads == mix.dram.reads


@pytest.mark.parametrize(
    "name", ["solo-dlrm-1ch-notrans", "mix-ncf-dlrm-D", "mix-ncf-dlrm-DWT"]
)
def test_per_event_scheduler_matches_batched_issue(name, snapshots, monkeypatch):
    """A/B the channel's batched drain against one-request-per-event.

    The batch guards (refresh horizon, arrival-stable selection) claim
    the two schedulers are observationally identical; re-simulating a
    slice of the corpus with ``BATCH_ISSUE`` off checks that claim on
    real end-to-end traffic, not just the synthetic property tests.
    """
    import repro.dram.channel as channel_mod

    monkeypatch.setattr(channel_mod, "BATCH_ISSUE", False)
    got = metrics(simulate(dict(CORPUS)[name]))
    want = {
        key: value
        for key, value in snapshots[name].items()
        if key not in ("cache_key", "shard_sha256")
    }
    assert got == want

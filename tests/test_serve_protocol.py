"""Round-trip tests of the serve daemon's wire protocol.

Every encoder/decoder pair in :mod:`repro.serve.protocol` must be an
exact inverse — a spec that crosses the wire has to land on the same
cache key, and a typed error has to come back as the same typed error —
because the whole service contract (idempotent resubmission, dedup,
byte-identical payloads) rests on that.
"""

import json

import pytest

from repro.errors import (
    DeadlineExceededError,
    ProtocolError,
    RemoteRunFailedError,
    ServerOverloadedError,
    ServiceUnavailableError,
)
from repro.experiments.spec import RunSpec
from repro.serve import protocol


def _specs():
    return [
        RunSpec.solo("ncf"),
        RunSpec.solo("ncf", channels=4, num_ptw=2, tlb_entries=32),
        RunSpec.mix(["ncf", "ncf"], "DWT"),
        RunSpec.mix(["ncf", "ncf"], "DW", ptw_split=(3, 1)),
        RunSpec.ideal("ncf", 2),
    ]


class TestSpecRoundTrip:
    @pytest.mark.parametrize("spec", _specs(), ids=lambda s: s.label)
    def test_wire_round_trip_preserves_cache_key(self, spec):
        wire = protocol.spec_to_wire(spec)
        json.dumps(wire)  # must be JSON-serializable as-is
        rebuilt = protocol.spec_from_wire(wire)
        assert rebuilt == spec.resolve()
        assert rebuilt.cache_key() == spec.resolve().cache_key()

    def test_version_is_not_wire_settable(self):
        wire = protocol.spec_to_wire(RunSpec.solo("ncf"))
        assert "version" not in wire
        wire["version"] = 1
        with pytest.raises(ProtocolError, match="unknown spec field"):
            protocol.spec_from_wire(wire)

    def test_unknown_field_rejected(self):
        wire = protocol.spec_to_wire(RunSpec.solo("ncf"))
        wire["workloadz"] = ["ncf"]
        with pytest.raises(ProtocolError, match="workloadz"):
            protocol.spec_from_wire(wire)

    @pytest.mark.parametrize("bad", ["ncf", [1, 2], None])
    def test_malformed_workloads_rejected(self, bad):
        wire = protocol.spec_to_wire(RunSpec.solo("ncf"))
        wire["workloads"] = bad
        with pytest.raises(ProtocolError, match="workloads"):
            protocol.spec_from_wire(wire)

    def test_invalid_spec_combination_is_protocol_error(self):
        wire = protocol.spec_to_wire(RunSpec.mix(["ncf", "ncf"], "DWT"))
        wire["sharing"] = "NOPE"
        with pytest.raises(ProtocolError, match="invalid spec"):
            protocol.spec_from_wire(wire)

    def test_non_object_spec_rejected(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            protocol.spec_from_wire(["ncf"])


class TestRequestFraming:
    def test_round_trip_with_deadline(self):
        request = protocol.RunRequest(
            spec=RunSpec.solo("ncf"), deadline_seconds=12.5
        )
        decoded = protocol.decode_request(protocol.encode_request(request))
        assert decoded.deadline_seconds == 12.5
        assert decoded.spec.cache_key() == request.spec.resolve().cache_key()

    def test_round_trip_without_deadline(self):
        request = protocol.RunRequest(spec=RunSpec.solo("ncf"))
        decoded = protocol.decode_request(protocol.encode_request(request))
        assert decoded.deadline_seconds is None

    @pytest.mark.parametrize("deadline", [0, -1, "soon", float("nan")])
    def test_bad_deadline_rejected(self, deadline):
        body = json.loads(
            protocol.encode_request(protocol.RunRequest(RunSpec.solo("ncf")))
        )
        body["deadline_seconds"] = deadline
        with pytest.raises(ProtocolError, match="deadline_seconds"):
            protocol.decode_request(json.dumps(body).encode())

    @pytest.mark.parametrize(
        "raw",
        [b"", b"not json", b"[]", b'{"no_spec": 1}'],
        ids=["empty", "garbage", "array", "missing-spec"],
    )
    def test_malformed_body_rejected(self, raw):
        with pytest.raises(ProtocolError):
            protocol.decode_request(raw)

    def test_unknown_request_field_rejected(self):
        body = json.loads(
            protocol.encode_request(protocol.RunRequest(RunSpec.solo("ncf")))
        )
        body["priority"] = "high"
        with pytest.raises(ProtocolError, match="priority"):
            protocol.decode_request(json.dumps(body).encode())

    def test_oversized_body_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.decode_request(b" " * (protocol.MAX_BODY_BYTES + 1))


class TestErrorEnvelope:
    @pytest.mark.parametrize(
        "code,exc_type",
        [
            ("protocol", ProtocolError),
            ("overloaded", ServerOverloadedError),
            ("run-failed", RemoteRunFailedError),
            ("unavailable", ServiceUnavailableError),
            ("deadline", DeadlineExceededError),
        ],
    )
    def test_every_code_round_trips_to_its_type(self, code, exc_type):
        raw = protocol.encode_error(code, "boom")
        error = protocol.decode_error(protocol.error_status(code), raw)
        assert type(error) is exc_type
        assert "boom" in str(error)

    def test_retry_after_survives(self):
        raw = protocol.encode_error("overloaded", "full", retry_after=2.5)
        error = protocol.decode_error(429, raw)
        assert isinstance(error, ServerOverloadedError)
        assert error.retry_after == 2.5

    def test_run_failed_extras_survive(self):
        raw = protocol.encode_error(
            "run-failed", "sim died", kind="crash", label="solo_a", attempts=3
        )
        error = protocol.decode_error(502, raw)
        assert isinstance(error, RemoteRunFailedError)
        assert (error.kind, error.label, error.attempts) == ("crash", "solo_a", 3)

    def test_unknown_code_rejected_at_encode(self):
        with pytest.raises(ValueError, match="unknown error code"):
            protocol.encode_error("teapot", "short and stout")

    def test_garbled_body_degrades_to_protocol_error(self):
        error = protocol.decode_error(429, b"<html>gateway sadness</html>")
        assert isinstance(error, ProtocolError)
        assert "429" in str(error)

    def test_status_code_mismatch_degrades_to_protocol_error(self):
        # A proxy rewriting statuses must not produce a misleading type.
        raw = protocol.encode_error("overloaded", "full")
        error = protocol.decode_error(500, raw)
        assert isinstance(error, ProtocolError)

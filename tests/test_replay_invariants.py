"""Property-based invariants of the replay governor and fast-forward.

The differential suite (:mod:`tests.test_replay_equivalence`) proves the
*outcome* is byte-identical; this module pins the *mechanisms* that make
the proof sound:

* eligibility is exactly the static exclusivity predicate — a
  fast-forward window can never overlap a cross-core DRAM/MMU
  interaction because sharing any channel (or any TLB/PTW state, or any
  observer) disqualifies the core up front;
* fast-forward blocks advance monotonically and stay inside the run;
* elided events are conserved: the pinned ``events_processed`` is
  identical whether micro-events are replayed, batched, or closed-form
  skipped.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import presets
from repro.config.misc import MiscConfig
from repro.config.system import SystemConfig
from repro.core.replay import TurboDma, plan_replay
from repro.core.simulator import MultiCoreNPUSim
from repro.experiments.spec import RunSpec
from repro.models import zoo

MAX_TICKS = 50_000_000_000


def _system(
    num_cores: int = 1,
    *,
    shared: bool = False,
    translation: bool = False,
    iterations: int = 1,
    replay_mode: str = "batched",
    channels_per_core: int = 1,
) -> SystemConfig:
    arch = presets.cloud_arch("mini")
    npumem = presets.cloud_npumem("mini", translation_enabled=translation)
    dram = presets.hbm2_dram("mini", channels=num_cores * channels_per_core)
    return SystemConfig(
        arch=(arch,) * num_cores,
        npumem=(npumem,) * num_cores,
        dram=dram,
        misc=MiscConfig(iterations=iterations, replay_mode=replay_mode),
        share_dram=shared,
        share_ptw=shared,
        share_tlb=shared,
    )


# --------------------------------------------------------------------- #
# Eligibility: the static exclusivity predicate
# --------------------------------------------------------------------- #


def test_event_mode_disables_everything():
    plan = plan_replay(_system(replay_mode="event"))
    assert plan.eligible_cores() == ()
    assert all("event" in d.reason for d in plan.decisions)


def test_logging_disqualifies():
    plan = plan_replay(_system(), logging_active=True)
    assert plan.eligible_cores() == ()


def test_translation_disqualifies():
    plan = plan_replay(_system(translation=True))
    assert plan.eligible_cores() == ()
    assert "translation" in plan.decisions[0].reason


def test_iterations_zero_disqualifies():
    plan = plan_replay(_system(iterations=0))
    assert plan.eligible_cores() == ()
    assert "iterations" in plan.decisions[0].reason


def test_shared_channels_disqualify_all_cores():
    plan = plan_replay(_system(2, shared=True))
    assert plan.eligible_cores() == ()
    assert all("shares DRAM channels" in d.reason for d in plan.decisions)


def test_partitioned_cores_are_eligible_and_disjoint():
    system = _system(2, shared=False)
    plan = plan_replay(system)
    assert plan.eligible_cores() == (0, 1)
    owned = [set(system.channels_for_core(core)) for core in range(2)]
    assert owned[0] and owned[1] and not (owned[0] & owned[1])


@settings(max_examples=40, deadline=None)
@given(
    num_cores=st.sampled_from((1, 2, 4)),
    shared=st.booleans(),
    translation=st.booleans(),
    iterations=st.sampled_from((0, 1, 2)),
    replay_mode=st.sampled_from(("event", "batched", "auto")),
    logging_active=st.booleans(),
)
def test_eligible_implies_exclusive(
    num_cores, shared, translation, iterations, replay_mode, logging_active
):
    """Whenever a core is declared eligible, exclusivity actually holds."""
    system = _system(
        num_cores,
        shared=shared,
        translation=translation,
        iterations=iterations,
        replay_mode=replay_mode,
    )
    plan = plan_replay(system, logging_active=logging_active)
    for decision in plan.decisions:
        if not decision.eligible:
            assert decision.reason
            continue
        assert replay_mode != "event"
        assert not logging_active
        assert not translation
        assert iterations > 0
        mine = set(system.channels_for_core(decision.core))
        for other in range(num_cores):
            if other != decision.core:
                assert not (mine & set(system.channels_for_core(other)))


# --------------------------------------------------------------------- #
# Fast-forward windows: monotone, in-bounds, event-conserving
# --------------------------------------------------------------------- #


def _run_auto_with_block_log(monkeypatch):
    """Run the streaming scenario in auto mode, recording every block."""
    blocks: list[tuple[int, int]] = []  # (start_tick, cycles)
    original = TurboDma._bulk

    def spy(self, t):
        n = original(self, t)
        if n:
            blocks.append((t, n))
        return n

    monkeypatch.setattr(TurboDma, "_bulk", spy)
    spec = RunSpec.solo(
        "dlrm", scale="mini", channels=1, translation=False, replay_mode="auto"
    )
    networks = [zoo.get(name, spec.scale) for name in spec.workloads]
    sim = MultiCoreNPUSim(spec.system(), networks)
    result = sim.run(max_ticks=MAX_TICKS)
    return sim, result, blocks


def test_fast_forward_blocks_monotone_and_bounded(monkeypatch):
    sim, result, blocks = _run_auto_with_block_log(monkeypatch)
    assert blocks, "the streaming scenario must fast-forward"
    turbo = sim.dmas[0]
    assert isinstance(turbo, TurboDma)
    burst = turbo._owned[0].burst_ticks
    previous_end = -1
    for start, cycles in blocks:
        assert cycles > 0
        assert start > previous_end, "blocks must advance strictly forward"
        previous_end = start + cycles * burst
        assert previous_end <= result.total_ticks
    assert turbo.rstats.fast_forwards == len(blocks)
    assert turbo.rstats.fast_forwarded_ticks == sum(
        cycles * burst for _, cycles in blocks
    )


def test_event_counts_conserved_across_modes():
    spec = RunSpec.solo("dlrm", scale="mini", channels=1, translation=False)
    networks = [zoo.get(name, spec.scale) for name in spec.workloads]
    counts = {}
    for mode in ("event", "batched", "auto"):
        system = spec.system()
        system = dataclasses.replace(
            system, misc=dataclasses.replace(system.misc, replay_mode=mode)
        )
        sim = MultiCoreNPUSim(system, networks)
        sim.run(max_ticks=MAX_TICKS)
        counts[mode] = sim.engine.events_processed
    assert counts["batched"] == counts["event"]
    assert counts["auto"] == counts["event"]


def test_no_fast_forward_under_sharing():
    """Shared-DRAM mixes must never engage the governor, even in auto."""
    system = _system(2, shared=True, replay_mode="auto")
    networks = [zoo.get("ncf", "mini"), zoo.get("dlrm", "mini")]
    sim = MultiCoreNPUSim(system, networks)
    sim.run(max_ticks=MAX_TICKS)
    assert sim.replay_plan.eligible_cores() == ()
    assert not any(isinstance(dma, TurboDma) for dma in sim.dmas.values())

"""Unit tests for TLB, page tables, walker pool, and the MMU front-end."""

import pytest

from repro.config.npumem import NpuMemConfig
from repro.core.engine import Engine
from repro.mmu.mmu import Mmu
from repro.mmu.pagetable import PageTable, PhysicalLayout
from repro.mmu.ptw import PageWalkCache, WalkerPool
from repro.mmu.tlb import Tlb

LAYOUT = PhysicalLayout(capacity_bytes=1 << 30, num_cores=2)


class TestTlb:
    def test_hit_after_fill(self):
        tlb = Tlb(entries=16, assoc=4)
        assert not tlb.lookup(0, 5)
        tlb.fill(0, 5)
        assert tlb.lookup(0, 5)

    def test_lru_eviction_within_set(self):
        tlb = Tlb(entries=4, assoc=4)  # one set
        for vpn in range(4):
            tlb.fill(0, vpn)
        tlb.lookup(0, 0)  # refresh vpn 0
        tlb.fill(0, 99)   # evicts vpn 1 (LRU)
        assert tlb.lookup(0, 0)
        assert not tlb.lookup(0, 1)

    def test_capacity_never_exceeded(self):
        tlb = Tlb(entries=8, assoc=2)
        for vpn in range(100):
            tlb.fill(0, vpn)
        assert tlb.occupancy() <= 8

    def test_different_asids_do_not_alias(self):
        tlb = Tlb(entries=8, assoc=2)
        tlb.fill(0, 7)
        assert not tlb.lookup(1, 7)

    def test_shared_set_conflicts_across_asids(self):
        # Same VPN from two cores lands in the same set: inter-NPU
        # conflict misses at low associativity (paper section 4.4.2).
        tlb = Tlb(entries=4, assoc=1)
        tlb.fill(0, 8)
        tlb.fill(1, 8)  # same set, evicts core 0's entry
        assert not tlb.lookup(0, 8)
        assert tlb.lookup(1, 8)

    def test_stats(self):
        tlb = Tlb(entries=8, assoc=2)
        tlb.lookup(0, 1)
        tlb.fill(0, 1)
        tlb.lookup(0, 1)
        assert tlb.stats.lookups == 2
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1
        assert tlb.stats.hit_rate == 0.5

    def test_flush(self):
        tlb = Tlb(entries=8, assoc=2)
        tlb.fill(0, 1)
        tlb.flush()
        assert tlb.occupancy() == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Tlb(entries=10, assoc=4)


class TestPhysicalLayout:
    def test_slices_disjoint_and_cover(self):
        data0 = LAYOUT.data_region(0)
        data1 = LAYOUT.data_region(1)
        pt0 = LAYOUT.pt_region(0)
        assert data0[0] + LAYOUT.slice_bytes == data1[0]
        assert pt0[0] >= data0[0] + data0[1]

    def test_pt_region_within_slice(self):
        base, size = LAYOUT.pt_region(1)
        assert base + size <= 2 * LAYOUT.slice_bytes

    def test_rejects_bad_core(self):
        with pytest.raises(ValueError):
            LAYOUT.data_region(2)


class TestPageTable:
    def _table(self, page=4096, levels=4):
        return PageTable(0, page, levels, LAYOUT)

    def test_translation_stable(self):
        table = self._table()
        assert table.translate(42) == table.translate(42)

    def test_distinct_vpns_distinct_frames(self):
        table = self._table()
        frames = {table.translate(vpn) for vpn in range(1000)}
        assert len(frames) == 1000

    def test_paddr_preserves_offset(self):
        table = self._table()
        paddr = table.paddr(42 * 4096 + 123)
        assert paddr % 4096 == 123

    def test_frames_inside_core_data_region(self):
        table = self._table()
        base, size = LAYOUT.data_region(0)
        for vpn in range(100):
            addr = table.translate(vpn) * 4096
            assert base <= addr < base + size

    def test_walk_addresses_count_matches_levels(self):
        assert len(self._table(levels=4).walk_addresses(7)) == 4
        assert len(self._table(page=65536, levels=3).walk_addresses(7)) == 3

    def test_walk_addresses_in_pt_region(self):
        table = self._table()
        base, size = LAYOUT.pt_region(0)
        for addr in table.walk_addresses(12345):
            assert base <= addr < base + size

    def test_upper_levels_shared_by_neighbours(self):
        # Adjacent pages share all non-leaf entries (radix locality).
        table = self._table()
        a = table.walk_addresses(1000)
        b = table.walk_addresses(1001)
        assert a[:-1] == b[:-1]
        assert a[-1] != b[-1]

    def test_mapped_pages_counter(self):
        table = self._table()
        table.translate(1)
        table.translate(2)
        table.translate(1)
        assert table.mapped_pages == 2


class TestPageWalkCache:
    def test_hit_after_fill(self):
        pwc = PageWalkCache(4)
        assert not pwc.lookup(0, 100)
        pwc.fill(0, 100)
        assert pwc.lookup(0, 100)

    def test_zero_entries_never_hits(self):
        pwc = PageWalkCache(0)
        pwc.fill(0, 100)
        assert not pwc.lookup(0, 100)

    def test_lru_eviction(self):
        pwc = PageWalkCache(2)
        pwc.fill(0, 1)
        pwc.fill(0, 2)
        pwc.lookup(0, 1)
        pwc.fill(0, 3)  # evicts (0,2)
        assert pwc.lookup(0, 1)
        assert not pwc.lookup(0, 2)


def _fixed_pool(engine, capacity, cores=(0, 1), level_ticks=10, **kwargs):
    tables = {core: PageTable(core, 4096, 4, LAYOUT) for core in cores}
    return WalkerPool(
        engine,
        capacity,
        tables,
        dram=None,
        fixed_level_ticks={core: level_ticks for core in cores},
        pwc_entries={core: 0 for core in cores},
        **kwargs,
    )


class TestWalkerPool:
    def test_walk_completes_after_level_latency(self):
        engine = Engine()
        pool = _fixed_pool(engine, capacity=1)
        done = []
        pool.walk(0, 5, lambda: done.append(engine.now))
        engine.run()
        assert done == [40]  # 4 levels x 10 ticks

    def test_capacity_serializes_walks(self):
        engine = Engine()
        pool = _fixed_pool(engine, capacity=1)
        done = []
        pool.walk(0, 1, lambda: done.append(engine.now))
        pool.walk(0, 2, lambda: done.append(engine.now))
        engine.run()
        assert done == [40, 80]

    def test_parallel_walkers(self):
        engine = Engine()
        pool = _fixed_pool(engine, capacity=2)
        done = []
        pool.walk(0, 1, lambda: done.append(engine.now))
        pool.walk(0, 2, lambda: done.append(engine.now))
        engine.run()
        assert done == [40, 40]

    def test_static_partition_blocks_overuse(self):
        engine = Engine()
        pool = _fixed_pool(
            engine, capacity=2,
            max_per_core={0: 1, 1: 1},
            reserved_per_core={0: 1, 1: 1},
        )
        done = []
        pool.walk(0, 1, lambda: done.append(("a", engine.now)))
        pool.walk(0, 2, lambda: done.append(("b", engine.now)))
        engine.run()
        # Core 0 only owns one walker: serialized despite pool of 2.
        assert done == [("a", 40), ("b", 80)]

    def test_skip_ahead_prevents_cross_core_blocking(self):
        engine = Engine()
        pool = _fixed_pool(
            engine, capacity=2,
            max_per_core={0: 1, 1: 1},
            reserved_per_core={0: 1, 1: 1},
        )
        done = []
        pool.walk(0, 1, lambda: done.append(("c0", engine.now)))
        pool.walk(0, 2, lambda: done.append(("c0b", engine.now)))
        pool.walk(1, 3, lambda: done.append(("c1", engine.now)))
        engine.run()
        # Core 1's walk must not wait behind core 0's queued second walk.
        assert ("c1", 40) in done

    def test_reservations_hold_walkers_back(self):
        engine = Engine()
        pool = _fixed_pool(
            engine, capacity=2,
            max_per_core={0: 2, 1: 2},
            reserved_per_core={0: 0, 1: 1},
        )
        done = []
        # Core 0 may take at most one walker: the other is reserved for 1.
        pool.walk(0, 1, lambda: done.append(engine.now))
        pool.walk(0, 2, lambda: done.append(engine.now))
        engine.run()
        assert done == [40, 80]

    def test_stats_capture_queueing(self):
        engine = Engine()
        pool = _fixed_pool(engine, capacity=1)
        pool.walk(0, 1, lambda: None)
        pool.walk(0, 2, lambda: None)
        engine.run()
        stats = pool.stats[0]
        assert stats.walks == 2
        assert stats.avg_walk_ticks() == 40
        assert stats.avg_queue_ticks() == 20  # 0 and 40

    def test_reservations_cannot_exceed_capacity(self):
        engine = Engine()
        with pytest.raises(ValueError):
            _fixed_pool(
                engine, capacity=2,
                reserved_per_core={0: 2, 1: 2},
            )


class TestMmuFrontEnd:
    def _mmu(self, engine, *, shared_tlb=False, translation=True, entries=16):
        cfg = NpuMemConfig(
            tlb_entries=entries, tlb_assoc=min(4, entries), num_ptw=2,
            translation_enabled=translation,
        )
        cores = (0, 1)
        tables = {core: PageTable(core, 4096, 4, LAYOUT) for core in cores}
        pool = WalkerPool(
            engine, 4, tables, dram=None,
            fixed_level_ticks={core: 10 for core in cores},
            pwc_entries={core: 0 for core in cores},
        )
        return Mmu({core: cfg for core in cores}, tables, pool, shared_tlb=shared_tlb)

    def test_disabled_translation_is_synchronous_identity_layout(self):
        engine = Engine()
        mmu = self._mmu(engine, translation=False)
        paddr = mmu.translate(0, 4096 + 5, lambda p: None)
        assert paddr is not None
        assert paddr % 4096 == 5

    def test_miss_then_hit(self):
        engine = Engine()
        mmu = self._mmu(engine)
        results = []
        assert mmu.translate(0, 8192, results.append) is None
        engine.run()
        assert len(results) == 1
        # Second access to the same page hits synchronously.
        assert mmu.translate(0, 8192 + 64, lambda p: None) is not None
        assert mmu.stats[0].hits == 1

    def test_coalescing_same_page(self):
        engine = Engine()
        mmu = self._mmu(engine)
        results = []
        for offset in (0, 64, 128):
            assert mmu.translate(0, 4096 * 3 + offset, results.append) is None
        assert mmu.stats[0].walks_started == 1
        assert mmu.stats[0].coalesced == 2
        engine.run()
        assert len(results) == 3
        # Offsets preserved through the coalesced completion.
        assert sorted(p % 4096 for p in results) == [0, 64, 128]

    def test_shared_tlb_serves_both_cores(self):
        engine = Engine()
        mmu = self._mmu(engine, shared_tlb=True)
        assert mmu.tlb_for(0) is mmu.tlb_for(1)

    def test_private_tlbs_are_distinct(self):
        engine = Engine()
        mmu = self._mmu(engine, shared_tlb=False)
        assert mmu.tlb_for(0) is not mmu.tlb_for(1)

    def test_miss_rate(self):
        engine = Engine()
        mmu = self._mmu(engine)
        mmu.translate(0, 0, lambda p: None)
        engine.run()
        mmu.translate(0, 64, lambda p: None)
        assert mmu.stats[0].miss_rate == 0.5

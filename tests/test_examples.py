"""Smoke tests: the shipped examples must run end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, argv: list[str], capsys):
    old_argv = sys.argv
    sys.argv = [script] + argv
    try:
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", ["ncf"], capsys)
        assert "execution cycles" in out
        assert "PE utilization" in out
        assert "page-table walks" in out

    def test_quickstart_other_workload(self, capsys):
        out = _run("quickstart.py", ["res"], capsys)
        assert "workload: res" in out

    def test_custom_accelerator(self, capsys):
        out = _run("custom_accelerator.py", [], capsys)
        assert "monolithic 64x64" in out
        assert "dual 45x45" in out
        assert "latency isolation" in out

    @pytest.mark.slow
    def test_page_size_tuning(self, capsys):
        out = _run("page_size_tuning.py", ["ncf"], capsys)
        assert "speedup over the baseline" in out
        assert "64KB" in out

"""Tests for the misc-config walker bounds and round-robin arbitration."""

from repro.core.engine import Engine
from repro.mmu.pagetable import PageTable, PhysicalLayout
from repro.mmu.ptw import WalkerPool

LAYOUT = PhysicalLayout(capacity_bytes=1 << 30, num_cores=4)


def _pool(engine, capacity, cores, level_ticks=10, **kwargs):
    tables = {core: PageTable(core, 4096, 4, LAYOUT) for core in cores}
    return WalkerPool(
        engine, capacity, tables, dram=None,
        fixed_level_ticks={core: level_ticks for core in cores},
        pwc_entries={core: 0 for core in cores},
        **kwargs,
    )


class TestUpperBound:
    def test_cap_limits_concurrency(self):
        # Capacity 4, but core 0 capped at 2 (misc ptw_upper_bound).
        engine = Engine()
        pool = _pool(
            engine, 4, (0, 1),
            max_per_core={0: 2, 1: 4}, reserved_per_core={0: 0, 1: 0},
        )
        done = []
        for vpn in range(4):
            pool.walk(0, vpn, lambda: done.append(engine.now))
        engine.run()
        # Two batches of two: 40 then 80, never four at once.
        assert done == [40, 40, 80, 80]

    def test_uncapped_uses_whole_pool(self):
        engine = Engine()
        pool = _pool(engine, 4, (0, 1))
        done = []
        for vpn in range(4):
            pool.walk(0, vpn, lambda: done.append(engine.now))
        engine.run()
        assert done == [40, 40, 40, 40]


class TestRoundRobin:
    def test_contended_grants_alternate_between_cores(self):
        engine = Engine()
        pool = _pool(engine, 1, (0, 1))
        order = []
        # Enqueue interleaved backlogs for both cores at t=0.
        for vpn in range(3):
            pool.walk(0, vpn, lambda v=vpn: order.append(("c0", v)))
            pool.walk(1, vpn, lambda v=vpn: order.append(("c1", v)))
        engine.run()
        cores = [core for core, _ in order]
        # Strict alternation with a single walker and equal backlogs.
        assert cores == ["c0", "c1", "c0", "c1", "c0", "c1"]

    def test_heavy_core_cannot_starve_light_core(self):
        engine = Engine()
        pool = _pool(engine, 2, (0, 1))
        light_done = []
        for vpn in range(20):
            pool.walk(0, vpn, lambda: None)
        pool.walk(1, 0, lambda: light_done.append(engine.now))
        engine.run()
        # The light core's single walk is granted within the first rounds,
        # not after the heavy core's 20-walk backlog.
        assert light_done[0] <= 80

    def test_fcfs_within_core(self):
        engine = Engine()
        pool = _pool(engine, 1, (0,))
        order = []
        for vpn in (5, 6, 7):
            pool.walk(0, vpn, lambda v=vpn: order.append(v))
        engine.run()
        assert order == [5, 6, 7]


class TestQueueAccounting:
    def test_queued_counts_all_cores(self):
        engine = Engine()
        pool = _pool(engine, 1, (0, 1))
        pool.walk(0, 1, lambda: None)
        pool.walk(0, 2, lambda: None)
        pool.walk(1, 3, lambda: None)
        assert pool.queued == 2  # one granted, two waiting
        engine.run()
        assert pool.queued == 0


class TestDwsBounds:
    def test_equal_homes_reserve_half(self):
        from repro.mmu.ptw import dws_bounds
        max_per_core, reserved = dws_bounds({0: 4, 1: 4})
        assert reserved == {0: 2, 1: 2}
        # Each core may steal the co-runner's 2 unreserved walkers.
        assert max_per_core == {0: 6, 1: 6}

    def test_reserve_at_least_one(self):
        from repro.mmu.ptw import dws_bounds
        _, reserved = dws_bounds({0: 1, 1: 1}, reserve_fraction=0.1)
        assert reserved == {0: 1, 1: 1}

    def test_full_reserve_degenerates_to_static(self):
        from repro.mmu.ptw import dws_bounds
        max_per_core, reserved = dws_bounds({0: 3, 1: 5}, reserve_fraction=1.0)
        assert max_per_core == {0: 3, 1: 5}
        assert reserved == {0: 3, 1: 5}

    def test_bounds_feed_the_pool(self):
        from repro.mmu.ptw import dws_bounds
        engine = Engine()
        max_per_core, reserved = dws_bounds({0: 2, 1: 2})
        pool = _pool(
            engine, 4, (0, 1),
            max_per_core=max_per_core, reserved_per_core=reserved,
        )
        done = []
        # Core 0 may hold at most 3 walkers (2 home + 1 stolen).
        for vpn in range(4):
            pool.walk(0, vpn, lambda: done.append(engine.now))
        engine.run()
        assert done == [40, 40, 40, 80]

    def test_reclaim_is_always_possible(self):
        from repro.mmu.ptw import dws_bounds
        engine = Engine()
        max_per_core, reserved = dws_bounds({0: 2, 1: 2})
        pool = _pool(
            engine, 4, (0, 1),
            max_per_core=max_per_core, reserved_per_core=reserved,
        )
        order = []
        # Core 0 floods; core 1 arrives later and must get its reserved
        # walker on the first recycle, not after core 0's backlog.
        for vpn in range(8):
            pool.walk(0, vpn, lambda: None)
        pool.walk(1, 0, lambda: order.append(engine.now))
        engine.run()
        assert order[0] <= 80

    def test_validation(self):
        from repro.mmu.ptw import dws_bounds
        import pytest
        with pytest.raises(ValueError):
            dws_bounds({})
        with pytest.raises(ValueError):
            dws_bounds({0: 2}, reserve_fraction=1.5)
        with pytest.raises(ValueError):
            dws_bounds({0: 0})

"""CLI robustness: quarantine maintenance, graceful signals, the daemon.

Signal-delivery tests run the CLI as a real subprocess — the handler
installation, the KeyboardInterrupt unwind and the exit code are all
process-level behaviour that in-process ``main([...])`` calls cannot
prove.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def _cli_subprocess(args, cwd):
    return subprocess.Popen(
        [
            sys.executable,
            "-c",
            "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
            *args,
        ],
        cwd=cwd,
        env={**os.environ, "PYTHONPATH": SRC_DIR},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


# --------------------------------------------------------------------- #
# Quarantine maintenance (mnpusim cache)
# --------------------------------------------------------------------- #


class TestQuarantineMaintenance:
    def _seed_stores(self, tmp_path):
        quarantine = tmp_path / "quarantine"
        quarantine.mkdir(parents=True)
        (quarantine / "deadbeef.json").write_text("{torn")
        (tmp_path / ("a" * 24 + ".json")).write_text("{}")
        traces = tmp_path / "traces"
        (traces / "quarantine").mkdir(parents=True)
        (traces / "quarantine" / "os-feed.json").write_text("{also torn")

    def test_stats_reports_quarantine_count_and_bytes(self, tmp_path, capsys):
        self._seed_stores(tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        results_line = next(line for line in out.splitlines() if "results" in line)
        assert "1 quarantined" in results_line
        assert "(5 B)" in results_line  # quarantined bytes are visible

    def test_clear_quarantine_prunes_only_quarantined_shards(
        self, tmp_path, capsys
    ):
        self._seed_stores(tmp_path)
        code = main(
            ["cache", "clear", "--quarantine", "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cleared 1 quarantined results shard(s)" in out
        assert "cleared 1 quarantined traces shard(s)" in out
        # Healthy shards survive; the quarantine dirs are now empty.
        assert (tmp_path / ("a" * 24 + ".json")).exists()
        assert not list((tmp_path / "quarantine").iterdir())

        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 quarantined" in out

    def test_plain_clear_still_clears_live_shards(self, tmp_path, capsys):
        self._seed_stores(tmp_path)
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert not (tmp_path / ("a" * 24 + ".json")).exists()

    def test_clear_quarantine_on_missing_dir(self, tmp_path, capsys):
        assert main(
            ["cache", "clear", "--quarantine", "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "cleared 0 quarantined results shard(s)" in out


# --------------------------------------------------------------------- #
# Graceful SIGTERM/SIGINT during a sweep
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_sweep_interrupted_by_signal_exits_130(tmp_path, signum):
    cache = tmp_path / "cache"
    process = _cli_subprocess(
        ["sweep", "fig4", "--mixes", "4", "--cache-dir", str(cache)],
        cwd=tmp_path,
    )
    try:
        # Wait for the first *completion* line ("[1/N] ..."): the sweep
        # is mid-execute, with plenty of specs still cold, when the
        # signal lands — the path where partial results must survive.
        while True:
            line = process.stderr.readline()
            assert line, "sweep ended before any spec settled"
            if line.startswith("[1/"):
                break
        process.send_signal(signum)
        stdout, stderr = process.communicate(timeout=120)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 130, stderr
    assert "interrupted:" in stderr
    assert "settled" in stderr
    # The journal recorded the interruption for post-mortem/resume audit.
    events = [
        json.loads(record)["event"]
        for record in (cache / "journal.jsonl").read_text().splitlines()
        if record.strip()
    ]
    assert "interrupt" in events


def test_sweep_completes_normally_without_signal(tmp_path, capsys):
    # The signal plumbing must not change the healthy exit path.
    code = main(
        [
            "sweep",
            "fig15",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--quiet",
        ]
    )
    assert code == 0
    assert "fig15" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# The serve daemon as a process: boot, probe, SIGTERM, clean exit
# --------------------------------------------------------------------- #


def test_serve_daemon_boots_and_drains_on_sigterm(tmp_path):
    from repro.serve.client import ServeClient

    process = _cli_subprocess(
        ["serve", "--port", "0", "--cache-dir", str(tmp_path / "cache"),
         "--jobs", "1"],
        cwd=tmp_path,
    )
    try:
        banner = process.stdout.readline().strip()
        assert banner.startswith("serving on http://"), banner
        url = banner.split()[-1]
        client = ServeClient(url)
        assert client.wait_ready(20.0)
        assert client.healthy()
        stats = client.stats()
        assert stats["breaker"] == "closed"
        process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 0, stderr
    assert "stopped (clean drain)" in stderr
    # Liveness is really gone, not just unresponsive.
    deadline = time.monotonic() + 5.0
    while client.healthy():
        assert time.monotonic() < deadline
        time.sleep(0.05)

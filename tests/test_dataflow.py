"""Unit tests for the dataflow-engine registry and the stock engines."""

import pytest

from repro.compute.dataflow import (
    DataflowEngine,
    InputStationary,
    OutputStationary,
    WeightStationary,
    _REGISTRY,
    get_engine,
    register,
    registered_dataflows,
)
from repro.compute.systolic import is_pass_cycles, os_pass_cycles, ws_pass_cycles
from repro.compute.tiling import choose_tile_shape
from repro.config.arch import ArchConfig
from repro.models.layers import GemmOp

ARCH = ArchConfig(
    name="t", array_rows=8, array_cols=8, spm_bytes=8192,
    dram_transaction_bytes=64,
)


class TestRegistry:
    def test_stock_engines_registered_in_order(self):
        assert registered_dataflows() == ("os", "ws", "is")

    def test_get_engine_returns_singletons(self):
        assert get_engine("os") is get_engine("os")
        assert isinstance(get_engine("os"), OutputStationary)
        assert isinstance(get_engine("ws"), WeightStationary)
        assert isinstance(get_engine("is"), InputStationary)

    def test_unknown_engine_error_enumerates_registry(self):
        with pytest.raises(ValueError, match="registered engines: os, ws, is"):
            get_engine("rs")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(OutputStationary())

    def test_engines_carry_a_version_tag(self):
        for name in registered_dataflows():
            engine = get_engine(name)
            assert isinstance(engine.version, int)
            assert engine.version >= 1

    def test_custom_engine_registration_end_to_end(self):
        """A third-party engine is usable everywhere a stock one is."""

        class RowStationary(DataflowEngine):
            name = "rs-test"
            version = 1

            def estimate(self, arch, m, k, n):
                return OutputStationary().estimate(arch, m, k, n)

        register(RowStationary())
        try:
            assert "rs-test" in registered_dataflows()
            # ArchConfig validation consults the live registry.
            arch = ArchConfig(
                name="t", array_rows=8, array_cols=8, spm_bytes=8192,
                dram_transaction_bytes=64, dataflow="rs-test",
            )
            est = get_engine(arch.dataflow).estimate(arch, 8, 16, 8)
            assert est.cycles > 0
        finally:
            _REGISTRY.pop("rs-test")
        with pytest.raises(ValueError):
            get_engine("rs-test")


class TestEngineEstimates:
    def test_os_matches_pass_formula(self):
        est = get_engine("os").estimate(ARCH, 16, 10, 16)
        assert est.cycles == 4 * os_pass_cycles(8, 8, 10)
        assert est.macs == 16 * 10 * 16

    def test_ws_matches_fold_formula(self):
        # k=16 -> 2 row folds, m=8 -> 1 col fold.
        est = get_engine("ws").estimate(ARCH, 8, 16, 100)
        assert est.cycles == 2 * ws_pass_cycles(8, 8, 100)

    def test_is_matches_fold_formula(self):
        # k=16 -> 2 row folds, n=8 -> 1 col fold; the output stream is m.
        est = get_engine("is").estimate(ARCH, 100, 16, 8)
        assert est.cycles == 2 * is_pass_cycles(8, 8, 100)
        assert est.macs == 100 * 16 * 8

    def test_is_mirrors_ws_with_m_n_swapped(self):
        ws = get_engine("ws").estimate(ARCH, 24, 40, 200)
        mirrored = get_engine("is").estimate(ARCH, 200, 40, 24)
        assert ws.cycles == mirrored.cycles
        assert ws.macs == mirrored.macs

    def test_is_beats_os_for_tall_outputs(self):
        # Huge m amortizes the input load: IS streams outputs row-long.
        is_est = get_engine("is").estimate(ARCH, 4096, 8, 8)
        os_est = get_engine("os").estimate(ARCH, 4096, 8, 8)
        assert is_est.cycles < os_est.cycles

    def test_os_beats_is_for_deep_reductions(self):
        # Huge k with tiny m: OS accumulates in place, IS refolds inputs.
        is_est = get_engine("is").estimate(ARCH, 4, 4096, 8)
        os_est = get_engine("os").estimate(ARCH, 4, 4096, 8)
        assert os_est.cycles < is_est.cycles

    def test_utilization_bounded_for_all_engines(self):
        for name in registered_dataflows():
            est = get_engine(name).estimate(ARCH, 64, 64, 64)
            assert 0 < est.pe_utilization <= 1.0

    def test_nonpositive_dims_rejected_by_all_engines(self):
        for name in registered_dataflows():
            with pytest.raises(ValueError):
                get_engine(name).estimate(ARCH, 0, 8, 8)

    def test_pass_cycle_formulas(self):
        assert is_pass_cycles(8, 8, 100) == 8 + 100 + 8 + 8 - 2
        assert is_pass_cycles(8, 8, 100) == ws_pass_cycles(8, 8, 100)
        with pytest.raises(ValueError):
            is_pass_cycles(8, 0, 100)


class TestEngineTiling:
    def test_os_tile_shape_is_shared_default_policy(self):
        gemm = GemmOp("g", 500, 500, 500)
        assert get_engine("os").tile_shape(gemm, ARCH) == choose_tile_shape(
            gemm, ARCH
        )

    def test_is_aligns_tk_to_array_rows(self):
        # The default policy picks tk=29 here; IS rounds down to a whole
        # number of row folds so partial reloads never straddle a fold.
        gemm = GemmOp("g", 64, 300, 24)
        os_shape = get_engine("os").tile_shape(gemm, ARCH)
        is_shape = get_engine("is").tile_shape(gemm, ARCH)
        assert os_shape.tk % ARCH.array_rows != 0
        assert is_shape.tk % ARCH.array_rows == 0
        assert is_shape != os_shape

    def test_k_align_never_rounds_below_the_alignment(self):
        # A tiny tk (< k_align) is kept rather than rounded to zero.
        gemm = GemmOp("g", 1000, 1000, 40)
        shape = get_engine("is").tile_shape(gemm, ARCH)
        assert shape.tk >= 1

    def test_ws_m_step_follows_array_cols(self):
        # m maps to array columns under WS; on square arrays the policy
        # coincides with OS (same step), which the goldens rely on.
        gemm = GemmOp("g", 500, 500, 500)
        assert get_engine("ws").tile_shape(gemm, ARCH) == choose_tile_shape(
            gemm, ARCH, m_step=ARCH.array_cols
        )

    def test_tile_budget_respected_by_every_engine(self):
        budget = ARCH.half_spm_bytes // ARCH.element_bytes
        gemm = GemmOp("g", 500, 700, 300)
        for name in registered_dataflows():
            shape = get_engine(name).tile_shape(gemm, ARCH)
            assert shape.footprint_elems() <= budget

"""Unit tests for the event kernel and clock-domain translation."""

import pytest

from repro.core.clock import ClockDomain
from repro.core.engine import Engine


class TestEngine:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        order = []
        engine.at(5, lambda: order.append("b"))
        engine.at(3, lambda: order.append("a"))
        engine.at(9, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        engine = Engine()
        order = []
        for tag in "abc":
            engine.at(4, lambda t=tag: order.append(t))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_cannot_schedule_in_past(self):
        engine = Engine()
        engine.at(10, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.at(5, lambda: None)

    def test_after_is_relative(self):
        engine = Engine()
        seen = []
        engine.at(7, lambda: engine.after(3, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [10]

    def test_after_rejects_negative(self):
        engine = Engine()
        with pytest.raises(ValueError):
            engine.after(-1, lambda: None)

    def test_run_until_stops_before_later_events(self):
        engine = Engine()
        seen = []
        engine.at(5, lambda: seen.append(5))
        engine.at(50, lambda: seen.append(50))
        engine.run(until=10)
        assert seen == [5]
        assert engine.pending == 1
        engine.run()
        assert seen == [5, 50]

    def test_cascading_events(self):
        engine = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100:
                engine.after(1, tick)

        engine.at(0, tick)
        engine.run()
        assert count[0] == 100
        assert engine.now == 99

    def test_now_tracks_last_event(self):
        engine = Engine()
        engine.at(42, lambda: None)
        assert engine.run() == 42


class TestClockDomain:
    def test_synchronous_identity(self):
        clock = ClockDomain(1000, 1000)
        assert clock.is_synchronous
        assert clock.to_global(123) == 123
        assert clock.to_local(123) == 123

    def test_slow_core_to_fast_global(self):
        # 500 MHz core, 1 GHz global: one core cycle = 2 ticks.
        clock = ClockDomain(500, 1000)
        assert clock.to_global(10) == 20
        assert clock.to_local(20) == 10

    def test_fast_core_rounds_up(self):
        # 1.5 GHz core, 1 GHz global: 1 core cycle = ceil(2/3 tick) = 1.
        clock = ClockDomain(1500, 1000)
        assert clock.to_global(1) == 1
        assert clock.to_global(3) == 2

    def test_roundtrip_never_shrinks(self):
        for local_mhz in (300, 700, 1000, 1600):
            clock = ClockDomain(local_mhz, 1000)
            for cycles in (1, 7, 100, 999):
                assert clock.to_local(clock.to_global(cycles)) >= cycles

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ClockDomain(0, 1000)
        with pytest.raises(ValueError):
            ClockDomain(1000, 1000).to_global(-1)

"""LLM-serving frontend: routing invariants, determinism, name resolution.

The serving module's contract is that every stochastic choice (request
arrival, decode budgets, token-to-expert routing) is a pure function of
:class:`ServingParams` — same params, same network, in any process.
The hypothesis suites pin the MoE conservation law (capacity overflow
reassigns tokens, never drops them) and the cross-process tests pin the
trace fingerprints and cache keys CI's serving lane depends on.
"""

from __future__ import annotations

import math
import random
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compute.tracecache import frontend_fingerprint
from repro.config import presets
from repro.core.sharing import SharingLevel
from repro.experiments.spec import RunSpec
from repro.models import serving, zoo
from repro.models.serving import ServingParams, route_tokens


# --------------------------------------------------------------------- #
# MoE routing: conservation, capacity, determinism
# --------------------------------------------------------------------- #

routing_cases = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**32 - 1),
        "tokens": st.integers(min_value=0, max_value=400),
        "experts": st.integers(min_value=1, max_value=16),
        "capacity_factor": st.floats(
            min_value=1.0, max_value=4.0, allow_nan=False
        ),
        "skew": st.sampled_from(serving.SKEWS),
        "zipf_alpha": st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
    }
)


def _route(case):
    return route_tokens(
        random.Random(case["seed"]),
        case["tokens"],
        case["experts"],
        capacity_factor=case["capacity_factor"],
        skew=case["skew"],
        zipf_alpha=case["zipf_alpha"],
    )


class TestRouting:
    @given(routing_cases)
    @settings(max_examples=120, deadline=None)
    def test_no_token_is_ever_dropped(self, case):
        """Conservation: overflow reassigns to the least-loaded expert,
        so the counts always sum to the token count — silently dropping
        tokens would shrink the expert GEMMs and skew every figure."""
        counts = _route(case)
        assert len(counts) == case["experts"]
        assert sum(counts) == max(case["tokens"], 0)
        assert all(count >= 0 for count in counts)

    @given(routing_cases)
    @settings(max_examples=120, deadline=None)
    def test_capacity_is_respected(self, case):
        counts = _route(case)
        if case["tokens"] <= 0:
            return
        capacity = math.ceil(
            case["capacity_factor"] * case["tokens"] / case["experts"]
        )
        assert max(counts) <= capacity

    @given(routing_cases)
    @settings(max_examples=60, deadline=None)
    def test_same_seed_same_routing(self, case):
        assert _route(case) == _route(case)

    def test_zipf_skews_toward_low_ranks(self):
        """With generous capacity, rank 0 gets the lion's share."""
        counts = route_tokens(
            random.Random(7), 1000, 4, capacity_factor=4.0, skew="zipf"
        )
        assert counts[0] == max(counts)
        assert counts[0] > counts[-1]

    def test_uniform_is_roughly_balanced(self):
        counts = route_tokens(random.Random(7), 1000, 4, capacity_factor=4.0)
        assert min(counts) > 150  # no expert starves under uniform routing


# --------------------------------------------------------------------- #
# Arrival model and decode schedule
# --------------------------------------------------------------------- #


class TestArrivalModel:
    def test_closed_loop_is_one_burst(self):
        params = ServingParams(arrival="closed", batch=6)
        assert serving.prefill_waves(params) == ((0, 6),)

    def test_poisson_waves_admit_every_request(self):
        params = ServingParams(batch=8, arrival_rate=0.3, seed=11)
        waves = serving.prefill_waves(params)
        assert sum(count for _, count in waves) == 8
        steps = [step for step, _ in waves]
        assert steps == sorted(set(steps))  # strictly increasing

    def test_decode_schedule_shape(self):
        params = ServingParams()
        schedule = serving.decode_schedule(params)
        assert schedule, "step 0 always runs the full batch"
        assert schedule[0].step == 0
        assert schedule[0].active == params.batch
        for load in schedule:
            assert 0 < load.active <= params.batch
            # every active slot holds at least its prompt in KV context
            assert load.ctx_total >= load.active * params.prompt
            assert load.step < params.decode_steps

    @pytest.mark.parametrize("stream", ["prefill_waves", "decode_schedule"])
    def test_schedules_are_deterministic(self, stream):
        params = ServingParams(batch=5, decode_steps=6, seed=99)
        build = getattr(serving, stream)
        assert build(params) == build(params)

    def test_arrival_and_routing_streams_are_independent(self):
        """Changing MoE knobs must not perturb the arrival trace (and
        vice versa) — the streams are seeded separately by name."""
        base = ServingParams()
        moe_changed = ServingParams(experts=8, moe_skew="zipf")
        assert serving.prefill_waves(base) == serving.prefill_waves(moe_changed)
        assert serving.decode_schedule(base) == serving.decode_schedule(
            moe_changed
        )


# --------------------------------------------------------------------- #
# Network builders and name resolution
# --------------------------------------------------------------------- #


class TestNetworks:
    def test_networks_are_reproducible(self):
        params = ServingParams(moe_skew="zipf", seed=5)
        assert serving.prefill_network(params) == serving.prefill_network(params)
        assert serving.decode_network(params) == serving.decode_network(params)

    def test_phases_differ(self):
        params = ServingParams()
        prefill = serving.prefill_network(params)
        decode = serving.decode_network(params)
        assert prefill.name == "srv-gpt2-prefill"
        assert decode.name == "srv-gpt2-decode"
        assert prefill.layers != decode.layers

    def test_seed_changes_the_trace(self):
        assert serving.decode_network(ServingParams(seed=1)) != (
            serving.decode_network(ServingParams(seed=2))
        )

    def test_decode_streams_the_kv_cache(self):
        """Decode score layers are (ctx, width, 1): the A operand is the
        whole cached context, the GEMV-like signature of decode."""
        params = ServingParams()
        network = serving.decode_network(params)
        scores = [layer for layer in network.layers if "score" in layer.name]
        assert scores
        assert all(layer.n == 1 for layer in scores)
        # each step scans at least one request's prompt-sized context
        assert all(layer.m >= params.prompt for layer in scores)

    def test_resolve_qualified_names(self):
        assert serving.resolve("gpt2:prefill").name == "srv-gpt2-prefill"
        assert serving.resolve("gpt2:decode").name == "srv-gpt2-decode"
        assert serving.resolve("ncf") is None
        assert serving.resolve("gpt2") is None  # bare name, no default phase
        assert serving.resolve("gpt2", default_phase="decode").name == (
            "srv-gpt2-decode"
        )

    @pytest.mark.parametrize("name", ["ncf:prefill", "gpt2:flarp", "gpt2:"])
    def test_resolve_rejects_bad_qualified_names(self, name):
        with pytest.raises(ValueError):
            serving.resolve(name)

    def test_networks_for_mixes_serving_and_zoo(self):
        networks = serving.networks_for(["gpt2:prefill", "ncf"])
        assert networks[0].name == "srv-gpt2-prefill"
        assert networks[1].name == zoo.get("ncf", "mini").name

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch": 0},
            {"prompt": 0},
            {"capacity_factor": 0.5},
            {"moe_skew": "bimodal"},
            {"arrival": "open"},
            {"arrival_rate": 0.0},
            {"zipf_alpha": -1.0},
        ],
    )
    def test_params_validate(self, kwargs):
        with pytest.raises(ValueError):
            ServingParams(**kwargs)


# --------------------------------------------------------------------- #
# Trace-cache tagging and cross-process determinism
# --------------------------------------------------------------------- #


def _fingerprint_in_worker(phase: str) -> str:
    """Module-level so ProcessPoolExecutor can pickle it by reference."""
    network = serving.resolve(f"gpt2:{phase}")
    return frontend_fingerprint(network, presets.cloud_arch("mini"))


def _serving_spec() -> RunSpec:
    return RunSpec.mix(
        ("gpt2:prefill", "gpt2:decode"),
        SharingLevel.DWT,
        serving=ServingParams(moe_skew="zipf"),
    )


def _cache_key_in_worker() -> str:
    return _serving_spec().cache_key()


class TestDeterminism:
    def test_fingerprint_carries_the_srv_tag(self):
        arch = presets.cloud_arch("mini")
        fingerprint = frontend_fingerprint(
            serving.resolve("gpt2:prefill"), arch
        )
        engine, tag, digest = fingerprint.split("-", 2)
        assert engine == arch.dataflow
        assert tag == "srv"
        assert len(digest) == 32
        plain = frontend_fingerprint(zoo.get("gpt2", "mini"), arch)
        assert "-srv-" not in plain

    def test_fingerprints_match_across_processes(self):
        """Arrival/routing traces must not depend on process state: a
        sweep worker compiling a serving trace has to land on the very
        shard the parent planned for."""
        with ProcessPoolExecutor(max_workers=1) as pool:
            for phase in serving.PHASES:
                theirs = pool.submit(_fingerprint_in_worker, phase).result()
                assert theirs == _fingerprint_in_worker(phase)

    def test_cache_key_matches_across_processes(self):
        with ProcessPoolExecutor(max_workers=1) as pool:
            theirs = pool.submit(_cache_key_in_worker).result()
        assert theirs == _serving_spec().cache_key()

    def test_phase_fingerprints_are_distinct(self):
        arch = presets.cloud_arch("mini")
        fingerprints = {
            frontend_fingerprint(serving.resolve(name), arch)
            for name in serving.SERVING_NAMES
        }
        assert len(fingerprints) == len(serving.SERVING_NAMES)

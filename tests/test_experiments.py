"""Unit tests for mix enumeration, the cached runner, and reporting."""

import json

import pytest

from repro.core.sharing import SharingLevel
from repro.experiments.mixes import all_mixes, mix_label, subset_mixes
from repro.experiments.report import cdf_summary, format_mapping, format_table
from repro.experiments.runner import ExperimentRunner
from repro.models import zoo
from repro.models.layers import DenseLayer, Network


class TestMixes:
    def test_paper_counts(self):
        # M(8,2) = 36, M(8,4) = 330, M(8,8) = 6435 (section 4.1.1, 4.6.2).
        assert len(all_mixes(2)) == 36
        assert len(all_mixes(4)) == 330
        assert len(all_mixes(8)) == 6435

    def test_mixes_are_multisets(self):
        mixes = all_mixes(2)
        assert ("res", "res") in mixes
        # Multisets follow the zoo's Table 1 ordering (non-decreasing index).
        order = {name: index for index, name in enumerate(zoo.NAMES)}
        for mix in mixes:
            indices = [order[name] for name in mix]
            assert indices == sorted(indices)

    def test_no_duplicates(self):
        mixes = all_mixes(4)
        assert len(set(mixes)) == len(mixes)

    def test_label(self):
        assert mix_label(("ncf", "gpt2")) == "ncf+gpt2"

    def test_subset_is_deterministic_and_spread(self):
        a = subset_mixes(4, 60)
        b = subset_mixes(4, 60)
        assert a == b
        assert len(a) == 60
        assert len(set(a)) == 60
        # Spread: both early and late regions of the full list sampled.
        full = all_mixes(4)
        assert a[0] == full[0]
        assert full.index(a[-1]) > 250

    def test_subset_larger_than_population(self):
        assert subset_mixes(2, 1000) == all_mixes(2)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            all_mixes(0)
        with pytest.raises(ValueError):
            subset_mixes(2, 0)


@pytest.fixture()
def runner(tmp_path):
    return ExperimentRunner(cache_dir=tmp_path / "cache")


def _tiny(name="tiny"):
    return Network(name, (DenseLayer("l0", 16, 32, 16),))


class TestRunnerCaching:
    def test_solo_cached_on_second_call(self, runner):
        runner.register_network(_tiny())
        first = runner.solo("tiny")
        executed = runner.runs_executed
        second = runner.solo("tiny")
        assert second == first
        assert runner.runs_executed == executed
        assert runner.cache_hits >= 1

    def test_cache_persists_across_runner_instances(self, tmp_path):
        a = ExperimentRunner(cache_dir=tmp_path / "c")
        a.register_network(_tiny())
        result = a.solo("tiny")
        b = ExperimentRunner(cache_dir=tmp_path / "c")
        b.register_network(_tiny())
        assert b.solo("tiny") == result
        assert b.runs_executed == 0

    def test_distinct_params_distinct_cache_entries(self, runner):
        runner.register_network(_tiny())
        a = runner.solo("tiny", channels=1)
        b = runner.solo("tiny", channels=8)
        assert a["cycles"] >= b["cycles"]
        assert runner.runs_executed == 2

    def test_mix_requires_contended_level(self, runner):
        with pytest.raises(ValueError, match="no dynamic contention"):
            runner.mix(("tiny", "tiny"), SharingLevel.STATIC)

    def test_mix_returns_per_core_results(self, runner):
        runner.register_network(_tiny("a"))
        runner.register_network(_tiny("b"))
        results = runner.mix(("a", "b"), SharingLevel.DWT)
        assert len(results) == 2
        assert results[0]["workload"] == "a"
        assert results[1]["workload"] == "b"

    def test_ptw_split_validated(self, runner):
        runner.register_network(_tiny("a"))
        runner.register_network(_tiny("b"))
        with pytest.raises(ValueError, match="per core"):
            runner.mix(("a", "b"), SharingLevel.D, ptw_split=(1,))

    def test_ideal_and_static_are_distinct_runs(self, runner):
        runner.register_network(_tiny())
        ideal = runner.ideal("tiny", 2)
        static = runner.static_equal("tiny")
        # Ideal owns twice the resources, so it is a different simulation
        # (tiny latency-bound nets may not *benefit* from extra channels).
        assert runner.runs_executed == 2
        assert ideal["cycles"] > 0 and static["cycles"] > 0

    def test_cache_files_are_json(self, runner):
        runner.register_network(_tiny())
        runner.solo("tiny")
        files = list(runner.cache_dir.glob("*.json"))
        assert files
        payload = json.loads(files[0].read_text())
        assert "descriptor" in payload and "results" in payload


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [(1, 2.0), (333, 4.5)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "333" in lines[3]

    def test_format_table_title(self):
        text = format_table(["x"], [(1,)], title="T")
        assert text.splitlines()[0] == "T"

    def test_format_mapping(self):
        text = format_mapping("cfg", {"k": 1})
        assert "cfg" in text and "k" in text

    def test_cdf_summary(self):
        points = [(float(v), (v + 1) / 10) for v in range(10)]
        summary = cdf_summary(points)
        assert summary["p10"] <= summary["p50"] <= summary["p90"]

    def test_cdf_summary_empty(self):
        assert cdf_summary([]) == {}


class TestFiguresLight:
    """Cheap figure reducers that do not need the big sweeps."""

    def test_table1(self):
        from repro.experiments import figures
        rows = figures.table1_models()
        assert [row["model"] for row in rows] == list(zoo.NAMES)

    def test_table2_full(self):
        from repro.experiments import figures
        config = figures.table2_configuration("full")
        assert config["systolic_array"] == "128x128"
        assert config["bandwidth_per_npu_gbs"] == 128.0

    def test_fig2_shape(self):
        from repro.experiments import figures
        data = figures.fig2_burstiness("ncf")
        assert data["peak_requests_per_window"] > 0
        assert len(data["series"]) > 5
        assert data["burst_ratio"] >= 1.0

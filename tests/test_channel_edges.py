"""Edge-case tests for the DRAM channel model."""

from repro.config.dram import DramConfig
from repro.core.engine import Engine
from repro.dram.channel import Bank, Channel, DramRequest
from repro.dram.stats import DramStats

TXN = 64


def _channel(engine, cfg=None, **cfg_kwargs):
    cfg = cfg or DramConfig(channels=1, channel_bytes_per_cycle=32, **cfg_kwargs)
    return Channel(
        index=0, cfg=cfg, engine=engine,
        burst_ticks=cfg.burst_cycles(TXN),
        stats=DramStats(), transaction_bytes=TXN,
    )


def _request(addr, bank=0, row=0, write=False, done=None, is_walk=False):
    return DramRequest(
        addr=addr, write=write, core=0,
        callback=done or (lambda: None), bank=bank, row=row, is_walk=is_walk,
    )


class TestBank:
    def test_close_blocks_until(self):
        bank = Bank()
        bank.open_row = 5
        bank.close(until=100)
        assert bank.open_row is None
        assert bank.col_ready_at == 100

    def test_close_never_unblocks_earlier(self):
        bank = Bank()
        bank.col_ready_at = 200
        bank.close(until=100)
        assert bank.col_ready_at == 200


class TestChannelScheduling:
    def test_same_bank_different_rows_pay_precharge(self):
        engine = Engine()
        channel = _channel(engine, refresh_enabled=False)
        times = {}
        channel.enqueue(
            _request(0, bank=0, row=0, done=lambda: times.setdefault("a", engine.now))
        )
        channel.enqueue(
            _request(
                TXN, bank=0, row=1, done=lambda: times.setdefault("b", engine.now)
            )
        )
        engine.run()
        timing = channel.cfg.timing
        gap = times["b"] - times["a"]
        # The second request must absorb tRAS/tRP/tRCD, not just a burst.
        assert gap >= timing.tRP + timing.tRCD

    def test_different_banks_overlap_activation(self):
        engine = Engine()
        channel = _channel(engine, refresh_enabled=False)
        times = {}
        channel.enqueue(
            _request(0, bank=0, row=0, done=lambda: times.setdefault("a", engine.now))
        )
        channel.enqueue(
            _request(
                TXN, bank=1, row=0, done=lambda: times.setdefault("b", engine.now)
            )
        )
        engine.run()
        # Bank 1 prepared while bank 0 transferred: only a burst apart.
        assert times["b"] - times["a"] == channel.burst_ticks

    def test_write_recovery_delays_next_column(self):
        engine = Engine()
        channel = _channel(engine, refresh_enabled=False)
        times = {}
        channel.enqueue(
            _request(
                0, bank=0, row=0, write=True,
                done=lambda: times.setdefault("w", engine.now),
            )
        )
        engine.run()
        bank = channel.banks[0]
        # tWR must be reflected in the bank's next column availability.
        assert bank.col_ready_at > times["w"] - channel.burst_ticks

    def test_refresh_offsets_differ_across_channels(self):
        engine = Engine()
        cfg = DramConfig(channels=4, channel_bytes_per_cycle=32)
        channels = [
            Channel(index=i, cfg=cfg, engine=engine, burst_ticks=2,
                    stats=DramStats(), transaction_bytes=TXN)
            for i in range(4)
        ]
        offsets = {c.next_refresh_at for c in channels}
        assert len(offsets) == 4  # staggered, not lockstep

    def test_walk_priority_disabled_keeps_fcfs(self):
        engine = Engine()
        cfg = DramConfig(
            channels=1, channel_bytes_per_cycle=32, prioritize_walks=False,
        )
        channel = _channel(engine, cfg=cfg)
        order = []
        for index in range(4):
            channel.enqueue(
                _request(index * TXN, row=0, done=lambda i=index: order.append(f"d{i}"))
            )
        channel.enqueue(
            _request(
                99 * 4096, bank=1, row=7, is_walk=True,
                done=lambda: order.append("walk"),
            )
        )
        engine.run()
        # Without priority the walk (row miss, arrived last) finishes last.
        assert order[-1] == "walk"

    def test_queue_drains_completely(self):
        engine = Engine()
        channel = _channel(engine)
        count = 500
        done = []
        for index in range(count):
            channel.enqueue(_request(index * TXN, bank=index % 4, row=index % 7,
                                     done=lambda: done.append(None)))
        engine.run()
        assert len(done) == count
        assert channel.occupancy == 0

    def test_stats_attribution(self):
        engine = Engine()
        channel = _channel(engine, refresh_enabled=False)
        channel.enqueue(_request(0, row=0))
        channel.enqueue(_request(TXN, row=0))
        engine.run()
        assert channel.stats.row_misses == 1  # first touch opens the row
        assert channel.stats.row_hits == 1
        assert channel.stats.queueing_ticks_total > 0

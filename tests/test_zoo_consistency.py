"""Deeper consistency checks on the benchmark topologies."""

import dataclasses

import pytest

from repro.compute.dataflow import registered_dataflows
from repro.compute.requestgen import RequestGenerator
from repro.config import presets
from repro.models import zoo
from repro.models.layers import ConvLayer


def _conv_chain_consistent(network):
    """Consecutive conv layers must chain channels (where adjacent)."""
    previous = None
    for layer in network.layers:
        if isinstance(layer, ConvLayer):
            if previous is not None and isinstance(previous, ConvLayer):
                assert layer.in_channels == previous.out_channels, (
                    f"{network.name}: {previous.name} -> {layer.name}"
                )
            previous = layer
        else:
            previous = None


class TestTopologyConsistency:
    @pytest.mark.parametrize("scale", ["full", "mini"])
    def test_yolo_tiny_channel_chain(self, scale):
        _conv_chain_consistent(zoo.get("yt", scale))

    @pytest.mark.parametrize("scale", ["full", "mini"])
    def test_resnet_block_structure(self, scale):
        network = zoo.get("res", scale)
        convs = [l for l in network.layers if isinstance(l, ConvLayer)]
        # stem + 48 block convs: 1x1 / 3x3 / 1x1 repeating.
        kernels = [(c.kernel_h, c.kernel_w) for c in convs[1:]]
        for index in range(0, len(kernels), 3):
            assert kernels[index] == (1, 1)
            assert kernels[index + 1] == (3, 3)
            assert kernels[index + 2] == (1, 1)

    def test_gpt2_full_block_count(self):
        network = zoo.full("gpt2")
        # 12 blocks x 6 GEMMs.
        assert len(network.layers) == 72

    def test_gpt2_attention_dims_follow_sequence(self):
        network = zoo.full("gpt2")
        score = next(l for l in network.layers if l.name == "b0_score")
        assert score.m == score.n == 1024  # seq x seq attention matrix

    def test_alexnet_full_k_dims(self):
        network = zoo.full("alex")
        gemms = network.gemms()
        assert gemms[0].k == 3 * 11 * 11
        assert gemms[5].k == 9216  # fc6's flattened input

    def test_deepspeech_gru_width(self):
        network = zoo.full("ds2")
        gru = next(l for l in network.layers if l.name == "gru1")
        assert gru.m == 3 * 800  # three GRU gates
        assert gru.k == 2 * 800  # hidden + input concatenation

    def test_sfrnn_lstm_gates(self):
        network = zoo.full("sfrnn")
        lstm = next(l for l in network.layers if l.name == "lstm1")
        assert lstm.m == 4 * 1500  # four LSTM gates

    def test_dlrm_embedding_tables_cover_26(self):
        network = zoo.full("dlrm")
        from repro.models.layers import EmbeddingLayer
        groups = [l for l in network.layers if isinstance(l, EmbeddingLayer)]
        assert sum(g.lookups for g in groups) == 24  # 26 tables in 4 groups of 6
        assert len(groups) == 4

    @pytest.mark.parametrize("name", zoo.NAMES)
    def test_mini_keeps_layer_type_mix(self, name):
        full_types = {type(l).__name__ for l in zoo.full(name).layers}
        mini_types = {type(l).__name__ for l in zoo.mini(name).layers}
        assert mini_types == full_types

    @pytest.mark.parametrize("name", zoo.NAMES)
    def test_networks_are_frozen_values(self, name):
        a = zoo.mini(name)
        b = zoo.mini(name)
        assert a == b
        assert hash(a.layers) == hash(b.layers)


class TestZooUnderEveryDataflow:
    """Every zoo network must compile sanely under every registered engine.

    The engines change tiling and timing, never the mathematics: MACs are
    a property of the network, so they must agree across engines, while
    cycles stay positive and utilization bounded.
    """

    @pytest.mark.parametrize("name", zoo.NAMES)
    def test_mini_zoo_compiles_under_all_engines(self, name):
        network = zoo.mini(name)
        base = presets.cloud_arch("mini")
        summaries = {}
        for engine in registered_dataflows():
            arch = dataclasses.replace(base, dataflow=engine)
            summaries[engine] = RequestGenerator(network, arch).summary()
        macs = {summary["macs"] for summary in summaries.values()}
        assert macs == {float(network.total_macs)}
        for engine, summary in summaries.items():
            assert summary["ideal_compute_cycles"] > 0, engine
            assert 0 < summary["pe_utilization"] <= 1, engine

    def test_engines_disagree_on_cycles_somewhere(self):
        # The axis must be real: at least one network must time differently
        # across engines (all-equal would mean the plug-in point is dead).
        base = presets.cloud_arch("mini")
        distinct = set()
        for name in zoo.NAMES:
            network = zoo.mini(name)
            cycles = tuple(
                RequestGenerator(
                    network, dataclasses.replace(base, dataflow=engine)
                ).summary()["ideal_compute_cycles"]
                for engine in registered_dataflows()
            )
            distinct.add(len(set(cycles)) > 1)
        assert True in distinct

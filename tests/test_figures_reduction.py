"""Unit tests of the figure reducers' math, using a stubbed runner.

These verify the reductions (normalization, geomeans, fairness, CDFs,
best-static selection) without paying for simulations: the stub returns
synthetic cycle counts with known relationships.
"""

import math

import pytest

from repro.core.sharing import SharingLevel
from repro.experiments import figures
from repro.experiments.runner import ExperimentRunner
from repro.models import zoo


class StubRunner:
    """Deterministic fake: cycles derived from workload name + config.

    Planning is pure spec construction, so the stub borrows the real
    runner's ``plan_*`` methods and stubs only the execution side:
    ``run_many`` (the figures' prefetch hook) is a no-op and ``solo`` /
    ``mix`` answer directly with synthetic cycles.
    """

    scale = "mini"
    dataflow = "os"
    replay_mode = "event"
    phase = None
    serving = None
    plan_solo = ExperimentRunner.plan_solo
    plan_ideal = ExperimentRunner.plan_ideal
    plan_static_equal = ExperimentRunner.plan_static_equal
    plan_mix = ExperimentRunner.plan_mix
    _plan_serving = ExperimentRunner._plan_serving

    def __init__(self):
        self.per_core = {"channels": 4, "num_ptw": 1, "tlb_entries": 64}
        self._base = {
            name: 1000 * (index + 1) for index, name in enumerate(zoo.NAMES)
        }

    def run_many(self, specs, jobs=None, progress=None):
        list(specs)  # planners must at least produce valid specs
        return {}

    # -- solo ---------------------------------------------------------- #
    def solo(self, workload, *, channels=4, num_ptw=None, tlb_entries=None,
             page_bytes=4096, translation=True):
        base = self._base[workload]
        # More channels help sub-linearly; bigger pages shave 10%.
        factor = 1.0 + 4.0 / channels
        if page_bytes > 4096:
            factor *= 0.9
        return {"cycles": int(base * factor)}

    def ideal(self, workload, num_cores, *, page_bytes=4096, translation=True):
        return self.solo(
            workload, channels=4 * num_cores, page_bytes=page_bytes,
            translation=translation,
        )

    def static_equal(self, workload, *, page_bytes=4096, translation=True):
        return self.solo(
            workload, page_bytes=page_bytes, translation=translation
        )

    # -- mix ------------------------------------------------------------ #
    def mix(self, names, sharing, *, page_bytes=4096, translation=True,
            ptw_split=None, num_ptw_per_core=None, tlb_entries_per_core=None):
        # Sharing recovers a fixed fraction of the static loss; walker
        # splits skew the two cores.
        recover = {
            SharingLevel.D: 0.5,
            SharingLevel.DW: 0.75,
            SharingLevel.DWT: 0.80,
        }[sharing]
        results = []
        for index, name in enumerate(names):
            ideal = self.ideal(name, len(names))["cycles"]
            static = self.static_equal(name)["cycles"]
            cycles = static - recover * (static - ideal)
            if ptw_split is not None:
                total = sum(ptw_split)
                share = ptw_split[index] / total
                cycles *= 1.0 + max(0.0, 0.5 - share)  # starved side slows
            if page_bytes > 4096:
                cycles *= 0.92
            results.append({"cycles": int(cycles), "workload": name})
        return results


@pytest.fixture()
def runner():
    return StubRunner()


MIXES2 = [("res", "yt"), ("alex", "gpt2"), ("ncf", "ncf")]


class TestSharingSweepReduction:
    def test_fig4_ordering_follows_recovery_fractions(self, runner):
        data = figures.fig4_dual_performance(runner, MIXES2)
        overall = data["overall"]
        assert overall["Static"] < overall["+D"] < overall["+DW"] < overall["+DWT"]

    def test_fig4_identical_pair_has_equal_speedups(self, runner):
        data = figures.fig4_dual_performance(runner, [("ncf", "ncf")])
        speeds = data["sweep"]["speedups"]["ncf+ncf"]["+DWT"]
        assert speeds[0] == pytest.approx(speeds[1])

    def test_fig6_fairness_is_one_for_uniform_recovery(self, runner):
        # The stub slows both mix members by the same slowdown factor
        # only for identical pairs.
        data = figures.fig6_dual_fairness(runner, [("ncf", "ncf")])
        assert data["per_mix"]["ncf+ncf"]["+DWT"] == pytest.approx(1.0)

    def test_fig5_cdf_fraction_axis(self, runner):
        data = figures.fig5_quad_performance(
            runner, [("res", "yt", "alex", "gpt2"), ("ncf",) * 4]
        )
        for level, points in data["cdf"].items():
            assert points[-1][1] == 1.0
            values = [v for v, _ in points]
            assert values == sorted(values)


class TestPagesizeReduction:
    def test_fig15_speedup_matches_stub_factor(self, runner):
        data = figures.fig15_pagesize_single(runner)
        for name in zoo.NAMES:
            assert data["per_workload"][name]["64KB"] == pytest.approx(
                1 / 0.9, rel=0.01
            )

    def test_fig16_performance_normalized_to_4kb(self, runner):
        data = figures.fig16_pagesize_multi(runner, 2, MIXES2)
        for mix_label, values in data["performance"].items():
            assert values["4KB"] == pytest.approx(1.0)
            assert values["64KB"] == pytest.approx(1 / 0.92, rel=0.01)


class TestPtwPartitionReduction:
    def test_fig13_equal_split_beats_skew_in_stub(self, runner):
        data = figures.fig13_ptw_partition_performance(runner, MIXES2)
        overall = data["overall"]
        assert overall["2:2"] > overall["1:3"]
        assert overall["2:2"] > overall["3:1"]

    def test_fig14_fairness_penalizes_skew(self, runner):
        data = figures.fig14_ptw_partition_fairness(runner, MIXES2)
        overall = data["overall"]
        assert overall["1:3"] < overall["2:2"]


class TestMixSpeedupsHelper:
    def test_static_level_uses_solo_results(self, runner):
        ideal = {n: runner.ideal(n, 2)["cycles"] for n in zoo.NAMES}
        static = {n: runner.static_equal(n)["cycles"] for n in zoo.NAMES}
        speeds = figures.mix_speedups(
            runner, ("res", "yt"), SharingLevel.STATIC, ideal, static
        )
        assert speeds[0] == pytest.approx(ideal["res"] / static["res"])

    def test_geomean_of_speedups_matches_manual(self, runner):
        data = figures.fig4_dual_performance(runner, [("res", "yt")])
        speeds = data["sweep"]["speedups"]["res+yt"]["+D"]
        manual = math.sqrt(speeds[0] * speeds[1])
        assert data["per_mix"]["res+yt"]["+D"] == pytest.approx(manual)

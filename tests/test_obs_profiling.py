"""PhaseProfiler semantics, human-unit formatters, and the CLI surface
(``stats``, ``profile run``, ``profile sweep``, human-readable ``cache
stats`` that tolerate an empty or missing cache directory)."""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs import (
    PhaseProfiler,
    format_profile,
    human_bytes,
    human_seconds,
)
from repro.obs.profiling import PROFILE_SCHEMA


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestPhaseProfiler:
    def test_phases_accumulate_seconds_and_entries(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock)
        for _ in range(2):
            with profiler.phase("execute"):
                clock.advance(1.5)
        with profiler.phase("cache_read"):
            clock.advance(0.25)
        assert profiler.seconds("execute") == 3.0
        assert profiler.seconds("cache_read") == 0.25
        assert profiler.seconds("missing") == 0.0
        snap = profiler.snapshot()
        assert snap["phases"]["execute"] == {"seconds": 3.0, "entries": 2}
        assert snap["phases"]["cache_read"]["entries"] == 1

    def test_snapshot_schema_and_other_time(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock)
        with profiler.phase("execute"):
            clock.advance(1.0)
        clock.advance(0.5)  # un-phased time
        snap = profiler.snapshot()
        assert snap["schema"] == PROFILE_SCHEMA
        assert snap["elapsed_seconds"] == 1.5
        assert snap["other_seconds"] == 0.5
        assert json.loads(json.dumps(snap)) == snap

    def test_nested_phases_overlap_without_error(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock)
        with profiler.phase("execute"):
            with profiler.phase("cache_write"):
                clock.advance(1.0)
        snap = profiler.snapshot()
        # Both phases saw the same wall second; overlap is documented.
        assert snap["phases"]["execute"]["seconds"] == 1.0
        assert snap["phases"]["cache_write"]["seconds"] == 1.0
        assert snap["other_seconds"] == 0.0

    def test_counts(self):
        profiler = PhaseProfiler(clock=FakeClock())
        profiler.count("cache_hits", 3)
        profiler.count("cache_hits")
        assert profiler.snapshot()["counts"] == {"cache_hits": 4}

    def test_format_profile_renders_rows(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock)
        with profiler.phase("execute"):
            clock.advance(2.0)
        profiler.count("cache_hits", 5)
        text = format_profile(profiler.snapshot())
        assert "execute" in text
        assert "total" in text
        assert "(other)" in text
        assert "cache_hits" in text and "5" in text


class TestHumanUnits:
    def test_human_bytes(self):
        assert human_bytes(0) == "0 B"
        assert human_bytes(512) == "512 B"
        assert human_bytes(1536) == "1.5 KiB"
        assert human_bytes(1024 * 1024) == "1.0 MiB"
        assert human_bytes(3 * 1024**3) == "3.0 GiB"
        assert human_bytes(5 * 1024**4) == "5.0 TiB"

    def test_human_seconds(self):
        assert human_seconds(0.00042) == "420us"
        assert human_seconds(0.0123) == "12.3ms"
        assert human_seconds(5.25) == "5.25s"
        assert human_seconds(75.3) == "1m15s"
        assert human_seconds(-0.5) == "-500.0ms"


class TestCacheStatsCli:
    def test_missing_cache_dir_reports_zero_human_readable(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "nope")]) == 0
        out = capsys.readouterr().out
        assert "0 B" in out
        assert " 0 shard(s)" in out

    def test_empty_cache_dir_ok(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "empty")]) == 0
        assert "0 B" in capsys.readouterr().out


class TestObservabilityCli:
    def test_stats_renders_counter_tree(self, tmp_path, capsys):
        snapshot_path = tmp_path / "counters.json"
        code = main([
            "stats", "ncf", "ncf", "--sharing", "DWT",
            "--json", str(snapshot_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        for namespace in ("dram", "mmu", "ptw", "compute"):
            assert namespace in out
        snapshot = json.loads(snapshot_path.read_text())
        assert snapshot["schema"].startswith("repro-obs-counters/")
        assert any(path.startswith("dram.ch0.") for path in snapshot["metrics"])

    def test_profile_run_exports_trace_and_counters(self, tmp_path, capsys):
        trace_path = tmp_path / "out" / "trace.json"
        counters_path = tmp_path / "out" / "counters.json"
        code = main([
            "profile", "run", "ncf", "ncf",
            "--trace", str(trace_path),
            "--counters", str(counters_path),
            "--depth", "1",
        ])
        assert code == 0
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"], "trace must contain events"
        snapshot = json.loads(counters_path.read_text())
        namespaces = {path.split(".")[0] for path in snapshot["metrics"]}
        assert {"dram", "mmu", "ptw", "compute"} <= namespaces
        captured = capsys.readouterr()
        assert "cycles" in captured.out
        assert "spans buffered" in captured.err

    def test_profile_sweep_prints_phase_table(self, tmp_path, capsys):
        code = main([
            "profile", "sweep", "fig15",
            "--mixes", "1", "--quiet",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase" in out
        assert "execute" in out
        assert "total" in out

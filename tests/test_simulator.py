"""Integration tests of the end-to-end simulator.

These use tiny custom networks (not the zoo) so they stay fast while
exercising the full core -> DMA -> MMU -> DRAM pipeline.
"""

import pytest

from repro.config.arch import ArchConfig
from repro.config.dram import DramConfig
from repro.config.misc import MiscConfig
from repro.config.npumem import NpuMemConfig
from repro.config.system import SystemConfig
from repro.core.sharing import SharingLevel
from repro.core.simulator import MultiCoreNPUSim
from repro.models.layers import DenseLayer, Network

ARCH = ArchConfig(
    name="t", array_rows=8, array_cols=8, spm_bytes=16 * 1024,
    dram_transaction_bytes=64,
)
NPUMEM = NpuMemConfig(tlb_entries=16, tlb_assoc=4, num_ptw=1, pwc_entries=8)


def _net(name="w", m=64, k=128, n=64):
    return Network(
        name,
        (DenseLayer(f"{name}_l0", m, k, n), DenseLayer(f"{name}_l1", m, m, n)),
    )


def _system(cores=1, channels=2, sharing=SharingLevel.DWT, iterations=1, **kwargs):
    return SystemConfig(
        arch=(ARCH,) * cores,
        npumem=(NPUMEM,) * cores,
        dram=DramConfig(channels=channels, channel_bytes_per_cycle=16),
        misc=MiscConfig(iterations=iterations),
        share_dram=sharing.share_dram,
        share_ptw=sharing.share_ptw,
        share_tlb=sharing.share_tlb,
        **kwargs,
    )


class TestSingleCore:
    def test_run_completes_and_reports(self):
        sim = MultiCoreNPUSim(_system(), [_net()])
        result = sim.run(max_ticks=10_000_000)
        workload = result.workloads[0]
        assert workload.cycles > 0
        assert 0 < workload.pe_utilization <= 1
        assert 0 < workload.compute_occupancy <= 1
        assert workload.traffic_bytes > 0
        assert workload.completed_iterations == 1

    def test_deterministic(self):
        a = MultiCoreNPUSim(_system(), [_net()]).run(max_ticks=10_000_000)
        b = MultiCoreNPUSim(_system(), [_net()]).run(max_ticks=10_000_000)
        assert a.cycles_per_core() == b.cycles_per_core()
        assert a.dram.requests == b.dram.requests

    def test_cycles_bounded_below_by_compute(self):
        sim = MultiCoreNPUSim(_system(), [_net()])
        result = sim.run(max_ticks=10_000_000)
        compute = sim.cores[0].stats.compute_busy_local
        assert result.workloads[0].cycles >= compute

    def test_no_translation_is_faster(self):
        slow = MultiCoreNPUSim(_system(), [_net()]).run(max_ticks=10_000_000)
        fast_system = _system()
        import dataclasses
        fast_system = dataclasses.replace(
            fast_system,
            npumem=(dataclasses.replace(NPUMEM, translation_enabled=False),),
        )
        fast = MultiCoreNPUSim(fast_system, [_net()]).run(max_ticks=10_000_000)
        assert fast.workloads[0].cycles <= slow.workloads[0].cycles
        assert fast.workloads[0].walks == 0

    def test_more_channels_never_slower(self):
        narrow = MultiCoreNPUSim(_system(channels=1), [_net()]).run(
            max_ticks=10_000_000
        )
        wide = MultiCoreNPUSim(_system(channels=4), [_net()]).run(max_ticks=10_000_000)
        assert wide.workloads[0].cycles <= narrow.workloads[0].cycles

    def test_iterations_counted(self):
        sim = MultiCoreNPUSim(_system(iterations=3), [_net()])
        result = sim.run(max_ticks=50_000_000)
        assert result.workloads[0].completed_iterations == 3

    def test_bandwidth_trace_collected(self):
        sim = MultiCoreNPUSim(_system(), [_net()], trace_bandwidth=True)
        result = sim.run(max_ticks=10_000_000)
        assert 0 in result.bandwidth_utilization
        series = result.bandwidth_utilization[0]
        assert any(value > 0 for _, value in series)
        assert all(value <= 1.0 + 1e-9 for _, value in series)

    def test_run_twice_rejected(self):
        sim = MultiCoreNPUSim(_system(), [_net()])
        sim.run(max_ticks=10_000_000)
        with pytest.raises(RuntimeError):
            sim.run()

    def test_workload_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MultiCoreNPUSim(_system(cores=2, channels=2), [_net()])

    def test_unfinished_run_raises(self):
        sim = MultiCoreNPUSim(_system(), [_net()])
        with pytest.raises(RuntimeError, match="never completed"):
            sim.run(max_ticks=10)


class TestMultiCore:
    def test_dual_core_contention_slows_workloads(self):
        alone = MultiCoreNPUSim(_system(channels=2), [_net()]).run(max_ticks=10_000_000)
        # Same per-core resources, but a co-runner contends on them.
        duo = MultiCoreNPUSim(
            _system(cores=2, channels=2), [_net("a"), _net("b")]
        ).run(max_ticks=50_000_000)
        for workload in duo.workloads:
            assert workload.cycles >= alone.workloads[0].cycles

    def test_static_partition_isolates_cores(self):
        # With all resources statically split, a co-runner must not
        # change a workload's cycles vs running alone on the same slice.
        # (Channel refresh phases are staggered per channel index, so a
        # sub-percent deviation between channel 0 and 1 is expected; the
        # experiment harness exploits this equivalence — see DESIGN.md.)
        solo = MultiCoreNPUSim(_system(channels=1), [_net()]).run(max_ticks=50_000_000)
        static = MultiCoreNPUSim(
            _system(cores=2, channels=2, sharing=SharingLevel.STATIC),
            [_net("a"), _net("b")],
        ).run(max_ticks=50_000_000)
        assert static.workloads[0].cycles == solo.workloads[0].cycles
        assert static.workloads[1].cycles == pytest.approx(
            solo.workloads[0].cycles, rel=0.02
        )

    def test_mix_methodology_loops_fast_corunner(self):
        light = _net("light", m=16, k=16, n=16)
        heavy = _net("heavy", m=128, k=256, n=128)
        duo = MultiCoreNPUSim(
            _system(cores=2, channels=2, iterations=0), [light, heavy]
        ).run(max_ticks=100_000_000)
        light_result, heavy_result = duo.workloads
        assert light_result.completed_iterations > 1
        assert heavy_result.completed_iterations == 1

    def test_shared_tlb_is_one_instance(self):
        sim = MultiCoreNPUSim(
            _system(cores=2, channels=2, sharing=SharingLevel.DWT),
            [_net("a"), _net("b")],
        )
        assert sim.mmu.tlb_for(0) is sim.mmu.tlb_for(1)

    def test_dw_keeps_private_tlbs(self):
        sim = MultiCoreNPUSim(
            _system(cores=2, channels=2, sharing=SharingLevel.DW),
            [_net("a"), _net("b")],
        )
        assert sim.mmu.tlb_for(0) is not sim.mmu.tlb_for(1)

    def test_heterogeneous_clocks(self):
        import dataclasses
        slow_arch = dataclasses.replace(ARCH, freq_mhz=500)
        system = SystemConfig(
            arch=(ARCH, slow_arch),
            npumem=(NPUMEM, NPUMEM),
            dram=DramConfig(channels=2, channel_bytes_per_cycle=16),
            misc=MiscConfig(iterations=1),
        )
        result = MultiCoreNPUSim(system, [_net("a"), _net("a2")]).run(
            max_ticks=100_000_000
        )
        fast, slow = result.workloads
        # The slower core reports fewer local cycles per global tick.
        assert slow.cycles <= slow.ticks
        assert fast.cycles == fast.ticks

    def test_ptw_static_split_respected(self):
        system = _system(cores=2, channels=2, sharing=SharingLevel.D)
        import dataclasses
        npumem = tuple(
            dataclasses.replace(NPUMEM, num_ptw=2) for _ in range(2)
        )
        system = dataclasses.replace(
            system, npumem=npumem, share_ptw=False, ptw_assignment=(1, 3)
        )
        sim = MultiCoreNPUSim(system, [_net("a"), _net("b")])
        assert sim.walkers.max_per_core == {0: 1, 1: 3}
        sim.run(max_ticks=100_000_000)

    def test_walk_traffic_attributed_to_cores(self):
        sim = MultiCoreNPUSim(
            _system(cores=2, channels=2), [_net("a"), _net("b")]
        )
        sim.run(max_ticks=100_000_000)
        for core in (0, 1):
            assert sim.walkers.stats[core].walks > 0

"""The compile/replay split: fingerprints, the two-level trace cache,
corruption handling, the stream-and-discard fallback, and the sweep
planner's precompile step."""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.compute import tracecache
from repro.compute.requestgen import RequestGenerator, Run
from repro.compute.tracecache import (
    CompiledTrace,
    TraceCache,
    compile_trace,
    decode_trace,
    encode_trace,
    frontend_fingerprint,
    trace_source,
)
from repro.config import presets
from repro.experiments.runner import ExperimentRunner
from repro.experiments.spec import RunSpec
from repro.models import zoo

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture
def arch():
    return presets.cloud_arch("mini")


@pytest.fixture
def network():
    return zoo.get("ncf", "mini")


@pytest.fixture
def process_cache_state():
    """Snapshot + restore the process-level cache around a test."""
    cache = tracecache.process_cache()
    store = cache.store
    enabled = tracecache.is_enabled()
    cache.clear_memo()  # deterministic stats: no entries from earlier tests
    yield
    cache.store = store
    tracecache.configure(enabled=enabled)


# ---------------------------------------------------------------------- #
# Fingerprints
# ---------------------------------------------------------------------- #


class TestFingerprint:
    def test_stable_across_processes(self, network, arch):
        """The key must not depend on Python hash seeds or process state."""
        expected = frontend_fingerprint(network, arch)
        code = (
            "from repro.models import zoo\n"
            "from repro.config import presets\n"
            "from repro.compute.tracecache import frontend_fingerprint\n"
            "print(frontend_fingerprint("
            "zoo.get('ncf', 'mini'), presets.cloud_arch('mini')))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "PYTHONPATH": SRC_DIR, "PYTHONHASHSEED": "271828"},
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == expected

    @pytest.mark.parametrize(
        "field, value",
        [
            ("array_rows", 16),
            ("array_cols", 16),
            ("spm_bytes", 1 << 18),
            ("dataflow", "ws"),
            ("element_bytes", 2),
            ("dram_transaction_bytes", 64),
        ],
    )
    def test_traffic_arch_fields_invalidate(self, network, arch, field, value):
        assert getattr(arch, field) != value, "pick a value that differs"
        changed = dataclasses.replace(arch, **{field: value})
        assert frontend_fingerprint(network, changed) != frontend_fingerprint(
            network, arch
        )

    @pytest.mark.parametrize(
        "field, value",
        [("name", "other"), ("freq_mhz", 123), ("dma_issue_per_cycle", 99)],
    )
    def test_replay_side_arch_fields_shared(self, network, arch, field, value):
        """Frequency/DMA width/naming do not change which requests exist."""
        changed = dataclasses.replace(arch, **{field: value})
        assert frontend_fingerprint(network, changed) == frontend_fingerprint(
            network, arch
        )

    def test_fingerprint_is_tagged_with_the_engine_name(self, network, arch):
        """Shard filenames lead with the compiling engine, so the cache
        CLI can group trace shards by dataflow without opening them."""
        from repro.compute.dataflow import registered_dataflows

        tags = set()
        for dataflow in registered_dataflows():
            fingerprint = frontend_fingerprint(
                network, dataclasses.replace(arch, dataflow=dataflow)
            )
            tag, _, digest = fingerprint.partition("-")
            assert tag == dataflow
            assert len(digest) == 32
            tags.add(fingerprint)
        assert len(tags) == len(registered_dataflows())

    def test_engine_version_bump_invalidates(self, network, arch, monkeypatch):
        """Changing an engine's cycle model must recompile its traces."""
        from repro.compute.dataflow import OutputStationary

        before = frontend_fingerprint(network, arch)
        monkeypatch.setattr(OutputStationary, "version", 2)
        assert frontend_fingerprint(network, arch) != before

    def test_network_topology_invalidates(self, network, arch):
        first = network.layers[0]
        resized = dataclasses.replace(
            network,
            layers=(dataclasses.replace(first, dim=first.dim * 2),)
            + network.layers[1:],
        )
        shrunk = dataclasses.replace(network, layers=network.layers[1:])
        fingerprints = {
            frontend_fingerprint(net, arch) for net in (network, resized, shrunk)
        }
        assert len(fingerprints) == 3


# ---------------------------------------------------------------------- #
# Compile + serialization round trip
# ---------------------------------------------------------------------- #


class TestCompiledTrace:
    def test_replay_matches_live_generator(self, network, arch):
        trace = compile_trace(network, arch)
        generator = RequestGenerator(network, arch)
        assert list(trace.all_tiles()) == list(generator.all_tiles())
        assert trace.summary() == generator.summary()
        assert trace.memory_footprint_bytes == generator.memory_footprint_bytes
        assert trace.num_layers == generator.num_layers

    def test_disk_round_trip_is_exact(self, network, arch):
        trace = compile_trace(network, arch)
        decoded, reason = decode_trace(encode_trace(trace), trace.fingerprint)
        assert reason is None
        assert decoded.layers == trace.layers
        assert decoded.summary() == trace.summary()  # floats included, exactly
        assert decoded.memory_footprint_bytes == trace.memory_footprint_bytes
        assert decoded.object_cost == trace.object_cost

    @pytest.mark.parametrize(
        "raw, reason",
        [
            (b"{truncated", "unparseable JSON (truncated write?)"),
            (b"[1, 2]", "malformed shard structure"),
            (b'{"version": 999}', "trace-version mismatch"),
        ],
    )
    def test_decode_rejects_unsound_payloads(self, raw, reason):
        decoded, got = decode_trace(raw, "abc")
        assert decoded is None
        assert got.startswith(reason)

    def test_decode_rejects_foreign_fingerprint(self, network, arch):
        trace = compile_trace(network, arch)
        decoded, reason = decode_trace(encode_trace(trace), "not-the-fingerprint")
        assert decoded is None
        assert reason == "fingerprint does not match request"

    def test_oversized_compile_bails_out(self, network, arch):
        assert compile_trace(network, arch, max_objects=10) is None


# ---------------------------------------------------------------------- #
# The two-level cache
# ---------------------------------------------------------------------- #


class TestTraceCache:
    def test_memo_then_disk_then_compile(self, tmp_path, network, arch):
        cache = TraceCache(tmp_path)
        first = cache.get(network, arch)
        assert cache.get(network, arch) is first
        assert cache.stats.compiles == 1 and cache.stats.memo_hits == 1

        fresh = TraceCache(tmp_path)  # cold memo, warm disk
        loaded = fresh.get(network, arch)
        assert fresh.stats.disk_hits == 1 and fresh.stats.compiles == 0
        assert list(loaded.all_tiles()) == list(first.all_tiles())
        assert loaded.summary() == first.summary()

    @pytest.mark.parametrize("mode", ["truncate", "garbage", "flip"])
    def test_corrupt_shard_quarantined_and_recompiled(
        self, tmp_path, network, arch, mode
    ):
        cache = TraceCache(tmp_path)
        original = cache.get(network, arch)
        shard = cache.store.path(cache.shard_name(original.fingerprint))
        raw = shard.read_bytes()
        if mode == "truncate":
            shard.write_bytes(raw[: len(raw) // 2])
        elif mode == "garbage":
            shard.write_bytes(b"not json at all")
        else:  # valid JSON, wrong bytes -> checksum sidecar catches it
            shard.write_bytes(raw.replace(b'"version"', b'"version" ', 1))

        fresh = TraceCache(tmp_path)
        recompiled = fresh.get(network, arch)
        assert recompiled is not None
        assert list(recompiled.all_tiles()) == list(original.all_tiles())
        assert fresh.stats.quarantined == 1
        assert fresh.stats.compiles == 1 and fresh.stats.disk_hits == 0
        assert list(fresh.store.quarantine_dir.iterdir())
        # The recompile republished a sound shard.
        again = TraceCache(tmp_path)
        assert again.get(network, arch) is not None
        assert again.stats.disk_hits == 1

    def test_oversize_falls_back_without_recompiling(self, tmp_path, network, arch):
        cache = TraceCache(tmp_path, max_memo_objects=10)
        assert cache.get(network, arch) is None
        assert cache.get(network, arch) is None
        assert cache.stats.compiles == 1  # the bail-out is remembered
        assert cache.stats.oversize == 2
        assert cache.store.shard_names() == []  # nothing materialized on disk

    def test_memo_eviction_respects_budget(self, network, arch):
        small = compile_trace(network, arch)
        cache = TraceCache(max_memo_objects=small.object_cost + 10)
        cache.get(network, arch)
        other = dataclasses.replace(arch, spm_bytes=arch.spm_bytes // 2)
        cache.get(network, other)  # different fingerprint -> eviction
        assert cache.memo_objects <= cache.max_memo_objects
        assert len(cache._memo) == 1

    def test_trace_source_fallback_paths(self, network, arch, process_cache_state):
        tracecache.configure(enabled=True)
        assert isinstance(trace_source(network, arch), CompiledTrace)
        tracecache.configure(enabled=False)
        assert isinstance(trace_source(network, arch), RequestGenerator)


# ---------------------------------------------------------------------- #
# The unchecked Run construction path
# ---------------------------------------------------------------------- #


class TestRunValidation:
    def test_public_constructor_still_validates(self):
        with pytest.raises(ValueError):
            Run(addr=-1, count=1, write=False)
        with pytest.raises(ValueError):
            Run(addr=0, count=0, write=False)

    def test_unchecked_path_skips_validation_but_matches(self):
        checked = Run(addr=64, count=3, write=True)
        assert Run._unchecked(64, 3, True) == checked
        # The internal path must not pay __post_init__ (it would raise here).
        assert Run._unchecked(-1, 0, False).addr == -1


# ---------------------------------------------------------------------- #
# Runner integration: the sweep's compile phase
# ---------------------------------------------------------------------- #


class TestRunnerIntegration:
    SPECS = (
        RunSpec.solo("ncf", scale="mini", channels=2),
        RunSpec.solo("ncf", scale="mini", channels=4),
        RunSpec.solo("ncf", scale="mini", channels=2, page_bytes=65536),
    )

    def test_memory_side_sweep_compiles_each_frontend_once(
        self, tmp_path, process_cache_state
    ):
        runner = ExperimentRunner(scale="mini", cache_dir=tmp_path, journal=True)
        runner.run_many(list(self.SPECS))
        stats = runner.last_trace_stats
        assert stats is not None
        # Three specs, one distinct (workload, arch) frontend.
        assert stats.compiles + stats.memo_hits + stats.disk_hits == 1
        assert (tmp_path / "traces").is_dir()
        events = [r["event"] for r in runner.journal.read()]
        assert "trace_cache" in events

    def test_warm_runner_loads_from_disk(self, tmp_path, process_cache_state):
        first = ExperimentRunner(scale="mini", cache_dir=tmp_path)
        first.run_many([self.SPECS[0]])
        tracecache.process_cache().clear_memo()  # simulate a new process
        second = ExperimentRunner(scale="mini", cache_dir=tmp_path)
        second.run_many([self.SPECS[1]])  # cold result, same frontend
        assert second.last_trace_stats.disk_hits == 1
        assert second.last_trace_stats.compiles == 0

    def test_trace_cache_off_runs_live(self, tmp_path, process_cache_state):
        runner = ExperimentRunner(
            scale="mini", cache_dir=tmp_path, trace_cache=False
        )
        results = runner.run_many([self.SPECS[0]])
        assert len(results) == 1
        assert runner.last_trace_stats is None
        assert not list((tmp_path / "traces").glob("*.json"))

    def test_parallel_and_serial_results_identical(
        self, tmp_path, process_cache_state
    ):
        serial = ExperimentRunner(scale="mini", cache_dir=tmp_path / "serial")
        parallel = ExperimentRunner(
            scale="mini", cache_dir=tmp_path / "parallel", jobs=2
        )
        specs = list(self.SPECS)
        want = serial.run_many(specs)
        got = parallel.run_many(specs, jobs=2)
        assert want == got
        for spec in specs:
            name = f"{spec.cache_key()}.json"
            assert (tmp_path / "serial" / name).read_bytes() == (
                tmp_path / "parallel" / name
            ).read_bytes()


# ---------------------------------------------------------------------- #
# Replay modes and legacy shards
# ---------------------------------------------------------------------- #


class TestReplayModeIsReplaySide:
    """``replay_mode`` lives in :class:`MiscConfig`, never in the arch,
    so trace fingerprints — and therefore the compiled-trace shards on
    disk — are shared across all replay modes by construction.  These
    tests are the regression pin for that invariant: a refactor that
    moved the knob into :class:`ArchConfig` would recompile (and double-
    store) every trace for no semantic reason.
    """

    def test_fingerprint_identical_across_replay_modes(self, network):
        from repro.core.replay import REPLAY_MODES

        fingerprints = set()
        for mode in REPLAY_MODES:
            spec = RunSpec.solo("ncf", scale="mini", replay_mode=mode)
            system = spec.system()
            assert system.misc.replay_mode == mode
            fingerprints.add(frontend_fingerprint(network, system.arch[0]))
        assert len(fingerprints) == 1

    def test_modes_share_one_trace_shard(self, tmp_path, process_cache_state):
        """Three runner passes (one per mode) compile exactly once and
        leave exactly one trace shard; the two later modes hit disk or
        memo instead of recompiling."""
        from repro.core.replay import REPLAY_MODES

        compiles = 0
        result_shards = set()
        for index, mode in enumerate(REPLAY_MODES):
            spec = RunSpec.solo(
                "dlrm", scale="mini", channels=1,
                translation=False, replay_mode=mode,
            )
            runner = ExperimentRunner(scale="mini", cache_dir=tmp_path)
            runner.run_many([spec])
            stats = runner.last_trace_stats
            compiles += stats.compiles
            if index:
                assert stats.compiles == 0, f"{mode} recompiled the trace"
            result_shards.add(f"{spec.cache_key()}.json")
        assert compiles == 1
        assert len(result_shards) == len(REPLAY_MODES)
        for name in result_shards:
            assert (tmp_path / name).exists()
        trace_shards = list((tmp_path / "traces").glob("*.json"))
        assert len(trace_shards) == 1


class TestLegacyShards:
    """Shards written before fingerprints carried the dataflow tag (a
    bare digest stem, no ``-``) — and current OS-tagged shards — must
    keep loading through the exact validated-read path the cache uses."""

    def _store(self, tmp_path):
        from repro.storage import ShardStore

        quarantined = []
        return (
            ShardStore(
                tmp_path, on_quarantine=lambda n, r: quarantined.append((n, r))
            ),
            quarantined,
        )

    @pytest.mark.parametrize(
        "legacy_fingerprint",
        [
            "0123456789abcdef0123456789abcdef",  # pre-tag: bare digest
            "os-0123456789abcdef0123456789abcdef",  # current: engine tag
        ],
        ids=["untagged", "os-tagged"],
    )
    def test_shard_round_trips(self, tmp_path, network, arch, legacy_fingerprint):
        store, quarantined = self._store(tmp_path)
        trace = compile_trace(network, arch)
        relabeled = dataclasses.replace(trace, fingerprint=legacy_fingerprint)
        store.write(
            TraceCache.shard_name(legacy_fingerprint), encode_trace(relabeled)
        )
        loaded = store.read_validated(
            TraceCache.shard_name(legacy_fingerprint),
            lambda raw: decode_trace(raw, legacy_fingerprint),
        )
        assert loaded is not None
        assert loaded.fingerprint == legacy_fingerprint
        assert list(loaded.all_tiles()) == list(trace.all_tiles())
        assert not quarantined

    def test_cache_stats_groups_untagged_shards(self, tmp_path, network, arch):
        """``mnpusim cache stats`` must group pre-tag shards as
        "untagged" rather than crash or misattribute them."""
        from repro.cli import _trace_shards_by_dataflow

        store, _ = self._store(tmp_path)
        trace = compile_trace(network, arch)
        store.write(TraceCache.shard_name(trace.fingerprint), encode_trace(trace))
        legacy = "0123456789abcdef0123456789abcdef"
        store.write(
            TraceCache.shard_name(legacy),
            encode_trace(dataclasses.replace(trace, fingerprint=legacy)),
        )
        counts = _trace_shards_by_dataflow(store)
        assert counts == {"os": 1, "untagged": 1}

"""Unit tests for the configuration dataclasses and validation."""

import pytest

from repro.config import (
    AddressMapping,
    ArchConfig,
    DramConfig,
    DramTiming,
    MiscConfig,
    NpuMemConfig,
    SystemConfig,
)
from repro.config.npumem import PAGE_WALK_LEVELS


class TestArchConfig:
    def test_defaults_are_table2(self):
        arch = ArchConfig()
        assert arch.array_rows == 128
        assert arch.array_cols == 128
        assert arch.spm_bytes == 36 * 1024 * 1024
        assert arch.freq_mhz == 1000

    def test_half_spm_is_double_buffer_budget(self):
        arch = ArchConfig(spm_bytes=1024)
        assert arch.half_spm_bytes == 512

    def test_num_pes(self):
        assert ArchConfig(array_rows=4, array_cols=8).num_pes == 32

    def test_rejects_nonpositive_array(self):
        with pytest.raises(ValueError):
            ArchConfig(array_rows=0)

    def test_accepts_every_registered_dataflow(self):
        from repro.compute.dataflow import registered_dataflows

        assert set(registered_dataflows()) >= {"os", "ws", "is"}
        for name in registered_dataflows():
            assert ArchConfig(dataflow=name).dataflow == name

    def test_rejects_unknown_dataflow(self):
        # The error enumerates the registry, not a hardcoded list, so
        # third-party engines show up in it automatically.
        with pytest.raises(ValueError, match="registered engines: os, ws, is"):
            ArchConfig(dataflow="rs")

    def test_rejects_non_power_of_two_transaction(self):
        with pytest.raises(ValueError):
            ArchConfig(dram_transaction_bytes=100)

    def test_rejects_tiny_spm(self):
        with pytest.raises(ValueError):
            ArchConfig(spm_bytes=64, dram_transaction_bytes=64)


class TestNpuMemConfig:
    def test_defaults_are_neummu(self):
        cfg = NpuMemConfig()
        assert cfg.tlb_entries == 2048
        assert cfg.tlb_assoc == 8
        assert cfg.num_ptw == 8

    @pytest.mark.parametrize(
        "page,levels", [(4096, 4), (65536, 3), (1048576, 2)]
    )
    def test_walk_levels_per_page_size(self, page, levels):
        assert NpuMemConfig(page_bytes=page).walk_levels == levels

    def test_page_walk_levels_table_is_consistent(self):
        for page, levels in PAGE_WALK_LEVELS.items():
            assert levels >= 2
            assert page & (page - 1) == 0

    def test_rejects_unsupported_page_size(self):
        with pytest.raises(ValueError, match="page size"):
            NpuMemConfig(page_bytes=8192)

    def test_rejects_entries_not_multiple_of_assoc(self):
        with pytest.raises(ValueError):
            NpuMemConfig(tlb_entries=100, tlb_assoc=8)

    def test_tlb_sets(self):
        assert NpuMemConfig(tlb_entries=64, tlb_assoc=8).tlb_sets == 8

    def test_rejects_negative_pwc(self):
        with pytest.raises(ValueError):
            NpuMemConfig(pwc_entries=-1)


class TestDramConfig:
    def test_peak_bandwidth_hbm2(self):
        # 4 channels x 32 B/cycle x 1 GHz = 128 GB/s (Table 2 per-NPU).
        cfg = DramConfig(channels=4, channel_bytes_per_cycle=32, freq_mhz=1000)
        assert cfg.peak_bandwidth_bytes_per_sec() == pytest.approx(128e9)

    def test_burst_cycles_rounds_up(self):
        cfg = DramConfig(channel_bytes_per_cycle=32)
        assert cfg.burst_cycles(64) == 2
        assert cfg.burst_cycles(65) == 3
        assert cfg.burst_cycles(1) == 1

    def test_burst_cycles_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DramConfig().burst_cycles(0)

    def test_capacity(self):
        cfg = DramConfig(
            channels=2, bank_groups=2, banks_per_group=2,
            rows_per_bank=16, row_bytes=1024,
        )
        assert cfg.capacity_bytes == 2 * 4 * 16 * 1024

    def test_banks_per_channel(self):
        assert DramConfig(bank_groups=4, banks_per_group=4).banks_per_channel == 16

    def test_timing_validation(self):
        with pytest.raises(ValueError):
            DramTiming(tRAS=1, tRCD=14)
        with pytest.raises(ValueError):
            DramTiming(tREFI=100, tRFC=260)

    def test_mapping_must_be_permutation(self):
        with pytest.raises(ValueError):
            AddressMapping(order=("ch", "ch", "ba", "bg", "ro"))
        AddressMapping(order=("ro", "bg", "ba", "co", "ch"))  # ok


class TestMiscConfig:
    def test_defaults(self):
        misc = MiscConfig()
        assert misc.iterations == 0
        assert misc.start_cycle == 0

    def test_rejects_inverted_ptw_bounds(self):
        with pytest.raises(ValueError):
            MiscConfig(ptw_lower_bound=4, ptw_upper_bound=2)

    def test_zero_upper_bound_means_uncapped(self):
        MiscConfig(ptw_lower_bound=2, ptw_upper_bound=0)  # ok


class TestSystemConfig:
    def _system(self, **kwargs):
        arch = ArchConfig(spm_bytes=1 << 20)
        npumem = NpuMemConfig(tlb_entries=64, tlb_assoc=8, num_ptw=2)
        return SystemConfig(
            arch=(arch, arch), npumem=(npumem, npumem), dram=DramConfig(channels=8),
            **kwargs,
        )

    def test_shared_core_sees_all_channels(self):
        system = self._system(share_dram=True)
        assert system.channels_for_core(0) == tuple(range(8))

    def test_static_split_is_disjoint_round_robin(self):
        system = self._system(share_dram=False)
        a = set(system.channels_for_core(0))
        b = set(system.channels_for_core(1))
        assert a | b == set(range(8))
        assert not a & b

    def test_custom_channel_assignment_validated(self):
        with pytest.raises(ValueError, match="two cores"):
            self._system(
                share_dram=False, channel_assignment=((0, 1), (1, 2))
            )
        with pytest.raises(ValueError, match="out of range"):
            self._system(share_dram=False, channel_assignment=((0,), (99,)))

    def test_ptw_assignment_cannot_exceed_pool(self):
        with pytest.raises(ValueError, match="exceeds"):
            self._system(share_ptw=False, ptw_assignment=(4, 4))

    def test_total_ptw(self):
        assert self._system().total_ptw == 4

    def test_mismatched_core_configs_rejected(self):
        arch = ArchConfig(spm_bytes=1 << 20)
        with pytest.raises(ValueError):
            SystemConfig(
                arch=(arch,), npumem=(NpuMemConfig(), NpuMemConfig()),
                dram=DramConfig(),
            )

    def test_cache_key_stable_and_distinct(self):
        a = self._system()
        b = self._system()
        c = self._system(share_dram=False)
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()

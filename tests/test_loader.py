"""Tests for the mNPUsim-style config-file parsers."""

from pathlib import Path

import pytest

from repro.config import (
    load_arch_config,
    load_dram_config,
    load_misc_config,
    load_npumem_config,
    parse_kv_text,
)

REPO_CONFIGS = Path(__file__).resolve().parent.parent / "configs"


class TestParseKvText:
    def test_basic_pairs(self):
        pairs = parse_kv_text("a = 1\nb = two\n")
        assert pairs == {"a": "1", "b": "two"}

    def test_comments_and_blanks_ignored(self):
        pairs = parse_kv_text("# header\n\na = 1  # trailing\n")
        assert pairs == {"a": "1"}

    def test_keys_lowercased(self):
        assert parse_kv_text("ARRAY_ROWS = 4") == {"array_rows": "4"}

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="key = value"):
            parse_kv_text("just some words")

    def test_duplicate_key_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_kv_text("a = 1\na = 2")

    def test_empty_value_rejected(self):
        with pytest.raises(ValueError):
            parse_kv_text("a =")


class TestLoaders:
    def test_arch_config(self, tmp_path):
        path = tmp_path / "arch.cfg"
        path.write_text("array_rows = 16\narray_cols = 8\nspm_bytes = 0x10000\n")
        arch = load_arch_config(path)
        assert arch.array_rows == 16
        assert arch.array_cols == 8
        assert arch.spm_bytes == 65536  # hex accepted

    def test_unknown_key_rejected(self, tmp_path):
        path = tmp_path / "arch.cfg"
        path.write_text("array_rowz = 16\n")
        with pytest.raises(ValueError, match="unknown ArchConfig key"):
            load_arch_config(path)

    def test_npumem_booleans(self, tmp_path):
        path = tmp_path / "m.cfg"
        path.write_text("translation_enabled = false\nwalk_in_dram = yes\n")
        cfg = load_npumem_config(path)
        assert not cfg.translation_enabled
        assert cfg.walk_in_dram

    def test_bad_boolean_rejected(self, tmp_path):
        path = tmp_path / "m.cfg"
        path.write_text("walk_in_dram = maybe\n")
        with pytest.raises(ValueError, match="boolean"):
            load_npumem_config(path)

    def test_dram_with_timing_and_mapping(self, tmp_path):
        path = tmp_path / "d.cfg"
        path.write_text(
            "channels = 2\ntiming.tcl = 20\ntiming.trcd = 18\n"
            "mapping = ro-bg-ba-co-ch\n"
        )
        cfg = load_dram_config(path)
        assert cfg.channels == 2
        assert cfg.timing.tCL == 20
        assert cfg.timing.tRCD == 18
        assert cfg.mapping.order == ("ro", "bg", "ba", "co", "ch")

    def test_dram_unknown_timing_key(self, tmp_path):
        path = tmp_path / "d.cfg"
        path.write_text("timing.tzz = 5\n")
        with pytest.raises(ValueError, match="DramTiming"):
            load_dram_config(path)

    def test_misc_config(self, tmp_path):
        path = tmp_path / "misc.cfg"
        path.write_text("iterations = 3\nptw_upper_bound = 2\n")
        cfg = load_misc_config(path)
        assert cfg.iterations == 3
        assert cfg.ptw_upper_bound == 2

    def test_validation_still_applies(self, tmp_path):
        path = tmp_path / "m.cfg"
        path.write_text("page_bytes = 12345\n")
        with pytest.raises(ValueError, match="page size"):
            load_npumem_config(path)


class TestShippedConfigs:
    """The configs/ directory must stay loadable (it feeds the CLI docs)."""

    def test_arch_configs(self):
        mini = load_arch_config(REPO_CONFIGS / "arch_config" / "tpu_mini.cfg")
        full = load_arch_config(REPO_CONFIGS / "arch_config" / "tpu_full.cfg")
        assert mini.array_rows == 32
        assert full.array_rows == 128
        assert full.spm_bytes == 36 * 1024 * 1024

    def test_npumem_configs(self):
        mini = load_npumem_config(REPO_CONFIGS / "npumem_config" / "mini.cfg")
        full = load_npumem_config(REPO_CONFIGS / "npumem_config" / "full.cfg")
        assert mini.num_ptw == 1
        assert full.tlb_entries == 2048

    def test_dram_config(self):
        cfg = load_dram_config(REPO_CONFIGS / "dram_config" / "dual_hbm2_mini.cfg")
        assert cfg.channels == 8
        assert cfg.mapping.order[0] == "ch"

    def test_misc_config(self):
        cfg = load_misc_config(REPO_CONFIGS / "misc_config" / "dual.cfg")
        assert cfg.iterations == 0

"""Tests for RunSpec descriptors and the parallel sharded run_many path."""

import dataclasses
import os
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.sharing import SharingLevel
from repro.experiments.runner import JOURNAL_NAME, ExperimentRunner
from repro.experiments.spec import RESULTS_VERSION, RunSpec
from repro.models.layers import DenseLayer, Network
from repro.models.serving import ServingParams


def _tiny(name="tiny", dims=(16, 32, 16)):
    return Network(name, (DenseLayer("l0", *dims),))


class TestCacheKey:
    def test_same_spec_same_key(self):
        assert RunSpec.solo("ncf").cache_key() == RunSpec.solo("ncf").cache_key()

    def test_equal_specs_are_interchangeable(self):
        a = RunSpec.mix(("ncf", "gpt2"), SharingLevel.DWT)
        b = RunSpec.mix(["ncf", "gpt2"], "DWT")
        assert a == b
        assert hash(a) == hash(b)
        assert a.cache_key() == b.cache_key()

    def test_key_stable_across_processes(self):
        spec = RunSpec.mix(("ncf", "gpt2"), SharingLevel.DW, page_bytes=65536)
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(RunSpec.cache_key, spec).result()
        assert remote == spec.cache_key()

    def test_any_field_change_changes_key(self):
        base = RunSpec.mix(("ncf", "gpt2"), SharingLevel.DWT)
        variants = [
            RunSpec.mix(("ncf", "ncf"), SharingLevel.DWT),
            RunSpec.mix(("ncf", "gpt2"), SharingLevel.D),
            RunSpec.mix(("ncf", "gpt2"), SharingLevel.DWT, page_bytes=65536),
            RunSpec.mix(("ncf", "gpt2"), SharingLevel.DWT, translation=False),
            RunSpec.mix(("ncf", "gpt2"), SharingLevel.DWT, scale="full"),
            RunSpec.mix(("ncf", "gpt2"), SharingLevel.D, ptw_split=(1, 3)),
            RunSpec.mix(("ncf", "gpt2"), SharingLevel.DWT, dataflow="ws"),
            RunSpec.mix(("ncf", "gpt2"), SharingLevel.DWT, dataflow="is"),
            RunSpec.mix(("ncf", "gpt2"), SharingLevel.DWT, phase="decode"),
            RunSpec.mix(
                ("ncf", "gpt2"),
                SharingLevel.DWT,
                phase="decode",
                serving=ServingParams(experts=8),
            ),
            dataclasses.replace(base, version=RESULTS_VERSION + 1),
        ]
        keys = {spec.cache_key() for spec in variants}
        assert base.cache_key() not in keys
        assert len(keys) == len(variants)

    def test_solo_descriptor_matches_legacy_format(self):
        # The exact dict the pre-RunSpec runner hashed; cached results
        # written by old versions must stay addressable.
        assert RunSpec.solo("ncf").descriptor() == {
            "version": RESULTS_VERSION,
            "kind": "solo",
            "scale": "mini",
            "workload": "ncf",
            "channels": 4,
            "num_ptw": 1,
            "tlb_entries": 64,
            "page_bytes": 4096,
            "translation": True,
        }

    def test_mix_descriptor_matches_legacy_format(self):
        spec = RunSpec.mix(("ncf", "gpt2"), SharingLevel.DWT)
        assert spec.descriptor() == {
            "version": RESULTS_VERSION,
            "kind": "mix",
            "scale": "mini",
            "workloads": ["ncf", "gpt2"],
            "sharing": "DWT",
            "page_bytes": 4096,
            "translation": True,
            "ptw_split": None,
            "num_ptw_per_core": None,
            "tlb_entries_per_core": None,
        }

    def test_default_dataflow_is_omitted_from_descriptor(self):
        # Specs at the default engine must keep producing the pre-axis
        # descriptor byte-for-byte — pinned by the legacy-format tests
        # above and by the golden shard hashes.
        assert "dataflow" not in RunSpec.solo("ncf").descriptor()
        assert "dataflow" not in RunSpec.mix(
            ("ncf", "gpt2"), SharingLevel.DWT
        ).descriptor()

    def test_non_default_dataflow_lands_in_descriptor_and_label(self):
        spec = RunSpec.solo("ncf", dataflow="is")
        descriptor = spec.descriptor()
        assert descriptor["dataflow"] == "is"
        assert list(descriptor)[-1] == "dataflow"
        assert spec.label.endswith(" df=is")
        assert spec.cache_key() != RunSpec.solo("ncf").cache_key()

    def test_unknown_dataflow_rejected(self):
        with pytest.raises(ValueError, match="registered engines"):
            RunSpec.solo("ncf", dataflow="rs")

    def test_dataflow_threads_into_system_config(self):
        solo = RunSpec.solo("ncf", dataflow="ws").system()
        assert all(arch.dataflow == "ws" for arch in solo.arch)
        mix = RunSpec.mix(
            ("ncf", "gpt2"), SharingLevel.DWT, dataflow="is"
        ).system()
        assert all(arch.dataflow == "is" for arch in mix.arch)

    def test_unresolved_solo_refuses_key(self, tmp_path):
        bare = RunSpec(kind="solo", workloads=("ncf",))
        assert not bare.is_resolved
        with pytest.raises(ValueError, match="unresolved"):
            bare.cache_key()
        resolved = ExperimentRunner(cache_dir=tmp_path).plan(bare)
        assert resolved == RunSpec.solo("ncf")


class TestValidation:
    def test_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            RunSpec(kind="duo", workloads=("ncf",))

    def test_solo_takes_one_workload(self):
        with pytest.raises(ValueError, match="exactly one"):
            RunSpec(kind="solo", workloads=("ncf", "gpt2"))

    def test_solo_rejects_sharing(self):
        with pytest.raises(ValueError, match="uncontended"):
            RunSpec(kind="solo", workloads=("ncf",), sharing="DWT")

    def test_mix_needs_sharing(self):
        with pytest.raises(ValueError, match="sharing level"):
            RunSpec(kind="mix", workloads=("ncf", "gpt2"))

    def test_mix_rejects_uncontended_level(self):
        with pytest.raises(ValueError, match="no dynamic contention"):
            RunSpec.mix(("ncf", "gpt2"), SharingLevel.STATIC)

    def test_mix_rejects_resource_slice(self):
        with pytest.raises(ValueError, match="solo-only"):
            RunSpec(kind="mix", workloads=("ncf", "gpt2"), sharing="DWT", channels=8)

    def test_ptw_split_arity(self):
        with pytest.raises(ValueError, match="per core"):
            RunSpec.mix(("ncf", "gpt2"), SharingLevel.D, ptw_split=(1,))

    def test_system_round_trip(self):
        solo = RunSpec.ideal("ncf", 2).system()
        assert len(solo.arch) == 1
        assert solo.dram.channels == 8
        assert solo.npumem[0].num_ptw == 2
        mix = RunSpec.mix(("ncf", "gpt2"), SharingLevel.DW).system()
        assert len(mix.arch) == 2
        assert mix.share_dram and mix.share_ptw and not mix.share_tlb
        assert mix.misc.iterations == 1
        split = RunSpec.mix(
            ("ncf", "gpt2"), SharingLevel.D, ptw_split=(1, 3), num_ptw_per_core=2
        ).system()
        assert not split.share_ptw
        assert split.ptw_assignment == (1, 3)
        assert split.npumem[0].num_ptw == 2


class TestServingSpec:
    """Serving fields ride the same descriptor-omission contract as
    dataflow/replay_mode: absent at defaults, so every pre-serving cache
    key survives; present (and key-changing) whenever set."""

    def test_defaults_are_omitted_from_descriptor(self):
        for spec in (
            RunSpec.solo("ncf"),
            RunSpec.mix(("ncf", "gpt2"), SharingLevel.DWT),
            RunSpec.mix(("gpt2:prefill", "gpt2:decode"), SharingLevel.DWT),
        ):
            descriptor = spec.descriptor()
            assert "phase" not in descriptor
            assert "serving" not in descriptor

    def test_default_params_normalize_to_none(self):
        # serving=ServingParams() means "all defaults" — the spec must
        # dedupe and key identically to the spec that never set it.
        explicit = RunSpec.mix(
            ("gpt2:prefill", "gpt2:decode"),
            SharingLevel.DWT,
            serving=ServingParams(),
        )
        implicit = RunSpec.mix(("gpt2:prefill", "gpt2:decode"), SharingLevel.DWT)
        assert explicit.serving is None
        assert explicit == implicit
        assert explicit.cache_key() == implicit.cache_key()

    def test_non_default_serving_lands_in_descriptor_and_label(self):
        spec = RunSpec.mix(
            ("gpt2:prefill", "gpt2:decode"),
            SharingLevel.DWT,
            serving=ServingParams(moe_skew="zipf"),
        )
        descriptor = spec.descriptor()
        assert descriptor["serving"]["moe_skew"] == "zipf"
        assert "srv[moe_skew=zipf]" in spec.label

    def test_phase_lands_in_descriptor_and_label(self):
        spec = RunSpec.solo("gpt2", phase="prefill")
        assert spec.descriptor()["phase"] == "prefill"
        assert " ph=prefill" in spec.label
        assert spec.cache_key() != RunSpec.solo("gpt2").cache_key()

    def test_phase_needs_a_bare_serving_base(self):
        with pytest.raises(ValueError, match="bare serving-base"):
            RunSpec.solo("ncf", phase="prefill")
        with pytest.raises(ValueError, match="bare serving-base"):
            # already qualified: nothing left for the default to bind to
            RunSpec.solo("gpt2:prefill", phase="decode")

    def test_serving_params_need_a_serving_workload(self):
        with pytest.raises(ValueError, match="serving workload"):
            RunSpec.mix(
                ("ncf", "dlrm"),
                SharingLevel.DWT,
                serving=ServingParams(experts=8),
            )

    def test_bad_workload_names_rejected(self):
        with pytest.raises(ValueError, match="no serving frontend"):
            RunSpec.solo("ncf:prefill")
        with pytest.raises(ValueError, match="unknown phase"):
            RunSpec.solo("gpt2:flarp")
        with pytest.raises(ValueError, match="unknown phase"):
            RunSpec.solo("gpt2", phase="warmup")

    def test_runner_defaults_bind_only_to_serving_workloads(self, tmp_path):
        runner = ExperimentRunner(
            cache_dir=tmp_path,
            phase="decode",
            serving=ServingParams(moe_skew="zipf"),
        )
        bound = runner.plan_solo("gpt2")
        assert bound.phase == "decode"
        assert bound.serving == ServingParams(moe_skew="zipf")
        # Non-serving workloads planned through the same runner must not
        # inherit the defaults (they would fail RunSpec validation).
        plain = runner.plan_solo("ncf")
        assert plain.phase is None and plain.serving is None
        qualified = runner.plan_mix(
            ("gpt2:prefill", "gpt2:decode"), SharingLevel.DWT
        )
        assert qualified.phase is None
        assert qualified.serving == ServingParams(moe_skew="zipf")


def _sweep_specs(runner, dims=(16, 32, 16)):
    """A small dual-mix sweep (8 unique cold specs) over registered nets."""
    for name in ("wa", "wb"):
        runner.register_network(_tiny(name, dims))
    specs = [
        runner.plan_mix(("wa", "wb"), level)
        for level in (SharingLevel.D, SharingLevel.DW, SharingLevel.DWT)
    ]
    specs += [
        runner.plan_mix(("wa", "wa"), SharingLevel.DWT),
        runner.plan_mix(("wb", "wb"), SharingLevel.DWT),
        runner.plan_solo("wa"),
        runner.plan_solo("wb"),
        runner.plan_ideal("wa", 2),
    ]
    return specs


class TestRunMany:
    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        serial = ExperimentRunner(cache_dir=tmp_path / "serial")
        parallel = ExperimentRunner(cache_dir=tmp_path / "parallel")
        serial_results = serial.run_many(_sweep_specs(serial), jobs=1)
        parallel_results = parallel.run_many(_sweep_specs(parallel), jobs=4)
        assert serial_results == parallel_results
        assert serial.runs_executed == parallel.runs_executed == 8
        # The sweep journal logs wall-clock timestamps and job counts;
        # the byte-identity contract covers the cache artifacts (result
        # shards, trace shards, checksum sidecars), not the execution log.
        def artifacts(runner):
            return sorted(
                p.relative_to(runner.cache_dir)
                for p in runner.cache_dir.rglob("*")
                if p.is_file() and p.name != JOURNAL_NAME
            )

        serial_files = artifacts(serial)
        parallel_files = artifacts(parallel)
        assert serial_files == parallel_files
        for name in serial_files:
            assert (serial.cache_dir / name).read_bytes() == (
                parallel.cache_dir / name
            ).read_bytes()

    def test_batch_is_deduplicated(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        specs = _sweep_specs(runner)
        results = runner.run_many(specs + list(reversed(specs)), jobs=1)
        assert runner.runs_executed == len(results) == len(set(specs))

    def test_second_batch_is_all_cache_hits(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        first = runner.run_many(_sweep_specs(runner), jobs=1)
        events = []
        again = runner.run_many(_sweep_specs(runner), jobs=4, progress=events.append)
        assert again == first
        assert runner.runs_executed == 8
        # One summary event: everything completed before any cold run.
        assert [e.completed for e in events] == [8]
        assert events[0].cache_hits == 8

    def test_progress_reports_every_completion(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        events = []
        runner.run_many(_sweep_specs(runner), jobs=1, progress=events.append)
        # Initial summary + one event per cold run, monotonically complete.
        assert [e.completed for e in events] == list(range(9))
        assert events[-1].total == 8
        assert all(e.spec is not None for e in events[1:])

    def test_wrappers_agree_with_run_many(self, tmp_path):
        batch = ExperimentRunner(cache_dir=tmp_path / "a")
        legacy = ExperimentRunner(cache_dir=tmp_path / "b")
        results = batch.run_many(_sweep_specs(batch), jobs=4)
        for name in ("wa", "wb"):
            legacy.register_network(_tiny(name))
        assert legacy.solo("wa") == results[batch.plan_solo("wa")][0]
        assert legacy.ideal("wa", 2) == results[batch.plan_ideal("wa", 2)][0]
        assert (
            legacy.mix(("wa", "wb"), SharingLevel.DWT)
            == results[batch.plan_mix(("wa", "wb"), SharingLevel.DWT)]
        )

    def test_figure_planner_prefetches_everything(self, tmp_path, monkeypatch):
        # After one run_many over the planner's specs, the reducer must
        # be served entirely from cache: zero additional cold runs.
        from repro.experiments import figures
        from repro.models import zoo

        monkeypatch.setattr(zoo, "NAMES", ("wa", "wb"))
        runner = ExperimentRunner(cache_dir=tmp_path)
        for name in ("wa", "wb"):
            runner.register_network(_tiny(name))
        mixes = [("wa", "wa"), ("wa", "wb")]
        runner.run_many(figures.sharing_sweep_specs(runner, 2, mixes), jobs=1)
        executed = runner.runs_executed
        data = figures.fig4_dual_performance(runner, mixes)
        assert runner.runs_executed == executed
        assert set(data["overall"]) == {"Static", "+D", "+DW", "+DWT"}

    def test_runner_dataflow_default_applies_to_planned_specs(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path, dataflow="ws")
        assert runner.plan_solo("ncf").dataflow == "ws"
        assert runner.plan_ideal("ncf", 2).dataflow == "ws"
        assert runner.plan_mix(("ncf", "gpt2"), SharingLevel.DWT).dataflow == "ws"
        # Explicit per-spec engines always win over the runner default.
        assert runner.plan_solo("ncf", dataflow="is").dataflow == "is"
        # plan() must not touch an already-specified dataflow, or batch
        # re-planning inside run_many would clobber per-spec engines.
        explicit = RunSpec.solo("ncf", dataflow="is")
        assert runner.plan(explicit).dataflow == "is"

    def test_dataflow_compare_reduces_cached_batch(self, tmp_path, monkeypatch):
        from repro.compute.dataflow import registered_dataflows
        from repro.experiments import figures
        from repro.models import zoo

        monkeypatch.setattr(zoo, "NAMES", ("wa", "wb"))
        runner = ExperimentRunner(cache_dir=tmp_path)
        for name in ("wa", "wb"):
            runner.register_network(_tiny(name))
        data = figures.dataflow_compare(runner)
        engines = list(registered_dataflows())
        assert data["dataflows"] == engines
        assert runner.runs_executed == 2 * len(engines)
        for name in ("wa", "wb"):
            assert set(data["cycles"][name]) == set(engines)
            assert data["speedup_vs_os"][name]["os"] == 1.0
        assert data["overall"]["os"] == 1.0
        # Re-reducing is served entirely from cache.
        again = figures.dataflow_compare(runner)
        assert again == data
        assert runner.runs_executed == 2 * len(engines)

    @pytest.mark.skipif(
        len(os.sched_getaffinity(0)) < 2,
        reason="parallel speedup needs at least two CPUs",
    )
    def test_parallel_beats_serial_on_cold_cache(self, tmp_path):
        # Heavy enough that per-run simulation dwarfs pool startup.
        dims = (512, 512, 512)
        serial = ExperimentRunner(cache_dir=tmp_path / "serial")
        begin = time.monotonic()
        serial_results = serial.run_many(_sweep_specs(serial, dims), jobs=1)
        serial_elapsed = time.monotonic() - begin
        parallel = ExperimentRunner(cache_dir=tmp_path / "parallel")
        begin = time.monotonic()
        parallel_results = parallel.run_many(_sweep_specs(parallel, dims), jobs=4)
        parallel_elapsed = time.monotonic() - begin
        assert parallel_results == serial_results
        assert parallel_elapsed < serial_elapsed * 0.8, (
            f"jobs=4 took {parallel_elapsed:.2f}s vs "
            f"serial {serial_elapsed:.2f}s on a cold 8-run sweep"
        )

"""Tests for the artifact-style request-log tracing."""

from repro.config.arch import ArchConfig
from repro.config.dram import DramConfig
from repro.config.misc import MiscConfig
from repro.config.npumem import NpuMemConfig
from repro.config.system import SystemConfig
from repro.core.simulator import MultiCoreNPUSim
from repro.core.tracing import TraceLogger
from repro.models.layers import DenseLayer, Network


def _system(cores=1):
    arch = ArchConfig(
        name="t", array_rows=8, array_cols=8, spm_bytes=16 * 1024,
        dram_transaction_bytes=64,
    )
    npumem = NpuMemConfig(tlb_entries=16, tlb_assoc=4, num_ptw=1, pwc_entries=8)
    return SystemConfig(
        arch=(arch,) * cores,
        npumem=(npumem,) * cores,
        dram=DramConfig(channels=2, channel_bytes_per_cycle=16),
        misc=MiscConfig(iterations=1),
    )


def _net(name="w"):
    return Network(name, (DenseLayer(f"{name}_l0", 32, 64, 32),))


def _traced_run(cores=1):
    sim = MultiCoreNPUSim(
        _system(cores), [_net(f"w{i}") for i in range(cores)], trace_requests=True
    )
    result = sim.run(max_ticks=50_000_000)
    assert sim.tracer is not None
    return sim, result


class TestTraceLogger:
    def test_dram_log_matches_controller_stats(self):
        sim, _ = _traced_run()
        assert len(sim.tracer.dram) == sim.dram.stats.requests
        assert all(e.end_tick >= e.start_tick for e in sim.tracer.dram)

    def test_tlb_log_matches_mmu_stats(self):
        sim, _ = _traced_run()
        stats = sim.mmu.stats[0]
        outcomes = [e.outcome for e in sim.tracer.tlb]
        assert outcomes.count("hit") == stats.hits
        assert outcomes.count("miss") == stats.walks_started
        assert outcomes.count("coalesced") == stats.coalesced

    def test_ptw_log_matches_walk_stats(self):
        sim, _ = _traced_run()
        assert len(sim.tracer.ptw) == sim.walkers.stats[0].walks
        for entry in sim.tracer.ptw:
            assert entry.enqueue_tick <= entry.start_tick <= entry.end_tick
            assert entry.dram_reads >= 1

    def test_walk_dram_reads_flagged(self):
        sim, _ = _traced_run()
        walk_reads = [e for e in sim.tracer.dram if e.is_walk]
        assert walk_reads
        assert all(not e.write for e in walk_reads)
        logged_levels = sum(e.dram_reads for e in sim.tracer.ptw)
        assert len(walk_reads) == logged_levels

    def test_dram_bytes_by_core(self):
        sim, result = _traced_run()
        by_core = sim.tracer.dram_bytes_by_core(64)
        assert by_core[0] == sim.dram.stats.bytes_per_core[0]

    def test_walk_latencies(self):
        sim, _ = _traced_run()
        latencies = sim.tracer.walk_latencies(0)
        assert len(latencies) == len(sim.tracer.ptw)
        assert all(value > 0 for value in latencies)

    def test_write_files_layout(self, tmp_path):
        sim, _ = _traced_run(cores=2)
        written = sim.tracer.write_files(tmp_path / "dramsim_output")
        names = {path.name for path in written}
        assert {"dram.log", "dramreq.log", "tlb0.log", "tlb0_ptw.log",
                "tlb1.log", "tlb1_ptw.log"} <= names
        dram_lines = (tmp_path / "dramsim_output" / "dram.log").read_text().splitlines()
        assert len(dram_lines) == len(sim.tracer.dram)
        # dramreq.log is completion-ordered.
        ends = [
            int(line.split()[0])
            for line in (tmp_path / "dramsim_output" / "dramreq.log")
            .read_text()
            .splitlines()
        ]
        assert ends == sorted(ends)

    def test_untraced_run_has_no_logger(self):
        sim = MultiCoreNPUSim(_system(), [_net()])
        assert sim.tracer is None
        sim.run(max_ticks=50_000_000)

    def test_logger_standalone_write_empty(self, tmp_path):
        logger = TraceLogger()
        written = logger.write_files(tmp_path)
        assert len(written) == 2  # dram.log + dramreq.log, no cores

"""Unit tests for the DRAM model: banks, channels, controller, stats."""

import pytest

from repro.config.dram import DramConfig
from repro.core.engine import Engine
from repro.dram.channel import FR_WINDOW
from repro.dram.controller import DramController
from repro.dram.stats import BandwidthTrace, DramStats

TXN = 64


def _controller(engine, *, channels=2, cores=None, trace=None, **cfg_kwargs):
    cfg = DramConfig(channels=channels, channel_bytes_per_cycle=32, **cfg_kwargs)
    cores = cores or {0: tuple(range(channels))}
    return DramController(
        cfg, engine, transaction_bytes=TXN, channels_per_core=cores,
        trace_window_ticks=trace,
    )


def _drain(engine, controller, requests):
    """Submit (core, addr, write) triples; return completion times by index."""
    done = {}
    for index, (core, addr, write) in enumerate(requests):
        controller.submit(
            core, addr, write, callback=lambda i=index: done.setdefault(i, engine.now)
        )
    engine.run()
    return done


class TestAddressDecomposition:
    def test_consecutive_transactions_stripe_channels(self):
        engine = Engine()
        controller = _controller(engine, channels=4, cores={0: (0, 1, 2, 3)})
        channels = [controller.decompose(0, i * TXN)[0] for i in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_partitioned_core_stays_in_its_channels(self):
        engine = Engine()
        controller = _controller(
            engine, channels=4, cores={0: (0, 1), 1: (2, 3)}
        )
        for i in range(64):
            assert controller.decompose(0, i * TXN)[0] in (0, 1)
            assert controller.decompose(1, i * TXN)[0] in (2, 3)

    def test_row_changes_with_high_bits(self):
        engine = Engine()
        controller = _controller(engine)
        cfg = controller.cfg
        span = (
            len(controller.channels_per_core[0])
            * (cfg.row_bytes // TXN)
            * cfg.banks_per_channel
        )
        _, _, row0 = controller.decompose(0, 0)
        _, _, row1 = controller.decompose(0, span * TXN)
        assert row1 == row0 + 1

    def test_decompose_is_deterministic(self):
        engine = Engine()
        controller = _controller(engine)
        assert controller.decompose(0, 12345 * TXN) == controller.decompose(
            0, 12345 * TXN
        )

    def test_bank_in_range(self):
        engine = Engine()
        controller = _controller(engine)
        for i in range(0, 4096, 7):
            _, bank, row = controller.decompose(0, i * TXN)
            assert 0 <= bank < controller.cfg.banks_per_channel
            assert 0 <= row < controller.cfg.rows_per_bank


class TestChannelTiming:
    def test_single_read_latency(self):
        engine = Engine()
        controller = _controller(engine, refresh_enabled=False)
        done = _drain(engine, controller, [(0, 0, False)])
        timing = controller.cfg.timing
        burst = controller.cfg.burst_cycles(TXN)
        # Closed bank: ACT + tRCD + tCL + burst.
        assert done[0] == timing.tRCD + timing.tCL + burst

    def test_row_hits_pipeline_on_data_bus(self):
        engine = Engine()
        controller = _controller(engine, channels=1, refresh_enabled=False)
        # Same row: requests separated by burst length once the pipe fills.
        reqs = [(0, i * TXN, False) for i in range(8)]
        done = _drain(engine, controller, reqs)
        times = [done[i] for i in range(8)]
        burst = controller.cfg.burst_cycles(TXN)
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert deltas[-1] == burst

    def test_row_misses_slower_than_hits(self):
        engine = Engine()
        controller = _controller(engine, channels=1, refresh_enabled=False)
        row_span = (
            (controller.cfg.row_bytes // TXN) * TXN
            * controller.cfg.banks_per_channel
        )
        same_row = [(0, i * TXN, False) for i in range(4)]
        alt_rows = [
            (0, (i % 2) * row_span * controller.cfg.rows_per_bank // 2 + 0, False)
            for i in range(4)
        ]
        t_hit = max(
            _drain(
                Engine(), _controller(Engine(), channels=1, refresh_enabled=False), []
            ).values(),
            default=0,
        )
        engine_a = Engine()
        ctrl_a = _controller(engine_a, channels=1, refresh_enabled=False)
        done_a = _drain(engine_a, ctrl_a, same_row)
        assert ctrl_a.stats.row_hits >= 3

    def test_bandwidth_capped_at_peak(self):
        engine = Engine()
        controller = _controller(engine, channels=1, refresh_enabled=False)
        count = 200
        reqs = [(0, i * TXN, False) for i in range(count)]
        done = _drain(engine, controller, reqs)
        elapsed = max(done.values())
        achieved = count * TXN / elapsed
        peak = controller.cfg.channel_bytes_per_cycle
        assert achieved <= peak + 1e-9
        assert achieved > 0.8 * peak  # streaming reads should come close

    def test_two_channels_double_throughput(self):
        def run(channels):
            engine = Engine()
            controller = _controller(
                engine, channels=channels, cores={0: tuple(range(channels))},
                refresh_enabled=False,
            )
            reqs = [(0, i * TXN, False) for i in range(256)]
            done = _drain(engine, controller, reqs)
            return max(done.values())
        assert run(1) > 1.8 * run(2)

    def test_writes_counted_separately(self):
        engine = Engine()
        controller = _controller(engine, refresh_enabled=False)
        _drain(engine, controller, [(0, 0, False), (0, TXN, True)])
        assert controller.stats.reads == 1
        assert controller.stats.writes == 1

    def test_refresh_fires_periodically(self):
        engine = Engine()
        controller = _controller(engine, channels=1)
        timing = controller.cfg.timing
        # Enough back-to-back traffic to cross several tREFI windows.
        count = 3 * timing.tREFI // controller.cfg.burst_cycles(TXN)
        reqs = [(0, i * TXN, False) for i in range(count)]
        _drain(engine, controller, reqs)
        assert controller.stats.refreshes >= 2

    def test_walk_priority_overtakes_data(self):
        engine = Engine()
        controller = _controller(engine, channels=1, refresh_enabled=False)
        done = []
        for i in range(FR_WINDOW):
            controller.submit(
                0, i * TXN, False, callback=lambda i=i: done.append(f"d{i}")
            )
        controller.submit(
            0, 99 * TXN, False, callback=lambda: done.append("walk"), is_walk=True
        )
        engine.run()
        # The walk entered last but must complete before most data bursts.
        assert done.index("walk") < FR_WINDOW // 2


class TestStats:
    def test_bandwidth_trace_windows(self):
        trace = BandwidthTrace(window_ticks=10)
        trace.record(5, 64)
        trace.record(25, 64)
        series = trace.series()
        assert series == [(0, 64), (10, 0), (20, 64)]

    def test_utilization_normalized(self):
        trace = BandwidthTrace(window_ticks=10)
        trace.record(5, 320)
        series = trace.utilization_series(peak_bytes_per_tick=32.0)
        assert series[0][1] == pytest.approx(1.0)

    def test_empty_trace(self):
        assert BandwidthTrace(window_ticks=10).series() == []

    def test_dram_stats_rates(self):
        stats = DramStats()
        assert stats.row_hit_rate == 0.0
        stats.row_hits = 3
        stats.row_misses = 1
        assert stats.row_hit_rate == 0.75
        assert stats.avg_queueing_ticks() == 0.0


class TestControllerValidation:
    def test_rejects_core_without_channels(self):
        engine = Engine()
        with pytest.raises(ValueError):
            _controller(engine, cores={0: ()})

    def test_rejects_invalid_channel(self):
        engine = Engine()
        with pytest.raises(ValueError):
            _controller(engine, channels=2, cores={0: (5,)})

    def test_peak_bytes_per_tick(self):
        engine = Engine()
        controller = _controller(engine, channels=2, cores={0: (0,), 1: (1,)})
        assert controller.peak_bytes_per_tick() == 64
        assert controller.peak_bytes_per_tick(core=0) == 32

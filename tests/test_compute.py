"""Unit tests for the systolic timing model, tiling, and request generation."""

import pytest

from repro.compute.dataflow import get_engine
from repro.compute.requestgen import RequestGenerator, Run
from repro.compute.systolic import gemm_on_array, os_pass_cycles
from repro.compute.tiling import (
    TileShape,
    choose_tile_shape,
    tile_count,
    tiles_for_gemm,
)
from repro.config.arch import ArchConfig
from repro.models.layers import DenseLayer, EmbeddingLayer, GemmOp, Network

ARCH = ArchConfig(
    name="t", array_rows=8, array_cols=8, spm_bytes=8192,
    dram_transaction_bytes=64,
)


class TestSystolic:
    def test_pass_cycles_formula(self):
        # SCALE-Sim OS: 2R + C + k - 2.
        assert os_pass_cycles(8, 8, 10) == 16 + 8 + 10 - 2

    def test_pass_cycles_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            os_pass_cycles(0, 8, 1)

    def test_single_pass_gemm(self):
        est = get_engine("os").estimate(ARCH, 8, 16, 8)
        assert est.cycles == os_pass_cycles(8, 8, 16)
        assert est.macs == 8 * 16 * 8

    def test_multi_pass_scales_linearly(self):
        one = get_engine("os").estimate(ARCH, 8, 16, 8)
        four = get_engine("os").estimate(ARCH, 16, 16, 16)
        assert four.cycles == 4 * one.cycles

    def test_utilization_bounded(self):
        est = get_engine("os").estimate(ARCH, 8, 128, 8)
        assert 0 < est.pe_utilization <= 1.0

    def test_small_m_wastes_pes(self):
        # M=1 fills one array row: utilization <= 1/8 of the full-M case.
        small = get_engine("os").estimate(ARCH, 1, 64, 8)
        full = get_engine("os").estimate(ARCH, 8, 64, 8)
        assert small.pe_utilization <= full.pe_utilization / 7.9


class TestTileShape:
    def test_footprint(self):
        shape = TileShape(2, 3, 4)
        assert shape.footprint_elems() == 2 * 4 + 4 * 3 + 2 * 3


class TestChooseTileShape:
    def test_small_gemm_is_single_tile(self):
        gemm = GemmOp("g", 8, 8, 8)
        shape = choose_tile_shape(gemm, ARCH)
        assert (shape.tm, shape.tn, shape.tk) == (8, 8, 8)

    def test_tile_fits_half_spm(self):
        gemm = GemmOp("g", 500, 500, 500)
        shape = choose_tile_shape(gemm, ARCH)
        budget = ARCH.half_spm_bytes // ARCH.element_bytes
        assert shape.footprint_elems() <= budget

    def test_slab_prefers_full_width_n(self):
        # N small enough to keep full-width: Tn == N.
        gemm = GemmOp("g", 1000, 1000, 40)
        shape = choose_tile_shape(gemm, ARCH)
        assert shape.tn == 40
        assert shape.footprint_elems() <= ARCH.half_spm_bytes

    def test_wide_n_falls_back_to_square(self):
        gemm = GemmOp("g", 1000, 100000, 1000)
        shape = choose_tile_shape(gemm, ARCH)
        assert shape.tn < gemm.n
        assert shape.footprint_elems() <= ARCH.half_spm_bytes

    def test_impossible_budget_raises(self):
        arch = ArchConfig(
            name="t", array_rows=2, array_cols=2, spm_bytes=256,
            dram_transaction_bytes=64,
        )
        gemm = GemmOp("g", 10000, 10000, 10000)
        shape = choose_tile_shape(gemm, arch)  # should still find a tiny tile
        assert shape.footprint_elems() <= 128


class TestTilesForGemm:
    def test_covers_iteration_space_exactly(self):
        gemm = GemmOp("g", 10, 7, 9)
        shape = TileShape(4, 3, 4)
        tiles = list(tiles_for_gemm(gemm, shape))
        assert len(tiles) == tile_count(gemm, shape)
        total_macs = sum(tile.macs for tile in tiles)
        assert total_macs == gemm.macs

    def test_reduction_is_innermost_and_flagged(self):
        gemm = GemmOp("g", 4, 10, 4)  # (m=4, k=10, n=4)
        shape = TileShape(4, 4, 4)
        tiles = list(tiles_for_gemm(gemm, shape))
        assert [t.last_k for t in tiles] == [False, False, True]
        assert [t.first_k for t in tiles] == [True, False, False]

    def test_edge_tiles_clipped(self):
        gemm = GemmOp("g", 5, 5, 5)
        shape = TileShape(4, 4, 4)
        tiles = list(tiles_for_gemm(gemm, shape))
        assert {t.tm for t in tiles} == {4, 1}
        assert all(t.tk in (4, 1) for t in tiles)


class TestRequestGenerator:
    def _gen(self, layers, arch=ARCH):
        return RequestGenerator(Network("n", tuple(layers)), arch)

    def test_run_validation(self):
        with pytest.raises(ValueError):
            Run(addr=-1, count=1, write=False)
        with pytest.raises(ValueError):
            Run(addr=0, count=0, write=False)

    def test_traffic_covers_operands(self):
        gen = self._gen([DenseLayer("a", 16, 16, 16)])
        tiles = list(gen.all_tiles())
        assert len(tiles) == 1  # fits in half SPM (768 B)
        traffic = tiles[0]
        # One read of A (256 B) + B (256 B), one write of C (256 B).
        assert traffic.read_txns == (256 + 256) // 64
        assert traffic.write_txns == 256 // 64

    def test_writes_only_on_last_k_step(self):
        gen = self._gen([DenseLayer("a", 32, 300, 32)])
        tiles = list(gen.all_tiles())
        assert len(tiles) > 1
        for traffic in tiles:
            if traffic.tile.last_k:
                assert traffic.write_txns > 0
            else:
                assert traffic.write_txns == 0

    def test_addresses_transaction_aligned(self):
        gen = self._gen([DenseLayer("a", 33, 70, 9)])
        for traffic in gen.all_tiles():
            for run in traffic.reads + traffic.writes:
                assert run.addr % 64 == 0

    def test_layer_regions_do_not_overlap(self):
        gen = self._gen(
            [DenseLayer("a", 16, 16, 16), DenseLayer("b", 16, 16, 16)]
        )
        tiles = list(gen.all_tiles())
        layer0 = {
            run.addr
            for t in tiles if t.layer_index == 0
            for run in t.reads + t.writes
        }
        layer1 = {
            run.addr
            for t in tiles if t.layer_index == 1
            for run in t.reads + t.writes
        }
        assert not layer0 & layer1

    def test_summary_consistent_with_tiles(self):
        gen = self._gen([DenseLayer("a", 40, 60, 20)])
        summary = gen.summary()
        read = sum(t.read_txns for t in gen.all_tiles())
        write = sum(t.write_txns for t in gen.all_tiles())
        assert summary["read_txns"] == read
        assert summary["write_txns"] == write
        assert summary["traffic_bytes"] == (read + write) * 64
        assert 0 < summary["pe_utilization"] <= 1

    def test_scatter_rows_spread_beyond_contiguous_span(self):
        emb = EmbeddingLayer("e", lookups=8, dim=64, batch=16)
        gen = self._gen([emb])
        addrs = {
            run.addr
            for t in gen.all_tiles()
            for run in t.reads
        }
        gemm = emb.to_gemm()
        contiguous_span = gemm.k * gemm.n  # bytes if packed
        span = max(addrs) - min(addrs)
        assert span > contiguous_span

    def test_memory_footprint_positive_and_aligned(self):
        gen = self._gen([DenseLayer("a", 16, 16, 16)])
        assert gen.memory_footprint_bytes > 0
        assert gen.memory_footprint_bytes % (1 << 20) == 0

    def test_deterministic(self):
        gen1 = self._gen([DenseLayer("a", 64, 64, 64)])
        gen2 = self._gen([DenseLayer("a", 64, 64, 64)])
        runs1 = [run for t in gen1.all_tiles() for run in t.reads + t.writes]
        runs2 = [run for t in gen2.all_tiles() for run in t.reads + t.writes]
        assert runs1 == runs2


class TestDeprecatedGemmShim:
    """``gemm_on_array`` stays working but warns and routes via the registry."""

    def test_warns_and_matches_os_engine(self):
        from repro.compute.dataflow import get_engine

        with pytest.warns(DeprecationWarning, match="gemm_on_array"):
            est = gemm_on_array(ARCH, 8, 16, 8)
        assert est == get_engine("os").estimate(ARCH, 8, 16, 8)

    def test_routes_through_arch_dataflow(self):
        from repro.compute.dataflow import get_engine

        ws_arch = ArchConfig(
            name="ws", array_rows=8, array_cols=8, spm_bytes=8192,
            dram_transaction_bytes=64, dataflow="ws",
        )
        with pytest.warns(DeprecationWarning):
            est = gemm_on_array(ws_arch, 8, 16, 100)
        assert est == get_engine("ws").estimate(ws_arch, 8, 16, 100)


class TestWeightStationary:
    WS_ARCH = ArchConfig(
        name="ws", array_rows=8, array_cols=8, spm_bytes=8192,
        dram_transaction_bytes=64, dataflow="ws",
    )

    def test_ws_fold_count(self):
        from repro.compute.systolic import ws_pass_cycles
        est = get_engine("ws").estimate(self.WS_ARCH, 8, 16, 100)
        # k=16 -> 2 row folds, m=8 -> 1 col fold.
        assert est.cycles == 2 * ws_pass_cycles(8, 8, 100)

    def test_ws_fold_count_clips_partial_folds(self):
        from repro.compute.systolic import ws_pass_cycles
        # k=20 -> 3 row folds (two full, one partial), m=10 -> 2 col folds.
        est = get_engine("ws").estimate(self.WS_ARCH, 10, 20, 100)
        assert est.cycles == 6 * ws_pass_cycles(8, 8, 100)

    def test_ws_beats_os_for_long_streams(self):
        # Large n amortizes the weight load: WS wins.
        ws = get_engine("ws").estimate(self.WS_ARCH, 8, 8, 4096)
        os_est = get_engine("os").estimate(ARCH, 8, 8, 4096)
        assert ws.cycles < os_est.cycles

    def test_os_beats_ws_for_deep_reductions(self):
        # Huge k with tiny n: OS accumulates in place, WS refolds weights.
        ws = get_engine("ws").estimate(self.WS_ARCH, 8, 4096, 4)
        os_est = get_engine("os").estimate(ARCH, 8, 4096, 4)
        assert os_est.cycles < ws.cycles

    def test_ws_utilization_bounded(self):
        est = get_engine("ws").estimate(self.WS_ARCH, 64, 64, 64)
        assert 0 < est.pe_utilization <= 1.0

    def test_ws_end_to_end_simulation(self):
        from repro.config.dram import DramConfig
        from repro.config.misc import MiscConfig
        from repro.config.npumem import NpuMemConfig
        from repro.config.system import SystemConfig
        from repro.core.simulator import MultiCoreNPUSim
        system = SystemConfig(
            arch=(self.WS_ARCH,),
            npumem=(NpuMemConfig(tlb_entries=16, tlb_assoc=4, num_ptw=1),),
            dram=DramConfig(channels=2, channel_bytes_per_cycle=16),
            misc=MiscConfig(iterations=1),
        )
        net = Network("w", (DenseLayer("l0", 32, 64, 32),))
        result = MultiCoreNPUSim(system, [net]).run(max_ticks=10_000_000)
        assert result.workloads[0].cycles > 0

"""Timeline tracer: ring buffers, span fan-out, Perfetto export schema.

The export checks validate against the Chrome trace-event JSON format
(the "JSON Object Format" Perfetto opens directly): every event needs a
``ph`` phase type, "X" complete events need ``ts`` + ``dur``, instants
carry a scope, and metadata events name processes and threads.
"""

from __future__ import annotations

import json

import pytest

from repro.core.simulator import MultiCoreNPUSim
from repro.core.tracing import TraceLogger
from repro.experiments.spec import RunSpec
from repro.models import zoo
from repro.obs import CounterRegistry, RingBuffer, TimelineTracer


class TestRingBuffer:
    def test_keeps_newest_and_counts_drops(self):
        ring: RingBuffer[int] = RingBuffer(capacity=3)
        for value in range(5):
            ring.append(value)
        assert list(ring) == [2, 3, 4]
        assert len(ring) == 3
        assert ring.pushed == 5
        assert ring.dropped == 2
        assert bool(ring)

    def test_empty_and_invalid_capacity(self):
        assert not RingBuffer(capacity=1)
        with pytest.raises(ValueError):
            RingBuffer(capacity=0)


def validate_chrome_trace(trace: dict) -> None:
    """Assert ``trace`` is well-formed Chrome trace-event JSON."""
    assert isinstance(trace["traceEvents"], list)
    named_threads: set[tuple[int, int]] = set()
    named_processes: set[int] = set()
    used: set[tuple[int, int]] = set()
    for event in trace["traceEvents"]:
        assert isinstance(event["name"], str) and event["name"]
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        phase = event["ph"]
        assert phase in ("X", "i", "M")
        if phase == "X":
            assert isinstance(event["ts"], int) and event["ts"] >= 0
            assert isinstance(event["dur"], int) and event["dur"] >= 0
            used.add((event["pid"], event["tid"]))
        elif phase == "i":
            assert event["s"] in ("t", "p", "g")
            assert isinstance(event["ts"], int)
            used.add((event["pid"], event["tid"]))
        else:
            assert event["name"] in ("process_name", "thread_name")
            assert isinstance(event["args"]["name"], str)
            if event["name"] == "process_name":
                named_processes.add(event["pid"])
            else:
                named_threads.add((event["pid"], event["tid"]))
    assert used <= named_threads, "every used (pid, tid) must be thread-named"
    assert {pid for pid, _ in used} <= named_processes


class TestTimelineTracer:
    def make_traced(self) -> TimelineTracer:
        tracer = TimelineTracer()
        tracer.log_dram(10, 20, 0x1000, core=0, channel=0, write=False, is_walk=False)
        tracer.log_dram(15, 30, 0x2000, core=1, channel=1, write=True, is_walk=True)
        tracer.log_tlb(12, core=0, vpn=0x7, outcome="miss")
        tracer.log_ptw(12, 14, 40, core=0, vpn=0x7, dram_reads=4)
        tracer.log_tile(0, 25, core=0, layer_index=0, phase="load")
        tracer.log_tile(25, 50, core=0, layer_index=0, phase="compute")
        tracer.log_layer(0, 50, core=0, layer_index=0, name="fc1")
        return tracer

    def test_spans_land_in_their_rings(self):
        tracer = self.make_traced()
        assert len(tracer.dram) == 2
        assert len(tracer.tlb) == 1
        assert len(tracer.ptw) == 1
        assert len(tracer.tiles) == 2
        assert len(tracer.layers) == 1
        assert tracer.total_spans() == 7
        assert tracer.total_dropped() == 0

    def test_registry_receives_latency_histograms(self):
        registry = CounterRegistry()
        tracer = TimelineTracer(registry=registry)
        tracer.log_dram(0, 10, 0, core=0, channel=0, write=False, is_walk=False)
        tracer.log_ptw(0, 5, 100, core=0, vpn=0, dram_reads=2)
        assert registry.value("timeline.dram.latency_ticks")["count"] == 1
        assert registry.value("timeline.dram.latency_ticks")["sum"] == 10
        assert registry.value("timeline.ptw.walk_ticks")["sum"] == 100
        assert registry.value("timeline.spans.dropped") == 0

    def test_trace_logger_consumes_the_same_stream(self):
        tracer = TimelineTracer()
        logger = TraceLogger()
        tracer.attach(logger)
        tracer.log_dram(10, 20, 0x1000, core=0, channel=0, write=False, is_walk=False)
        tracer.log_tlb(12, core=0, vpn=0x7, outcome="miss")
        tracer.log_ptw(12, 14, 40, core=0, vpn=0x7, dram_reads=4)
        assert [span.addr for span in logger.dram] == [0x1000]
        assert [event.outcome for event in logger.tlb] == ["miss"]
        assert [span.dram_reads for span in logger.ptw] == [4]
        # Identical objects, not copies: one stream, two consumers.
        assert logger.dram[0] is next(iter(tracer.dram))

    def test_chrome_trace_is_schema_valid(self):
        trace = self.make_traced().chrome_trace()
        validate_chrome_trace(trace)
        categories = {event.get("cat") for event in trace["traceEvents"]}
        assert {"dram", "tlb", "ptw", "tile", "layer"} <= categories
        assert trace["otherData"]["dropped_spans"] == 0

    def test_drops_are_reported_in_export(self):
        tracer = TimelineTracer(capacity=1)
        tracer.log_tlb(1, core=0, vpn=1, outcome="hit")
        tracer.log_tlb(2, core=0, vpn=2, outcome="hit")
        assert tracer.total_dropped() == 1
        assert tracer.chrome_trace()["otherData"]["dropped_spans"] == 1

    def test_export_writes_loadable_json(self, tmp_path):
        target = self.make_traced().export(tmp_path / "nested" / "trace.json")
        validate_chrome_trace(json.loads(target.read_text()))


class TestEndToEnd:
    def test_observed_simulation_exports_full_taxonomy(self, tmp_path):
        spec = RunSpec.mix(("ncf", "dlrm"), "DWT", scale="mini")
        networks = [zoo.get(name, spec.scale) for name in spec.workloads]
        sim = MultiCoreNPUSim(spec.system(), networks, observe=True)
        sim.run(max_ticks=50_000_000_000)
        assert sim.timeline is not None
        trace = sim.timeline.chrome_trace()
        validate_chrome_trace(trace)
        categories = {event.get("cat") for event in trace["traceEvents"]}
        assert {"dram", "tlb", "ptw", "tile", "layer"} <= categories
        # Both cores' tile pipelines and the DRAM channels appear.
        pids = {event["pid"] for event in trace["traceEvents"]}
        assert {1, 2, 10, 11} <= pids
        target = sim.timeline.export(tmp_path / "trace.json")
        assert json.loads(target.read_text())["traceEvents"]

"""Tests of the supervised runner's fault tolerance.

Every recovery path the supervision layer promises — retries with
backoff, crash isolation, wall-clock timeouts, stall classification,
cache quarantine, journaled resume — is exercised here via the
deterministic fault-injection harness in :mod:`repro.experiments.faults`
and the shard corruptor, never by luck or timing races.
"""

import logging
import multiprocessing
from pathlib import Path

import pytest

from repro.core.sharing import SharingLevel
from repro.errors import RunFailedError, RunFailure
from repro.experiments import faults, figures
from repro.experiments.report import format_failures
from repro.experiments.runner import ExperimentRunner, JOURNAL_NAME, QUARANTINE_DIR
from repro.models.layers import DenseLayer, Network

from tests.test_figures_reduction import StubRunner


def _tiny(name):
    return Network(name, (DenseLayer(f"{name}_l0", 16, 32, 16),))


def _make_runner(cache_dir, **kwargs):
    """A runner with instant (no-sleep) backoff and tiny named networks."""
    kwargs.setdefault("retry_backoff", 0.0)
    runner = ExperimentRunner(cache_dir=cache_dir, **kwargs)
    runner._sleep = lambda seconds: None
    for name in ("a", "b", "c", "d"):
        runner.register_network(_tiny(name))
    return runner


def _specs(runner, names):
    return [runner.plan(runner.plan_solo(name)) for name in names]


# --------------------------------------------------------------------- #
# Crash-safe cache: corruption -> quarantine -> re-run
# --------------------------------------------------------------------- #


class TestCacheQuarantine:
    @pytest.mark.parametrize("mode", ["truncate", "version", "payload"])
    def test_corrupt_shard_is_quarantined_and_rerun(self, tmp_path, caplog, mode):
        cache = tmp_path / "cache"
        first = _make_runner(cache)
        (spec,) = _specs(first, ["a"])
        expected = first.run(spec)

        faults.corrupt_shard(first._cache_path(spec), mode)

        fresh = _make_runner(cache)
        with caplog.at_level(logging.WARNING, logger="repro.experiments.runner"):
            results = fresh.run(spec)

        assert results == expected
        assert fresh.cache_hits == 0
        assert fresh.runs_executed == 1
        assert fresh.quarantined == 1
        quarantine = cache / QUARANTINE_DIR
        assert list(quarantine.iterdir())
        assert any(
            "quarantined corrupt cache shard" in r.message for r in caplog.records
        )
        # The shard was re-written and now validates again.
        rereader = _make_runner(cache)
        assert rereader.run(spec) == expected
        assert rereader.cache_hits == 1
        assert rereader.quarantined == 0

    def test_shard_without_checksum_sidecar_still_reads(self, tmp_path):
        cache = tmp_path / "cache"
        first = _make_runner(cache)
        (spec,) = _specs(first, ["a"])
        expected = first.run(spec)
        first._checksum_path(first._cache_path(spec)).unlink()

        fresh = _make_runner(cache)
        assert fresh.run(spec) == expected
        assert fresh.cache_hits == 1
        assert fresh.quarantined == 0


# --------------------------------------------------------------------- #
# Atomic writes under concurrency
# --------------------------------------------------------------------- #


def _hammer_writes(path_str, payload, count):
    path = Path(path_str)
    for _ in range(count):
        ExperimentRunner._atomic_write(path, payload)


def _sweep_in_child(cache_dir, names):
    runner = ExperimentRunner(cache_dir=cache_dir, retry_backoff=0.0)
    for name in names:
        runner.register_network(_tiny(name))
    runner.run_many([runner.plan(runner.plan_solo(name)) for name in names])


class TestAtomicWrites:
    def test_concurrent_writers_never_tear(self, tmp_path):
        target = tmp_path / "shard.json"
        payload_a = b"A" * 4096
        payload_b = b"B" * 4096
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(target=_hammer_writes, args=(str(target), payload, 200))
            for payload in (payload_a, payload_b)
        ]
        for proc in writers:
            proc.start()
        observed = set()
        while any(proc.is_alive() for proc in writers):
            if target.exists():
                observed.add(target.read_bytes())
        for proc in writers:
            proc.join()
        observed.add(target.read_bytes())
        # Readers only ever see one complete payload, never a mix.
        assert observed
        assert observed <= {payload_a, payload_b}
        assert not list(tmp_path.glob("*.tmp"))

    def test_two_runners_share_a_cache_dir_safely(self, tmp_path):
        cache = tmp_path / "cache"
        names = ["a", "b"]
        ctx = multiprocessing.get_context("fork")
        children = [
            ctx.Process(target=_sweep_in_child, args=(cache, names))
            for _ in range(2)
        ]
        for proc in children:
            proc.start()
        for proc in children:
            proc.join()
            assert proc.exitcode == 0
        checker = _make_runner(cache)
        results = checker.run_many(_specs(checker, names))
        assert len(results) == len(names)
        assert checker.cache_hits == len(names)
        assert checker.quarantined == 0


# --------------------------------------------------------------------- #
# Injected failures: isolation, classification, retry recovery
# --------------------------------------------------------------------- #


class TestInjectedFailures:
    def test_failed_specs_are_isolated_not_fatal(self, tmp_path):
        runner = _make_runner(tmp_path / "cache", max_attempts=2)
        specs = _specs(runner, ["a", "b", "c", "d"])
        runner.fault_plan = faults.FaultPlan.for_specs(
            {specs[1]: faults.Fault("crash"), specs[3]: faults.Fault("error")}
        )
        results = runner.run_many(specs)

        # N specs with k injected failures -> exactly N - k results.
        assert set(results) == {specs[0], specs[2]}
        assert runner.failures[specs[1]].kind == "crash"
        assert runner.failures[specs[1]].attempts == 2
        assert runner.failures[specs[3]].kind == "error"
        assert runner.failures[specs[3]].attempts == 1
        outcome = runner.last_outcome
        assert outcome.total == 4
        assert outcome.succeeded == 2
        assert len(outcome.failures) == 2

    def test_retry_recovers_transient_crashes(self, tmp_path):
        runner = _make_runner(tmp_path / "flaky", max_attempts=3)
        (spec,) = _specs(runner, ["a"])
        runner.fault_plan = faults.FaultPlan.for_specs(
            {spec: faults.Fault("crash", fail_attempts=2)}
        )
        recovered = runner.run(spec)
        assert not runner.failures

        clean = _make_runner(tmp_path / "clean")
        assert recovered == clean.run(_specs(clean, ["a"])[0])

    def test_run_raises_typed_error_for_failed_spec(self, tmp_path):
        runner = _make_runner(tmp_path / "cache")
        specs = _specs(runner, ["a", "b"])
        runner.fault_plan = faults.FaultPlan.for_specs(
            {specs[1]: faults.Fault("error")}
        )
        runner.run_many(specs)
        with pytest.raises(RunFailedError, match="injected deterministic failure"):
            runner.run(specs[1])

    def test_timeout_fault_classified_as_timeout(self, tmp_path):
        runner = _make_runner(tmp_path / "cache", run_timeout=0.2, max_attempts=1)
        (spec,) = _specs(runner, ["a"])
        runner.fault_plan = faults.FaultPlan.for_specs(
            {spec: faults.Fault("timeout")}
        )
        runner.run_many([spec])
        assert runner.failures[spec].kind == "timeout"
        assert "wall clock" in runner.failures[spec].error

    def test_stall_fault_classified_as_stall(self, tmp_path):
        runner = _make_runner(tmp_path / "cache", max_attempts=1)
        (spec,) = _specs(runner, ["a"])
        runner.fault_plan = faults.FaultPlan.for_specs({spec: faults.Fault("stall")})
        runner.run_many([spec])
        failure = runner.failures[spec]
        assert failure.kind == "stall"
        assert "livelocked" in failure.error

    def test_pool_mode_attributes_crash_to_culprit(self, tmp_path):
        runner = _make_runner(tmp_path / "cache", max_attempts=2)
        specs = _specs(runner, ["a", "b", "c"])
        runner.fault_plan = faults.FaultPlan.for_specs(
            {specs[1]: faults.Fault("crash")}
        )
        results = runner.run_many(specs, jobs=2)

        # The crasher is isolated and attributed; bystanders complete.
        assert set(results) == {specs[0], specs[2]}
        failure = runner.failures[specs[1]]
        assert failure.kind == "crash"
        assert failure.attempts == 2
        assert runner.last_outcome.succeeded == 2


# --------------------------------------------------------------------- #
# Journal + resume
# --------------------------------------------------------------------- #


class TestJournalAndResume:
    def test_resumed_sweep_reruns_only_missing_specs(self, tmp_path):
        cache = tmp_path / "cache"
        first = _make_runner(cache, max_attempts=1)
        specs = _specs(first, ["a", "b", "c"])
        first.fault_plan = faults.FaultPlan.for_specs(
            {specs[1]: faults.Fault("error")}
        )
        assert len(first.run_many(specs)) == 2

        resumed = _make_runner(cache)
        results = resumed.run_many(_specs(resumed, ["a", "b", "c"]))
        assert len(results) == 3
        assert resumed.cache_hits == 2
        assert resumed.runs_executed == 1
        assert not resumed.failures

    def test_journal_records_sweep_lifecycle(self, tmp_path):
        cache = tmp_path / "cache"
        runner = _make_runner(cache, max_attempts=2)
        specs = _specs(runner, ["a", "b"])
        runner.fault_plan = faults.FaultPlan.for_specs(
            {specs[1]: faults.Fault("crash")}
        )
        runner.run_many(specs)

        events = [record["event"] for record in runner.journal.read()]
        for expected in ("sweep", "done", "retry", "fail"):
            assert expected in events
        fail_record = next(
            record for record in runner.journal.read() if record["event"] == "fail"
        )
        assert fail_record["kind"] == "crash"
        assert fail_record["attempts"] == 2
        assert fail_record["label"] == specs[1].label

    def test_journal_reader_skips_corrupt_lines(self, tmp_path):
        cache = tmp_path / "cache"
        runner = _make_runner(cache)
        runner.run_many(_specs(runner, ["a"]))
        journal_path = cache / JOURNAL_NAME
        with journal_path.open("a") as handle:
            handle.write("{truncated\n")
        records = runner.journal.read()
        assert records
        assert all(isinstance(record, dict) for record in records)

    def test_journal_survives_unwritable_directory(self, tmp_path):
        # Journaling must never take the sweep down with it.
        runner = _make_runner(tmp_path / "cache")
        runner.journal.path = tmp_path / "missing" / "journal.jsonl"
        results = runner.run_many(_specs(runner, ["a"]))
        assert len(results) == 1


# --------------------------------------------------------------------- #
# Fault descriptors themselves
# --------------------------------------------------------------------- #


class TestFaultDescriptors:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.Fault("segfault")

    def test_fail_attempts_bound(self):
        fault = faults.Fault("transient", fail_attempts=2)
        assert fault.active(1) and fault.active(2)
        assert not fault.active(3)
        with pytest.raises(ValueError):
            faults.Fault("transient", fail_attempts=0)

    def test_corrupt_shard_rejects_unknown_mode(self, tmp_path):
        shard = tmp_path / "x.json"
        shard.write_text("{}")
        with pytest.raises(ValueError, match="unknown corruption mode"):
            faults.corrupt_shard(shard, "scribble")


# --------------------------------------------------------------------- #
# Graceful figure degradation
# --------------------------------------------------------------------- #


class _DegradedRunner(StubRunner):
    """Stub whose ("res", "yt") mixes all failed terminally."""

    def __init__(self, bad=("res", "yt")):
        super().__init__()
        self.bad = tuple(bad)
        spec = self.plan_mix(self.bad, SharingLevel.DWT)
        self.failures = {
            spec: RunFailure(
                spec=spec,
                kind="crash",
                attempts=3,
                error="TransientWorkerError: worker process died",
            )
        }

    def mix(self, names, sharing, **kwargs):
        if tuple(names) == self.bad:
            raise RunFailedError(next(iter(self.failures.values())))
        return super().mix(names, sharing, **kwargs)


class TestFigureDegradation:
    def test_mix_speedups_empty_for_failed_mix(self):
        runner = _DegradedRunner()
        ideal = {name: runner.ideal(name, 2)["cycles"] for name in ("res", "yt")}
        static = {name: runner.static_equal(name)["cycles"] for name in ("res", "yt")}
        assert figures.mix_speedups(
            runner, ("res", "yt"), SharingLevel.DWT, ideal, static
        ) == []

    def test_fig4_marks_failed_mix_missing_not_fatal(self):
        runner = _DegradedRunner()
        data = figures.fig4_dual_performance(runner, [("res", "yt"), ("alex", "gpt2")])

        bad = data["per_mix"]["res+yt"]
        good = data["per_mix"]["alex+gpt2"]
        # Static comes from solo runs, which still succeeded; every
        # contended level of the failed mix is missing.
        assert "Static" in bad
        for level in ("+D", "+DW", "+DWT"):
            assert level not in bad
            assert level in good
        # The healthy mix still feeds the overall geomeans.
        assert data["overall"]["+DWT"] is not None
        summaries = data["failures"]
        assert summaries and summaries[0]["kind"] == "crash"

    def test_failures_key_absent_when_sweep_healthy(self):
        data = figures.fig4_dual_performance(StubRunner(), [("res", "yt")])
        assert "failures" not in data

    def test_format_failures_renders_summaries(self):
        runner = _DegradedRunner()
        data = figures.fig4_dual_performance(runner, [("res", "yt"), ("alex", "gpt2")])
        text = format_failures(data["failures"])
        assert "crash" in text
        assert "1 run(s) failed" in text
        assert format_failures([]) == ""


# --------------------------------------------------------------------- #
# Backoff jitter and the per-spec retry budget
# --------------------------------------------------------------------- #


class TestBackoffJitterAndBudget:
    def test_backoff_without_jitter_is_exact_exponential(self, tmp_path):
        runner = _make_runner(
            tmp_path / "cache", retry_backoff=1.0, retry_jitter=0.0
        )
        assert [runner._backoff(n) for n in (1, 2, 3)] == [1.0, 2.0, 4.0]

    def test_jitter_inflates_within_its_bound(self, tmp_path):
        import random

        from repro.experiments.runner import MAX_BACKOFF_SECONDS

        runner = _make_runner(
            tmp_path / "cache", retry_backoff=1.0, retry_jitter=0.5
        )
        runner._random = random.Random(7)
        for attempt in (1, 2, 3):
            base = 2 ** (attempt - 1)
            observed = [runner._backoff(attempt) for _ in range(50)]
            assert all(base <= pause <= 1.5 * base for pause in observed)
            assert len(set(observed)) > 1  # actually randomized
        # The cap is absolute, jitter included.
        assert runner._backoff(30) == MAX_BACKOFF_SECONDS

    def test_zero_base_backoff_stays_zero_with_jitter(self, tmp_path):
        runner = _make_runner(tmp_path / "cache", retry_jitter=0.9)
        assert runner._backoff(5) == 0.0

    def test_budget_cuts_retries_short_in_serial(self, tmp_path):
        # Backoff alone (10s for the first retry) would bust the 5s
        # budget, so the spec fails terminally after one attempt even
        # though max_attempts allows ten.
        runner = _make_runner(
            tmp_path / "cache",
            max_attempts=10,
            retry_backoff=10.0,
            retry_jitter=0.0,
            retry_budget=5.0,
        )
        (spec,) = _specs(runner, ["a"])
        runner.fault_plan = faults.FaultPlan.for_specs(
            {spec: faults.Fault("transient")}
        )
        runner.run_many([spec])
        failure = runner.failures[spec]
        assert failure.kind == "crash"
        assert failure.attempts == 1

    def test_budget_cuts_retries_short_in_pool(self, tmp_path):
        runner = _make_runner(
            tmp_path / "cache",
            max_attempts=10,
            retry_backoff=10.0,
            retry_jitter=0.0,
            retry_budget=5.0,
        )
        (spec,) = _specs(runner, ["a"])
        runner.fault_plan = faults.FaultPlan.for_specs(
            {spec: faults.Fault("crash")}
        )
        runner.run_many([spec], jobs=2)
        failure = runner.failures[spec]
        assert failure.kind == "crash"
        assert failure.attempts == 1

    def test_no_budget_keeps_retrying_to_max_attempts(self, tmp_path):
        runner = _make_runner(
            tmp_path / "cache", max_attempts=3, retry_backoff=10.0,
            retry_jitter=0.0,
        )
        (spec,) = _specs(runner, ["a"])
        runner.fault_plan = faults.FaultPlan.for_specs(
            {spec: faults.Fault("transient")}
        )
        runner.run_many([spec])
        assert runner.failures[spec].attempts == 3

    def test_budget_permits_recovery_within_limit(self, tmp_path):
        # Tiny backoffs inside a generous budget: the crash-twice spec
        # still recovers on its third attempt.
        runner = _make_runner(
            tmp_path / "cache",
            max_attempts=5,
            retry_backoff=0.001,
            retry_jitter=0.25,
            retry_budget=60.0,
        )
        (spec,) = _specs(runner, ["a"])
        runner.fault_plan = faults.FaultPlan.for_specs(
            {spec: faults.Fault("transient", fail_attempts=2)}
        )
        results = runner.run_many([spec])
        assert spec in results
        assert not runner.failures


# --------------------------------------------------------------------- #
# Journal resume with a truncated final line (crash mid-write)
# --------------------------------------------------------------------- #


class TestJournalTruncation:
    def _truncate_final_line(self, journal_path):
        raw = journal_path.read_bytes()
        assert raw.endswith(b"}\n")
        journal_path.write_bytes(raw[:-7])  # chop mid-record, no newline

    def test_truncated_final_line_is_skipped_with_warning(
        self, tmp_path, caplog
    ):
        cache = tmp_path / "cache"
        runner = _make_runner(cache)
        runner.run_many(_specs(runner, ["a", "b"]))
        intact = runner.journal.read()
        self._truncate_final_line(cache / JOURNAL_NAME)

        with caplog.at_level(logging.WARNING, logger="repro.experiments.runner"):
            records = runner.journal.read()
        assert records == intact[:-1]
        assert any(
            "skipping unparseable line" in record.message
            for record in caplog.records
        )

    def test_resume_after_truncation_appends_cleanly(self, tmp_path):
        cache = tmp_path / "cache"
        first = _make_runner(cache)
        first.run_many(_specs(first, ["a"]))
        self._truncate_final_line(cache / JOURNAL_NAME)

        resumed = _make_runner(cache)
        results = resumed.run_many(_specs(resumed, ["a", "b"]))
        assert len(results) == 2
        assert resumed.cache_hits == 1  # cache survived the torn journal
        events = [record["event"] for record in resumed.journal.read()]
        # Old intact records, then the new sweep's, all parseable again.
        assert events.count("sweep") == 2
        assert events[-1] in ("done", "profile")

"""Tests for the mnpusim-style command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def config_tree(tmp_path):
    """An mNPUsim-style config-file tree for a dual-core run."""
    arch = tmp_path / "arch.cfg"
    arch.write_text(
        "name = tpu\n"
        "array_rows = 16\narray_cols = 16\n"
        "spm_bytes = 65536\n"
        "dram_transaction_bytes = 256\n"
    )
    npumem = tmp_path / "npumem.cfg"
    npumem.write_text("tlb_entries = 32\ntlb_assoc = 8\nnum_ptw = 1\n")
    dram = tmp_path / "dram.cfg"
    dram.write_text(
        "channels = 8\nchannel_bytes_per_cycle = 16\nqueue_depth = 128\n"
        "timing.tcl = 14\nmapping = ch-co-ba-bg-ro\n"
    )
    misc = tmp_path / "misc.cfg"
    misc.write_text("iterations = 0\n")
    arch_list = tmp_path / "arch_list.txt"
    arch_list.write_text(f"{arch}\n{arch}\n")
    net_list = tmp_path / "net_list.txt"
    net_list.write_text("ncf\nncf\n")
    npumem_list = tmp_path / "npumem_list.txt"
    npumem_list.write_text(f"{npumem}\n{npumem}\n")
    return {
        "arch_list": arch_list,
        "net_list": net_list,
        "dram": dram,
        "npumem_list": npumem_list,
        "misc": misc,
        "out": tmp_path / "out",
    }


class TestRunCommand:
    def test_artifact_style_run(self, config_tree, capsys):
        code = main([
            "run",
            str(config_tree["arch_list"]),
            str(config_tree["net_list"]),
            str(config_tree["dram"]),
            str(config_tree["npumem_list"]),
            str(config_tree["out"]),
            str(config_tree["misc"]),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "core0 ncf" in out and "core1 ncf" in out
        result_dir = config_tree["out"] / "result"
        # Artifact naming convention: avg_cycle_arch_<name><i>_<net><i>.txt
        cycle_file = result_dir / "avg_cycle_arch_tpu0_ncf0.txt"
        assert cycle_file.exists()
        assert int(cycle_file.read_text()) > 0
        assert (result_dir / "utilization_arch_tpu1_ncf1.txt").exists()
        assert (result_dir / "memory_footprint_arch_tpu0_ncf0.txt").exists()
        summary = json.loads((result_dir / "summary.json").read_text())
        assert len(summary) == 2

    def test_mismatched_lists_rejected(self, config_tree, tmp_path):
        short = tmp_path / "short.txt"
        short.write_text("ncf\n")
        with pytest.raises(SystemExit):
            main([
                "run",
                str(config_tree["arch_list"]),
                str(short),
                str(config_tree["dram"]),
                str(config_tree["npumem_list"]),
                str(config_tree["out"]),
                str(config_tree["misc"]),
            ])


class TestMixCommand:
    def test_mix_prints_per_core_lines(self, capsys):
        code = main(["mix", "ncf", "ncf", "--sharing", "DWT"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("cycles") == 2

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["mix", "vgg16"])

    def test_mix_agrees_with_experiment_runner(self, tmp_path, capsys):
        # The CLI and the cached runner plan the same RunSpec, so their
        # cycle counts must match exactly for identical parameters.
        from repro.core.sharing import SharingLevel
        from repro.experiments.runner import ExperimentRunner

        assert main(["mix", "ncf", "ncf", "--sharing", "DW"]) == 0
        out = capsys.readouterr().out
        cli_cycles = [
            int(line.split()[2]) for line in out.splitlines() if "cycles" in line
        ]
        runner = ExperimentRunner(cache_dir=tmp_path)
        results = runner.mix(("ncf", "ncf"), SharingLevel.DW)
        assert cli_cycles == [result["cycles"] for result in results]

    def test_uncontended_sharing_rejected(self):
        with pytest.raises(SystemExit, match="no dynamic contention"):
            main(["mix", "ncf", "ncf", "--sharing", "Static"])

    def test_max_ticks_safety_valve(self):
        with pytest.raises(SystemExit, match="simulation aborted"):
            main(["mix", "ncf", "ncf", "--max-ticks", "1000"])

    def test_run_max_ticks_safety_valve(self, config_tree):
        with pytest.raises(SystemExit, match="simulation aborted"):
            main([
                "run",
                str(config_tree["arch_list"]),
                str(config_tree["net_list"]),
                str(config_tree["dram"]),
                str(config_tree["npumem_list"]),
                str(config_tree["out"]),
                str(config_tree["misc"]),
                "--max-ticks", "500",
            ])


class TestDataflowOptions:
    def test_mix_dataflow_flag_changes_cycles(self, capsys):
        assert main(["mix", "ncf", "ncf", "--sharing", "DWT"]) == 0
        base = capsys.readouterr().out
        assert (
            main(["mix", "ncf", "ncf", "--sharing", "DWT", "--dataflow", "is"])
            == 0
        )
        alt = capsys.readouterr().out

        def cycles(text):
            return [
                int(line.split()[2])
                for line in text.splitlines()
                if "cycles" in line
            ]

        assert cycles(base) != cycles(alt)

    def test_unknown_dataflow_flag_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["mix", "ncf", "ncf", "--dataflow", "rs"])

    def test_run_dataflow_flag_overrides_config_files(self, config_tree, capsys):
        args = [
            "run",
            str(config_tree["arch_list"]),
            str(config_tree["net_list"]),
            str(config_tree["dram"]),
            str(config_tree["npumem_list"]),
            str(config_tree["out"]),
            str(config_tree["misc"]),
        ]
        assert main(args) == 0
        base = capsys.readouterr().out
        assert main(args + ["--dataflow", "ws"]) == 0
        overridden = capsys.readouterr().out
        assert base != overridden


class TestCacheStatsByDataflow:
    def test_trace_shards_grouped_by_engine_tag(self, tmp_path, capsys):
        traces = tmp_path / "traces"
        traces.mkdir(parents=True)
        (traces / ("os-" + "0" * 32 + ".json")).write_text("{}")
        (traces / ("os-" + "1" * 32 + ".json")).write_text("{}")
        (traces / ("ws-" + "2" * 32 + ".json")).write_text("{}")
        # A shard from before fingerprints carried the engine tag.
        (traces / ("a" * 32 + ".json")).write_text("{}")
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 shard(s) tagged os" in out
        assert "1 shard(s) tagged ws" in out
        assert "1 shard(s) tagged untagged" in out

    def test_stats_quiet_when_no_trace_shards(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "tagged" not in out


class TestCacheCommandHardening:
    """``mnpusim cache`` must degrade gracefully on every store state a
    user can plausibly be in: never-created, freshly-emptied, or a
    directory holding partial/foreign entries (quarantine subdir,
    checksum sidecars, interrupted downloads)."""

    def test_stats_on_missing_cache_dir(self, tmp_path, capsys):
        target = tmp_path / "never" / "created"
        assert main(["cache", "stats", "--cache-dir", str(target)]) == 0
        out = capsys.readouterr().out
        assert "results" in out and "traces" in out
        assert "    0 shard(s)" in out
        assert not target.exists(), "stats must not create the directory"

    def test_stats_on_empty_traces_dir(self, tmp_path, capsys):
        (tmp_path / "traces").mkdir(parents=True)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "tagged" not in out  # no shards -> no per-tag lines

    def test_stats_on_partial_traces_dir(self, tmp_path, capsys):
        """Only ``*.json`` files count; subdirectories (including the
        quarantine dir), sidecars and temp files are ignored."""
        traces = tmp_path / "traces"
        traces.mkdir(parents=True)
        (traces / ("os-" + "0" * 32 + ".json")).write_text("{}")
        (traces / ("os-" + "0" * 32 + ".json.sha256")).write_text("feed")
        (traces / ("os-" + "1" * 32 + ".json.tmp")).write_text("{")
        (traces / "quarantine").mkdir()
        (traces / "quarantine" / ("ws-" + "2" * 32 + ".json")).write_text("{}")
        (traces / "notes.txt").write_text("hello")
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 shard(s) tagged os" in out
        assert "ws" not in out  # quarantined shards are not live shards
        assert "1 quarantined" in out

    def test_stats_only_results_skips_trace_grouping(self, tmp_path, capsys):
        traces = tmp_path / "traces"
        traces.mkdir(parents=True)
        (traces / ("os-" + "0" * 32 + ".json")).write_text("{}")
        assert main(
            ["cache", "stats", "--only", "results", "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "results" in out
        assert "tagged" not in out

    def test_clear_on_missing_and_empty_stores(self, tmp_path, capsys):
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cleared 0 results shard(s)" in out
        assert "cleared 0 traces shard(s)" in out


class TestModelsCommand:
    def test_lists_all_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("res", "yt", "alex", "sfrnn", "ds2", "dlrm", "ncf", "gpt2"):
            assert name in out


class TestFigureCommand:
    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown figure"):
            main(["figure", "fig99", "--cache-dir", str(tmp_path)])

    def test_jobs_flag_accepted(self, tmp_path):
        # Still unknown-figure, but after --jobs parsing: the flag exists.
        with pytest.raises(SystemExit, match="unknown figure"):
            main(["figure", "fig99", "--jobs", "4", "--cache-dir", str(tmp_path)])


class TestSweepCommand:
    def test_unknown_figures_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown figures"):
            main(["sweep", "fig4", "fig99", "--cache-dir", str(tmp_path)])


class TestTraceOption:
    def test_run_with_trace_writes_logs(self, config_tree, capsys):
        code = main([
            "run",
            str(config_tree["arch_list"]),
            str(config_tree["net_list"]),
            str(config_tree["dram"]),
            str(config_tree["npumem_list"]),
            str(config_tree["out"]),
            str(config_tree["misc"]),
            "--trace",
        ])
        assert code == 0
        trace_dir = config_tree["out"] / "dramsim_output"
        assert (trace_dir / "dram.log").exists()
        assert (trace_dir / "dramreq.log").exists()
        assert (trace_dir / "tlb0.log").exists()
        assert (trace_dir / "tlb1_ptw.log").exists()
        assert (trace_dir / "dram.log").stat().st_size > 0

    def test_execution_cycle_files_written(self, config_tree, capsys):
        main([
            "run",
            str(config_tree["arch_list"]),
            str(config_tree["net_list"]),
            str(config_tree["dram"]),
            str(config_tree["npumem_list"]),
            str(config_tree["out"]),
            str(config_tree["misc"]),
        ])
        path = config_tree["out"] / "result" / "execution_cycle_arch_tpu0_ncf0.txt"
        lines = path.read_text().splitlines()
        assert len(lines) == 7  # one per ncf-mini layer
        for line in lines:
            name, cycles = line.split()
            assert int(cycles) >= 0


class TestFaultToleranceOptions:
    def test_quiet_and_run_timeout_flags_parse(self, tmp_path):
        # Still unknown-figure, but only after both flags parsed cleanly.
        with pytest.raises(SystemExit, match="unknown figure"):
            main([
                "figure", "fig99", "--quiet", "--run-timeout", "30",
                "--cache-dir", str(tmp_path),
            ])

    def test_mix_stall_window_zero_disables_watchdog(self, capsys):
        code = main(["mix", "ncf", "ncf", "--sharing", "DWT", "--stall-window", "0"])
        assert code == 0
        assert capsys.readouterr().out.count("cycles") == 2

    def test_tiny_stall_window_aborts_with_diagnostics(self):
        # A 1-tick window trips immediately; the abort message carries the
        # watchdog's per-core diagnostics rather than a bare error.
        with pytest.raises(SystemExit, match="livelocked") as excinfo:
            main(["mix", "ncf", "ncf", "--stall-window", "1"])
        message = str(excinfo.value)
        assert message.startswith("simulation aborted:")
        assert "core 0 (ncf)" in message

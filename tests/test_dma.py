"""Unit tests for the DMA engine's pacing, windowing, and completion logic."""

import pytest

from repro.compute.requestgen import Run
from repro.config.dram import DramConfig
from repro.config.npumem import NpuMemConfig
from repro.core.clock import ClockDomain
from repro.core.dma import DmaEngine
from repro.core.engine import Engine
from repro.dram.controller import DramController
from repro.mmu.mmu import Mmu
from repro.mmu.pagetable import PageTable, PhysicalLayout
from repro.mmu.ptw import WalkerPool

TXN = 64


def _fixture(*, translation=True, max_outstanding=4, issue_per_cycle=1):
    engine = Engine()
    controller = DramController(
        DramConfig(channels=2, channel_bytes_per_cycle=32, refresh_enabled=False),
        engine,
        transaction_bytes=TXN,
        channels_per_core={0: (0, 1)},
    )
    layout = PhysicalLayout(capacity_bytes=1 << 30, num_cores=1)
    tables = {0: PageTable(0, 4096, 4, layout)}
    walkers = WalkerPool(
        engine, 2, tables, dram=None,
        fixed_level_ticks={0: 5}, pwc_entries={0: 0},
    )
    mmu = Mmu(
        {0: NpuMemConfig(
            tlb_entries=16, tlb_assoc=4, num_ptw=2,
            translation_enabled=translation,
        )},
        tables, walkers, shared_tlb=False,
    )
    dma = DmaEngine(
        engine, 0, mmu, controller, ClockDomain(1000, 1000),
        max_outstanding=max_outstanding,
        issue_per_cycle=issue_per_cycle,
        transaction_bytes=TXN,
    )
    return engine, dma, controller


class TestDmaEngine:
    def test_empty_transfer_completes_immediately(self):
        engine, dma, _ = _fixture()
        done = []
        dma.transfer((), lambda: done.append(engine.now))
        engine.run()
        assert done == [0]

    def test_single_run_completes_once(self):
        engine, dma, controller = _fixture(translation=False)
        done = []
        dma.transfer((Run(0, 8, False),), lambda: done.append(engine.now))
        engine.run()
        assert len(done) == 1
        assert controller.stats.reads == 8
        assert not dma.busy

    def test_issue_pacing_one_per_cycle(self):
        engine, dma, controller = _fixture(translation=False, max_outstanding=64)
        dma.transfer((Run(0, 10, False),), lambda: None)
        engine.run()
        # 10 transactions issued 1/cycle: total stats must match.
        assert dma.stats.read_txns == 10

    def test_window_limits_outstanding(self):
        engine, dma, controller = _fixture(translation=False, max_outstanding=2)
        dma.transfer((Run(0, 20, False),), lambda: None)
        # Walk the simulation in slices and check the invariant.
        horizon = 0
        while engine.pending:
            horizon += 10
            engine.run(until=horizon)
            assert dma._outstanding <= 2
        assert controller.stats.reads == 20

    def test_transfers_complete_in_fifo_order(self):
        engine, dma, _ = _fixture(translation=False)
        order = []
        dma.transfer((Run(0, 4, False),), lambda: order.append("first"))
        dma.transfer((Run(4096, 4, True),), lambda: order.append("second"))
        engine.run()
        assert order == ["first", "second"]

    def test_write_and_read_counted(self):
        engine, dma, controller = _fixture(translation=False)
        dma.transfer((Run(0, 3, False), Run(4096, 2, True)), lambda: None)
        engine.run()
        assert dma.stats.read_txns == 3
        assert dma.stats.write_txns == 2
        assert controller.stats.writes == 2

    def test_translation_misses_do_not_lose_requests(self):
        engine, dma, controller = _fixture(translation=True)
        done = []
        # 32 transactions spanning a fresh page: first access walks.
        dma.transfer((Run(0, 32, False),), lambda: done.append(engine.now))
        engine.run()
        assert len(done) == 1
        assert controller.stats.reads == 32

    def test_completion_fires_after_all_data(self):
        engine, dma, controller = _fixture(translation=False)
        completion = []
        dma.transfer((Run(0, 6, False),), lambda: completion.append(engine.now))
        engine.run()
        # Completion must coincide with (or follow) the last DRAM burst.
        assert completion[0] == engine.now

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            _fixture(max_outstanding=0)

"""Shim for environments without the ``wheel`` package (offline installs).

``pip install -e . --no-build-isolation`` needs ``wheel`` for PEP 660
editable builds; this shim lets ``python setup.py develop`` work instead.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

"""Quickstart: simulate one DNN on a single-core cloud NPU.

Runs NCF on the paper's Table 2 configuration (mini scale, so it finishes
in under a second) and prints the numbers mNPUsim reports: execution
cycles, PE utilization, and memory-system statistics.

Usage::

    python examples/quickstart.py [workload] [--scale mini|full]
"""

import argparse

from repro import MultiCoreNPUSim, presets, zoo


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workload", nargs="?", default="ncf", choices=zoo.NAMES)
    parser.add_argument("--scale", default="mini", choices=("mini", "full"))
    args = parser.parse_args()

    network = zoo.get(args.workload, args.scale)
    print(f"workload: {network.name} ({len(network.layers)} layers, "
          f"{network.total_macs/1e6:.1f} MMACs, "
          f"{network.total_bytes/1e6:.2f} MB unique operands)")

    system = presets.solo_slice(scale=args.scale)
    simulator = MultiCoreNPUSim(system, [network])
    result = simulator.run()

    workload = result.workloads[0]
    print(f"\nexecution cycles : {workload.cycles:,}")
    print(f"PE utilization   : {workload.pe_utilization:.1%}")
    print(f"array occupancy  : {workload.compute_occupancy:.1%}")
    print(f"DRAM traffic     : {workload.traffic_bytes/1e6:.2f} MB")
    print(f"TLB miss rate    : {workload.tlb_miss_rate:.1%}")
    print(f"page-table walks : {workload.walks:,} "
          f"(avg {workload.avg_walk_ticks:.0f} cycles each, "
          f"{workload.avg_walk_queue_ticks:.0f} queueing)")
    print(f"DRAM row-hit rate: {result.dram.row_hit_rate:.1%}")


if __name__ == "__main__":
    main()

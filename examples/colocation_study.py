"""Co-location what-if: how much does a co-runner slow my model down?

The scenario the paper's introduction motivates: an inference service has
profiled its model's solo latency, but on a multi-core NPU a co-located
tenant contends for DRAM bandwidth, page-table walkers and TLB capacity,
breaking the profiled-latency assumption SLO schedulers rely on.

This example co-runs a victim model against every possible co-runner
under each resource-sharing level and prints the victim's slowdown — the
per-workload view behind the paper's Figures 4 and 8.

Usage::

    python examples/colocation_study.py [victim]
"""

import argparse

from repro import MultiCoreNPUSim, presets, zoo
from repro.core.sharing import CONTENDED_LEVELS, SharingLevel


def ideal_cycles(name: str) -> int:
    """The victim's latency alone on the full dual-core resource pool."""
    per = presets.per_core_resources()
    system = presets.solo_slice(
        channels=per["channels"] * 2,
        num_ptw=per["num_ptw"] * 2,
        tlb_entries=per["tlb_entries"] * 2,
    )
    return MultiCoreNPUSim(system, [zoo.mini(name)]).run().workloads[0].cycles


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("victim", nargs="?", default="sfrnn", choices=zoo.NAMES)
    args = parser.parse_args()

    victim = args.victim
    baseline = ideal_cycles(victim)
    print(f"victim: {victim} (ideal latency {baseline:,} cycles)\n")
    header = f"{'co-runner':10s}" + "".join(
        f"{level.label:>10s}" for level in CONTENDED_LEVELS
    )
    print(header)
    print("-" * len(header))

    worst = (1.0, "none")
    for co_runner in zoo.NAMES:
        row = f"{co_runner:10s}"
        for level in CONTENDED_LEVELS:
            system = presets.cloud_npu(2, level)
            result = MultiCoreNPUSim(
                system, [zoo.mini(victim), zoo.mini(co_runner)]
            ).run()
            slowdown = result.workloads[0].cycles / baseline
            row += f"{slowdown:10.2f}"
            if level is SharingLevel.DWT and slowdown > worst[0]:
                worst = (slowdown, co_runner)
        print(row)

    print(
        f"\nworst +DWT co-runner for {victim}: {worst[1]} "
        f"({worst[0]:.2f}x the profiled latency) — this is the dynamic "
        "variance an SLO scheduler must absorb."
    )


if __name__ == "__main__":
    main()

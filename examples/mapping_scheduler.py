"""Contention-aware workload mapping across multiple dual-core NPUs.

Section 4.6's scenario: a cluster scheduler must place eight inference
workloads onto four dual-core NPU chips.  Which workloads should share a
chip?  This example trains the paper's regression predictor on random
networks, scores every pairing of a workload set, and compares the
model's choice with the oracle, the worst case, and random placement.

Usage::

    python examples/mapping_scheduler.py [w1 ... w8]

Note: the first invocation simulates the 36 benchmark pairs and the
predictor's random-network training set (a few minutes); results are
cached in ``.repro_cache`` so later runs are instant.
"""

import argparse

from repro.core.metrics import geomean
from repro.experiments.runner import ExperimentRunner
from repro.mapping import MappingStudy, pairings
from repro.models import zoo


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "workloads", nargs="*",
        default=["res", "yt", "alex", "sfrnn", "ds2", "dlrm", "ncf", "gpt2"],
        choices=zoo.NAMES,
    )
    args = parser.parse_args()
    if len(args.workloads) != 8:
        parser.error("exactly eight workloads required (four dual-core chips)")

    print("building the mapping study (simulating pairs + training the "
          "predictor; cached after the first run)...")
    runner = ExperimentRunner()
    study = MappingStudy(runner)
    print(f"predictor RMS training error: {study.predictor.training_error:.3f}\n")

    outcome = study.evaluate_set(tuple(args.workloads))
    print(f"workload set : {'+'.join(args.workloads)}")
    print(f"pairings     : {outcome['pairings']} distinct\n")
    for policy in ("oracle", "model", "random", "worst"):
        print(
            f"{policy:7s} geomean speedup vs Ideal: "
            f"{outcome[f'{policy}_perf']:.3f}   "
            f"fairness: {outcome[f'{policy}_fairness']:.3f}"
        )

    print("\nmodel-selected placement:")
    for chip, (a, b) in enumerate(outcome["model_pairing"]):
        slowdowns = study.simulated_slowdowns([(a, b)])
        print(f"  chip {chip}: {a:6s} + {b:6s} "
              f"(geomean speedup {geomean([1/s for s in slowdowns]):.3f})")


if __name__ == "__main__":
    main()

"""Design-space exploration with custom accelerators and custom models.

The library is not tied to the paper's zoo or Table 2 system.  This
example serves two bespoke models — a keyword-spotting CNN+GRU and a
narrow sensor-MLP — on two NPU design points with the same silicon and
bandwidth budget:

* a big monolithic 64x64 core that must time-multiplex the two models;
* a dual-core NPU (two 45x45 cores, 2x2025 ~ 4096 PEs) running them
  concurrently, with statically partitioned or fully shared (+DWT)
  memory resources.

The monolithic core wins raw makespan (big tiles amortize its fill/drain
overheads), but it head-of-line blocks the latency-critical sensor MLP
behind the keyword spotter.  The dual-core design isolates the MLP's
latency — the service-level-objective concern that motivates the paper —
at a modest makespan cost, and dynamic sharing shows how much of the
static split's contention loss is recoverable.

Usage::

    python examples/custom_accelerator.py
"""

from repro import MultiCoreNPUSim
from repro.config import ArchConfig, DramConfig, MiscConfig, NpuMemConfig, SystemConfig
from repro.core.sharing import SharingLevel
from repro.models.layers import ConvLayer, DenseLayer, Network


def speech_command_net(name: str = "kws") -> Network:
    """A small keyword-spotting model: 3 convolutions + 2 GRUs + softmax."""
    return Network(
        name,
        (
            ConvLayer("conv1", 1, 49, 40, 64, 10, 4, stride=2),
            ConvLayer("conv2", 64, 20, 19, 64, 3, 3, padding=1),
            ConvLayer("conv3", 64, 20, 19, 96, 3, 3, padding=1),
            DenseLayer("gru1", 3 * 128, 2 * 128, 20),
            DenseLayer("gru2", 3 * 128, 2 * 128, 20),
            DenseLayer("softmax", 12, 128, 20),
        ),
    )


def sensor_mlp(name: str = "mlp") -> Network:
    """A narrow anomaly-detection MLP: batch 4, so most PE columns idle."""
    return Network(
        name,
        (
            DenseLayer("fc1", 512, 256, 4),
            DenseLayer("fc2", 512, 512, 4),
            DenseLayer("fc3", 512, 512, 4),
            DenseLayer("fc4", 256, 512, 4),
            DenseLayer("fc5", 2, 256, 4),
        ),
    )


def npumem() -> NpuMemConfig:
    return NpuMemConfig(tlb_entries=64, tlb_assoc=8, num_ptw=1)


def dram() -> DramConfig:
    return DramConfig(channels=8, channel_bytes_per_cycle=16, queue_depth=256)


def monolithic() -> SystemConfig:
    """One big 64x64 core owning all resources."""
    arch = ArchConfig(
        name="mono", array_rows=64, array_cols=64, spm_bytes=1 << 20,
        dram_transaction_bytes=256,
    )
    return SystemConfig(
        arch=(arch,), npumem=(npumem(),), dram=dram(),
        misc=MiscConfig(iterations=1),
    )


def dual(sharing: SharingLevel) -> SystemConfig:
    """Two 45x45 cores (2 x 2025 PEs ~ one 64x64) on the same memory."""
    arch = ArchConfig(
        name="duo", array_rows=45, array_cols=45, spm_bytes=512 * 1024,
        dram_transaction_bytes=256,
    )
    return SystemConfig(
        arch=(arch,) * 2, npumem=(npumem(),) * 2, dram=dram(),
        misc=MiscConfig(iterations=1),
        share_dram=sharing.share_dram,
        share_ptw=sharing.share_ptw,
        share_tlb=sharing.share_tlb,
    )


def main() -> None:
    kws, mlp = speech_command_net(), sensor_mlp()
    for net in (kws, mlp):
        print(f"model {net.name:4s}: {net.total_macs/1e6:6.1f} MMACs, "
              f"intensity {net.arithmetic_intensity:5.1f} MAC/B")
    print()

    # Monolithic core: kws runs first, the MLP queues behind it.
    solo = {}
    for net in (kws, mlp):
        workload = MultiCoreNPUSim(monolithic(), [net]).run().workloads[0]
        solo[net.name] = workload
        print(f"monolithic 64x64 {net.name:4s}: {workload.cycles:>8,} cycles, "
              f"PE util {workload.pe_utilization:5.1%}")
    mono_makespan = solo["kws"].cycles + solo["mlp"].cycles
    print(f"monolithic: makespan {mono_makespan:,} cycles; "
          f"mlp latency {mono_makespan:,} (queued behind kws)\n")

    for sharing in (SharingLevel.STATIC, SharingLevel.DWT):
        result = MultiCoreNPUSim(dual(sharing), [kws, mlp]).run()
        cycles = {w.workload: w.cycles for w in result.workloads}
        makespan = max(cycles.values())
        print(f"dual 45x45 {sharing.label:7s}: makespan {makespan:>8,} "
              f"({makespan/mono_makespan:4.2f}x mono), "
              f"mlp latency {cycles['mlp']:>8,} "
              f"({mono_makespan/cycles['mlp']:4.1f}x better than queueing)")

    print(
        "\nthe dual-core design trades a little makespan for latency "
        "isolation: the sensor MLP no longer waits behind the keyword "
        "spotter, which is exactly the SLO-predictability concern the "
        "paper raises — and the +DWT row quantifies how much dynamic "
        "resource sharing perturbs that isolated latency."
    )


if __name__ == "__main__":
    main()

"""Page-size tuning: trade page-table-walk bandwidth for page size.

Section 4.5 of the paper shows the page-table-walk bottleneck can be
attacked from two sides: more (or shared) walkers, or bigger pages that
slash TLB miss counts.  This example sweeps the ARM64 page sizes (4 KB /
64 KB / 1 MB) and walker counts for one workload and prints the latency
matrix, so an accelerator-driver author can pick an operating point.

Usage::

    python examples/page_size_tuning.py [workload]
"""

import argparse

from repro import MultiCoreNPUSim, presets, zoo

PAGE_SIZES = (4096, 65536, 1048576)
WALKERS = (1, 2, 4)


def run(network, page_bytes: int, num_ptw: int):
    system = presets.solo_slice(page_bytes=page_bytes, num_ptw=num_ptw)
    return MultiCoreNPUSim(system, [network]).run().workloads[0]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workload", nargs="?", default="dlrm", choices=zoo.NAMES)
    args = parser.parse_args()

    network = zoo.mini(args.workload)
    base = run(network, 4096, WALKERS[0])
    print(f"workload: {network.name}; baseline 4KB pages / {WALKERS[0]} walker "
          f"= {base.cycles:,} cycles "
          f"({base.walks:,} walks, TLB miss rate {base.tlb_miss_rate:.1%})\n")

    header = f"{'page size':>10s}" + "".join(f"{w:>12d}w" for w in WALKERS)
    print("speedup over the baseline (rows: page size, columns: walkers)")
    print(header)
    print("-" * len(header))
    for page in PAGE_SIZES:
        row = f"{page//1024:>8d}KB"
        for walkers in WALKERS:
            workload = run(network, page, walkers)
            row += f"{base.cycles / workload.cycles:>12.2f}x"
        print(row)

    print(
        "\nreading the matrix: moving right adds walker bandwidth, moving "
        "down shrinks the walk *demand*; the paper's observation is that "
        "the first 64KB step captures most of the benefit (section 4.5.1)."
    )


if __name__ == "__main__":
    main()

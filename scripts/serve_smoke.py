#!/usr/bin/env python
"""CI smoke test of the ``mnpusim serve`` daemon, end to end.

Boots the daemon as a real subprocess, then proves the service contract
from the outside:

1. two concurrent clients submit the *same* spec — exactly one cold
   simulation runs (counters prove it) and both receive byte-identical
   payloads;
2. the payload's sha256 matches the shard an independent cold CLI-style
   run of the same spec writes, so served results are indistinguishable
   from local ones;
3. a warm resubmission is served from cache with zero recompute;
4. SIGTERM drains the daemon and it exits 0.

Usage (from the repository root)::

    python scripts/serve_smoke.py [--out .ci_serve]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.runner import ExperimentRunner  # noqa: E402
from repro.experiments.spec import RunSpec  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=".ci_serve", help="scratch directory")
    args = parser.parse_args()
    out = Path(args.out).resolve()
    out.mkdir(parents=True, exist_ok=True)

    spec = RunSpec.solo("ncf")
    daemon = subprocess.Popen(
        [
            sys.executable,
            "-c",
            "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
            "serve",
            "--port", "0",
            "--cache-dir", str(out / "serve_cache"),
            "--jobs", "2",
        ],
        cwd=out,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = daemon.stdout.readline().strip()
        if not banner.startswith("serving on http://"):
            fail(f"unexpected daemon banner: {banner!r}")
        url = banner.split()[-1]
        print(f"daemon up at {url}")
        client = ServeClient(url, deadline_seconds=300.0)
        if not client.wait_ready(30.0):
            fail("daemon never became ready")

        # Two concurrent clients, one spec -> one cold run, equal bytes.
        results, errors = [], []

        def fetch() -> None:
            try:
                results.append(ServeClient(url, deadline_seconds=300.0).run(spec))
            except Exception as error:  # noqa: BLE001 - report, don't hang
                errors.append(error)

        threads = [threading.Thread(target=fetch) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            fail(f"client error: {errors[0]}")
        payloads = {result.payload for result in results}
        if len(payloads) != 1:
            fail("concurrent clients received different payloads")
        sources = sorted(result.source for result in results)
        print(f"concurrent sources: {sources}")

        stats = json.loads(json.dumps(client.stats()))  # plain-JSON sanity
        metrics = stats["counters"]["metrics"]
        cold_runs = metrics["serve.cold_runs"]["value"]
        executed = metrics["runner.runs_executed"]["value"]
        if cold_runs != 1 or executed != 1:
            fail(f"expected exactly one cold run, got {cold_runs=} {executed=}")
        print("exactly one cold simulation ran")

        # Warm resubmission: served from cache, still zero recompute.
        warm = client.run(spec)
        if warm.payload != results[0].payload:
            fail("warm payload diverged from the cold one")
        if warm.source not in ("memo", "disk"):
            fail(f"warm request was not cache-served: {warm.source}")
        after = client.stats()["counters"]["metrics"]
        if after["runner.runs_executed"]["value"] != 1:
            fail("warm request recomputed")
        print(f"warm resubmission served from {warm.source}")

        # The served bytes match an independent cold run's shard.
        served_sha = hashlib.sha256(warm.payload).hexdigest()
        solo = ExperimentRunner(
            cache_dir=out / "solo_cache", jobs=1, progress=None
        )
        solo.run_many([spec])
        local = solo.cached_payload(spec)
        if local is None or hashlib.sha256(local).hexdigest() != served_sha:
            fail("served payload does not match an independent cold run")
        print(f"payload sha256 matches independent cold run: {served_sha[:16]}")

        # Graceful shutdown on SIGTERM.
        daemon.send_signal(signal.SIGTERM)
        stdout, stderr = daemon.communicate(timeout=120)
        if daemon.returncode != 0:
            fail(f"daemon exited {daemon.returncode}: {stderr}")
        if "stopped (clean drain)" not in stderr:
            fail(f"no clean-drain confirmation in stderr: {stderr}")
        print("daemon drained and exited 0")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate()
    print("serve smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

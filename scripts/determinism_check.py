#!/usr/bin/env python
"""CI determinism check: the golden corpus twice — cold, then warm.

Pass A simulates every golden-corpus spec through the experiment runner
with completely fresh caches and records a manifest of result-shard
sha256 digests.  Pass B re-runs the same corpus with a fresh *result*
cache but the trace cache pass A compiled (copied over, memo cleared, so
it exercises the warm-disk path).  The two manifests must be identical:
a compiled trace that replayed differently from live generation — or any
other nondeterminism between runs — shows up as a digest diff here.

Both passes also run a slice of the corpus with observability armed and
export the Perfetto trace plus counter snapshot; those artifacts must be
byte-identical across passes too, and CI uploads the output directory
when anything diverges.

``--filter`` restricts the corpus (and the observed slice) to entries
whose name contains the given substring; the ``llm-serving-smoke`` CI
lane uses ``--filter gpt2`` to pin just the serving goldens.

Usage (from the repository root)::

    python scripts/determinism_check.py [--out .ci_determinism] [--filter SUB]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import shutil
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

from repro.compute import tracecache  # noqa: E402
from repro.core.simulator import MultiCoreNPUSim  # noqa: E402
from repro.experiments.runner import ExperimentRunner  # noqa: E402
from repro.models import serving  # noqa: E402
from tests.test_golden_equivalence import CORPUS, MAX_TICKS  # noqa: E402

#: Corpus entries additionally run with ``observe=True`` for artifact
#: export (one private-TLB solo, one shared-TLB mix, one serving mix).
OBSERVED = ("solo-ncf-2ch", "mix-ncf-dlrm-DWT", "mix-gpt2-prefill-decode-DWT")


def run_pass(label: str, out: Path, corpus, observed, trace_seed: Path | None = None):
    """One corpus pass over ``corpus``; returns (manifest, cache_dir)."""
    cache_dir = out / f"cache-{label}"
    if trace_seed is not None and trace_seed.is_dir():
        shutil.copytree(trace_seed, cache_dir / "traces")
        tracecache.process_cache().clear_memo()  # force the warm-disk path
    manifest: dict[str, dict[str, str]] = {}
    for name, spec in corpus:
        runner = ExperimentRunner(scale=spec.scale, cache_dir=cache_dir)
        runner.run(spec)
        shard = (cache_dir / f"{spec.cache_key()}.json").read_bytes()
        manifest[name] = {
            "cache_key": spec.cache_key(),
            "shard_sha256": hashlib.sha256(shard).hexdigest(),
        }
        print(f"[{label}] {name}: {manifest[name]['shard_sha256'][:16]}")
    (out / f"manifest-{label}.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    for name in observed:
        spec = dict(corpus)[name]
        networks = serving.networks_for(
            spec.workloads, spec.scale,
            params=spec.serving, default_phase=spec.phase,
        )
        sim = MultiCoreNPUSim(spec.system(), networks, observe=True)
        result = sim.run(max_ticks=MAX_TICKS)
        assert sim.timeline is not None and result.counters is not None
        sim.timeline.export(out / f"trace-{label}-{name}.json")
        (out / f"counters-{label}-{name}.json").write_text(
            json.dumps(result.counters, indent=2, sort_keys=True) + "\n"
        )
    return manifest, cache_dir


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=".ci_determinism",
        help="output directory for manifests and observability artifacts",
    )
    parser.add_argument(
        "--filter", default=None, metavar="SUBSTRING",
        help="run only corpus entries whose name contains this substring",
    )
    args = parser.parse_args(argv)
    corpus = CORPUS
    observed = OBSERVED
    if args.filter:
        corpus = tuple(
            (name, spec) for name, spec in CORPUS if args.filter in name
        )
        if not corpus:
            parser.error(f"--filter {args.filter!r} matches no corpus entry")
        observed = tuple(name for name in OBSERVED if name in dict(corpus))
    out = Path(args.out)
    shutil.rmtree(out, ignore_errors=True)
    out.mkdir(parents=True)

    cold, cold_dir = run_pass("cold", out, corpus, observed)
    warm, _ = run_pass("warm", out, corpus, observed, trace_seed=cold_dir / "traces")

    failures: list[str] = []
    for name in dict(corpus):
        if cold[name] != warm[name]:
            failures.append(
                f"result shard for {name!r} differs: "
                f"cold {cold[name]['shard_sha256'][:16]} vs "
                f"warm {warm[name]['shard_sha256'][:16]}"
            )
    for name in observed:
        for kind in ("trace", "counters"):
            a = (out / f"{kind}-cold-{name}.json").read_bytes()
            b = (out / f"{kind}-warm-{name}.json").read_bytes()
            if a != b:
                failures.append(f"{kind} export for {name!r} differs between passes")

    if failures:
        print("\nDETERMINISM CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print(f"  artifacts in {out}/", file=sys.stderr)
        return 1
    print(
        f"\ndeterminism check passed: {len(cold)} specs byte-identical "
        f"cold vs warm; {len(observed)} observability exports stable"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""DNN workload models: layer specs, the benchmark zoo, serving shapes."""

from repro.models.layers import (
    ConvLayer,
    DenseLayer,
    EmbeddingLayer,
    GemmOp,
    Network,
)
from repro.models import serving, zoo
from repro.models.random_net import random_network
from repro.models.serving import ServingParams

__all__ = [
    "ConvLayer",
    "DenseLayer",
    "EmbeddingLayer",
    "GemmOp",
    "Network",
    "ServingParams",
    "serving",
    "zoo",
    "random_network",
]

"""DNN workload models: layer specs, the paper's benchmark zoo, random nets."""

from repro.models.layers import (
    ConvLayer,
    DenseLayer,
    EmbeddingLayer,
    GemmOp,
    Network,
)
from repro.models import zoo
from repro.models.random_net import random_network

__all__ = [
    "ConvLayer",
    "DenseLayer",
    "EmbeddingLayer",
    "GemmOp",
    "Network",
    "zoo",
    "random_network",
]

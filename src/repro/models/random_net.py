"""DeepSniffer-style random network generation (paper section 4.6.1).

The mapping-prediction model must not be trained on the eight evaluation
benchmarks (that would overfit), so the paper trains it on randomly
generated neural networks: "arbitrary numbers of convolution/GEMM layers
with random dimension such as output channels, stride, and kernel size in
a realistic range".
"""

from __future__ import annotations

import random

from repro.models.layers import ConvLayer, DenseLayer, Layer, Network

#: Realistic parameter ranges, loosely matching the zoo's mini scale so the
#: generated networks exercise the same simulator operating points.
_CHANNEL_CHOICES = (8, 16, 24, 32, 48, 64, 96, 128)
_SPATIAL_CHOICES = (7, 13, 16, 26, 32, 52)
_KERNEL_CHOICES = (1, 3, 5, 7)
_STRIDE_CHOICES = (1, 1, 1, 2)
_DENSE_CHOICES = (32, 64, 128, 256, 384, 512, 1024)
_BATCH_CHOICES = (1, 8, 16, 32, 64, 128)


def random_network(
    seed: int,
    *,
    min_layers: int = 3,
    max_layers: int = 10,
    name: str | None = None,
) -> Network:
    """Generate a random conv/GEMM network, deterministically from ``seed``."""
    if min_layers <= 0 or max_layers < min_layers:
        raise ValueError("need 0 < min_layers <= max_layers")
    rng = random.Random(seed)
    num_layers = rng.randint(min_layers, max_layers)
    layers: list[Layer] = []
    channels = rng.choice(_CHANNEL_CHOICES)
    spatial = rng.choice(_SPATIAL_CHOICES)
    for index in range(num_layers):
        if rng.random() < 0.6:
            kernel = rng.choice(_KERNEL_CHOICES)
            stride = rng.choice(_STRIDE_CHOICES)
            while spatial // stride < kernel:
                spatial *= 2  # keep the geometry valid
            out_channels = rng.choice(_CHANNEL_CHOICES)
            layers.append(
                ConvLayer(
                    name=f"conv{index}",
                    in_channels=channels,
                    in_h=spatial,
                    in_w=spatial,
                    out_channels=out_channels,
                    kernel_h=kernel,
                    kernel_w=kernel,
                    stride=stride,
                    padding=kernel // 2,
                )
            )
            channels = out_channels
            spatial = max(7, spatial // stride)
        else:
            layers.append(
                DenseLayer(
                    name=f"gemm{index}",
                    m=rng.choice(_DENSE_CHOICES),
                    k=rng.choice(_DENSE_CHOICES),
                    n=rng.choice(_BATCH_CHOICES),
                )
            )
    return Network(name or f"rand{seed}", tuple(layers))

"""LLM-serving shapes: prefill/decode phases + MoE expert routing.

The zoo's ``gpt2`` entry is a *layer topology* — one forward pass over a
fixed sequence.  Batched LLM inference does not look like that: serving
splits into an explicit **prefill** phase (GEMM-heavy and bursty — whole
prompts arrive and are processed as wide matrix multiplies) and a
**decode** phase (GEMV-like and latency-bound — one token per request
per step, dominated by streaming reads of the growing KV cache).  On top
of both, Mixture-of-Experts layers route tokens to experts, and the
*skew* of that routing decides how balanced the FFN work is.

This module turns those serving dynamics into ordinary
:class:`~repro.models.layers.Network` objects, so the whole existing
pipeline — frontend compilation, the content-addressed trace cache,
replay, sharing experiments — works unchanged:

* every stochastic choice (request arrival, per-request decode budget,
  token-to-expert routing) draws from ``random.Random`` seeded with a
  string derived from :class:`ServingParams`, so the same parameters
  produce the same layer list in every process — traces stay
  content-addressable and cache keys stay stable;
* phases are named workloads: ``"gpt2:prefill"`` / ``"gpt2:decode"``
  (see :func:`split_name`), resolvable next to plain zoo names;
* serving networks carry a ``srv-`` name prefix that the trace cache
  surfaces in its shard keys (see
  :func:`repro.compute.tracecache.frontend_fingerprint`), so serving
  traces are identifiable on disk.

Shape conventions (one GEMM is ``M x K x N``, ``A[M,K] @ B[K,N]``; the
A operand streams weights, the B operand streams activations):

* prefill, per arrival wave of ``T = requests x prompt`` tokens and per
  block: ``qkv (3w, w, T)``, ``score (prompt, w, T)``,
  ``attnv (w, prompt, T)``, ``proj (w, w, T)``, then per routed expert
  ``fc1 (4w, w, tokens_e)`` / ``fc2 (w, 4w, tokens_e)``;
* decode, per step with ``B`` active requests holding ``ctx`` total KV
  entries: ``qkv (3w, w, B)``, ``score (ctx, w, 1)`` (the A operand *is*
  the streamed K cache), ``attnv (w, ctx, 1)`` (streamed V cache),
  ``proj (w, w, B)``, and the routed expert FFNs over the ``B`` new
  tokens.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass, fields
from itertools import accumulate
from typing import Any, Sequence

from repro.models import zoo
from repro.models.layers import DenseLayer, Layer, Network

__all__ = [
    "PHASES",
    "SERVING_BASES",
    "SERVING_NAMES",
    "ServingParams",
    "StepLoad",
    "decode_network",
    "decode_schedule",
    "networks_for",
    "prefill_network",
    "prefill_waves",
    "resolve",
    "route_tokens",
    "split_name",
]

#: The two serving phases, in pipeline order.
PHASES: tuple[str, ...] = ("prefill", "decode")

#: Zoo topologies that have a serving frontend.
SERVING_BASES: frozenset[str] = frozenset({"gpt2"})

#: Every phase-qualified serving workload name, for CLI choices.
SERVING_NAMES: tuple[str, ...] = tuple(
    f"{base}:{phase}" for base in sorted(SERVING_BASES) for phase in PHASES
)

#: Arrival disciplines of the request model.
ARRIVALS: tuple[str, ...] = ("poisson", "closed")

#: MoE routing skews.
SKEWS: tuple[str, ...] = ("uniform", "zipf")

#: Name prefix marking serving networks for trace-cache tagging.
NAME_PREFIX = "srv-"


@dataclass(frozen=True)
class ServingParams:
    """Everything that shapes a serving trace, hashable and picklable.

    Defaults are deliberately small (mini-scale CI budgets); the whole
    object at defaults is treated as "no serving override" by
    :class:`~repro.experiments.spec.RunSpec`, which normalizes it to
    ``None`` so default-parameter specs keep their pre-serving cache
    keys.

    ``batch`` is the continuous-batching slot count (prefill: total
    requests; decode: concurrent requests), ``prompt`` the per-request
    prompt length in tokens, ``decode_steps`` the decode-schedule
    horizon.  ``experts`` / ``capacity_factor`` / ``moe_skew`` /
    ``zipf_alpha`` configure MoE routing; ``arrival`` / ``arrival_rate``
    the request-arrival process; ``seed`` makes all of it deterministic.
    """

    batch: int = 4
    prompt: int = 32
    decode_steps: int = 4
    experts: int = 4
    capacity_factor: float = 1.25
    moe_skew: str = "uniform"
    zipf_alpha: float = 1.2
    arrival: str = "poisson"
    arrival_rate: float = 0.5
    seed: int = 2023

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ValueError("batch must be at least 1")
        if self.prompt < 1:
            raise ValueError("prompt must be at least 1 token")
        if self.decode_steps < 1:
            raise ValueError("decode_steps must be at least 1")
        if self.experts < 1:
            raise ValueError("experts must be at least 1")
        if self.capacity_factor < 1.0:
            raise ValueError(
                "capacity_factor below 1.0 cannot place every token; "
                "routing never drops tokens, so require >= 1.0"
            )
        if self.moe_skew not in SKEWS:
            raise ValueError(
                f"unknown moe_skew {self.moe_skew!r}; choose from "
                + ", ".join(SKEWS)
            )
        if self.zipf_alpha <= 0:
            raise ValueError("zipf_alpha must be positive")
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"unknown arrival {self.arrival!r}; choose from "
                + ", ".join(ARRIVALS)
            )
        if not 0.0 < self.arrival_rate <= 1.0:
            raise ValueError("arrival_rate must be in (0, 1]")

    def descriptor(self) -> dict[str, Any]:
        """JSON-stable field dict, in declaration order (cache identity)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def tag(self) -> str:
        """Compact non-default summary for labels, e.g. ``moe_skew=zipf``."""
        defaults = ServingParams()
        parts = [
            f"{f.name}={getattr(self, f.name)}"
            for f in fields(self)
            if getattr(self, f.name) != getattr(defaults, f.name)
        ]
        return ",".join(parts) or "default"


def split_name(name: str) -> tuple[str, str | None]:
    """``"gpt2:prefill"`` -> ``("gpt2", "prefill")``; plain names get ``None``."""
    base, sep, phase = name.partition(":")
    return (base, phase) if sep else (name, None)


def is_serving_name(name: str) -> bool:
    """True when ``name`` is (or can be phase-qualified into) a serving shape."""
    return split_name(name)[0] in SERVING_BASES


# --------------------------------------------------------------------- #
# MoE expert routing
# --------------------------------------------------------------------- #


def route_tokens(
    rng: random.Random,
    tokens: int,
    experts: int,
    capacity_factor: float = 1.25,
    skew: str = "uniform",
    zipf_alpha: float = 1.2,
) -> tuple[int, ...]:
    """Deterministic token-to-expert counts for one MoE layer.

    Tokens draw an expert from a uniform or Zipf(``zipf_alpha``)
    distribution over expert ranks.  Each expert's capacity is
    ``ceil(capacity_factor * tokens / experts)``; tokens routed past
    capacity are reassigned to the least-loaded expert (lowest index on
    ties) rather than dropped, so ``sum(counts) == tokens`` always —
    with ``capacity_factor >= 1.0`` total capacity covers every token.
    """
    if tokens <= 0:
        return (0,) * experts
    if skew == "zipf":
        weights = [1.0 / (rank + 1) ** zipf_alpha for rank in range(experts)]
    else:
        weights = [1.0] * experts
    cumulative = list(accumulate(weights))
    total = cumulative[-1]
    counts = [0] * experts
    for _ in range(tokens):
        draw = rng.random() * total
        counts[min(bisect_right(cumulative, draw), experts - 1)] += 1
    capacity = math.ceil(capacity_factor * tokens / experts)
    overflow = 0
    for expert in range(experts):
        if counts[expert] > capacity:
            overflow += counts[expert] - capacity
            counts[expert] = capacity
    while overflow:
        target = min(range(experts), key=lambda e: (counts[e], e))
        room = capacity - counts[target]
        if room <= 0:  # impossible with capacity_factor >= 1.0
            raise RuntimeError(
                f"MoE capacity exhausted with {overflow} tokens unplaced "
                f"(tokens={tokens}, experts={experts}, capacity={capacity})"
            )
        moved = min(overflow, room)
        counts[target] += moved
        overflow -= moved
    return tuple(counts)


# --------------------------------------------------------------------- #
# Request-arrival model (seeded, continuous batching)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class StepLoad:
    """One decode step: how many requests ran and their total KV context."""

    step: int
    active: int
    ctx_total: int


def _rng(params: ServingParams, stream: str) -> random.Random:
    # String seeds hash through SHA-512 in CPython's seeding, so the
    # stream is process-independent — the cross-process determinism the
    # content-addressed caches rely on.
    return random.Random(f"serving:{params.seed}:{stream}")


def prefill_waves(params: ServingParams) -> tuple[tuple[int, int], ...]:
    """Arrival waves of the prefill phase: ``(step, request_count)`` pairs.

    Closed-loop arrival admits the whole batch at once (one maximal
    burst); Poisson arrival spaces requests by seeded geometric gaps
    (mean ``1/arrival_rate - 1`` steps), grouping same-step arrivals
    into one fused prefill wave — the burstiness knob.
    """
    if params.arrival == "closed":
        return ((0, params.batch),)
    rng = _rng(params, "arrival")
    step = 0
    waves: list[tuple[int, int]] = []
    for _ in range(params.batch):
        if waves and waves[-1][0] == step:
            waves[-1] = (step, waves[-1][1] + 1)
        else:
            waves.append((step, 1))
        while rng.random() > params.arrival_rate:
            step += 1
    return tuple(waves)


def decode_schedule(params: ServingParams) -> tuple[StepLoad, ...]:
    """Per-step decode load under seeded continuous batching.

    ``batch`` slots start warm (context = ``prompt``).  Each step, every
    active request decodes one token (context grows by one) and retires
    after a seeded budget of steps; a retired slot is refilled
    immediately under closed-loop arrival, or after a seeded geometric
    gap under Poisson arrival.  Step 0 always runs the full batch, so
    the schedule is never empty.
    """
    rng = _rng(params, "decode")

    def budget() -> int:
        return rng.randint(1, max(1, 2 * params.decode_steps - 1))

    def gap() -> int:
        if params.arrival == "closed":
            return 0
        steps = 0
        while rng.random() > params.arrival_rate:
            steps += 1
        return steps

    # slot state: [context, remaining decode budget, steps until arrival]
    slots = [[params.prompt, budget(), 0] for _ in range(params.batch)]
    schedule: list[StepLoad] = []
    for step in range(params.decode_steps):
        active = 0
        ctx_total = 0
        for slot in slots:
            if slot[2] > 0:
                slot[2] -= 1
                if slot[2] > 0:
                    continue
                slot[0] = params.prompt
                slot[1] = budget()
            active += 1
            ctx_total += slot[0]
            slot[0] += 1
            slot[1] -= 1
            if slot[1] == 0:
                slot[2] = gap() + 1
        if active:
            schedule.append(StepLoad(step, active, ctx_total))
    return tuple(schedule)


# --------------------------------------------------------------------- #
# Network builders
# --------------------------------------------------------------------- #


def _dims(scale: str) -> tuple[int, int]:
    """(width, blocks) of the serving transformer at ``scale``.

    Width matches the zoo's gpt2 at the same scale; block count is kept
    lower than the forward-pass topology because serving unrolls the
    schedule across steps (layers multiply by waves/steps).
    """
    if scale == "full":
        return 768, 12
    if scale == "mini":
        return max(96, 768 // zoo.MINI_SCALE), 2
    raise ValueError(f"unknown scale {scale!r}")


def _moe_layers(
    prefix: str,
    width: int,
    tokens: int,
    params: ServingParams,
    rng: random.Random,
) -> list[Layer]:
    """The routed expert FFNs of one block: fc1/fc2 per non-empty expert."""
    counts = route_tokens(
        rng,
        tokens,
        params.experts,
        capacity_factor=params.capacity_factor,
        skew=params.moe_skew,
        zipf_alpha=params.zipf_alpha,
    )
    layers: list[Layer] = []
    for expert, count in enumerate(counts):
        if not count:
            continue
        layers.append(DenseLayer(f"{prefix}_e{expert}_fc1", 4 * width, width, count))
        layers.append(DenseLayer(f"{prefix}_e{expert}_fc2", width, 4 * width, count))
    return layers


def prefill_network(params: ServingParams, scale: str = "mini") -> Network:
    """The prefill phase as a network: one GEMM stack per arrival wave."""
    width, blocks = _dims(scale)
    rng = _rng(params, "route:prefill")
    layers: list[Layer] = []
    for step, requests in prefill_waves(params):
        tokens = requests * params.prompt
        for block in range(blocks):
            prefix = f"s{step}b{block}"
            layers.extend(
                [
                    DenseLayer(f"{prefix}_qkv", 3 * width, width, tokens),
                    DenseLayer(f"{prefix}_score", params.prompt, width, tokens),
                    DenseLayer(f"{prefix}_attnv", width, params.prompt, tokens),
                    DenseLayer(f"{prefix}_proj", width, width, tokens),
                ]
            )
            layers.extend(_moe_layers(prefix, width, tokens, params, rng))
    return Network(f"{NAME_PREFIX}gpt2-prefill", tuple(layers))


def decode_network(params: ServingParams, scale: str = "mini") -> Network:
    """The decode phase as a network: per-step GEMV-like KV-cache stacks."""
    width, blocks = _dims(scale)
    rng = _rng(params, "route:decode")
    layers: list[Layer] = []
    for load in decode_schedule(params):
        for block in range(blocks):
            prefix = f"s{load.step}b{block}"
            layers.extend(
                [
                    DenseLayer(f"{prefix}_qkv", 3 * width, width, load.active),
                    # The A operands below are the KV cache itself: tall
                    # skinny GEMMs whose weight stream is the per-step
                    # scan over every cached key/value row.
                    DenseLayer(f"{prefix}_score", load.ctx_total, width, 1),
                    DenseLayer(f"{prefix}_attnv", width, load.ctx_total, 1),
                    DenseLayer(f"{prefix}_proj", width, width, load.active),
                ]
            )
            layers.extend(_moe_layers(prefix, width, load.active, params, rng))
    return Network(f"{NAME_PREFIX}gpt2-decode", tuple(layers))


# --------------------------------------------------------------------- #
# Name resolution
# --------------------------------------------------------------------- #


def resolve(
    name: str,
    scale: str = "mini",
    *,
    params: ServingParams | None = None,
    default_phase: str | None = None,
) -> Network | None:
    """The serving network for ``name``, or ``None`` when it isn't one.

    ``"gpt2:prefill"`` / ``"gpt2:decode"`` resolve directly; a bare
    serving base (``"gpt2"``) resolves only when ``default_phase`` is
    set (the :class:`RunSpec` ``phase`` field), otherwise it falls back
    to the plain zoo topology by returning ``None``.
    """
    base, phase = split_name(name)
    if phase is not None:
        if base not in SERVING_BASES:
            raise ValueError(
                f"{name!r}: {base!r} has no serving frontend; "
                f"serving bases: {sorted(SERVING_BASES)}"
            )
        if phase not in PHASES:
            raise ValueError(
                f"{name!r}: unknown phase {phase!r}; choose from "
                + ", ".join(PHASES)
            )
    elif base in SERVING_BASES and default_phase is not None:
        phase = default_phase
    if phase is None:
        return None
    params = params if params is not None else ServingParams()
    builder = prefill_network if phase == "prefill" else decode_network
    return builder(params, scale)


def networks_for(
    workloads: Sequence[str],
    scale: str = "mini",
    *,
    params: ServingParams | None = None,
    default_phase: str | None = None,
) -> list[Network]:
    """Resolve a workload list: serving names here, everything else zoo."""
    networks = []
    for name in workloads:
        network = resolve(
            name, scale, params=params, default_phase=default_phase
        )
        networks.append(network if network is not None else zoo.get(name, scale))
    return networks

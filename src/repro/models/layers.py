"""Layer specifications and the im2col translation to GEMM.

mNPUsim follows the convention of GEMM-centric systolic NPUs: every layer
(convolution, fully-connected, recurrent cell, embedding reduction) is
expressed as a general matrix-matrix multiplication via *im2col* (paper
section 3.1).  The im2col rearrangement itself is assumed to happen early
on the host CPU, exactly as the paper assumes, so the NPU sees only GEMM
operands.

A :class:`GemmOp` ``(M, K, N)`` multiplies an ``M x K`` operand A (weights)
by a ``K x N`` operand B (activations / im2col matrix) into an ``M x N``
output C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class GemmOp:
    """One GEMM the systolic array executes: ``C[M,N] = A[M,K] @ B[K,N]``.

    ``b_scatter`` marks the B operand as a *gathered* one (embedding
    lookups): its rows live at scattered addresses across a table region
    many times larger than the traffic itself, instead of packing
    contiguously.  The request generator then emits one strided DRAM
    transaction per row, which is what defeats TLB/page-walk-cache
    locality for recommendation models.
    """

    name: str
    m: int
    k: int
    n: int
    b_scatter: bool = False

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0:
            raise ValueError(f"GEMM dims must be positive, got {self}")

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations this GEMM performs."""
        return self.m * self.k * self.n

    def operand_bytes(self, element_bytes: int = 1) -> tuple[int, int, int]:
        """Sizes of (A, B, C) in bytes."""
        return (
            self.m * self.k * element_bytes,
            self.k * self.n * element_bytes,
            self.m * self.n * element_bytes,
        )

    @property
    def total_bytes(self) -> int:
        """Total unique bytes touched at 1-byte elements (A + B + C)."""
        return self.m * self.k + self.k * self.n + self.m * self.n

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per unique byte — compute- vs memory-bound indicator."""
        return self.macs / self.total_bytes


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial size of a convolution dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution reduces dimension {size} below 1 "
            f"(kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


@dataclass(frozen=True)
class ConvLayer:
    """A 2-D convolution layer, translated to GEMM by im2col.

    im2col: ``A = weights [Cout x (Cin*Kh*Kw)]``, ``B = unfolded input
    [(Cin*Kh*Kw) x (Hout*Wout)]``, so ``M = Cout``, ``K = Cin*Kh*Kw``,
    ``N = Hout*Wout``.
    """

    name: str
    in_channels: int
    in_h: int
    in_w: int
    out_channels: int
    kernel_h: int
    kernel_w: int
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        for field in (
            "in_channels", "in_h", "in_w",
            "out_channels", "kernel_h", "kernel_w", "stride",
        ):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")
        if self.padding < 0:
            raise ValueError("padding cannot be negative")
        # Fail fast if the geometry is inconsistent.
        self.out_hw

    @property
    def out_hw(self) -> tuple[int, int]:
        """Output feature-map height and width."""
        return (
            _conv_out(self.in_h, self.kernel_h, self.stride, self.padding),
            _conv_out(self.in_w, self.kernel_w, self.stride, self.padding),
        )

    def to_gemm(self) -> GemmOp:
        """The im2col GEMM equivalent of this convolution."""
        out_h, out_w = self.out_hw
        return GemmOp(
            name=self.name,
            m=self.out_channels,
            k=self.in_channels * self.kernel_h * self.kernel_w,
            n=out_h * out_w,
        )


@dataclass(frozen=True)
class DenseLayer:
    """A dense (fully-connected / recurrent-cell / attention) GEMM layer.

    ``m`` = output features, ``k`` = input features, ``n`` = batch or
    sequence positions.  RNN cells appear as dense layers with ``m`` being
    the concatenated gate width (e.g. ``4*hidden`` for an LSTM).
    """

    name: str
    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0:
            raise ValueError("dense layer dims must be positive")

    def to_gemm(self) -> GemmOp:
        """The layer already is a GEMM."""
        return GemmOp(name=self.name, m=self.m, k=self.k, n=self.n)


@dataclass(frozen=True)
class EmbeddingLayer:
    """A pooled embedding lookup (DLRM/NCF-style sparse feature reduction).

    Each of ``batch`` samples gathers ``lookups`` distinct table rows of
    width ``dim`` and sum-pools them.  Every gathered row is unique
    traffic, so the GEMM equivalent is ``(1 x batch*lookups) @
    (batch*lookups x dim)``: the B operand carries all gathered rows
    (``batch*lookups*dim`` bytes of reuse-free traffic) and the reduction
    performs one MAC per gathered element.  On a systolic array this
    yields very low PE utilization (M=1 fills one row) and an arithmetic
    intensity near 1 MAC/byte — exactly the memory-bound behaviour that
    makes recommendation models contention-sensitive in the paper
    (Figure 8).
    """

    name: str
    lookups: int
    dim: int
    batch: int = 1

    def __post_init__(self) -> None:
        if min(self.lookups, self.dim, self.batch) <= 0:
            raise ValueError("embedding dims must be positive")

    def to_gemm(self) -> GemmOp:
        """The pooled-gather GEMM equivalent (see class docstring)."""
        return GemmOp(
            name=self.name,
            m=1,
            k=self.batch * self.lookups,
            n=self.dim,
            b_scatter=True,
        )


Layer = Union[ConvLayer, DenseLayer, EmbeddingLayer]


@dataclass(frozen=True)
class Network:
    """A DNN topology: an ordered tuple of layers executed back-to-back."""

    name: str
    layers: tuple[Layer, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a network needs at least one layer")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate layer names in {self.name}")

    def gemms(self) -> tuple[GemmOp, ...]:
        """All layers translated to GEMM operations, in execution order."""
        return tuple(layer.to_gemm() for layer in self.layers)

    @property
    def total_macs(self) -> int:
        """Total MACs of one inference."""
        return sum(gemm.macs for gemm in self.gemms())

    @property
    def total_bytes(self) -> int:
        """Total unique operand bytes across layers (1-byte elements)."""
        return sum(gemm.total_bytes for gemm in self.gemms())

    @property
    def arithmetic_intensity(self) -> float:
        """Whole-network MACs per byte."""
        return self.total_macs / self.total_bytes

"""The eight benchmark DNNs of the paper's Table 1.

Topologies follow the SCALE-Sim conventions the artifact says it is based
on: each model is an ordered list of layers, convolutions described by
their feature-map/kernel geometry and everything else by its GEMM
dimensions.  Two variants exist per model:

* :func:`full` — the published model sizes (ResNet-50 on 224x224 input,
  GPT-2 small at sequence 1024, ...).  Faithful but slow to simulate at
  cycle level in Python (the original C++ artifact itself quotes up to
  24 h per configuration).
* :func:`mini` — topology-faithful scaled versions used by the benchmark
  sweeps: same layer types and per-model intensity ordering, dimensions
  divided by ~4.  See DESIGN.md substitution 2.

The short names (``res``, ``yt``, ``alex``, ``sfrnn``, ``ds2``, ``dlrm``,
``ncf``, ``gpt2``) match the paper's abbreviations.
"""

from __future__ import annotations

from typing import Callable

from repro.models.layers import (
    ConvLayer,
    DenseLayer,
    EmbeddingLayer,
    Layer,
    Network,
)


def _ch(value: int, scale: int, floor: int = 8) -> int:
    """Scale a channel/hidden dimension down, keeping a sane floor."""
    return max(floor, value // scale)


def _sp(value: int, scale: int, floor: int = 7) -> int:
    """Scale a spatial/sequence dimension down, keeping a sane floor."""
    return max(floor, value // scale)


def alexnet(scale: int = 1) -> Network:
    """AlexNet (Krizhevsky et al.): 5 convolutions + 3 dense layers."""
    s = scale
    layers: list[Layer] = [
        ConvLayer("conv1", 3, _sp(227, s), _sp(227, s), _ch(96, s), 11, 11, stride=4),
        ConvLayer(
            "conv2", _ch(96, s), _sp(27, s), _sp(27, s), _ch(256, s), 5, 5, padding=2
        ),
        ConvLayer(
            "conv3", _ch(256, s), _sp(13, s), _sp(13, s), _ch(384, s), 3, 3, padding=1
        ),
        ConvLayer(
            "conv4", _ch(384, s), _sp(13, s), _sp(13, s), _ch(384, s), 3, 3, padding=1
        ),
        ConvLayer(
            "conv5", _ch(384, s), _sp(13, s), _sp(13, s), _ch(256, s), 3, 3, padding=1
        ),
        DenseLayer("fc6", _ch(4096, s), _ch(9216, s), 1),
        DenseLayer("fc7", _ch(4096, s), _ch(4096, s), 1),
        DenseLayer("fc8", 1000 if s == 1 else _ch(1000, s), _ch(4096, s), 1),
    ]
    return Network("alex", tuple(layers))


def resnet50(scale: int = 1) -> Network:
    """ResNet-50: 7x7 stem + 16 bottleneck blocks (stages 3/4/6/3) + FC."""
    s = scale
    layers: list[Layer] = [
        ConvLayer(
            "stem", 3, _sp(224, s), _sp(224, s), _ch(64, s), 7, 7, stride=2, padding=3
        )
    ]
    stage_blocks = (3, 4, 6, 3)
    stage_channels = (64, 128, 256, 512)
    stage_spatial = (56, 28, 14, 7)
    for stage, (blocks, width, spatial) in enumerate(
        zip(stage_blocks, stage_channels, stage_spatial), start=1
    ):
        hw = _sp(spatial, s)
        mid = _ch(width, s)
        out = _ch(width * 4, s)
        inp = _ch(64, s) if stage == 1 else _ch(stage_channels[stage - 2] * 4, s)
        for block in range(blocks):
            prefix = f"s{stage}b{block}"
            cin = inp if block == 0 else out
            layers.append(ConvLayer(f"{prefix}_c1", cin, hw, hw, mid, 1, 1))
            layers.append(ConvLayer(f"{prefix}_c2", mid, hw, hw, mid, 3, 3, padding=1))
            layers.append(ConvLayer(f"{prefix}_c3", mid, hw, hw, out, 1, 1))
    layers.append(DenseLayer("fc", 1000 if s == 1 else _ch(1000, s), _ch(2048, s), 1))
    return Network("res", tuple(layers))


def yolo_tiny(scale: int = 1) -> Network:
    """YOLOv2-tiny: seven 3x3 convolutions with pool-halved feature maps."""
    s = scale
    widths = (16, 32, 64, 128, 256, 512, 1024)
    spatial = (416, 208, 104, 52, 26, 13, 13)
    # Scale channels gently but spatial harder: yolo-tiny's deep, wide-channel
    # convolutions are what make it compute-bound (narrow box in Figure 8).
    ch_scale = 1 if s == 1 else s // 2
    sp_scale = 1 if s == 1 else s * 2
    layers: list[Layer] = []
    cin = 3
    for index, (width, hw) in enumerate(zip(widths, spatial), start=1):
        cout = _ch(width, ch_scale)
        size = _sp(hw, sp_scale)
        layers.append(ConvLayer(f"conv{index}", cin, size, size, cout, 3, 3, padding=1))
        cin = cout
    layers.append(
        ConvLayer(
            "head", cin, _sp(13, sp_scale), _sp(13, sp_scale),
            _ch(128, ch_scale, floor=16), 1, 1,
        )
    )
    return Network("yt", tuple(layers))


def selfish_rnn(scale: int = 1, seq: int | None = None) -> Network:
    """Selfish-RNN: stacked LSTM language model (PTB-style, hidden 1500).

    Each timestep batch is small (``n`` = sequence positions processed as
    one GEMM) while gate weight matrices are large, so weight traffic
    dominates: the model is memory-intensive, matching its wide
    contention-sensitivity box in Figure 8.
    """
    s = scale
    hidden = _ch(1500, s, floor=64)
    seq_len = seq if seq is not None else _sp(35, 1 if s == 1 else 2)
    vocab = _ch(10000, s, floor=256)
    layers: list[Layer] = [
        DenseLayer("embed", hidden, vocab, seq_len),
        DenseLayer("lstm1", 4 * hidden, 2 * hidden, seq_len),
        DenseLayer("lstm2", 4 * hidden, 2 * hidden, seq_len),
        DenseLayer("softmax", vocab, hidden, seq_len),
    ]
    return Network("sfrnn", tuple(layers))


def deepspeech2(scale: int = 1, seq: int | None = None) -> Network:
    """DeepSpeech2: two big 2-D convolutions + five GRU layers + CTC head."""
    s = scale
    seq_len = seq if seq is not None else _sp(340, s, floor=16)
    hidden = _ch(800, s, floor=64)
    freq = _sp(161, s, floor=16)
    conv_ch = 32 if s == 1 else 8
    # Kernels shrink with the spectrogram so mini stays geometrically valid.
    k1h, k1w = (41, 11) if s == 1 else (11, 5)
    k2h, k2w = (21, 11) if s == 1 else (7, 5)
    layers: list[Layer] = [
        ConvLayer("conv1", 1, freq, _sp(700, s, floor=32), conv_ch, k1h, k1w, stride=2),
        ConvLayer(
            "conv2",
            conv_ch,
            _sp(61, s, floor=8),
            _sp(345, s, floor=16),
            conv_ch,
            k2h,
            k2w,
            stride=2,
        ),
    ]
    for index in range(1, 6):
        layers.append(DenseLayer(f"gru{index}", 3 * hidden, 2 * hidden, seq_len))
    layers.append(DenseLayer("ctc", _ch(4096, s, floor=64), hidden, seq_len))
    return Network("ds2", tuple(layers))


def dlrm(scale: int = 1, batch: int | None = None) -> Network:
    """DLRM: pooled embedding gathers (26 tables) + bottom/top MLPs.

    Embedding traffic dominates, making the model the most
    memory-intensive of the zoo — the paper reports dlrm has the widest
    co-runner sensitivity (Figure 8) and the largest page-size gain
    (~30%, section 4.5.1).
    """
    s = scale
    emb_batch = batch if batch is not None else (2048 if s == 1 else 512)
    # The MLP stack processes the same requests but its GEMM batch is a
    # much smaller compute load than the gathers' traffic (DLRM inference
    # is embedding-dominated); mini keeps that imbalance.
    mlp_batch = emb_batch if s == 1 else emb_batch // 8
    dim = 64 if s == 1 else 32
    layers: list[Layer] = []
    groups = 4
    tables_per_group = 26 // groups
    for group in range(groups):
        layers.append(
            EmbeddingLayer(
                f"emb{group}", lookups=tables_per_group, dim=dim, batch=emb_batch
            )
        )
    layers.extend(
        [
            DenseLayer("bot1", _ch(512, s), 13, mlp_batch),
            DenseLayer("bot2", _ch(256, s), _ch(512, s), mlp_batch),
            DenseLayer("bot3", dim, _ch(256, s), mlp_batch),
            DenseLayer("top1", _ch(1024, s), _ch(512, s), mlp_batch),
            DenseLayer("top2", _ch(1024, s), _ch(1024, s), mlp_batch),
            DenseLayer("top3", _ch(512, s), _ch(1024, s), mlp_batch),
            DenseLayer("top4", 1, _ch(512, s), mlp_batch),
        ]
    )
    return Network("dlrm", tuple(layers))


def ncf(scale: int = 1, batch: int | None = None) -> Network:
    """Neural Collaborative Filtering: GMF/MLP embeddings + a small MLP."""
    s = scale
    b = batch if batch is not None else (4096 if s == 1 else 512)
    dim = 64 if s == 1 else 32
    mlp_batch = b if s == 1 else b // 4
    layers: list[Layer] = [
        EmbeddingLayer("user_emb", lookups=4, dim=dim, batch=b),
        EmbeddingLayer("item_emb", lookups=4, dim=dim, batch=b),
        DenseLayer("mlp1", _ch(1024, s), 2 * dim, mlp_batch),
        DenseLayer("mlp2", _ch(512, s), _ch(1024, s), mlp_batch),
        DenseLayer("mlp3", _ch(256, s), _ch(512, s), mlp_batch),
        DenseLayer("mlp4", dim, _ch(256, s), mlp_batch),
        DenseLayer("predict", 1, 2 * dim, mlp_batch),
    ]
    return Network("ncf", tuple(layers))


def gpt2(scale: int = 1, seq: int | None = None, blocks: int | None = None) -> Network:
    """GPT-2 small: 12 transformer blocks, width 768, sequence 1024.

    Per block: QKV projection, attention score (``Q @ K^T`` across all
    heads folds to a ``seq x width x seq`` GEMM), attention-times-values,
    output projection, and the two MLP GEMMs.
    """
    s = scale
    width = _ch(768, s, floor=96)
    seq_len = seq if seq is not None else _sp(1024, s * 2 if s > 1 else 1, floor=64)
    num_blocks = blocks if blocks is not None else (12 if s == 1 else 3)
    layers: list[Layer] = []
    for block in range(num_blocks):
        prefix = f"b{block}"
        layers.extend(
            [
                DenseLayer(f"{prefix}_qkv", 3 * width, width, seq_len),
                DenseLayer(f"{prefix}_score", seq_len, width, seq_len),
                DenseLayer(f"{prefix}_attnv", seq_len, seq_len, width),
                DenseLayer(f"{prefix}_proj", width, width, seq_len),
                DenseLayer(f"{prefix}_fc1", 4 * width, width, seq_len),
                DenseLayer(f"{prefix}_fc2", width, 4 * width, seq_len),
            ]
        )
    return Network("gpt2", tuple(layers))


#: Short name -> builder, in the paper's Table 1 order.
MODELS: dict[str, Callable[[int], Network]] = {
    "res": resnet50,
    "yt": yolo_tiny,
    "alex": alexnet,
    "sfrnn": selfish_rnn,
    "ds2": deepspeech2,
    "dlrm": dlrm,
    "ncf": ncf,
    "gpt2": gpt2,
}

#: All benchmark short names, in Table 1 order.
NAMES: tuple[str, ...] = tuple(MODELS)

#: Model categories of Table 1.
CATEGORIES: dict[str, str] = {
    "res": "CNN",
    "yt": "CNN",
    "alex": "CNN",
    "sfrnn": "RNN",
    "ds2": "RNN",
    "dlrm": "Recommendation",
    "ncf": "Recommendation",
    "gpt2": "Attention",
}

#: Dimension divisor used by the mini variants.
MINI_SCALE = 4


def full(name: str) -> Network:
    """The published-size topology for benchmark ``name``."""
    return _builder(name)(1)


def mini(name: str) -> Network:
    """The scaled topology for benchmark ``name`` (see module docstring)."""
    return _builder(name)(MINI_SCALE)


def get(name: str, scale: str = "mini") -> Network:
    """Fetch ``name`` at ``"full"`` or ``"mini"`` scale."""
    if scale == "full":
        return full(name)
    if scale == "mini":
        return mini(name)
    raise ValueError(f"unknown scale {scale!r}")


def _builder(name: str) -> Callable[[int], Network]:
    try:
        return MODELS[name]
    except KeyError:
        raise ValueError(f"unknown model {name!r}; pick one of {NAMES}") from None

"""Typed exceptions and failure records for the whole simulator stack.

Before this module existed every abnormal outcome surfaced as a bare
``RuntimeError`` (or worse, a crashed worker process), which made sweep
supervision impossible: the experiment runner could not tell a livelocked
simulation from a misconfigured spec from a killed worker.  The hierarchy
here gives each failure mode a type that carries enough structured state
(per-core diagnostics, attempt counts, tracebacks) for the supervision
layer in :mod:`repro.experiments.runner` to retry, isolate, or report it.

Simulation-side errors subclass :class:`RuntimeError` as well, so code
written against the old bare-``RuntimeError`` contract keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


class ReproError(Exception):
    """Base class of every typed error raised by this package."""


class SimulationError(ReproError, RuntimeError):
    """Base class of errors raised while a simulation is running.

    Subclasses ``RuntimeError`` for backwards compatibility: callers that
    predate the typed hierarchy catch ``RuntimeError`` around
    :meth:`MultiCoreNPUSim.run` and must keep working.
    """


@dataclass(frozen=True)
class CoreDiagnostics:
    """Point-in-time progress snapshot of one core, attached to stalls.

    Captures everything needed to see *where* a livelocked simulation is
    wedged: how much work the core has retired, what it still has in
    flight in the DMA window and the walker pool, and the last global
    tick at which it made forward progress.
    """

    core: int
    workload: str
    tiles_computed: int
    completed_iterations: int
    outstanding_dma: int
    queued_transfers: int
    outstanding_writes: int
    walks_inflight: int
    walks_queued: int
    last_progress_tick: int

    def summary(self) -> str:
        """One-line rendering used in stall messages and logs."""
        return (
            f"core {self.core} ({self.workload}): "
            f"tiles={self.tiles_computed} iters={self.completed_iterations} "
            f"dma={self.outstanding_dma}+{self.queued_transfers}q "
            f"writes={self.outstanding_writes} "
            f"walks={self.walks_inflight}+{self.walks_queued}q "
            f"last_progress@{self.last_progress_tick}"
        )


class SimulationStallError(SimulationError):
    """The simulation stopped making forward progress.

    Raised either by the engine stall watchdog (events kept firing but no
    core retired a tile or iteration within the configured tick window)
    or at the ``max_ticks`` ceiling when a core never completed an
    iteration.  Carries per-core :class:`CoreDiagnostics` plus global
    queue depths so the failure is debuggable from the record alone.
    """

    def __init__(
        self,
        message: str,
        *,
        diagnostics: Sequence[CoreDiagnostics] = (),
        total_ticks: int | None = None,
        events_processed: int | None = None,
        dram_queue_depths: dict[int, int] | None = None,
    ) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)
        self.total_ticks = total_ticks
        self.events_processed = events_processed
        self.dram_queue_depths = dict(dram_queue_depths or {})

    def detail(self) -> str:
        """Multi-line report: the message plus every core's snapshot."""
        lines = [str(self)]
        if self.dram_queue_depths:
            depths = " ".join(
                f"ch{channel}={depth}"
                for channel, depth in sorted(self.dram_queue_depths.items())
            )
            lines.append(f"dram queues: {depths}")
        lines.extend(diag.summary() for diag in self.diagnostics)
        return "\n".join(lines)


class SimulatorReuseError(SimulationError):
    """A :class:`MultiCoreNPUSim` instance was run a second time."""


class RunTimeoutError(ReproError):
    """One spec's simulation exceeded its wall-clock budget."""


class TransientWorkerError(ReproError):
    """A retriable worker-side failure (the supervisor may requeue it)."""


class InjectedFaultError(ReproError):
    """A deterministic failure injected by the fault harness."""


class CacheIntegrityError(ReproError):
    """A cache shard failed validation (normally quarantined, not raised)."""


class ServeError(ReproError):
    """Base class of every error raised by the ``mnpusim serve`` stack."""


class ProtocolError(ServeError):
    """A request or response violated the serve wire protocol."""


class ServerOverloadedError(ServeError):
    """The daemon's admission queue is full; retry after backing off.

    ``retry_after`` is the server's suggested minimum backoff in seconds
    (the HTTP ``Retry-After`` header), or ``None`` when it offered none.
    """

    def __init__(self, message: str, *, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServiceUnavailableError(ServeError):
    """The daemon is not accepting work (circuit breaker open, draining)."""

    def __init__(self, message: str, *, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceededError(ServeError):
    """A request's deadline expired before a result could be produced."""


class RemoteRunFailedError(ServeError):
    """The daemon executed the spec and it failed terminally.

    Carries the server-side :class:`RunFailure` summary fields so clients
    can distinguish a crashed worker from a misconfigured spec without
    parsing the message text.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "error",
        label: str = "",
        attempts: int = 0,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.label = label
        self.attempts = attempts


@dataclass(frozen=True)
class RunFailure:
    """Structured record of one spec that failed despite supervision.

    ``spec`` is the planned :class:`~repro.experiments.spec.RunSpec`;
    ``kind`` classifies the terminal failure (``"error"``, ``"timeout"``,
    ``"stall"``, ``"crash"``); ``attempts`` counts executions consumed.
    """

    spec: Any
    kind: str
    attempts: int
    error: str
    traceback: str = ""
    elapsed_seconds: float = 0.0

    @property
    def key(self) -> str:
        """The failed spec's cache key."""
        return self.spec.cache_key()

    @property
    def label(self) -> str:
        """The failed spec's human-readable label."""
        return self.spec.label

    def summary(self) -> dict[str, Any]:
        """JSON-ready digest (journal/report format)."""
        return {
            "key": self.key,
            "label": self.label,
            "kind": self.kind,
            "attempts": self.attempts,
            "error": self.error,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }


class RunFailedError(ReproError):
    """Raised when a result is requested for a spec that already failed."""

    def __init__(self, failure: RunFailure) -> None:
        super().__init__(
            f"run failed after {failure.attempts} attempt(s): "
            f"{failure.label}: {failure.error}"
        )
        self.failure = failure


@dataclass(frozen=True)
class SweepOutcome:
    """Aggregate view of one supervised :meth:`run_many` batch."""

    total: int
    cache_hits: int
    executed: int
    failures: tuple[RunFailure, ...] = field(default_factory=tuple)

    @property
    def succeeded(self) -> int:
        """Specs with results available (cached or freshly executed)."""
        return self.total - len(self.failures)

"""Multi-factor regression slowdown predictor (paper section 4.6.1).

Predicts the slowdown a workload suffers from a given co-runner on a
dual-core NPU, using only *profiled* per-workload information: PE
utilization (lower = more memory pressure), memory traffic per unit of
execution, and the execution-time ratio between the two workloads (the
paper's correction factor for residual effects like TLB conflicts).

To avoid overfitting the eight evaluation benchmarks, the model is
trained on DeepSniffer-style randomly generated networks (conv/GEMM
layers with realistic random dimensions) whose pairwise contention is
simulated with the same simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.compute.requestgen import RequestGenerator
from repro.config import presets
from repro.core.sharing import SharingLevel
from repro.experiments.runner import ExperimentRunner
from repro.models.layers import Network
from repro.models.random_net import random_network


@dataclass(frozen=True)
class WorkloadProfile:
    """Profiled features of one workload (no co-runner knowledge)."""

    name: str
    pe_utilization: float      #: MACs per array-MAC-slot, memory-ideal
    traffic_per_cycle: float   #: bytes of DRAM traffic per ideal cycle
    ideal_cycles: float        #: profiled solo latency (Ideal resources)


def profile_workload(
    runner: ExperimentRunner, network: Network, num_cores: int = 2
) -> WorkloadProfile:
    """Profile a workload: request-generator statistics + one Ideal run."""
    runner.register_network(network)
    arch = presets.cloud_arch(runner.scale)
    summary = RequestGenerator(network, arch).summary()
    ideal = runner.ideal(network.name, num_cores)
    return WorkloadProfile(
        name=network.name,
        pe_utilization=summary["pe_utilization"],
        traffic_per_cycle=summary["traffic_bytes"] / max(1.0, ideal["cycles"]),
        ideal_cycles=float(ideal["cycles"]),
    )


def _features(a: WorkloadProfile, b: WorkloadProfile) -> list[float]:
    """Feature vector for predicting the slowdown of ``a`` beside ``b``."""
    return [
        1.0,
        a.pe_utilization,
        b.pe_utilization,
        a.traffic_per_cycle,
        b.traffic_per_cycle,
        a.traffic_per_cycle * b.traffic_per_cycle,
        math.log(a.ideal_cycles / b.ideal_cycles),
    ]


class SlowdownPredictor:
    """Least-squares slowdown model over co-runner feature vectors."""

    def __init__(self) -> None:
        self._weights: np.ndarray | None = None
        self.training_error: float | None = None

    @property
    def is_trained(self) -> bool:
        """True once :meth:`train` has fit the weights."""
        return self._weights is not None

    def train(
        self,
        runner: ExperimentRunner,
        *,
        num_random_nets: int = 12,
        seed: int = 2023,
    ) -> None:
        """Fit on random-network pairs simulated under +DWT.

        Every unordered pair of the generated networks contributes two
        ordered samples (each side's observed slowdown).
        """
        networks = [
            random_network(seed + index, name=f"rand{seed + index}")
            for index in range(num_random_nets)
        ]
        profiles = {
            network.name: profile_workload(runner, network)
            for network in networks
        }
        rows: list[list[float]] = []
        targets: list[float] = []
        for i, left in enumerate(networks):
            for right in networks[i:]:
                results = runner.mix(
                    (left.name, right.name), SharingLevel.DWT
                )
                pair = (left.name, right.name)
                for name, result in zip(pair, results):
                    other = pair[1] if name == pair[0] else pair[0]
                    observed = result["cycles"] / profiles[name].ideal_cycles
                    rows.append(_features(profiles[name], profiles[other]))
                    targets.append(observed)
        matrix = np.asarray(rows)
        vector = np.asarray(targets)
        weights, *_ = np.linalg.lstsq(matrix, vector, rcond=None)
        self._weights = weights
        predictions = matrix @ weights
        self.training_error = float(
            np.sqrt(np.mean((predictions - vector) ** 2))
        )

    def predict(self, a: WorkloadProfile, b: WorkloadProfile) -> float:
        """Predicted slowdown of ``a`` when co-running with ``b``."""
        if self._weights is None:
            raise RuntimeError("call train() first")
        value = float(np.dot(self._weights, _features(a, b)))
        return max(1.0, value)  # co-runners cannot speed a workload up

"""Co-runner mapping over four dual-core NPUs (paper section 4.6.2).

Given a set of eight workloads, a *mapping* partitions them into four
pairs, one per dual-core chip.  The paper evaluates all M(8,8) = 6435
eight-workload multisets, comparing four selection policies per set:

* **oracle** — the pairing with the best simulated outcome,
* **worst**  — the pairing with the worst simulated outcome,
* **random** — the expected outcome over all pairings (no mapping),
* **model**  — the pairing chosen by the slowdown predictor.

Chips are independent (no inter-chip shared resources), so the outcome
of a mapping is composed from the simulated dual-core results of its
pairs — the same 36 type-pair co-simulations that back Figure 4.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.core.metrics import cdf_points, fairness, geomean
from repro.core.sharing import SharingLevel
from repro.experiments.mixes import all_mixes
from repro.experiments.runner import ExperimentRunner
from repro.mapping.predictor import (
    SlowdownPredictor,
    WorkloadProfile,
    profile_workload,
)
from repro.models import zoo


def pairings(items: Sequence[str]) -> list[tuple[tuple[str, str], ...]]:
    """All distinct ways to split ``items`` into unordered pairs.

    Repeated workload types make many pairings coincide; duplicates are
    removed (8 distinct items give 105 pairings, fewer with repeats).
    """
    if len(items) % 2:
        raise ValueError("need an even number of workloads")
    seen: set[tuple[tuple[str, str], ...]] = set()
    result = []
    for pairing in _enumerate_pairings(tuple(sorted(items))):
        canonical = tuple(sorted(pairing))
        if canonical not in seen:
            seen.add(canonical)
            result.append(canonical)
    return result


def _enumerate_pairings(
    items: tuple[str, ...]
) -> Iterator[tuple[tuple[str, str], ...]]:
    if not items:
        yield ()
        return
    first, rest = items[0], items[1:]
    used: set[str] = set()
    for index, partner in enumerate(rest):
        if partner in used:
            continue  # pairing with an identical partner repeats
        used.add(partner)
        pair = (first, partner) if first <= partner else (partner, first)
        remaining = rest[:index] + rest[index + 1 :]
        for tail in _enumerate_pairings(remaining):
            yield (pair,) + tail


class MappingStudy:
    """Precomputed pair outcomes + predictor, evaluated over 8-sets."""

    def __init__(
        self, runner: ExperimentRunner, *, train_predictor: bool = True
    ) -> None:
        self.runner = runner
        self.profiles: dict[str, WorkloadProfile] = {
            name: profile_workload(runner, zoo.get(name, runner.scale))
            for name in zoo.NAMES
        }
        # Simulated slowdown of each workload within each type pair.
        self.pair_slowdowns: dict[tuple[str, str], tuple[float, float]] = {}
        for mix in all_mixes(2):
            results = runner.mix(mix, SharingLevel.DWT)
            self.pair_slowdowns[mix] = tuple(
                result["cycles"] / self.profiles[name].ideal_cycles
                for name, result in zip(mix, results)
            )
        self.predictor = SlowdownPredictor()
        if train_predictor:
            self.predictor.train(runner)

    # ------------------------------------------------------------------ #

    def _pair_key(self, a: str, b: str) -> tuple[str, str]:
        return (a, b) if (a, b) in self.pair_slowdowns else (b, a)

    def simulated_slowdowns(
        self, pairing: Sequence[tuple[str, str]]
    ) -> list[float]:
        """Observed slowdowns of all eight workloads under a pairing."""
        values = []
        for a, b in pairing:
            key = self._pair_key(a, b)
            left, right = self.pair_slowdowns[key]
            if key == (a, b):
                values.extend([left, right])
            else:
                values.extend([right, left])
        return values

    def predicted_score(self, pairing: Sequence[tuple[str, str]]) -> float:
        """Predicted geomean speedup (inverse slowdown) of a pairing."""
        slowdowns = []
        for a, b in pairing:
            slowdowns.append(
                self.predictor.predict(self.profiles[a], self.profiles[b])
            )
            slowdowns.append(
                self.predictor.predict(self.profiles[b], self.profiles[a])
            )
        return geomean([1.0 / value for value in slowdowns])

    # ------------------------------------------------------------------ #

    def evaluate_set(self, workloads: Sequence[str]) -> dict[str, Any]:
        """Evaluate all mapping policies on one eight-workload set."""
        options = pairings(workloads)
        perf = []
        fair = []
        for pairing in options:
            slowdowns = self.simulated_slowdowns(pairing)
            perf.append(geomean([1.0 / value for value in slowdowns]))
            fair.append(fairness(slowdowns))
        model_index = max(
            range(len(options)), key=lambda i: self.predicted_score(options[i])
        )
        random_perf = sum(perf) / len(perf)
        random_fair = sum(fair) / len(fair)
        return {
            "pairings": len(options),
            "oracle_perf": max(perf),
            "worst_perf": min(perf),
            "random_perf": random_perf,
            "model_perf": perf[model_index],
            "oracle_fairness": max(fair),
            "worst_fairness": min(fair),
            "random_fairness": random_fair,
            "model_fairness": fair[model_index],
            "model_pairing": options[model_index],
        }

    def evaluate_all(
        self, sets: Sequence[tuple[str, ...]] | None = None
    ) -> list[dict[str, Any]]:
        """Evaluate every M(8,8) eight-workload multiset (or a subset)."""
        sets = list(sets) if sets is not None else all_mixes(8)
        return [self.evaluate_set(workloads) for workloads in sets]


def _policy_cdfs(
    evaluations: list[dict[str, Any]], metric: str
) -> dict[str, Any]:
    policies = ("model", "oracle", "worst", "random")
    normalized: dict[str, list[float]] = {policy: [] for policy in policies}
    improved = 0
    for row in evaluations:
        baseline = row[f"random_{metric}"]
        for policy in policies:
            normalized[policy].append(row[f"{policy}_{metric}"] / baseline)
        if row[f"model_{metric}"] > baseline:
            improved += 1
    return {
        "cdf": {policy: cdf_points(values) for policy, values in normalized.items()},
        "model_improved_fraction": improved / len(evaluations),
        "normalized": normalized,
    }


def fig17_mapping_performance(
    study: MappingStudy, sets: Sequence[tuple[str, ...]] | None = None
) -> dict[str, Any]:
    """Figure 17: CDF of mapping performance, normalized to no-mapping."""
    evaluations = study.evaluate_all(sets)
    return {"metric": "perf", **_policy_cdfs(evaluations, "perf")}


def fig18_mapping_fairness(
    study: MappingStudy, sets: Sequence[tuple[str, ...]] | None = None
) -> dict[str, Any]:
    """Figure 18: CDF of mapping fairness, normalized to no-mapping."""
    evaluations = study.evaluate_all(sets)
    return {"metric": "fairness", **_policy_cdfs(evaluations, "fairness")}

"""Workload mapping onto multiple multi-core NPUs (paper section 4.6)."""

from repro.mapping.predictor import SlowdownPredictor, WorkloadProfile
from repro.mapping.mapper import (
    MappingStudy,
    pairings,
    fig17_mapping_performance,
    fig18_mapping_fairness,
)

__all__ = [
    "SlowdownPredictor",
    "WorkloadProfile",
    "MappingStudy",
    "pairings",
    "fig17_mapping_performance",
    "fig18_mapping_fairness",
]

"""``mnpusim serve`` — the sweep-as-a-service daemon.

* :mod:`repro.serve.protocol` — the typed HTTP/JSON wire format shared
  by server and client;
* :mod:`repro.serve.server` — the daemon: warm memo + disk cache,
  single-flight dedup, bounded admission with load shedding, deadline
  propagation, a circuit breaker around the worker pool, and graceful
  drain;
* :mod:`repro.serve.client` — the retrying client (backoff with jitter,
  ``Retry-After`` aware, deadline-bounded).
"""

from repro.serve.client import ServeClient, ServeResult
from repro.serve.protocol import PROTOCOL
from repro.serve.server import CircuitBreaker, ServeDaemon, SweepService

__all__ = [
    "PROTOCOL",
    "CircuitBreaker",
    "ServeClient",
    "ServeDaemon",
    "ServeResult",
    "SweepService",
]

"""The serve daemon's typed HTTP/JSON wire protocol.

One module owns every byte that crosses the wire, so server and client
cannot drift: spec encoding (:func:`spec_to_wire` / :func:`spec_from_wire`),
run-request framing, the error envelope, and the status-code mapping
between HTTP and the typed :mod:`repro.errors` service exceptions.

Design rules:

* **Result payloads are shard bytes.**  A successful ``POST /v1/run``
  response body is *exactly* the result shard the spec's cold run writes
  to disk (:func:`repro.storage.encode_result_shard`), so a client can
  sha256 the body and compare it against any cache, local or remote.
* **Specs travel as field dicts**, not cache keys: the server re-derives
  the key itself, which makes submission idempotent (two clients posting
  the same spec converge on one cache entry) and keeps the client unable
  to poison the cache with a mismatched key/spec pair.
* **Errors are structured**: ``{"error": {"code", "message",
  "retry_after"?, ...}}`` with a small closed set of codes, each mapped
  to one HTTP status and one typed exception.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import (
    DeadlineExceededError,
    ProtocolError,
    RemoteRunFailedError,
    ServeError,
    ServerOverloadedError,
    ServiceUnavailableError,
)
from repro.experiments.spec import RunSpec

#: Protocol identity, sent as the ``X-Repro-Protocol`` header both ways.
#: Bump on breaking wire changes.
PROTOCOL = "repro-serve/1"

#: Routes.
RUN_PATH = "/v1/run"
HEALTH_PATH = "/healthz"
READY_PATH = "/readyz"
STATS_PATH = "/statz"

#: Headers.
PROTOCOL_HEADER = "X-Repro-Protocol"
KEY_HEADER = "X-Repro-Key"          #: the spec's cache key, echoed back
SOURCE_HEADER = "X-Repro-Source"    #: memo | disk | dedup | cold

#: Largest accepted request body; a RunSpec is a few hundred bytes, so
#: anything bigger is a confused or malicious client, not a big spec.
MAX_BODY_BYTES = 1 << 20

#: Where a served result came from.
SOURCES = ("memo", "disk", "dedup", "cold")

#: ``error.code`` -> (HTTP status, exception type).  The inverse mapping
#: (status -> code) is what the server uses when writing an error.
ERROR_CODES: dict[str, tuple[int, type[ServeError]]] = {
    "protocol": (400, ProtocolError),
    "overloaded": (429, ServerOverloadedError),
    "run-failed": (502, RemoteRunFailedError),
    "unavailable": (503, ServiceUnavailableError),
    "deadline": (504, DeadlineExceededError),
}

#: RunSpec fields a client may set.  ``version`` is deliberately not
#: wire-settable: the server's RESULTS_VERSION is authoritative, so an
#: old client can never fabricate cache keys for a different schema.
_SPEC_FIELDS = tuple(
    field.name for field in dataclasses.fields(RunSpec) if field.name != "version"
)


def spec_to_wire(spec: RunSpec) -> dict[str, Any]:
    """The JSON-ready field dict of a spec (``version`` omitted)."""
    payload = dataclasses.asdict(spec)
    payload.pop("version", None)
    payload["workloads"] = list(spec.workloads)
    if spec.ptw_split is not None:
        payload["ptw_split"] = list(spec.ptw_split)
    return payload


def spec_from_wire(payload: Mapping[str, Any]) -> RunSpec:
    """Rebuild (and resolve) a spec from its wire dict.

    Every constraint violation — unknown field, wrong shape, an invalid
    combination the :class:`RunSpec` constructor rejects — surfaces as
    :class:`ProtocolError` so the server can answer 400 instead of 500.
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"spec must be an object, got {type(payload).__name__}")
    unknown = sorted(set(payload) - set(_SPEC_FIELDS))
    if unknown:
        raise ProtocolError(f"unknown spec field(s): {', '.join(unknown)}")
    kwargs = dict(payload)
    workloads = kwargs.get("workloads")
    if not isinstance(workloads, (list, tuple)) or not all(
        isinstance(name, str) for name in workloads or ()
    ):
        raise ProtocolError("spec.workloads must be a list of strings")
    kwargs["workloads"] = tuple(workloads)
    if kwargs.get("ptw_split") is not None:
        split = kwargs["ptw_split"]
        if not isinstance(split, (list, tuple)):
            raise ProtocolError("spec.ptw_split must be a list of ints")
        kwargs["ptw_split"] = tuple(split)
    try:
        return RunSpec(**kwargs).resolve()
    except (TypeError, ValueError, KeyError) as error:
        # KeyError covers enum lookups (e.g. an unknown sharing level).
        raise ProtocolError(f"invalid spec: {error}") from error


@dataclass(frozen=True)
class RunRequest:
    """One ``POST /v1/run`` body: the spec plus an optional deadline.

    ``deadline_seconds`` is the client's *remaining* budget at send time
    (relative, so clock skew between client and server is irrelevant);
    the server propagates it into the run's wall-clock timeout and sheds
    the job with 504 if it expires while queued.
    """

    spec: RunSpec
    deadline_seconds: float | None = None


def encode_request(request: RunRequest) -> bytes:
    body: dict[str, Any] = {"spec": spec_to_wire(request.spec)}
    if request.deadline_seconds is not None:
        body["deadline_seconds"] = request.deadline_seconds
    return json.dumps(body, sort_keys=True).encode("utf-8")


def decode_request(raw: bytes) -> RunRequest:
    """Parse a run request; any malformation is a :class:`ProtocolError`."""
    if len(raw) > MAX_BODY_BYTES:
        raise ProtocolError(f"request body exceeds {MAX_BODY_BYTES} bytes")
    try:
        body = json.loads(raw)
    except ValueError as error:
        raise ProtocolError(f"request body is not valid JSON: {error}") from error
    if not isinstance(body, dict) or "spec" not in body:
        raise ProtocolError('request body must be {"spec": {...}}')
    unknown = sorted(set(body) - {"spec", "deadline_seconds"})
    if unknown:
        raise ProtocolError(f"unknown request field(s): {', '.join(unknown)}")
    deadline = body.get("deadline_seconds")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or deadline != deadline:
            raise ProtocolError("deadline_seconds must be a number")
        if deadline <= 0:
            raise ProtocolError("deadline_seconds must be positive")
    return RunRequest(spec=spec_from_wire(body["spec"]), deadline_seconds=deadline)


def encode_error(
    code: str, message: str, *, retry_after: float | None = None, **extra: Any
) -> bytes:
    """The error envelope for one failed request."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    error: dict[str, Any] = {"code": code, "message": message, **extra}
    if retry_after is not None:
        error["retry_after"] = round(retry_after, 3)
    return json.dumps({"error": error}, sort_keys=True).encode("utf-8")


def error_status(code: str) -> int:
    """The HTTP status an error code travels under."""
    return ERROR_CODES[code][0]


def decode_error(status: int, raw: bytes) -> ServeError:
    """Turn an error response into its typed exception (client side).

    Unknown statuses and unparseable bodies degrade to
    :class:`ProtocolError` — a client must never crash on a garbled
    error path.
    """
    code = message = None
    retry_after = None
    extra: dict[str, Any] = {}
    try:
        envelope = json.loads(raw)
        error = envelope["error"]
        code = error["code"]
        message = error["message"]
        retry_after = error.get("retry_after")
        extra = {
            key: value
            for key, value in error.items()
            if key not in ("code", "message", "retry_after")
        }
    except (ValueError, KeyError, TypeError):
        pass
    if code not in ERROR_CODES or error_status(code) != status:
        return ProtocolError(
            f"unexpected server response (HTTP {status}): "
            + (message or raw[:200].decode("utf-8", "replace"))
        )
    expected_status, exc_type = ERROR_CODES[code]
    if exc_type in (ServerOverloadedError, ServiceUnavailableError):
        return exc_type(message, retry_after=retry_after)
    if exc_type is RemoteRunFailedError:
        return RemoteRunFailedError(
            message,
            kind=str(extra.get("kind", "error")),
            label=str(extra.get("label", "")),
            attempts=int(extra.get("attempts", 0) or 0),
        )
    return exc_type(message)

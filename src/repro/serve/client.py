"""Retrying HTTP client for the ``mnpusim serve`` daemon.

Retries are safe *because* the protocol makes them idempotent: a spec is
content-addressed by its cache key, so resubmitting after a 429/503 (or
a dropped connection) converges on the same cache entry — either the
dedup index joins the still-running cold job, or the now-warm cache
answers instantly.  The client therefore retries aggressively:

* exponential backoff with multiplicative jitter (no thundering herd
  when a daemon sheds a burst),
* the server's ``Retry-After`` hint is honoured as a floor,
* the whole retry loop is bounded by one wall-clock deadline that also
  rides to the server (so neither side computes past the point anyone
  is still waiting for the answer).
"""

from __future__ import annotations

import http.client
import json
import logging
import random
import time
from dataclasses import dataclass
from typing import Any, Callable
from urllib.parse import urlsplit

from repro.errors import (
    DeadlineExceededError,
    ProtocolError,
    ServeError,
    ServerOverloadedError,
    ServiceUnavailableError,
)
from repro.experiments.spec import RunSpec
from repro.serve import protocol

__all__ = ["ServeClient", "ServeResult"]

_LOG = logging.getLogger("repro.serve.client")

#: Errors worth retrying: explicit back-pressure, plus transport faults.
_RETRIABLE = (ServerOverloadedError, ServiceUnavailableError, ConnectionError, OSError)


@dataclass(frozen=True)
class ServeResult:
    """One successfully served spec.

    ``payload`` is the exact result-shard byte sequence (hash it to
    compare against any cache); ``results`` is its decoded per-workload
    result list; ``source`` says where the daemon found it (``memo`` /
    ``disk`` / ``dedup`` / ``cold``); ``attempts`` counts HTTP requests
    spent, including retries.
    """

    payload: bytes
    results: list[dict[str, Any]]
    source: str
    key: str
    attempts: int


class ServeClient:
    """Deadline-aware, retrying client for one serve daemon.

    ``base_url`` like ``http://127.0.0.1:8351``.  ``deadline_seconds``
    bounds each :meth:`run` call end to end (propagated to the server);
    ``None`` waits forever.  ``rng`` and ``sleep``/``clock`` are
    injectable so tests exercise the retry schedule without real time.
    """

    def __init__(
        self,
        base_url: str,
        *,
        deadline_seconds: float | None = 300.0,
        max_attempts: int = 8,
        backoff_seconds: float = 0.2,
        backoff_cap_seconds: float = 10.0,
        jitter: float = 0.25,
        timeout: float = 30.0,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(f"base_url must be http://host:port, got {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port if parts.port is not None else 80
        self.deadline_seconds = deadline_seconds
        self.max_attempts = max(1, max_attempts)
        self.backoff_seconds = backoff_seconds
        self.backoff_cap_seconds = backoff_cap_seconds
        self.jitter = max(0.0, jitter)
        self.timeout = timeout
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._clock = clock

    # ------------------------------------------------------------------ #
    # Transport (one fresh connection per request: the daemon's threaded
    # server handles that fine, and it sidesteps every keep-alive
    # half-closed-socket corner case a long-lived daemon client hits).
    # ------------------------------------------------------------------ #

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        *,
        timeout: float,
    ) -> tuple[int, dict[str, str], bytes]:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            headers = {protocol.PROTOCOL_HEADER: protocol.PROTOCOL}
            if body is not None:
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            return (
                response.status,
                {key.title(): value for key, value in response.getheaders()},
                raw,
            )
        finally:
            connection.close()

    # ------------------------------------------------------------------ #
    # Probes
    # ------------------------------------------------------------------ #

    def healthy(self) -> bool:
        """One non-retrying liveness probe."""
        try:
            status, _, _ = self._request(
                "GET", protocol.HEALTH_PATH, timeout=self.timeout
            )
        except OSError:
            return False
        return status == 200

    def ready(self) -> bool:
        """One non-retrying readiness probe (breaker closed, not draining)."""
        try:
            status, _, _ = self._request(
                "GET", protocol.READY_PATH, timeout=self.timeout
            )
        except OSError:
            return False
        return status == 200

    def stats(self) -> dict[str, Any]:
        """The daemon's ``/statz`` document."""
        status, _, raw = self._request("GET", protocol.STATS_PATH, timeout=self.timeout)
        if status != 200:
            raise protocol.decode_error(status, raw)
        return json.loads(raw)

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> bool:
        """Poll :meth:`ready` until it passes or ``timeout`` elapses."""
        started = self._clock()
        while True:
            if self.ready():
                return True
            if self._clock() - started >= timeout:
                return False
            self._sleep(interval)

    # ------------------------------------------------------------------ #
    # The run call
    # ------------------------------------------------------------------ #

    def run(
        self, spec: RunSpec, *, deadline_seconds: float | None = None
    ) -> ServeResult:
        """Submit one spec, retrying until a result or the deadline.

        Raises the typed error of the last failure:
        :class:`DeadlineExceededError` when the budget ran out,
        :class:`RemoteRunFailedError` for a terminal simulation failure
        (never retried — it is deterministic), :class:`ProtocolError`
        for client/server disagreement (never retried), or the final
        :class:`ServerOverloadedError` / :class:`ServiceUnavailableError`
        when every attempt was shed.
        """
        budget = (
            deadline_seconds
            if deadline_seconds is not None
            else self.deadline_seconds
        )
        deadline = None if budget is None else self._clock() + budget
        attempt = 0
        last_error: ServeError | None = None
        while attempt < self.max_attempts:
            attempt += 1
            remaining = None if deadline is None else deadline - self._clock()
            if remaining is not None and remaining <= 0:
                break
            body = protocol.encode_request(
                protocol.RunRequest(spec=spec, deadline_seconds=remaining)
            )
            http_timeout = self.timeout
            if remaining is not None:
                # The socket must outlive the server-side deadline so a
                # slow-but-in-budget run can still deliver its payload.
                http_timeout = max(self.timeout, remaining + 5.0)
            try:
                status, headers, raw = self._request(
                    "POST", protocol.RUN_PATH, body, timeout=http_timeout
                )
            except _RETRIABLE as error:
                last_error = ServiceUnavailableError(
                    f"transport failure talking to {self.host}:{self.port}: {error}"
                )
                self._pause(attempt, None, deadline)
                continue
            if status == 200:
                return self._decode_result(spec, headers, raw, attempt)
            error = protocol.decode_error(status, raw)
            if isinstance(error, (ServerOverloadedError, ServiceUnavailableError)):
                last_error = error
                _LOG.debug(
                    "attempt %d shed (%s); backing off", attempt, error
                )
                self._pause(attempt, error.retry_after, deadline)
                continue
            if isinstance(error, DeadlineExceededError) and (
                deadline is None or deadline - self._clock() > 0
            ):
                # The server timed the *request* out but our overall
                # budget has room (e.g. it was queued behind a burst):
                # resubmit — likely a cache hit by now.
                last_error = error
                self._pause(attempt, None, deadline)
                continue
            raise error  # ProtocolError / RemoteRunFailedError / exhausted deadline
        if deadline is not None and deadline - self._clock() <= 0:
            raise DeadlineExceededError(
                f"client deadline ({budget}s) expired after {attempt} attempt(s)"
                + (f"; last error: {last_error}" if last_error else "")
            )
        assert last_error is not None
        raise last_error

    def _decode_result(
        self,
        spec: RunSpec,
        headers: dict[str, str],
        payload: bytes,
        attempts: int,
    ) -> ServeResult:
        try:
            document = json.loads(payload)
            results = document["results"]
        except (ValueError, KeyError, TypeError) as error:
            raise ProtocolError(f"unparseable result payload: {error}") from error
        source = headers.get(protocol.SOURCE_HEADER.title(), "")
        if source not in protocol.SOURCES:
            source = "unknown"
        return ServeResult(
            payload=payload,
            results=results,
            source=source,
            key=headers.get(protocol.KEY_HEADER.title(), spec.resolve().cache_key()),
            attempts=attempts,
        )

    def _pause(
        self, attempt: int, retry_after: float | None, deadline: float | None
    ) -> None:
        """Sleep out one backoff step (bounded by the deadline)."""
        pause = min(
            self.backoff_cap_seconds,
            self.backoff_seconds * (2 ** (attempt - 1)),
        )
        if self.jitter:
            pause *= 1.0 + self.jitter * self._rng.random()
        if retry_after is not None:
            pause = max(pause, retry_after)
        if deadline is not None:
            pause = min(pause, max(0.0, deadline - self._clock()))
        if pause > 0:
            self._sleep(pause)

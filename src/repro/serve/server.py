"""The sweep-as-a-service daemon behind ``mnpusim serve``.

Architecture — one :class:`SweepService` (transport-independent core)
fronted by a thin stdlib HTTP layer (:class:`ServeDaemon`):

* **Cache-first, three levels.**  A bounded in-process memo of payload
  bytes, then the runner's crash-safe disk :class:`~repro.storage.ShardStore`,
  then a cold run on the supervised worker pool.  Payloads are always the
  exact shard bytes (:func:`repro.storage.encode_result_shard`), so a
  served response hashes identically to a cold CLI run's shard.
* **Single-flight dedup.**  Cold submissions are keyed by the spec's
  cache key; concurrent identical specs attach to one in-flight job and
  all receive the same payload from the one simulation.
* **Bounded admission.**  The queue never grows past ``queue_limit``;
  excess load is shed immediately with 429 + ``Retry-After`` so an
  overloaded daemon stays responsive instead of building an unbounded
  backlog it can never serve within anyone's deadline.
* **Deadline propagation.**  A request's remaining budget rides into the
  runner's per-run wall-clock timeout; jobs whose deadline expires while
  queued are dropped with 504 before they waste a worker.
* **Circuit breaker.**  Repeated worker-pool crash attributions trip the
  breaker: admission sheds with 503 while open, a half-open probe run
  decides recovery, and ``/readyz`` reflects the state so orchestrators
  stop routing to a sick instance.
* **Graceful drain.**  Shutdown stops admission, lets queued and
  in-flight runs settle (bounded by ``drain_timeout``), journals anything
  abandoned, and releases the pool.  Because every settled result is in
  the content-addressed store, a restarted daemon serves the whole
  history from cache without recomputing a single shard.

The dispatch loop is deliberately a single thread: it serializes pool
ownership (the supervised pool is not thread-safe), makes the breaker's
probe semantics trivial, and cannot die — every batch executes under a
catch-all that converts surprises into failed futures, never a dead
daemon.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.errors import (
    DeadlineExceededError,
    ProtocolError,
    RunFailedError,
    ServerOverloadedError,
    ServiceUnavailableError,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.spec import RunSpec
from repro.obs import CounterRegistry
from repro.serve import protocol
from repro.storage import encode_result_shard

__all__ = ["CircuitBreaker", "ServeDaemon", "SweepService"]

_LOG = logging.getLogger("repro.serve")

#: Dispatch-loop wakeup period while idle or breaker-gated, seconds.
_POLL_SECONDS = 0.05

#: Numeric encoding of breaker states for the ``serve.breaker_state`` gauge.
BREAKER_GAUGE = {"closed": 0, "open": 1, "half-open": 2}


class CircuitBreaker:
    """Trip-after-N-crashes breaker with a half-open probe recovery.

    ``record_crash`` counts *consecutive* pool-crash attributions; at
    ``threshold`` the breaker opens for ``cooldown`` seconds, during
    which admission is shed.  After the cooldown the next dispatched job
    runs as a half-open probe: success closes the breaker, another crash
    re-opens it (and restarts the cooldown).  ``clock`` is injectable so
    tests advance time explicitly.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = max(0.0, cooldown)
        self.clock = clock
        self._state = "closed"
        self._crashes = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"``."""
        return self._state

    def retry_after(self) -> float:
        """Seconds until a probe may run (0 when not open)."""
        if self._state != "open":
            return 0.0
        return max(0.0, self.cooldown - (self.clock() - self._opened_at))

    def admit(self) -> float | None:
        """``None`` to admit, else the suggested ``Retry-After`` seconds."""
        if self._state != "open":
            return None
        remaining = self.retry_after()
        if remaining <= 0.0:
            return None  # cooldown over: admit; dispatch will probe it
        return max(remaining, 0.1)

    def allow_probe(self) -> bool:
        """May the dispatcher execute right now?  Transitions open→half-open."""
        if self._state == "closed" or self._state == "half-open":
            return True
        if self.retry_after() <= 0.0:
            self._state = "half-open"
            _LOG.warning("circuit breaker half-open: dispatching a probe run")
            return True
        return False

    def record_success(self) -> None:
        if self._state != "closed":
            _LOG.warning("circuit breaker closed: probe run succeeded")
        self._state = "closed"
        self._crashes = 0

    def record_crash(self) -> None:
        self._crashes += 1
        if self._state == "half-open" or self._crashes >= self.threshold:
            self._state = "open"
            self._opened_at = self.clock()
            _LOG.warning(
                "circuit breaker open after %d consecutive pool crash(es); "
                "shedding for %.1fs",
                self._crashes,
                self.cooldown,
            )


@dataclass
class _Job:
    """One cold submission in flight (queued or executing)."""

    spec: RunSpec
    key: str
    deadline: float | None
    future: Future = field(default_factory=Future)


def _done_future(payload: bytes) -> Future:
    future: Future = Future()
    future.set_result(payload)
    return future


def _settle(future: Future, *, payload: bytes | None = None,
            error: BaseException | None = None) -> None:
    """Resolve a future exactly once (drain may have failed it already)."""
    if future.done():
        return
    if error is not None:
        future.set_exception(error)
    else:
        assert payload is not None
        future.set_result(payload)


class SweepService:
    """The daemon core: admission, dedup, dispatch, breaker, drain."""

    def __init__(
        self,
        runner: ExperimentRunner,
        *,
        queue_limit: int = 64,
        default_deadline_seconds: float | None = 300.0,
        drain_timeout: float = 30.0,
        shed_retry_after: float = 1.0,
        memo_entries: int = 256,
        breaker: CircuitBreaker | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """``runner`` executes the cold runs (build it with
        ``keep_pool=True`` so the supervised pool stays warm across
        requests); ``queue_limit`` bounds admitted-but-unstarted jobs;
        ``default_deadline_seconds`` applies when a request carries no
        deadline (``None`` = wait forever); ``shed_retry_after`` is the
        ``Retry-After`` hint sent with 429s.
        """
        self.runner = runner
        self.queue_limit = max(1, queue_limit)
        self.default_deadline_seconds = default_deadline_seconds
        self.drain_timeout = drain_timeout
        self.shed_retry_after = shed_retry_after
        self.memo_entries = max(0, memo_entries)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._clock = clock
        self._cond = threading.Condition()
        self._queue: deque[_Job] = deque()
        self._jobs: dict[str, _Job] = {}        # single-flight index
        self._inflight: list[_Job] = []
        self._memo: OrderedDict[str, bytes] = OrderedDict()
        self._draining = False
        self._stopped = False
        self._thread: threading.Thread | None = None
        self._started_at = clock()

        registry = CounterRegistry()
        self.registry = registry
        self._requests = registry.counter("serve.requests")
        self._memo_hits = registry.counter("serve.memo_hits")
        self._disk_hits = registry.counter("serve.disk_hits")
        self._dedup_hits = registry.counter("serve.dedup_hits")
        self._cold_submits = registry.counter("serve.cold_submits")
        self._cold_runs = registry.counter("serve.cold_runs")
        self._shed = registry.counter("serve.shed")
        self._unavailable = registry.counter("serve.unavailable")
        self._deadline_expired = registry.counter("serve.deadline_expired")
        self._run_failures = registry.counter("serve.run_failures")
        registry.bind_gauge("serve.queue_depth", lambda: len(self._queue))
        registry.bind_gauge("serve.inflight", lambda: len(self._inflight))
        registry.bind_gauge(
            "serve.breaker_state", lambda: BREAKER_GAUGE[self.breaker.state]
        )
        registry.bind_counter("runner.cache_hits", lambda: runner.cache_hits)
        registry.bind_counter(
            "runner.runs_executed", lambda: runner.runs_executed
        )
        registry.bind_counter("runner.quarantined", lambda: runner.quarantined)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Arm the dispatch thread and journal the (possibly resumed) boot."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        resumed = 0
        if self.runner.journal is not None:
            # Reading the journal exercises the truncation-tolerant
            # resume path; the count makes restarts auditable.
            resumed = len(self.runner.journal.read())
        usage = self.runner.cache_usage()
        self._journal(
            "serve_start",
            journal_records=resumed,
            cached_shards=usage["shards"],
        )
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatch", daemon=True
        )
        self._thread.start()

    def ready(self) -> bool:
        """Readiness: accepting work and the breaker is not open."""
        return not (self._draining or self._stopped) and (
            self.breaker.state != "open"
        )

    def begin_drain(self) -> None:
        """Stop admission; queued and in-flight work keeps running."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def shutdown(self, *, drain_timeout: float | None = None) -> bool:
        """Drain and stop.  Returns True when everything settled in time.

        Admission stops immediately (submissions answer 503); the
        dispatch thread finishes the queue; anything still unsettled at
        the timeout is journaled (``serve_abandon``) and its waiters are
        failed with a retriable 503 — the results of *completed* runs
        are already durable in the shard store, so a restarted daemon
        serves them without recomputation.
        """
        timeout = self.drain_timeout if drain_timeout is None else drain_timeout
        self.begin_drain()
        if self._thread is not None:
            self._thread.join(timeout)
        drained = self._thread is None or not self._thread.is_alive()
        with self._cond:
            self._stopped = True
            leftovers = list(self._queue) + list(self._inflight)
            self._queue.clear()
            self._cond.notify_all()
        if leftovers:
            self._journal(
                "serve_abandon", keys=sorted(job.key for job in leftovers)
            )
            for job in leftovers:
                _settle(
                    job.future,
                    error=ServiceUnavailableError(
                        "daemon stopped before the run settled; resubmit "
                        "after restart (completed work is cached)"
                    ),
                )
        self.runner.close()
        self._journal("serve_stop", drained=drained)
        return drained

    def _journal(self, event: str, **fields: Any) -> None:
        if self.runner.journal is not None:
            self.runner.journal.append(event, **fields)

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    def submit(
        self, spec: RunSpec, deadline_seconds: float | None = None
    ) -> tuple[Future, str]:
        """Admit one spec; returns ``(future, source)``.

        ``source`` is where the result comes from (``memo`` / ``disk`` /
        ``dedup`` / ``cold``); memo and disk futures are already
        resolved.  Raises :class:`ServiceUnavailableError` (draining or
        breaker open) or :class:`ServerOverloadedError` (queue full).
        """
        spec = self.runner.plan(spec)
        key = spec.cache_key()
        self._requests.inc()
        with self._cond:
            self._check_accepting()
            payload = self._memo.get(key)
            if payload is not None:
                self._memo.move_to_end(key)
                self._memo_hits.inc()
                return _done_future(payload), "memo"
            job = self._jobs.get(key)
            if job is not None:
                return self._attach(job, deadline_seconds), "dedup"
        # Disk probe outside the lock: a slow filesystem must not block
        # admission of unrelated requests.
        payload = self.runner.cached_payload(spec)
        with self._cond:
            self._check_accepting()
            if payload is not None:
                self._disk_hits.inc()
                self._remember(key, payload)
                return _done_future(payload), "disk"
            job = self._jobs.get(key)
            if job is not None:  # lost a race with an identical submitter
                return self._attach(job, deadline_seconds), "dedup"
            retry_after = self.breaker.admit()
            if retry_after is not None:
                self._unavailable.inc()
                raise ServiceUnavailableError(
                    "circuit breaker open (worker pool crashing); "
                    f"retry in {retry_after:.1f}s",
                    retry_after=retry_after,
                )
            if len(self._queue) >= self.queue_limit:
                self._shed.inc()
                raise ServerOverloadedError(
                    f"admission queue full ({self.queue_limit} cold jobs); "
                    "retry after backing off",
                    retry_after=self.shed_retry_after,
                )
            job = _Job(spec, key, self._deadline(deadline_seconds))
            self._jobs[key] = job
            self._queue.append(job)
            self._cold_submits.inc()
            self._cond.notify_all()
            return job.future, "cold"

    def _check_accepting(self) -> None:
        if self._draining or self._stopped:
            self._unavailable.inc()
            raise ServiceUnavailableError(
                "daemon is draining; completed results remain cached"
            )

    def _attach(self, job: _Job, deadline_seconds: float | None) -> Future:
        """Join an in-flight identical spec (single-flight dedup)."""
        self._dedup_hits.inc()
        deadline = self._deadline(deadline_seconds)
        if job.deadline is not None:
            # The job must survive for its most patient waiter.
            job.deadline = None if deadline is None else max(
                job.deadline, deadline
            )
        return job.future

    def _deadline(self, deadline_seconds: float | None) -> float | None:
        seconds = (
            deadline_seconds
            if deadline_seconds is not None
            else self.default_deadline_seconds
        )
        if seconds is None:
            return None
        return self._clock() + seconds

    def _remember(self, key: str, payload: bytes) -> None:
        if self.memo_entries <= 0:
            return
        self._memo[key] = payload
        self._memo.move_to_end(key)
        while len(self._memo) > self.memo_entries:
            self._memo.popitem(last=False)

    # ------------------------------------------------------------------ #
    # Dispatch (single thread; owns the runner and its pool)
    # ------------------------------------------------------------------ #

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not (self._draining or self._stopped):
                    self._cond.wait(_POLL_SECONDS)
                if not self._queue:
                    break  # draining/stopped with an empty queue: done
                if not self.breaker.allow_probe():
                    # Breaker open mid-cooldown: keep queued jobs parked
                    # (admission already sheds new ones).
                    self._cond.wait(
                        min(_POLL_SECONDS, self.breaker.retry_after() or
                            _POLL_SECONDS)
                    )
                    continue
                if self.breaker.state == "half-open":
                    batch = [self._queue.popleft()]
                else:
                    batch = list(self._queue)
                    self._queue.clear()
                self._inflight = batch
            try:
                self._execute_batch(batch)
            except Exception as error:  # noqa: BLE001 - the loop must survive
                _LOG.exception("serve dispatch: batch failed unexpectedly")
                self.breaker.record_crash()
                for job in batch:
                    _settle(
                        job.future,
                        error=ServiceUnavailableError(
                            f"internal execution failure: {error}"
                        ),
                    )
            finally:
                with self._cond:
                    self._inflight = []
                    for job in batch:
                        self._jobs.pop(job.key, None)
                    self._cond.notify_all()

    def _execute_batch(self, batch: list[_Job]) -> None:
        now = self._clock()
        live: list[_Job] = []
        for job in batch:
            if job.deadline is not None and job.deadline <= now:
                self._deadline_expired.inc()
                _settle(
                    job.future,
                    error=DeadlineExceededError(
                        f"deadline expired while queued: {job.spec.label}"
                    ),
                )
            else:
                live.append(job)
        if not live:
            return
        # Deadline propagation: the batch runs under the tightest
        # remaining budget (conservative for mixed-deadline batches; the
        # breaker-probe path batches singly, so probes are exact).
        budgets = [
            job.deadline - now for job in live if job.deadline is not None
        ]
        timeout = self.runner.run_timeout
        if budgets:
            tightest = max(0.1, min(budgets))
            timeout = tightest if timeout is None else min(timeout, tightest)
        results = self.runner.run_many(
            [job.spec for job in live],
            run_timeout=timeout,
            force_pool=True,
        )
        for job in live:
            payload_results = results.get(job.spec)
            if payload_results is not None:
                payload = encode_result_shard(
                    job.spec.descriptor(), payload_results
                )
                with self._cond:
                    self._remember(job.key, payload)
                self._cold_runs.inc()
                self.breaker.record_success()
                _settle(job.future, payload=payload)
                continue
            self._run_failures.inc()
            failure = self.runner.failures.get(job.spec)
            if failure is not None:
                if failure.kind == "crash":
                    self.breaker.record_crash()
                _settle(job.future, error=RunFailedError(failure))
            else:  # pragma: no cover - run_many lost a spec silently
                _settle(
                    job.future,
                    error=ServiceUnavailableError(
                        f"no result produced for {job.spec.label}"
                    ),
                )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> dict[str, Any]:
        """The ``/statz`` payload: state + counters + derived rates."""
        requests = self._requests.read()
        hits = (
            self._memo_hits.read()
            + self._disk_hits.read()
            + self._dedup_hits.read()
        )
        return {
            "protocol": protocol.PROTOCOL,
            "ready": self.ready(),
            "draining": self._draining,
            "breaker": self.breaker.state,
            "uptime_seconds": round(self._clock() - self._started_at, 3),
            "cache_hit_rate": round(hits / requests, 4) if requests else 0.0,
            "counters": self.registry.snapshot(),
        }


# ---------------------------------------------------------------------- #
# HTTP transport
# ---------------------------------------------------------------------- #


class _ServeHandler(BaseHTTPRequestHandler):
    """Routes the wire protocol onto a :class:`SweepService`."""

    server_version = "mnpusim-serve/1"
    protocol_version = "HTTP/1.1"
    #: Socket read timeout: a stalled client costs one thread for at most
    #: this long, never forever.
    timeout = 30.0

    @property
    def service(self) -> SweepService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _LOG.debug("%s %s", self.address_string(), format % args)

    # -- responses ----------------------------------------------------- #

    def _respond(
        self,
        status: int,
        body: bytes,
        *,
        headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header(protocol.PROTOCOL_HEADER, protocol.PROTOCOL)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _respond_error(
        self,
        code: str,
        message: str,
        *,
        retry_after: float | None = None,
        status: int | None = None,
        **extra: Any,
    ) -> None:
        headers = {}
        if retry_after is not None:
            # HTTP Retry-After is integral seconds; round up so clients
            # never come back early.
            headers["Retry-After"] = str(max(1, int(retry_after + 0.999)))
        self._respond(
            status if status is not None else protocol.error_status(code),
            protocol.encode_error(
                code, message, retry_after=retry_after, **extra
            ),
            headers=headers,
        )

    # -- routes -------------------------------------------------------- #

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == protocol.HEALTH_PATH:
            self._respond(200, b'{"status": "ok"}')
        elif self.path == protocol.READY_PATH:
            service = self.service
            if service.ready():
                self._respond(200, b'{"status": "ready"}')
            else:
                reason = (
                    "draining" if service._draining else
                    f"breaker {service.breaker.state}"
                )
                self._respond_error(
                    "unavailable",
                    f"not ready: {reason}",
                    retry_after=service.breaker.retry_after() or None,
                )
        elif self.path == protocol.STATS_PATH:
            body = json.dumps(self.service.stats(), sort_keys=True).encode()
            self._respond(200, body)
        else:
            self._respond_error(
                "protocol", f"no such path: {self.path}", status=404
            )

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path != protocol.RUN_PATH:
            self._respond_error(
                "protocol", f"no such path: {self.path}", status=404
            )
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._respond_error(
                "protocol", "Content-Length required", status=411
            )
            return
        if length > protocol.MAX_BODY_BYTES:
            self._respond_error(
                "protocol",
                f"body exceeds {protocol.MAX_BODY_BYTES} bytes",
                status=413,
            )
            return
        try:
            request = protocol.decode_request(self.rfile.read(length))
        except ProtocolError as error:
            self._respond_error("protocol", str(error))
            return
        service = self.service
        try:
            future, source = service.submit(
                request.spec, request.deadline_seconds
            )
        except ServerOverloadedError as error:
            self._respond_error(
                "overloaded", str(error), retry_after=error.retry_after
            )
            return
        except ServiceUnavailableError as error:
            self._respond_error(
                "unavailable", str(error), retry_after=error.retry_after
            )
            return
        wait = request.deadline_seconds
        if wait is None:
            wait = service.default_deadline_seconds
        try:
            payload = future.result(timeout=wait)
        except FutureTimeoutError:
            self._respond_error(
                "deadline",
                f"deadline expired awaiting {request.spec.label}",
            )
            return
        except DeadlineExceededError as error:
            self._respond_error("deadline", str(error))
            return
        except RunFailedError as error:
            failure = error.failure
            self._respond_error(
                "run-failed",
                str(error),
                kind=failure.kind,
                label=failure.label,
                attempts=failure.attempts,
            )
            return
        except ServiceUnavailableError as error:
            self._respond_error(
                "unavailable", str(error), retry_after=error.retry_after
            )
            return
        self._respond(
            200,
            payload,
            headers={
                protocol.KEY_HEADER: request.spec.cache_key(),
                protocol.SOURCE_HEADER: source,
            },
        )


class _ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: SweepService


class ServeDaemon:
    """Bind a :class:`SweepService` to a listening HTTP socket."""

    def __init__(
        self,
        service: SweepService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self._httpd = _ServeHTTPServer((host, port), _ServeHandler)
        self._httpd.service = service
        self._thread: threading.Thread | None = None
        self._stop_requested = threading.Event()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Start the dispatch thread and the HTTP accept loop."""
        self.service.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serve-http",
            daemon=True,
        )
        self._thread.start()

    def request_stop(self) -> None:
        """Signal-handler-safe shutdown request (sets an event only)."""
        self._stop_requested.set()

    def wait_for_stop(self, timeout: float | None = None) -> bool:
        return self._stop_requested.wait(timeout)

    def stop(self, *, drain_timeout: float | None = None) -> bool:
        """Drain the service, then close the socket.  True = clean drain.

        The HTTP listener stays up through the drain so late clients get
        a typed 503 (and in-flight waiters get their results) instead of
        a connection refusal.
        """
        drained = self.service.shutdown(drain_timeout=drain_timeout)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
        return drained

"""mNPUsim reproduction: a multi-core NPU simulator in Python.

This package reproduces *mNPUsim: Evaluating the Effect of Sharing Resources
in Multi-core NPUs* (IISWC 2023).  It provides:

* a cycle-level, event-driven multi-core NPU simulator with a detailed
  shared memory system (DRAM channels/banks, TLBs, page-table walkers),
* the eight benchmark DNN topologies the paper evaluates,
* the resource-sharing levels (``Ideal``, ``Static``, ``+D``, ``+DW``,
  ``+DWT``) and partitioning schemes studied in the paper, and
* the experiment harness that regenerates every table and figure of the
  paper's evaluation section.

Quickstart::

    from repro import MultiCoreNPUSim, SharingLevel, zoo, presets

    system = presets.cloud_npu(num_cores=2, sharing=SharingLevel.DWT)
    sim = MultiCoreNPUSim(system, [zoo.mini("ncf"), zoo.mini("gpt2")])
    result = sim.run()
    print(result.cycles_per_core)
"""

from repro.core.metrics import fairness, geomean, slowdown, speedup
from repro.core.sharing import SharingLevel
from repro.core.simulator import MixResult, MultiCoreNPUSim, WorkloadResult
from repro.config import presets
from repro.models import zoo

__version__ = "1.0.0"

__all__ = [
    "MultiCoreNPUSim",
    "MixResult",
    "WorkloadResult",
    "SharingLevel",
    "zoo",
    "presets",
    "speedup",
    "slowdown",
    "geomean",
    "fairness",
    "__version__",
]

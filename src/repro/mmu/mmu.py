"""The MMU front-end: TLB lookup, miss coalescing, walk orchestration.

Every DMA transaction translates its virtual address here before touching
DRAM.  Hits return synchronously (the caller accounts the TLB's lookup
latency in its own issue pipeline); misses register a callback, coalesce
with any in-flight walk of the same page (NeuMMU's pending-translation
registers — essential, since a 4 KB page spans many transactions), and
complete when the walker pool finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from typing import TYPE_CHECKING

from repro.config.npumem import NpuMemConfig
from repro.mmu.pagetable import PageTable
from repro.mmu.ptw import WalkerPool
from repro.mmu.tlb import Tlb

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.tracing import TraceLogger
    from repro.obs.registry import CounterRegistry


@dataclass
class TranslationStats:
    """Per-core translation counters."""

    lookups: int = 0
    hits: int = 0
    walks_started: int = 0
    coalesced: int = 0

    @property
    def misses(self) -> int:
        """TLB misses (walks started + coalesced onto in-flight walks)."""
        return self.lookups - self.hits

    @property
    def miss_rate(self) -> float:
        """Misses per lookup."""
        return self.misses / self.lookups if self.lookups else 0.0


class Mmu:
    """Translation front-end for all cores of one simulated system."""

    def __init__(
        self,
        npumem_per_core: dict[int, NpuMemConfig],
        page_tables: dict[int, PageTable],
        walkers: WalkerPool,
        *,
        shared_tlb: bool,
        logger: "TraceLogger | None" = None,
    ) -> None:
        if set(npumem_per_core) != set(page_tables):
            raise ValueError("npumem configs and page tables must cover the same cores")
        self.cfg = dict(npumem_per_core)
        self.page_tables = dict(page_tables)
        self.walkers = walkers
        self.shared_tlb = shared_tlb
        self.logger = logger
        self.stats = {core: TranslationStats() for core in self.cfg}
        self._tlbs: dict[int, Tlb] = {}
        if shared_tlb:
            # One TLB with the combined capacity; associativity follows the
            # per-core config (the paper keeps 8-way to curb inter-NPU
            # conflict misses, section 4.4.2).
            entries = sum(cfg.tlb_entries for cfg in self.cfg.values())
            assoc = max(cfg.tlb_assoc for cfg in self.cfg.values())
            shared = Tlb(entries, assoc, name="shared-tlb")
            for core in self.cfg:
                self._tlbs[core] = shared
        else:
            for core, cfg in self.cfg.items():
                self._tlbs[core] = Tlb(
                    cfg.tlb_entries, cfg.tlb_assoc, name=f"tlb{core}"
                )
        # (core, vpn) -> callbacks waiting on the in-flight walk.
        self._pending: dict[
            tuple[int, int], list[tuple[int, Callable[[int], None]]]
        ] = {}
        # Per-core hot-path record: one dict lookup in ``probe`` instead
        # of four, with the TLB's set list, set count, and stats pulled
        # out so the lookup runs without a method call.  The set list and
        # stats objects are aliases (shared TLBs share them), mutated in
        # place, so ``Tlb.flush``/``fill`` stay visible here.  Built last
        # so every map above is final.
        self._percore = {
            core: (
                cfg.translation_enabled,
                cfg.page_bytes,
                self.page_tables[core],
                self._tlbs[core]._sets,
                self._tlbs[core].num_sets,
                self._tlbs[core].stats,
                self.stats[core],
            )
            for core, cfg in self.cfg.items()
        }

    def tlb_for(self, core: int) -> Tlb:
        """The TLB instance serving ``core`` (shared or private)."""
        return self._tlbs[core]

    def register_counters(self, registry: "CounterRegistry") -> None:
        """Expose per-core translation stats to the registry (pull-based)."""
        for core in sorted(self.cfg):
            stats = self.stats[core]
            registry.bind_many(
                f"mmu.core{core}.tlb",
                {
                    "lookups": lambda s=stats: s.lookups,
                    "hits": lambda s=stats: s.hits,
                    "misses": lambda s=stats: s.misses,
                },
            )
            registry.bind_counter(
                f"mmu.core{core}.walks_started", lambda s=stats: s.walks_started
            )
            registry.bind_counter(
                f"mmu.core{core}.coalesced", lambda s=stats: s.coalesced
            )
            registry.bind_gauge(
                f"mmu.core{core}.tlb.miss_rate", lambda s=stats: s.miss_rate
            )
        registry.bind_gauge(
            "mmu.pending_walk_pages", lambda: len(self._pending)
        )

    def lookup_latency(self, core: int) -> int:
        """TLB lookup latency in the core's local cycles."""
        return self.cfg[core].tlb_latency_cycles

    def direct_paddr(self, core: int) -> Callable[[int], int] | None:
        """A bare ``vaddr -> paddr`` function when ``core`` skips the TLB.

        With translation disabled the MMU front-end touches no state at
        all, so issue loops may bind the page table's mapping once and
        bypass :meth:`probe` entirely.  Returns ``None`` when translation
        is enabled.
        """
        if self.cfg[core].translation_enabled:
            return None
        return self.page_tables[core].paddr

    def probe(self, core: int, vaddr: int) -> int | None:
        """TLB-hit fast path: the physical address, or ``None`` on a miss.

        Counts the lookup (MMU and TLB stats) either way.  On ``None``
        the caller must follow up with :meth:`miss` for the same address
        — the pair is exactly :meth:`translate` split so hot issue loops
        only build a miss continuation when one is needed.
        """
        enabled, page_bytes, table, tlb_sets, num_sets, tlb_stats, stats = (
            self._percore[core]
        )
        if not enabled:
            return table.paddr(vaddr)
        stats.lookups += 1
        vpn, offset = divmod(vaddr, page_bytes)
        # Inline of ``Tlb.lookup`` (same counters, same LRU move-to-back)
        # — this runs once per transaction.
        tlb_stats.lookups += 1
        entry_set = tlb_sets[vpn % num_sets]
        key = (core, vpn)
        if key in entry_set:
            del entry_set[key]  # move-to-back = most recent
            entry_set[key] = None
            tlb_stats.hits += 1
            stats.hits += 1
            if self.logger is not None:
                self.logger.log_tlb(self.walkers.engine.now, core, vpn, "hit")
            return table.translate(vpn) * page_bytes + offset
        return None

    def miss(self, core: int, vaddr: int, on_miss_done: Callable[[int], None]) -> None:
        """Register the miss continuation after a failed :meth:`probe`.

        Coalesces with any in-flight walk of the same page, otherwise
        starts a walk; ``on_miss_done(paddr)`` fires when it completes.
        """
        page_bytes = self._percore[core][1]
        stats = self._percore[core][6]
        vpn, offset = divmod(vaddr, page_bytes)
        key = (core, vpn)
        waiters = self._pending.get(key)
        if waiters is not None:
            stats.coalesced += 1
            if self.logger is not None:
                self.logger.log_tlb(self.walkers.engine.now, core, vpn, "coalesced")
            waiters.append((offset, on_miss_done))
            return
        self._pending[key] = [(offset, on_miss_done)]
        stats.walks_started += 1
        if self.logger is not None:
            self.logger.log_tlb(self.walkers.engine.now, core, vpn, "miss")
        self.walkers.walk(core, vpn, lambda: self._walk_done(core, vpn))

    def translate(
        self, core: int, vaddr: int, on_miss_done: Callable[[int], None]
    ) -> int | None:
        """Translate ``vaddr`` for ``core``.

        Returns the physical address on a TLB hit (or when translation is
        disabled).  Returns ``None`` on a miss; ``on_miss_done(paddr)``
        fires when the walk completes.
        """
        paddr = self.probe(core, vaddr)
        if paddr is None:
            self.miss(core, vaddr, on_miss_done)
        return paddr

    def _walk_done(self, core: int, vpn: int) -> None:
        cfg = self.cfg[core]
        table = self.page_tables[core]
        frame_base = table.translate(vpn) * cfg.page_bytes
        self._tlbs[core].fill(core, vpn)
        waiters = self._pending.pop((core, vpn))
        for offset, callback in waiters:
            callback(frame_base + offset)

"""The MMU front-end: TLB lookup, miss coalescing, walk orchestration.

Every DMA transaction translates its virtual address here before touching
DRAM.  Hits return synchronously (the caller accounts the TLB's lookup
latency in its own issue pipeline); misses register a callback, coalesce
with any in-flight walk of the same page (NeuMMU's pending-translation
registers — essential, since a 4 KB page spans many transactions), and
complete when the walker pool finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from typing import TYPE_CHECKING

from repro.config.npumem import NpuMemConfig
from repro.mmu.pagetable import PageTable
from repro.mmu.ptw import WalkerPool
from repro.mmu.tlb import Tlb

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.tracing import TraceLogger


@dataclass
class TranslationStats:
    """Per-core translation counters."""

    lookups: int = 0
    hits: int = 0
    walks_started: int = 0
    coalesced: int = 0

    @property
    def misses(self) -> int:
        """TLB misses (walks started + coalesced onto in-flight walks)."""
        return self.lookups - self.hits

    @property
    def miss_rate(self) -> float:
        """Misses per lookup."""
        return self.misses / self.lookups if self.lookups else 0.0


class Mmu:
    """Translation front-end for all cores of one simulated system."""

    def __init__(
        self,
        npumem_per_core: dict[int, NpuMemConfig],
        page_tables: dict[int, PageTable],
        walkers: WalkerPool,
        *,
        shared_tlb: bool,
        logger: "TraceLogger | None" = None,
    ) -> None:
        if set(npumem_per_core) != set(page_tables):
            raise ValueError("npumem configs and page tables must cover the same cores")
        self.cfg = dict(npumem_per_core)
        self.page_tables = dict(page_tables)
        self.walkers = walkers
        self.shared_tlb = shared_tlb
        self.logger = logger
        self.stats = {core: TranslationStats() for core in self.cfg}
        self._tlbs: dict[int, Tlb] = {}
        if shared_tlb:
            # One TLB with the combined capacity; associativity follows the
            # per-core config (the paper keeps 8-way to curb inter-NPU
            # conflict misses, section 4.4.2).
            entries = sum(cfg.tlb_entries for cfg in self.cfg.values())
            assoc = max(cfg.tlb_assoc for cfg in self.cfg.values())
            shared = Tlb(entries, assoc, name="shared-tlb")
            for core in self.cfg:
                self._tlbs[core] = shared
        else:
            for core, cfg in self.cfg.items():
                self._tlbs[core] = Tlb(cfg.tlb_entries, cfg.tlb_assoc, name=f"tlb{core}")
        # (core, vpn) -> callbacks waiting on the in-flight walk.
        self._pending: dict[tuple[int, int], list[tuple[int, Callable[[int], None]]]] = {}

    def tlb_for(self, core: int) -> Tlb:
        """The TLB instance serving ``core`` (shared or private)."""
        return self._tlbs[core]

    def lookup_latency(self, core: int) -> int:
        """TLB lookup latency in the core's local cycles."""
        return self.cfg[core].tlb_latency_cycles

    def translate(
        self, core: int, vaddr: int, on_miss_done: Callable[[int], None]
    ) -> int | None:
        """Translate ``vaddr`` for ``core``.

        Returns the physical address on a TLB hit (or when translation is
        disabled).  Returns ``None`` on a miss; ``on_miss_done(paddr)``
        fires when the walk completes.
        """
        cfg = self.cfg[core]
        table = self.page_tables[core]
        if not cfg.translation_enabled:
            return table.paddr(vaddr)
        stats = self.stats[core]
        stats.lookups += 1
        vpn, offset = divmod(vaddr, cfg.page_bytes)
        if self._tlbs[core].lookup(core, vpn):
            stats.hits += 1
            if self.logger is not None:
                self.logger.log_tlb(self.walkers.engine.now, core, vpn, "hit")
            return table.translate(vpn) * cfg.page_bytes + offset
        key = (core, vpn)
        waiters = self._pending.get(key)
        if waiters is not None:
            stats.coalesced += 1
            if self.logger is not None:
                self.logger.log_tlb(self.walkers.engine.now, core, vpn, "coalesced")
            waiters.append((offset, on_miss_done))
            return None
        self._pending[key] = [(offset, on_miss_done)]
        stats.walks_started += 1
        if self.logger is not None:
            self.logger.log_tlb(self.walkers.engine.now, core, vpn, "miss")
        self.walkers.walk(core, vpn, lambda: self._walk_done(core, vpn))
        return None

    def _walk_done(self, core: int, vpn: int) -> None:
        cfg = self.cfg[core]
        table = self.page_tables[core]
        frame_base = table.translate(vpn) * cfg.page_bytes
        self._tlbs[core].fill(core, vpn)
        waiters = self._pending.pop((core, vpn))
        for offset, callback in waiters:
            callback(frame_base + offset)

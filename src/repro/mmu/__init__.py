"""MMU models: TLBs, page tables, page-table walkers (NeuMMU-style)."""

from repro.mmu.tlb import Tlb
from repro.mmu.pagetable import PageTable, PhysicalLayout
from repro.mmu.ptw import WalkerPool
from repro.mmu.mmu import Mmu, TranslationStats

__all__ = [
    "Tlb",
    "PageTable",
    "PhysicalLayout",
    "WalkerPool",
    "Mmu",
    "TranslationStats",
]

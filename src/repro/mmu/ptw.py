"""The page-table-walker pool — the paper's most critical shared resource.

A TLB miss hands a walk to this pool.  Walks are serviced FCFS by a
finite set of walkers; each walk performs one *dependent* read per
page-table level, issued through the shared DRAM controller (NeuMMU
style), so walk latency rides on current memory contention and walk
traffic consumes bandwidth.

Partitioning follows the paper's schemes:

* dynamic sharing (``+DW``): one pool, any core may hold any walker
  (optionally bounded by the misc config's per-core lower/upper bounds —
  the artifact's "shared partition options of page table walkers");
* static partitioning: per-core reservations equal per-core caps, which
  degenerates to private walker sets (section 4.4.1's ratio sweeps).

Free walkers are granted round-robin across cores with pending walks —
the standard hardware arbitration for a shared unit.  Within a core,
walks are FCFS.  (A single global FCFS queue would let a core with a
standing walk backlog head-of-line-block bursty co-runners, which is the
pathology DWS [28] reports for shared GPU walkers.)

As an extension, :func:`dws_bounds` derives the per-core caps/reserves
of DWS-style *walker stealing* (the shared-PTW management scheme the
paper discusses in section 2.2): every core keeps a reserved home
allocation it can always reclaim, and may steal up to the co-runners'
unreserved walkers when they are idle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from typing import TYPE_CHECKING

from repro.core.engine import Engine
from repro.dram.controller import DramController
from repro.mmu.pagetable import PageTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.tracing import TraceLogger
    from repro.obs.registry import CounterRegistry


@dataclass
class WalkStats:
    """Counters for one core's page-table walks."""

    walks: int = 0
    walk_ticks_total: int = 0
    queue_ticks_total: int = 0

    def avg_walk_ticks(self) -> float:
        """Mean service time of a walk (excluding queueing)."""
        return self.walk_ticks_total / self.walks if self.walks else 0.0

    def avg_queue_ticks(self) -> float:
        """Mean time a walk waited for a free walker."""
        return self.queue_ticks_total / self.walks if self.walks else 0.0


@dataclass(slots=True, eq=False)
class _Walk:
    core: int
    vpn: int
    on_done: Callable[[], None]
    enqueue_time: int
    start_time: int = 0
    level: int = 0
    addresses: tuple[int, ...] = field(default_factory=tuple)


class PageWalkCache:
    """LRU cache of upper-level page-table entries (one per core).

    Consecutive virtual pages share their upper-level entries, so even a
    small cache removes most non-leaf DRAM reads from a walk — leaf
    entries are never cached, keeping at least one DRAM read per walk.
    """

    def __init__(self, entries: int) -> None:
        if entries < 0:
            raise ValueError("PWC size cannot be negative")
        self.entries = entries
        self._cache: dict[tuple[int, int], None] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, level: int, addr: int) -> bool:
        """True (and recency bump) when the entry is cached."""
        if not self.entries:
            return False
        key = (level, addr)
        if key in self._cache:
            del self._cache[key]
            self._cache[key] = None
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, level: int, addr: int) -> None:
        """Insert an upper-level entry, evicting LRU when full."""
        if not self.entries:
            return
        key = (level, addr)
        if key in self._cache:
            del self._cache[key]
        elif len(self._cache) >= self.entries:
            del self._cache[next(iter(self._cache))]
        self._cache[key] = None


def dws_bounds(
    home_allocation: dict[int, int], reserve_fraction: float = 0.5
) -> tuple[dict[int, int], dict[int, int]]:
    """Per-core (max, reserved) walker bounds for DWS-style stealing.

    ``home_allocation`` maps core -> the walkers it would own under a
    static split.  Each core *reserves* ``reserve_fraction`` of its home
    allocation (rounded down, at least one walker) so a returning burst
    can always reclaim walkers promptly, and may additionally steal every
    co-runner's unreserved walker when idle.  Pass the results as
    ``max_per_core`` / ``reserved_per_core`` to :class:`WalkerPool`.
    """
    if not home_allocation:
        raise ValueError("need at least one core")
    if not 0.0 <= reserve_fraction <= 1.0:
        raise ValueError("reserve fraction must lie in [0, 1]")
    if any(count <= 0 for count in home_allocation.values()):
        raise ValueError("every core needs a positive home allocation")
    total = sum(home_allocation.values())
    reserved = {
        core: max(1, int(count * reserve_fraction))
        for core, count in home_allocation.items()
    }
    max_per_core = {}
    for core, count in home_allocation.items():
        stealable = sum(
            home_allocation[other] - reserved[other]
            for other in home_allocation
            if other != core
        )
        max_per_core[core] = min(total, count + stealable)
    return max_per_core, reserved


class WalkerPool:
    """A finite pool of page-table walkers shared (or partitioned) by cores."""

    def __init__(
        self,
        engine: Engine,
        capacity: int,
        page_tables: dict[int, PageTable],
        *,
        dram: DramController | None,
        fixed_level_ticks: dict[int, int] | None = None,
        max_per_core: dict[int, int] | None = None,
        reserved_per_core: dict[int, int] | None = None,
        pwc_entries: dict[int, int] | None = None,
        logger: "TraceLogger | None" = None,
    ) -> None:
        """``dram=None`` switches to fixed-latency walks (then
        ``fixed_level_ticks[core]`` is the per-level cost)."""
        if capacity <= 0:
            raise ValueError("walker pool needs capacity")
        if dram is None and fixed_level_ticks is None:
            raise ValueError("fixed-latency mode needs per-core level ticks")
        self.engine = engine
        self.capacity = capacity
        self.page_tables = page_tables
        self.dram = dram
        self._fixed_level_ticks = fixed_level_ticks or {}
        cores = list(page_tables)
        self.max_per_core = {
            core: (max_per_core or {}).get(core, capacity) or capacity for core in cores
        }
        self.reserved_per_core = {
            core: (reserved_per_core or {}).get(core, 0) for core in cores
        }
        if sum(self.reserved_per_core.values()) > capacity:
            raise ValueError("reservations exceed pool capacity")
        for core in cores:
            if self.max_per_core[core] < self.reserved_per_core[core]:
                raise ValueError(f"core {core}: cap below reservation")
        self.inflight = {core: 0 for core in cores}
        self._total_inflight = 0
        self._queues: dict[int, deque[_Walk]] = {core: deque() for core in cores}
        self._rr_order: list[int] = list(cores)
        self._rr_next = 0
        # Hot-path counters: total queued walks (so per-completion
        # dispatch wake-ups are O(1) when nothing waits) and the summed
        # unclaimed reservations (so ``_can_grant`` is O(1), not O(cores)).
        self._queued_count = 0
        self._owed_total = sum(
            self.reserved_per_core[core] for core in cores
        )
        self.stats = {core: WalkStats() for core in cores}
        self.pwc = {
            core: PageWalkCache((pwc_entries or {}).get(core, 0)) for core in cores
        }
        self.logger = logger

    # ------------------------------------------------------------------ #

    def walk(self, core: int, vpn: int, on_done: Callable[[], None]) -> None:
        """Request a page-table walk; ``on_done`` fires when it completes."""
        self._queues[core].append(_Walk(core, vpn, on_done, self.engine.now))
        self._queued_count += 1
        self._dispatch()

    def register_counters(self, registry: "CounterRegistry") -> None:
        """Expose per-core walk and PWC stats to the registry (pull-based)."""
        for core in sorted(self.stats):
            stats = self.stats[core]
            registry.bind_many(
                f"ptw.core{core}",
                {
                    "walks": lambda s=stats: s.walks,
                    "walk_ticks_total": lambda s=stats: s.walk_ticks_total,
                    "queue_ticks_total": lambda s=stats: s.queue_ticks_total,
                },
            )
            pwc = self.pwc[core]
            registry.bind_counter(f"ptw.core{core}.pwc.hits", lambda p=pwc: p.hits)
            registry.bind_counter(
                f"ptw.core{core}.pwc.misses", lambda p=pwc: p.misses
            )
            registry.bind_gauge(
                f"ptw.core{core}.inflight", lambda c=core: self.inflight[c]
            )
        registry.bind_gauge("ptw.queue_depth", lambda: self._queued_count)
        registry.bind_gauge("ptw.inflight_total", lambda: self._total_inflight)

    @property
    def queued(self) -> int:
        """Walks waiting for a walker."""
        return self._queued_count

    @property
    def total_inflight(self) -> int:
        """Walks currently holding a walker, over all cores."""
        return self._total_inflight

    def queued_for(self, core: int) -> int:
        """Walks of one core still waiting for a walker."""
        return len(self._queues[core])

    # ------------------------------------------------------------------ #

    def _can_grant(self, core: int) -> bool:
        if self._total_inflight >= self.capacity:
            return False
        inflight = self.inflight[core]
        if inflight >= self.max_per_core[core]:
            return False
        if inflight < self.reserved_per_core[core]:
            return True  # claiming the core's own reservation
        # Granting a non-reserved walker must leave enough free walkers to
        # honour every other core's outstanding reservation.  This core is
        # at or above its own reservation, so ``_owed_total`` (unclaimed
        # reservations over *all* cores) counts exactly the others'.
        return self.capacity - self._total_inflight - 1 >= self._owed_total

    def _dispatch(self) -> None:
        # Round-robin across cores with pending walks; FCFS within a core.
        # A blocked core stays blocked for the rest of the call (granting
        # only consumes walkers and reservations), so rescanning after a
        # grant reproduces the one-pass-with-memo semantics without
        # allocating a set per wake-up.
        if not self._queued_count:
            return
        order = self._rr_order
        num_cores = len(order)
        queues = self._queues
        while self._queued_count:
            for offset in range(num_cores):
                position = (self._rr_next + offset) % num_cores
                core = order[position]
                queue = queues[core]
                if not queue or not self._can_grant(core):
                    continue
                self._rr_next = (position + 1) % num_cores
                self._queued_count -= 1
                self._start(queue.popleft())
                break
            else:
                return

    def _start(self, walk: _Walk) -> None:
        if self.inflight[walk.core] < self.reserved_per_core[walk.core]:
            self._owed_total -= 1
        self.inflight[walk.core] += 1
        self._total_inflight += 1
        walk.start_time = self.engine.now
        stats = self.stats[walk.core]
        stats.walks += 1
        stats.queue_ticks_total += walk.start_time - walk.enqueue_time
        table = self.page_tables[walk.core]
        walk.addresses = self._dram_levels(walk.core, table.walk_addresses(walk.vpn))
        if self.dram is None:
            ticks = self._fixed_level_ticks[walk.core] * len(walk.addresses)
            self.engine.after(ticks, lambda: self._finish(walk))
        else:
            self._next_level(walk)

    def _dram_levels(self, core: int, addresses: tuple[int, ...]) -> tuple[int, ...]:
        """Walk levels that must read DRAM after page-walk-cache filtering.

        Upper levels hit the PWC when a recent walk shared the entry;
        the leaf level always reads memory.
        """
        pwc = self.pwc[core]
        needed = []
        for level, addr in enumerate(addresses[:-1]):
            if not pwc.lookup(level, addr):
                pwc.fill(level, addr)
                needed.append(addr)
        needed.append(addresses[-1])
        return tuple(needed)

    def _next_level(self, walk: _Walk) -> None:
        assert self.dram is not None
        if walk.level >= len(walk.addresses):
            self._finish(walk)
            return
        addr = walk.addresses[walk.level]
        walk.level += 1
        self.dram.submit(
            walk.core,
            addr,
            write=False,
            callback=lambda: self._next_level(walk),
            is_walk=True,
        )

    def _finish(self, walk: _Walk) -> None:
        self.inflight[walk.core] -= 1
        self._total_inflight -= 1
        if self.inflight[walk.core] < self.reserved_per_core[walk.core]:
            self._owed_total += 1
        self.stats[walk.core].walk_ticks_total += self.engine.now - walk.start_time
        if self.logger is not None:
            self.logger.log_ptw(
                walk.enqueue_time,
                walk.start_time,
                self.engine.now,
                walk.core,
                walk.vpn,
                len(walk.addresses),
            )
        walk.on_done()
        self._dispatch()

"""Per-core page tables and the physical-memory layout.

NPUs with virtually-addressed scratchpads translate *every* off-chip
access (paper section 2.3).  Each core owns a page table mapping its
virtual pages to physical frames inside its slice of DRAM capacity.
Frames are bump-allocated on first touch — inference workloads touch
their tensors deterministically, so this reproduces the sequential/
interleaved physical layouts real drivers produce.

A page-table *walk* reads one entry per radix level.  The entry
addresses returned by :meth:`PageTable.walk_addresses` land in the
core's page-table region with radix-like locality: upper levels hit few
distinct cache lines (high row-buffer locality), leaf levels spread out.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes of one page-table entry; a 64 B DRAM transaction covers eight.
PTE_BYTES = 8

#: Radix fan-out per level (512 entries per 4 KB node, as on x86-64/ARM64).
_LEVEL_BITS = 9


@dataclass(frozen=True)
class PhysicalLayout:
    """How DRAM capacity is carved up among cores.

    Each core receives an equal slice; the top 1/16th of every slice is
    reserved for its page tables so walk traffic and data traffic land in
    the same channels the core is entitled to.
    """

    capacity_bytes: int
    num_cores: int

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("need at least one core")
        if self.capacity_bytes < self.num_cores * (1 << 20):
            raise ValueError("capacity too small to slice among cores")

    @property
    def slice_bytes(self) -> int:
        """Bytes of one core's slice."""
        return self.capacity_bytes // self.num_cores

    def data_region(self, core: int) -> tuple[int, int]:
        """``(base, size)`` of the core's data region."""
        self._check_core(core)
        base = core * self.slice_bytes
        return base, self.slice_bytes - self.pt_region(core)[1]

    def pt_region(self, core: int) -> tuple[int, int]:
        """``(base, size)`` of the core's page-table region."""
        self._check_core(core)
        size = self.slice_bytes // 16
        base = core * self.slice_bytes + self.slice_bytes - size
        return base, size

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range")


class PageTable:
    """Lazy virtual-to-physical mapping for one core."""

    def __init__(
        self,
        core: int,
        page_bytes: int,
        walk_levels: int,
        layout: PhysicalLayout,
    ) -> None:
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ValueError("page size must be a positive power of two")
        if walk_levels <= 0:
            raise ValueError("walks need at least one level")
        self.core = core
        self.page_bytes = page_bytes
        self.walk_levels = walk_levels
        data_base, data_size = layout.data_region(core)
        self._pt_base, self._pt_size = layout.pt_region(core)
        self._frame_base = data_base // page_bytes
        self._num_frames = max(1, data_size // page_bytes)
        self._next_frame = 0
        self._map: dict[int, int] = {}

    def translate(self, vpn: int) -> int:
        """Physical frame number for ``vpn``, allocating on first touch.

        Allocation wraps within the core's data region; inference
        footprints beyond the slice alias old frames, which only recycles
        physical rows (harmless for a timing model).
        """
        frame = self._map.get(vpn)
        if frame is None:
            frame = self._frame_base + (self._next_frame % self._num_frames)
            self._next_frame += 1
            self._map[vpn] = frame
        return frame

    def paddr(self, vaddr: int) -> int:
        """Translate a full virtual address."""
        vpn, offset = divmod(vaddr, self.page_bytes)
        return self.translate(vpn) * self.page_bytes + offset

    def walk_addresses(self, vpn: int) -> tuple[int, ...]:
        """Physical addresses of the page-table entries a walk reads.

        Level 0 is the root (coarsest index), the last level the leaf.
        """
        addresses = []
        for level in range(self.walk_levels):
            shift = _LEVEL_BITS * (self.walk_levels - 1 - level)
            index = vpn >> shift
            offset = (index * PTE_BYTES) % self._pt_size
            addresses.append(self._pt_base + offset)
        return tuple(addresses)

    @property
    def mapped_pages(self) -> int:
        """Number of virtual pages mapped so far."""
        return len(self._map)

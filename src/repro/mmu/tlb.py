"""Set-associative TLB with LRU replacement.

Entries are tagged ``(asid, vpn)`` — the address-space id is the core
index, so a *shared* TLB (the paper's ``+DWT``) is simply one instance
serving every core with the combined capacity: different cores' pages
with the same set index then evict each other, producing exactly the
inter-NPU conflict misses section 4.4.2 discusses (and why the paper
keeps associativity at 8).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TlbStats:
    """Hit/miss counters of one TLB instance."""

    lookups: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        """Lookups that missed."""
        return self.lookups - self.hits

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0


class Tlb:
    """A set-associative, LRU translation lookaside buffer."""

    def __init__(self, entries: int, assoc: int, name: str = "tlb") -> None:
        if entries <= 0 or assoc <= 0 or entries % assoc:
            raise ValueError("entries must be a positive multiple of associativity")
        self.name = name
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        # Python dicts preserve insertion order: first key = least recent.
        self._sets: list[dict[tuple[int, int], None]] = [
            {} for _ in range(self.num_sets)
        ]
        self.stats = TlbStats()

    def _set_for(self, vpn: int) -> dict[tuple[int, int], None]:
        # Index by VPN only (not ASID) so shared-TLB co-runners contend
        # for the same sets, as in a physically-indexed IOMMU TLB.
        return self._sets[vpn % self.num_sets]

    def lookup(self, asid: int, vpn: int) -> bool:
        """True on hit; updates recency and counters."""
        stats = self.stats
        stats.lookups += 1
        # Inline of ``_set_for`` — this runs once per transaction.
        entry_set = self._sets[vpn % self.num_sets]
        key = (asid, vpn)
        if key in entry_set:
            del entry_set[key]  # move-to-back = most recent
            entry_set[key] = None
            stats.hits += 1
            return True
        return False

    def fill(self, asid: int, vpn: int) -> None:
        """Insert a translation, evicting the set's LRU entry if full."""
        entry_set = self._set_for(vpn)
        key = (asid, vpn)
        if key in entry_set:
            del entry_set[key]
        elif len(entry_set) >= self.assoc:
            del entry_set[next(iter(entry_set))]
        entry_set[key] = None

    def occupancy(self) -> int:
        """Valid entries currently resident."""
        return sum(len(entry_set) for entry_set in self._sets)

    def flush(self) -> None:
        """Invalidate every entry (counters are preserved)."""
        for entry_set in self._sets:
            entry_set.clear()

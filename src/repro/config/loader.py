"""Parsers for mNPUsim-style ``key = value`` configuration files.

The original artifact feeds the simulator five kinds of plain-text config
files.  These loaders accept the same spirit of format — one ``key = value``
pair per line, ``#`` comments, case-insensitive keys — and produce the
dataclasses of :mod:`repro.config`.  Unknown keys raise, so a typo cannot
silently fall back to a default.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any

from repro.config.arch import ArchConfig
from repro.config.dram import AddressMapping, DramConfig, DramTiming
from repro.config.misc import MiscConfig
from repro.config.npumem import NpuMemConfig

_BOOL_TRUE = {"1", "true", "yes", "on"}
_BOOL_FALSE = {"0", "false", "no", "off"}


def parse_kv_text(text: str) -> dict[str, str]:
    """Parse ``key = value`` lines into a dict.

    Blank lines and ``#`` comments are ignored.  Keys are lower-cased.
    Raises ``ValueError`` on malformed lines or duplicate keys.
    """
    result: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise ValueError(f"line {lineno}: expected 'key = value', got {raw!r}")
        key, value = (part.strip() for part in line.split("=", 1))
        key = key.lower()
        if not key or not value:
            raise ValueError(f"line {lineno}: empty key or value in {raw!r}")
        if key in result:
            raise ValueError(f"line {lineno}: duplicate key {key!r}")
        result[key] = value
    return result


def _coerce(value: str, annotation: Any) -> Any:
    """Convert a string to the field's type."""
    if annotation in (int, "int"):
        return int(value, 0)
    if annotation in (bool, "bool"):
        lowered = value.lower()
        if lowered in _BOOL_TRUE:
            return True
        if lowered in _BOOL_FALSE:
            return False
        raise ValueError(f"cannot parse boolean from {value!r}")
    if annotation in (str, "str"):
        return value
    raise ValueError(f"unsupported config field type {annotation!r}")


def _build(
    cls: type, pairs: dict[str, str], *, nested: dict[str, Any] | None = None
) -> Any:
    """Instantiate dataclass ``cls`` from string pairs, type-coercing values."""
    fields = {f.name: f for f in dataclasses.fields(cls)}
    kwargs: dict[str, Any] = dict(nested or {})
    for key, value in pairs.items():
        if key not in fields:
            raise ValueError(f"unknown {cls.__name__} key {key!r}")
        kwargs[key] = _coerce(value, fields[key].type)
    return cls(**kwargs)


def load_arch_config(path: str | Path) -> ArchConfig:
    """Load an ``arch_config`` file."""
    return _build(ArchConfig, parse_kv_text(Path(path).read_text()))


def load_npumem_config(path: str | Path) -> NpuMemConfig:
    """Load an ``npumem_config`` file."""
    return _build(NpuMemConfig, parse_kv_text(Path(path).read_text()))


def load_misc_config(path: str | Path) -> MiscConfig:
    """Load a ``misc_config`` file."""
    return _build(MiscConfig, parse_kv_text(Path(path).read_text()))


def load_dram_config(path: str | Path) -> DramConfig:
    """Load a ``dram_config`` file.

    Timing keys are prefixed ``timing.`` (e.g. ``timing.tcl = 14``); the
    address-map order is a dash-separated string, e.g.
    ``mapping = ch-co-ba-bg-ro`` (least- to most-significant).
    """
    pairs = parse_kv_text(Path(path).read_text())
    timing_pairs = {}
    for key in list(pairs):
        if key.startswith("timing."):
            timing_pairs[key.removeprefix("timing.")] = pairs.pop(key)
    nested: dict[str, Any] = {}
    if timing_pairs:
        timing_fields = {f.name.lower(): f.name for f in dataclasses.fields(DramTiming)}
        kwargs = {}
        for key, value in timing_pairs.items():
            if key not in timing_fields:
                raise ValueError(f"unknown DramTiming key {key!r}")
            kwargs[timing_fields[key]] = int(value, 0)
        nested["timing"] = DramTiming(**kwargs)
    if "mapping" in pairs:
        nested["mapping"] = AddressMapping(tuple(pairs.pop("mapping").split("-")))
    return _build(DramConfig, pairs, nested=nested)

"""Per-core memory-system configuration (mNPUsim ``npumem_config``).

Covers the MMU resources attached to a core: TLB geometry and the number of
page-table walkers, plus the page size.  The paper follows the NeuMMU design
with 2048 TLB entries (8-way) and 8 walkers per NPU core (Table 2), and
studies 4 KB / 64 KB / 1 MB pages (section 4.5, ARM64 page sizes).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Page sizes evaluated in the paper, mapped to the number of page-table
#: levels a walk must traverse (ARM64-style radix tables: larger pages are
#: mapped at a shallower level, so walks are shorter).
PAGE_WALK_LEVELS = {
    4 * 1024: 4,
    64 * 1024: 3,
    1024 * 1024: 2,
}


@dataclass(frozen=True)
class NpuMemConfig:
    """MMU configuration of a single NPU core.

    Attributes:
        tlb_entries: Total TLB entries for this core.
        tlb_assoc: TLB set associativity (8-way in the paper, which it
            reports is needed to avoid inter-NPU conflict misses when the
            TLB is shared, section 4.4.2).
        tlb_latency_cycles: TLB lookup latency in core cycles.
        num_ptw: Page-table walkers owned by this core.
        page_bytes: Page size; must be one of :data:`PAGE_WALK_LEVELS`.
        walk_in_dram: When True (default, NeuMMU-style) each page-walk
            level is a dependent DRAM read issued through the shared
            memory controller, so walks both consume and suffer memory
            bandwidth.  When False, each level costs
            ``walk_level_latency_cycles`` of fixed latency instead.
        walk_level_latency_cycles: Fixed per-level walk latency used only
            when ``walk_in_dram`` is False.
        pwc_entries: Entries of the per-core page-walk cache holding
            upper-level page-table entries (leaf reads always go to
            DRAM).  0 disables it.  Consecutive pages share upper-level
            entries, so a small PWC removes most non-leaf walk reads —
            as in real MMUs.
        translation_enabled: Section 4.3 isolates DRAM-bandwidth effects
            by removing address translation; setting this False makes
            every access bypass the MMU.
    """

    tlb_entries: int = 2048
    tlb_assoc: int = 8
    tlb_latency_cycles: int = 1
    num_ptw: int = 8
    page_bytes: int = 4 * 1024
    walk_in_dram: bool = True
    walk_level_latency_cycles: int = 100
    pwc_entries: int = 32
    translation_enabled: bool = True

    def __post_init__(self) -> None:
        if self.tlb_entries <= 0:
            raise ValueError("TLB must have at least one entry")
        if self.tlb_assoc <= 0 or self.tlb_entries % self.tlb_assoc:
            raise ValueError("TLB entries must be a positive multiple of associativity")
        if self.tlb_latency_cycles < 0:
            raise ValueError("TLB latency cannot be negative")
        if self.num_ptw <= 0:
            raise ValueError("each core needs at least one page-table walker")
        if self.page_bytes not in PAGE_WALK_LEVELS:
            raise ValueError(
                f"page size {self.page_bytes} unsupported; pick one of "
                f"{sorted(PAGE_WALK_LEVELS)} (paper section 4.5)"
            )
        if self.walk_level_latency_cycles <= 0:
            raise ValueError("walk level latency must be positive")
        if self.pwc_entries < 0:
            raise ValueError("page-walk cache size cannot be negative")

    @property
    def walk_levels(self) -> int:
        """Number of page-table levels one walk traverses."""
        return PAGE_WALK_LEVELS[self.page_bytes]

    @property
    def tlb_sets(self) -> int:
        """Number of TLB sets."""
        return self.tlb_entries // self.tlb_assoc

"""Whole-system configuration: N cores plus the shared memory system.

mNPUsim takes *N* per-core config files (arch/network/npumem) and single
shared dram/misc configs.  :class:`SystemConfig` is the in-memory
equivalent, extended with the resource-sharing switches that implement the
paper's ``Static`` / ``+D`` / ``+DW`` / ``+DWT`` levels (section 4.1.3):

* ``share_dram`` — when False, each core owns a disjoint channel subset
  (``channel_assignment``); when True all cores interleave over all
  channels, contending dynamically.
* ``share_ptw`` — when False, each core owns ``ptw_assignment[i]``
  walkers; when True all walkers form one FCFS pool.
* ``share_tlb`` — when False, each core has a private TLB per its
  npumem config; when True one TLB with the combined capacity serves all
  cores (entries tagged by core, as with a shared IOMMU TLB).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from repro.config.arch import ArchConfig
from repro.config.dram import DramConfig
from repro.config.misc import MiscConfig
from repro.config.npumem import NpuMemConfig


def _round_robin_split(items: int, parts: int) -> tuple[tuple[int, ...], ...]:
    """Deal ``items`` indices across ``parts`` bins, round-robin."""
    bins: list[list[int]] = [[] for _ in range(parts)]
    for index in range(items):
        bins[index % parts].append(index)
    return tuple(tuple(b) for b in bins)


@dataclass(frozen=True)
class SystemConfig:
    """Configuration of one multi-core NPU system.

    ``arch`` and ``npumem`` are per-core tuples (heterogeneous cores are
    allowed, as in mNPUsim); ``dram`` and ``misc`` are shared.
    """

    arch: tuple[ArchConfig, ...]
    npumem: tuple[NpuMemConfig, ...]
    dram: DramConfig
    misc: MiscConfig = MiscConfig()
    share_dram: bool = True
    share_ptw: bool = True
    share_tlb: bool = True
    channel_assignment: tuple[tuple[int, ...], ...] | None = None
    ptw_assignment: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not self.arch:
            raise ValueError("a system needs at least one core")
        if len(self.arch) != len(self.npumem):
            raise ValueError("arch and npumem configs must pair up per core")
        if not self.share_dram:
            assignment = self.channel_assignment or _round_robin_split(
                self.dram.channels, len(self.arch)
            )
            object.__setattr__(self, "channel_assignment", assignment)
            self._validate_channel_assignment(assignment)
        if not self.share_ptw:
            total = sum(cfg.num_ptw for cfg in self.npumem)
            assignment = self.ptw_assignment or tuple(
                cfg.num_ptw for cfg in self.npumem
            )
            object.__setattr__(self, "ptw_assignment", assignment)
            if len(assignment) != len(self.arch):
                raise ValueError("one PTW count per core required")
            if any(count <= 0 for count in assignment):
                raise ValueError("each core needs at least one walker")
            if sum(assignment) > total:
                raise ValueError(
                    f"PTW assignment {assignment} exceeds the {total} "
                    "walkers the system has"
                )

    def _validate_channel_assignment(
        self, assignment: tuple[tuple[int, ...], ...]
    ) -> None:
        if len(assignment) != len(self.arch):
            raise ValueError("one channel set per core required")
        seen: set[int] = set()
        for channels in assignment:
            if not channels:
                raise ValueError("each core needs at least one DRAM channel")
            for channel in channels:
                if not 0 <= channel < self.dram.channels:
                    raise ValueError(f"channel {channel} out of range")
                if channel in seen:
                    raise ValueError(f"channel {channel} assigned to two cores")
                seen.add(channel)

    @property
    def num_cores(self) -> int:
        """Number of NPU cores in the system."""
        return len(self.arch)

    @property
    def total_ptw(self) -> int:
        """Total page-table walkers across the system."""
        return sum(cfg.num_ptw for cfg in self.npumem)

    def channels_for_core(self, core: int) -> tuple[int, ...]:
        """Channels core ``core`` may access under the current sharing."""
        if self.share_dram:
            return tuple(range(self.dram.channels))
        assert self.channel_assignment is not None
        return self.channel_assignment[core]

    def cache_key(self) -> str:
        """Stable hash of this configuration, for result caching."""
        payload = json.dumps(dataclasses.asdict(self), sort_keys=True, default=str)
        return hashlib.sha256(payload.encode()).hexdigest()[:20]

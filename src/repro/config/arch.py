"""Per-core NPU architecture configuration (mNPUsim ``arch_config``).

Describes the compute side of one NPU core: the systolic array geometry,
the on-chip scratchpad (SPM), the dataflow, and the core clock.  The paper
evaluates the output-stationary dataflow on a TPUv4-like 128x128 array with
a 36 MB SPM at 1 GHz (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass


def _registered_dataflows() -> tuple[str, ...]:
    # Lazy import: repro.compute.dataflow (the engine registry) imports
    # this module for type annotations, so resolving the registry at
    # validation time — never at import time — keeps the layering acyclic.
    from repro.compute.dataflow import registered_dataflows

    return registered_dataflows()


@dataclass(frozen=True)
class ArchConfig:
    """Compute-side configuration of a single NPU core.

    Attributes:
        name: Human-readable identifier used in result-file names.
        array_rows: Height of the systolic array (PE rows).
        array_cols: Width of the systolic array (PE columns).
        spm_bytes: Capacity of the software-managed scratchpad.  Double
            buffering splits this into two half-sized buffers (paper
            section 2.3), so a tile must fit in ``spm_bytes // 2``.
        freq_mhz: Core clock frequency in MHz.
        dataflow: Name of the dataflow engine that compiles this core's
            traces: ``"os"`` (output stationary, the paper's choice),
            ``"ws"`` (weight stationary) or ``"is"`` (input stationary) —
            the paper's stated future work, implemented as pluggable
            engines.  Validated against the
            :mod:`repro.compute.dataflow` registry, so third-party
            engines registered there are accepted too.
        element_bytes: Size of one tensor element (int8 inference = 1).
        dram_transaction_bytes: Granularity of one DMA/DRAM transaction.
            The paper uses cache-line-sized 64 B transactions; the scaled
            "mini" configurations use coarser transactions to bound the
            event count of pure-Python runs.
        dma_issue_per_cycle: Requests the private DMA engine can inject
            into the memory system per core cycle.
    """

    name: str = "tpu"
    array_rows: int = 128
    array_cols: int = 128
    spm_bytes: int = 36 * 1024 * 1024
    freq_mhz: int = 1000
    dataflow: str = "os"
    element_bytes: int = 1
    dram_transaction_bytes: int = 64
    dma_issue_per_cycle: int = 1

    def __post_init__(self) -> None:
        if self.array_rows <= 0 or self.array_cols <= 0:
            raise ValueError("systolic array dimensions must be positive")
        if self.spm_bytes < 2 * self.dram_transaction_bytes:
            raise ValueError("SPM must hold at least two DRAM transactions")
        if self.freq_mhz <= 0:
            raise ValueError("core frequency must be positive")
        registered = _registered_dataflows()
        if self.dataflow not in registered:
            raise ValueError(
                f"unsupported dataflow {self.dataflow!r}; registered engines: "
                + ", ".join(registered)
            )
        if self.element_bytes <= 0:
            raise ValueError("element size must be positive")
        if self.dram_transaction_bytes <= 0 or (
            self.dram_transaction_bytes & (self.dram_transaction_bytes - 1)
        ):
            raise ValueError("DRAM transaction size must be a power of two")
        if self.dma_issue_per_cycle <= 0:
            raise ValueError("DMA issue width must be positive")

    @property
    def half_spm_bytes(self) -> int:
        """Capacity of one double-buffering half (the tile budget)."""
        return self.spm_bytes // 2

    @property
    def num_pes(self) -> int:
        """Total number of processing elements in the array."""
        return self.array_rows * self.array_cols

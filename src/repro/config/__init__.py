"""Configuration dataclasses mirroring mNPUsim's five config-file kinds.

mNPUsim takes ``arch_config``, ``network_config``, ``npumem_config``,
``dram_config`` and ``misc_config`` files.  Here each is a frozen dataclass;
:mod:`repro.config.loader` parses the equivalent ``key = value`` text files,
and :mod:`repro.config.presets` builds the paper's Table 2 configuration.
"""

from repro.config.arch import ArchConfig
from repro.config.dram import AddressMapping, DramConfig, DramTiming
from repro.config.misc import MiscConfig
from repro.config.npumem import NpuMemConfig
from repro.config.system import SystemConfig
from repro.config import presets
from repro.config.loader import (
    load_arch_config,
    load_dram_config,
    load_misc_config,
    load_npumem_config,
    parse_kv_text,
)

__all__ = [
    "ArchConfig",
    "NpuMemConfig",
    "DramConfig",
    "DramTiming",
    "AddressMapping",
    "MiscConfig",
    "SystemConfig",
    "presets",
    "parse_kv_text",
    "load_arch_config",
    "load_npumem_config",
    "load_dram_config",
    "load_misc_config",
]

"""Ready-made system configurations matching the paper's Table 2.

Two scales are provided:

* ``"full"`` — the paper's cloud-scale NPU: TPUv4-like 128x128 systolic
  array, 36 MB SPM, 1 GHz, 2048-entry 8-way TLB, 8 walkers per core, and
  HBM2 at 128 GB/s per core (4 pseudo-channels of 32 GB/s).
* ``"mini"`` — a proportionally scaled system for fast pure-Python sweeps
  (see DESIGN.md, substitution 2): 32x32 array, 512 KB SPM, coarser 256 B
  DRAM transactions, 64-entry TLB, 1 walker per core, a deep (256-entry)
  DMA window and 16 GB/s channels.  Compute-to-bandwidth,
  TLB-coverage-to-tile and walker-bandwidth-to-burst ratios stay in the
  same operating regime as the full system, so the sharing behaviours
  the paper reports are preserved.

Build a contended multi-core system with :func:`cloud_npu`, and the
uncontended resource slices (Ideal / Static / ratio partitions) with
:func:`solo_slice`.
"""

from __future__ import annotations

import dataclasses

from repro.config.arch import ArchConfig
from repro.config.dram import DramConfig
from repro.config.misc import MiscConfig
from repro.config.npumem import NpuMemConfig
from repro.config.system import SystemConfig
from repro.core.sharing import SharingLevel

#: Channels backing one NPU core's 128 GB/s share (Table 2).
CHANNELS_PER_CORE = 4

#: Per-core launch offset used in mix co-simulations (about half a tile
#: period at mini scale): identical workloads launched on the same tick
#: would otherwise burst in artificial lockstep forever.
MIX_STAGGER_CYCLES = 1500

_SCALES = ("full", "mini")


def _check_scale(scale: str) -> None:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}; pick one of {_SCALES}")


def per_core_resources(scale: str = "mini") -> dict[str, int]:
    """Per-core shareable-resource amounts at a scale (Table 2 "per NPU").

    The Ideal configuration for an N-core system owns ``N`` times each of
    these; the equal Static split owns exactly one share.
    """
    _check_scale(scale)
    if scale == "full":
        return {"channels": CHANNELS_PER_CORE, "num_ptw": 8, "tlb_entries": 2048}
    return {"channels": CHANNELS_PER_CORE, "num_ptw": 1, "tlb_entries": 64}


def cloud_arch(
    scale: str = "mini", name: str = "tpu", *, dataflow: str = "os"
) -> ArchConfig:
    """The Table 2 compute configuration at the requested scale.

    ``dataflow`` names the engine that compiles this core's traces
    (default ``"os"``, the paper's choice; see
    :mod:`repro.compute.dataflow` for the registry).
    """
    _check_scale(scale)
    if scale == "full":
        return ArchConfig(
            name=name,
            array_rows=128,
            array_cols=128,
            spm_bytes=36 * 1024 * 1024,
            freq_mhz=1000,
            dataflow=dataflow,
            dram_transaction_bytes=64,
        )
    return ArchConfig(
        name=name,
        array_rows=32,
        array_cols=32,
        spm_bytes=512 * 1024,
        freq_mhz=1000,
        dataflow=dataflow,
        dram_transaction_bytes=256,
    )


def cloud_npumem(
    scale: str = "mini",
    *,
    page_bytes: int = 4096,
    translation_enabled: bool = True,
    tlb_entries: int | None = None,
    num_ptw: int | None = None,
) -> NpuMemConfig:
    """The Table 2 per-core MMU configuration at the requested scale."""
    _check_scale(scale)
    defaults = {"full": (2048, 8), "mini": (64, 1)}[scale]
    entries = tlb_entries if tlb_entries is not None else defaults[0]
    walkers = num_ptw if num_ptw is not None else defaults[1]
    return NpuMemConfig(
        tlb_entries=entries,
        tlb_assoc=min(8, entries),
        num_ptw=walkers,
        page_bytes=page_bytes,
        translation_enabled=translation_enabled,
    )


def hbm2_dram(scale: str = "mini", *, channels: int = CHANNELS_PER_CORE) -> DramConfig:
    """An HBM2 stack with the given number of pseudo-channels.

    One full-scale channel sustains 32 GB/s, so ``channels=4`` gives the
    single-core 128 GB/s of Table 2 and ``channels=8`` the dual-core
    256 GB/s.  The mini scale uses 8 GB/s channels to track its reduced
    compute throughput.
    """
    _check_scale(scale)
    bytes_per_cycle = 32 if scale == "full" else 16
    queue_depth = 64 if scale == "full" else 256
    return DramConfig(
        channels=channels,
        channel_bytes_per_cycle=bytes_per_cycle,
        queue_depth=queue_depth,
    )


def cloud_npu(
    num_cores: int,
    sharing: SharingLevel = SharingLevel.DWT,
    *,
    scale: str = "mini",
    page_bytes: int = 4096,
    translation_enabled: bool = True,
    misc: MiscConfig | None = None,
    channel_assignment: tuple[tuple[int, ...], ...] | None = None,
    ptw_assignment: tuple[int, ...] | None = None,
    dataflow: str = "os",
) -> SystemConfig:
    """A homogeneous multi-core cloud NPU under a sharing level.

    The system aggregates per-core resources as in the paper: an N-core
    system has ``N * 4`` channels, ``N * 8`` walkers and ``N * 2048`` TLB
    entries in total (Table 2, "per NPU" amounts).  ``sharing`` selects
    which of those pools contend dynamically.

    Note: for ``SharingLevel.IDEAL`` use :func:`solo_slice` with the full
    multi-core resources instead — Ideal is by definition a workload
    running alone.
    """
    if num_cores <= 0:
        raise ValueError("need at least one core")
    if sharing is SharingLevel.IDEAL and num_cores > 1:
        raise ValueError(
            "Ideal means 'alone on the whole system'; build it with solo_slice()"
        )
    arch = cloud_arch(scale, dataflow=dataflow)
    npumem = cloud_npumem(
        scale, page_bytes=page_bytes, translation_enabled=translation_enabled
    )
    dram = hbm2_dram(scale, channels=CHANNELS_PER_CORE * num_cores)
    return SystemConfig(
        arch=(arch,) * num_cores,
        npumem=(npumem,) * num_cores,
        dram=dram,
        misc=misc or MiscConfig(),
        share_dram=sharing.share_dram,
        share_ptw=sharing.share_ptw,
        share_tlb=sharing.share_tlb,
        channel_assignment=channel_assignment,
        ptw_assignment=ptw_assignment,
    )


def mix_system(
    num_cores: int,
    sharing: SharingLevel,
    *,
    scale: str = "mini",
    page_bytes: int = 4096,
    translation_enabled: bool = True,
    ptw_split: tuple[int, ...] | None = None,
    num_ptw_per_core: int | None = None,
    tlb_entries_per_core: int | None = None,
    dataflow: str = "os",
    misc: MiscConfig | None = None,
) -> SystemConfig:
    """A :func:`cloud_npu` system configured the way mix experiments run.

    The paper launches each mix simultaneously and runs every workload
    once: early finishers go idle and the remaining workloads inherit the
    freed shared resources.  A small per-core launch stagger breaks the
    artificial cycle-exact phase lock of repeated workloads in a mix.

    ``ptw_split`` overrides walker sharing with a static per-core split
    (figure 13's partitioning schemes) while DRAM stays at the given
    sharing level.  ``num_ptw_per_core`` / ``tlb_entries_per_core``
    enlarge the per-core pools (the walker-partitioning study needs
    enough walkers to split at the paper's 1:7..7:1 ratios).
    """
    system = cloud_npu(
        num_cores,
        sharing,
        scale=scale,
        page_bytes=page_bytes,
        translation_enabled=translation_enabled,
        dataflow=dataflow,
        misc=misc
        or MiscConfig(iterations=1, start_stagger_cycles=MIX_STAGGER_CYCLES),
    )
    overrides: dict[str, int] = {}
    if num_ptw_per_core is not None:
        overrides["num_ptw"] = num_ptw_per_core
    if tlb_entries_per_core is not None:
        overrides["tlb_entries"] = tlb_entries_per_core
        overrides["tlb_assoc"] = min(8, tlb_entries_per_core)
    if overrides:
        npumem = tuple(
            dataclasses.replace(cfg, **overrides) for cfg in system.npumem
        )
        system = dataclasses.replace(system, npumem=npumem)
    if ptw_split is not None:
        if len(ptw_split) != num_cores:
            raise ValueError("one walker count per core required")
        system = dataclasses.replace(
            system, share_ptw=False, ptw_assignment=tuple(ptw_split)
        )
    return system


def solo_slice(
    *,
    scale: str = "mini",
    channels: int = CHANNELS_PER_CORE,
    num_ptw: int | None = None,
    tlb_entries: int | None = None,
    page_bytes: int = 4096,
    translation_enabled: bool = True,
    dataflow: str = "os",
    misc: MiscConfig | None = None,
) -> SystemConfig:
    """A single-core system owning an explicit resource slice.

    This is how the uncontended configurations are evaluated: ``Ideal`` is
    a slice with the whole N-core resource pool; equal ``Static`` is a
    slice with exactly 1/N of it (the Table 2 per-core amounts); the
    ratio partitions of section 4.3/4.4 are slices with 1..7 channels or
    walkers.
    """
    arch = cloud_arch(scale, dataflow=dataflow)
    npumem = cloud_npumem(
        scale,
        page_bytes=page_bytes,
        translation_enabled=translation_enabled,
        tlb_entries=tlb_entries,
        num_ptw=num_ptw,
    )
    dram = hbm2_dram(scale, channels=channels)
    return SystemConfig(
        arch=(arch,),
        npumem=(npumem,),
        dram=dram,
        misc=misc or MiscConfig(),
        share_dram=True,
        share_ptw=True,
        share_tlb=True,
    )

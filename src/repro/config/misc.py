"""Execution-mode configuration (mNPUsim ``misc_config``).

Controls when each core starts, how many iterations of its workload it
runs, and the shared-PTW partition bounds (the artifact's "upper and lower
bound of available PTWs per core").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MiscConfig:
    """Run-mode knobs shared by every core in a simulation.

    Attributes:
        start_cycle: Global cycle at which cores begin issuing work.
        start_stagger_cycles: Additional per-core launch offset: core *i*
            starts at ``start_cycle + i * start_stagger_cycles`` (the
            artifact's per-core "execution initiation time").  A small
            stagger breaks the artificial phase lock of identical
            workloads launched in the same tick — real deployments never
            start two inferences on the exact same cycle.
        iterations: Iterations of each workload to run.  ``0`` means
            "loop until every co-runner finishes its first iteration" —
            the methodology used for the paper's mix experiments, which
            keeps contention present for slower co-runners while the
            reported cycle count is each workload's first completion.
        ptw_lower_bound: Minimum walkers a core may hold when the walker
            pool is shared (0 = no reservation).
        ptw_upper_bound: Maximum walkers a core may hold concurrently
            when shared (0 = no cap, i.e. fully dynamic FCFS).
        trace_dram_requests: Record per-request DRAM logs (the artifact's
            ``DRAMREQ_NPU_TRACE``); needed by Figures 2(b) and 12.
        trace_window_cycles: Aggregation window for bandwidth traces.
        replay_mode: Replay kernel selection — ``event`` (per-event
            baseline), ``batched`` (private-heap micro-event batching on
            exclusively-owned resources) or ``auto`` (batched plus the
            analytic steady-state fast-forward).  All three are proven
            byte-identical by the differential suite; see
            :mod:`repro.core.replay`.
    """

    start_cycle: int = 0
    start_stagger_cycles: int = 0
    iterations: int = 0
    ptw_lower_bound: int = 0
    ptw_upper_bound: int = 0
    trace_dram_requests: bool = False
    trace_window_cycles: int = 1000
    replay_mode: str = "event"

    def __post_init__(self) -> None:
        if self.start_cycle < 0:
            raise ValueError("start cycle cannot be negative")
        if self.start_stagger_cycles < 0:
            raise ValueError("start stagger cannot be negative")
        if self.iterations < 0:
            raise ValueError("iterations cannot be negative")
        if self.ptw_lower_bound < 0 or self.ptw_upper_bound < 0:
            raise ValueError("PTW partition bounds cannot be negative")
        if self.ptw_upper_bound and self.ptw_upper_bound < self.ptw_lower_bound:
            raise ValueError("PTW upper bound must be >= lower bound")
        if self.trace_window_cycles <= 0:
            raise ValueError("trace window must be positive")
        if self.replay_mode not in ("event", "batched", "auto"):
            raise ValueError(
                f"unknown replay mode {self.replay_mode!r}; "
                "choose from event, batched, auto"
            )

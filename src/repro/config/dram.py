"""Shared DRAM configuration (mNPUsim ``dram_config``).

mNPUsim integrates DRAMsim3 for a cycle-accurate memory model.  This
reproduction implements an event-driven model with the same first-order
structure (channels, bank groups, banks, row buffers, FR-FCFS, a shared
data bus per channel) — see ``repro.dram``.  The classes here hold the
parameters: timing (in DRAM-clock cycles), geometry, and the address
mapping that interleaves physical addresses across channels and banks.

The paper's baseline is HBM2 with 128 GB/s *per NPU core* (Table 2): one
HBM2 pseudo-channel sustains 32 GB/s, so a single-core system gets 4
channels, a dual-core 8, a quad-core 16.  Static bandwidth partitioning in
the paper (section 4.3, ratios 1:7 … 7:1 of 256 GB/s) maps exactly onto
assigning disjoint channel subsets to cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Order tokens accepted by :class:`AddressMapping` (DRAMsim3-style).
_MAP_FIELDS = ("ch", "bg", "ba", "ro", "co")


@dataclass(frozen=True)
class DramTiming:
    """DRAM timing parameters in DRAM-clock cycles.

    Defaults approximate HBM2 at 1 GHz (1 cycle = 1 ns).  Only the
    parameters that shape request-level behaviour are modeled; sub-command
    constraints that do not move first-order bandwidth/latency (e.g.
    tWTR variants) are folded into the ones below.
    """

    tCL: int = 14          #: column access strobe latency (read)
    tRCD: int = 14         #: row-activate to column-access delay
    tRP: int = 14          #: row precharge
    tRAS: int = 34         #: minimum row-active time
    tCCD: int = 2          #: column-to-column (same bank group, back-to-back)
    tWR: int = 16          #: write recovery
    tRFC: int = 260        #: refresh cycle time
    tREFI: int = 3900      #: refresh interval

    def __post_init__(self) -> None:
        for name in ("tCL", "tRCD", "tRP", "tRAS", "tCCD", "tWR", "tRFC", "tREFI"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.tRAS < self.tRCD:
            raise ValueError("tRAS must cover at least tRCD")
        if self.tREFI <= self.tRFC:
            raise ValueError("tREFI must exceed tRFC")


@dataclass(frozen=True)
class AddressMapping:
    """Physical-address bit slicing onto (channel, bankgroup, bank, row, col).

    ``order`` lists fields from least- to most-significant position above
    the transaction-offset bits.  The default ``("ch", "co", "ba", "bg",
    "ro")`` places channel bits lowest so that consecutive transactions
    stripe across channels — the interleaving mNPUsim relies on for peak
    bandwidth ("restrictions such as DRAM bank and channel interleaving",
    section 3.1).
    """

    order: tuple[str, ...] = ("ch", "co", "ba", "bg", "ro")

    def __post_init__(self) -> None:
        if sorted(self.order) != sorted(_MAP_FIELDS):
            raise ValueError(
                "address mapping must be a permutation of "
                f"{_MAP_FIELDS}, got {self.order}"
            )


@dataclass(frozen=True)
class DramConfig:
    """Geometry + timing of the shared off-chip memory.

    Attributes:
        preset: Label of the timing preset ("HBM2" in the paper).
        channels: Number of (pseudo-)channels.  Peak bandwidth equals
            ``channels * channel_bytes_per_cycle * freq_mhz * 1e6``.
        bank_groups: Bank groups per channel.
        banks_per_group: Banks per bank group.
        rows_per_bank: Rows per bank.
        row_bytes: Row-buffer size (bytes of one open row per bank).
        channel_bytes_per_cycle: Data-bus throughput of one channel per
            DRAM cycle.  HBM2 pseudo-channel: 64 data pins, DDR at 2 Gb/s
            per pin at a 1 GHz clock → 32 B/cycle → 32 GB/s.
        freq_mhz: DRAM clock; also the simulator's global clock.
        queue_depth: Per-channel request-queue capacity.  A full queue
            back-pressures the issuing DMA/walker.
        prioritize_walks: Schedule page-table-walk reads ahead of data
            bursts in the channel queues.  Real IOMMUs prioritize
            translations because one walk blocks many data requests;
            without it, walks drown under the very bursts they gate.
        timing: :class:`DramTiming`.
        mapping: :class:`AddressMapping`.
        refresh_enabled: Model periodic all-bank refresh per channel.
    """

    preset: str = "HBM2"
    channels: int = 4
    bank_groups: int = 4
    banks_per_group: int = 4
    rows_per_bank: int = 1 << 14
    row_bytes: int = 2048
    channel_bytes_per_cycle: int = 32
    freq_mhz: int = 1000
    queue_depth: int = 64
    timing: DramTiming = field(default_factory=DramTiming)
    mapping: AddressMapping = field(default_factory=AddressMapping)
    refresh_enabled: bool = True
    prioritize_walks: bool = True

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "bank_groups",
            "banks_per_group",
            "rows_per_bank",
            "row_bytes",
            "channel_bytes_per_cycle",
            "freq_mhz",
            "queue_depth",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive")
        if self.row_bytes & (self.row_bytes - 1):
            raise ValueError("row size must be a power of two")

    @property
    def banks_per_channel(self) -> int:
        """Total banks in one channel."""
        return self.bank_groups * self.banks_per_group

    @property
    def capacity_bytes(self) -> int:
        """Total addressable capacity across all channels."""
        return (
            self.channels * self.banks_per_channel
            * self.rows_per_bank * self.row_bytes
        )

    def peak_bandwidth_bytes_per_sec(self) -> float:
        """Aggregate peak bandwidth of all channels."""
        return self.channels * self.channel_bytes_per_cycle * self.freq_mhz * 1e6

    def burst_cycles(self, transaction_bytes: int) -> int:
        """Data-bus cycles one transaction occupies on a channel."""
        if transaction_bytes <= 0:
            raise ValueError("transaction size must be positive")
        return max(1, -(-transaction_bytes // self.channel_bytes_per_cycle))

"""DRAM statistics: per-core counters and windowed bandwidth traces.

The windowed trace backs the paper's Figure 2(b) (moving average of
memory requests over 1000-cycle windows) and Figure 12 (DRAM bandwidth
utilization over time, normalized to peak).

Counters are kept *per channel* (each :class:`~repro.dram.channel.Channel`
owns one :class:`DramStats` and increments it exactly as before — the
hot-path cost is one attribute bump either way), and the controller
exposes a :class:`DramStatsView` that aggregates them behind the
identical read API.  That split is what gives the observability layer
its ``dram.ch0.row_hits``-style per-channel registry paths without any
change to simulated behaviour: sums of disjoint integer counters equal
the historical shared counters exactly.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class BandwidthTrace:
    """Bytes transferred per fixed-size window of global ticks."""

    window_ticks: int
    _windows: dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, time: int, nbytes: int) -> None:
        """Account ``nbytes`` of data-bus traffic finishing at ``time``."""
        self._windows[time // self.window_ticks] += nbytes

    def series(self) -> list[tuple[int, int]]:
        """``(window_start_tick, bytes)`` pairs, sorted, gaps filled with 0."""
        if not self._windows:
            return []
        last = max(self._windows)
        return [
            (index * self.window_ticks, self._windows.get(index, 0))
            for index in range(last + 1)
        ]

    def utilization_series(self, peak_bytes_per_tick: float) -> list[tuple[int, float]]:
        """Per-window bandwidth utilization, normalized to the peak."""
        per_window_peak = peak_bytes_per_tick * self.window_ticks
        return [(start, nbytes / per_window_peak) for start, nbytes in self.series()]


@dataclass
class DramStats:
    """Aggregate counters the controller updates as it services requests."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    refreshes: int = 0
    bytes_per_core: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    queueing_ticks_total: int = 0

    @property
    def requests(self) -> int:
        """Total serviced requests."""
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        """Fraction of requests that hit an open row."""
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    @property
    def total_bytes(self) -> int:
        """Total data moved across all cores."""
        return sum(self.bytes_per_core.values())

    def avg_queueing_ticks(self) -> float:
        """Mean ticks a request spent between enqueue and data completion."""
        return self.queueing_ticks_total / self.requests if self.requests else 0.0


class DramStatsView:
    """Aggregate read API over the per-channel :class:`DramStats`.

    Presents exactly the :class:`DramStats` surface (every counter is the
    sum over channels), so code that consumed the controller's historical
    shared stats object — energy accounting, golden metrics, reports —
    works unchanged, while per-channel counters stay addressable for the
    registry.
    """

    __slots__ = ("per_channel",)

    def __init__(self, per_channel: Sequence[DramStats]) -> None:
        self.per_channel = tuple(per_channel)

    @property
    def reads(self) -> int:
        return sum(stats.reads for stats in self.per_channel)

    @property
    def writes(self) -> int:
        return sum(stats.writes for stats in self.per_channel)

    @property
    def row_hits(self) -> int:
        return sum(stats.row_hits for stats in self.per_channel)

    @property
    def row_misses(self) -> int:
        return sum(stats.row_misses for stats in self.per_channel)

    @property
    def refreshes(self) -> int:
        return sum(stats.refreshes for stats in self.per_channel)

    @property
    def queueing_ticks_total(self) -> int:
        return sum(stats.queueing_ticks_total for stats in self.per_channel)

    @property
    def bytes_per_core(self) -> dict[int, int]:
        """Data moved per core, summed over channels (core-sorted keys)."""
        totals: dict[int, int] = {}
        for stats in self.per_channel:
            for core, count in stats.bytes_per_core.items():
                totals[core] = totals.get(core, 0) + count
        return {core: totals[core] for core in sorted(totals)}

    @property
    def requests(self) -> int:
        """Total serviced requests."""
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        """Fraction of requests that hit an open row."""
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    @property
    def total_bytes(self) -> int:
        """Total data moved across all cores."""
        return sum(stats.total_bytes for stats in self.per_channel)

    def avg_queueing_ticks(self) -> float:
        """Mean ticks a request spent between enqueue and data completion."""
        return self.queueing_ticks_total / self.requests if self.requests else 0.0

"""DRAM statistics: per-core counters and windowed bandwidth traces.

The windowed trace backs the paper's Figure 2(b) (moving average of
memory requests over 1000-cycle windows) and Figure 12 (DRAM bandwidth
utilization over time, normalized to peak).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class BandwidthTrace:
    """Bytes transferred per fixed-size window of global ticks."""

    window_ticks: int
    _windows: dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, time: int, nbytes: int) -> None:
        """Account ``nbytes`` of data-bus traffic finishing at ``time``."""
        self._windows[time // self.window_ticks] += nbytes

    def series(self) -> list[tuple[int, int]]:
        """``(window_start_tick, bytes)`` pairs, sorted, gaps filled with 0."""
        if not self._windows:
            return []
        last = max(self._windows)
        return [
            (index * self.window_ticks, self._windows.get(index, 0))
            for index in range(last + 1)
        ]

    def utilization_series(self, peak_bytes_per_tick: float) -> list[tuple[int, float]]:
        """Per-window bandwidth utilization, normalized to the peak."""
        per_window_peak = peak_bytes_per_tick * self.window_ticks
        return [(start, nbytes / per_window_peak) for start, nbytes in self.series()]


@dataclass
class DramStats:
    """Aggregate counters the controller updates as it services requests."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    refreshes: int = 0
    bytes_per_core: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    queueing_ticks_total: int = 0

    @property
    def requests(self) -> int:
        """Total serviced requests."""
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        """Fraction of requests that hit an open row."""
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    @property
    def total_bytes(self) -> int:
        """Total data moved across all cores."""
        return sum(self.bytes_per_core.values())

    def avg_queueing_ticks(self) -> float:
        """Mean ticks a request spent between enqueue and data completion."""
        return self.queueing_ticks_total / self.requests if self.requests else 0.0

"""One DRAM channel: banks, FR-FCFS scheduling, data-bus serialization.

Each channel owns its request queue and schedules requests with
first-ready-first-come-first-served (FR-FCFS): a queued request targeting
an already-open row is preferred over older row-miss requests, within a
bounded reordering window.  Bank state machines enforce tRCD/tRP/tRAS/
tCCD/tWR; the channel's single data bus serializes bursts, which is what
caps a channel at its peak bandwidth.  Periodic all-bank refresh blocks
the channel for tRFC every tREFI.

Hot-path design — batched issue with credit kicks.  The baseline
scheduler issues one request per engine event and reschedules itself at
``t' = max(now + 1, data_end - burst)``.  When the bus is saturated the
issue *time* is immaterial: ``data_start = max(col_ready + tCL,
bus_free_at, now)`` and every such ``t'`` is <= ``bus_free_at``, so the
``now`` term never binds.  ``_kick`` therefore drains a run of requests
in one event, advancing a *virtual* kick time, as long as each step is
provably identical to what per-event scheduling would have done:

* the virtual kick time must stay short of ``next_refresh_at`` (a real
  kick would have refreshed instead of issuing);
* the selection must be *arrival-stable* — no request arriving after the
  real kick could have won it.  New arrivals append at the queue tail,
  so a selected walk is stable (walks are scanned front-to-back), a
  row-hit found in the reorder window is stable (the window is scanned
  front-to-back and bank state only changes with our own issues), and
  the oldest-request fallback is stable only when the queue already
  fills the reorder window.  If prioritized walk traffic is possible at
  all (``expect_walks``), any non-walk selection can be preempted by an
  arriving walk and ends the batch.

Draining alone is not enough for exact equivalence: under per-event
scheduling each kick — including kicks pulled forward by arrivals and
stale kicks left in the event heap — issues exactly one request, so the
*number* of kicks that have fired bounds how far the queue has advanced
at any instant.  If the drain consumed that progress up front, a kick
arriving mid-batch would issue the first *un*-drained request early and
diverge.  The drain therefore banks one *credit* per pre-issued request
(beyond the first): the burst's completion callback and the follow-on
kick time are deferred onto ``_chain``, and every kick that fires while
credits remain pops one entry and performs exactly the bookkeeping the
per-event kick would have done — push the completion callback, schedule
the next kick.  The event-push sequence, and with it every same-tick
ordering downstream, is identical to the baseline's.  The deferred kick
times themselves are kick-time-independent (``data_end - burst`` exceeds
any possible real kick time once ``burst_ticks >= 2``, the condition
under which batching engages).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.config.dram import DramConfig
from repro.core.engine import Engine
from repro.dram.stats import DramStats

#: How deep into the queue FR-FCFS may reorder to find a row hit.
FR_WINDOW = 16

#: Batched FR-FCFS issue (see module docstring).  Module-level so the
#: equivalence tests can A/B the per-event and batched schedulers.
BATCH_ISSUE = True


@dataclass(slots=True, eq=False)
class DramRequest:
    """One transaction presented to the memory system.

    ``callback`` fires (via the engine) when the data burst completes.
    ``core`` attributes the traffic for stats/fairness; ``is_walk`` marks
    page-table-walk reads for the PTW traffic breakdown.
    """

    addr: int
    write: bool
    core: int
    callback: Callable[[], None]
    bank: int = 0
    row: int = 0
    enqueue_time: int = 0
    is_walk: bool = False


class Bank:
    """Timing state of one DRAM bank."""

    __slots__ = ("open_row", "col_ready_at", "act_at")

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.col_ready_at: int = 0
        self.act_at: int = 0

    def close(self, until: int) -> None:
        """Precharge the bank (e.g. by refresh) and block it until ``until``."""
        self.open_row = None
        self.col_ready_at = max(self.col_ready_at, until)


@dataclass
class Channel:
    """Scheduler and timing model of a single channel."""

    index: int
    cfg: DramConfig
    engine: Engine
    burst_ticks: int
    stats: DramStats
    #: Optional per-burst hook ``trace(end_tick, nbytes, core)`` used by the
    #: controller to build per-core bandwidth traces (Figures 2b and 12).
    trace: Callable[[int, int, int], None] | None = None
    transaction_bytes: int = 64
    #: Whether prioritized page-table-walk traffic can reach this channel
    #: at all (translation enabled and walks routed through DRAM).  When
    #: False, batched issue need not fear walk preemption.
    expect_walks: bool = True

    banks: list[Bank] = field(init=False)
    queue: list[DramRequest] = field(init=False, default_factory=list)
    bus_free_at: int = field(init=False, default=0)
    next_refresh_at: int = field(init=False)
    _kick_at: int | None = field(init=False, default=None)
    _pending_walks: int = field(init=False, default=0)
    _walk_preempt: bool = field(init=False)
    _batch: bool = field(init=False)
    #: Deferred bookkeeping of pre-issued requests, one ``(data_end,
    #: callback, next_kick_time)`` credit per drained issue beyond the
    #: first (see module docstring).
    _chain: deque = field(init=False, default_factory=deque)
    _kick_cb: Callable[[], None] = field(init=False)

    def __post_init__(self) -> None:
        self.banks = [Bank() for _ in range(self.cfg.banks_per_channel)]
        # Stagger refresh across channels so they do not blink in lockstep.
        offset = (self.index * self.cfg.timing.tREFI) // max(1, self.cfg.channels)
        self.next_refresh_at = self.cfg.timing.tREFI + offset
        self._walk_preempt = self.cfg.prioritize_walks and self.expect_walks
        self._batch = BATCH_ISSUE and self.burst_ticks >= 2
        # One bound method, reused for every scheduling push (``self._kick``
        # would allocate a fresh bound method per transaction).
        self._kick_cb = self._kick
        # Immutable config pulled into flat attributes: ``_issue`` and
        # ``_select_index`` run once per transaction.
        timing = self.cfg.timing
        self._tRCD = timing.tRCD
        self._tRP = timing.tRP
        self._tRAS = timing.tRAS
        self._tCCD = timing.tCCD
        self._tWR = timing.tWR
        self._tCL = timing.tCL
        self._prioritize = self.cfg.prioritize_walks
        self._refresh_on = self.cfg.refresh_enabled

    # ------------------------------------------------------------------ #

    def enqueue(self, request: DramRequest) -> None:
        """Accept a request into the channel queue and ensure scheduling."""
        now = self.engine.now
        request.enqueue_time = now
        self.queue.append(request)
        if request.is_walk:
            self._pending_walks += 1
        # Inline of ``_ensure_kick(now)`` — this runs once per transaction.
        kick_at = self._kick_at
        if kick_at is None or kick_at > now:
            self._kick_at = now
            self.engine.at(now, self._kick_cb)

    @property
    def occupancy(self) -> int:
        """Requests currently waiting in the channel queue."""
        return len(self.queue)

    # ------------------------------------------------------------------ #

    def _ensure_kick(self, time: int) -> None:
        """Schedule the issue step at ``time`` unless one is already due earlier."""
        if self._kick_at is not None and self._kick_at <= time:
            return
        self._kick_at = time
        self.engine.at(time, self._kick_cb)

    def _kick(self) -> None:
        self._kick_at = None
        engine = self.engine
        chain = self._chain
        if chain:
            # Credit kick: a batched drain pre-issued the request this
            # kick would have issued under per-event scheduling.  Replay
            # the bookkeeping that kick would have done — push the
            # completion callback and the follow-on kick — so the event
            # pushes and the kick supply stay identical to the baseline.
            # (The baseline only reschedules while its queue still holds
            # requests; the pre-issued ones it would still hold are
            # exactly the remaining chain entries.)
            data_end, callback, next_time = chain.popleft()
            engine.at(data_end, callback)
            if chain or self.queue:
                # ``_kick_at`` is None here (cleared on entry), so the
                # dedup check in ``_ensure_kick`` would always pass.
                self._kick_at = next_time
                engine.at(next_time, self._kick_cb)
            return
        queue = self.queue
        if not queue:
            return
        now = engine.now
        refresh = self._refresh_on
        if refresh and now >= self.next_refresh_at:
            self._refresh(now)
            return
        burst = self.burst_ticks
        index, _ = self._select_index()
        request = queue[index]
        if request.is_walk:
            self._pending_walks -= 1
        data_end = self._issue(request, now)
        engine.at(data_end, request.callback)
        del queue[index]
        if not queue:
            return
        # The next issue decision happens when the bus commits to this
        # burst; bank preparation of the next request overlaps it.
        next_time = data_end - burst
        if next_time <= now:
            next_time = now + 1
        if self._batch and not (refresh and next_time >= self.next_refresh_at):
            # Drain ahead at virtual kick times while each selection is
            # arrival-stable, banking one credit per pre-issued request.
            virtual = next_time
            while True:
                index, stable = self._select_index()
                if not stable:
                    break
                request = queue[index]
                if request.is_walk:
                    self._pending_walks -= 1
                data_end = self._issue(request, now)
                del queue[index]
                after = data_end - burst
                if after <= virtual:
                    after = virtual + 1
                chain.append((data_end, request.callback, after))
                if not queue or (refresh and after >= self.next_refresh_at):
                    break
                virtual = after
        # Direct push: ``_kick_at`` is None and ``next_time > now``.
        self._kick_at = next_time
        engine.at(next_time, self._kick_cb)

    def _refresh(self, now: int) -> None:
        """Perform an all-bank refresh: banks precharged, channel blocked.

        Refreshes that fell due while the channel sat idle have already
        happened in the background; only the current one blocks traffic.
        """
        timing = self.cfg.timing
        end = now + timing.tRFC
        while self.next_refresh_at <= now:
            self.next_refresh_at += timing.tREFI
        for bank in self.banks:
            bank.close(end)
        self.bus_free_at = max(self.bus_free_at, end)
        self.stats.refreshes += 1
        self._ensure_kick(end)

    def _select_index(self) -> tuple[int, bool]:
        """FR-FCFS with optional walk priority.

        Page-table-walk reads (when ``prioritize_walks``) go first — one
        pending walk gates many data transactions.  Otherwise the oldest
        row-hit within the reorder window wins, falling back to the
        oldest request.  Returns ``(index, stable)`` where ``stable``
        means no later arrival could have won this selection (see the
        module docstring on batched issue).
        """
        queue = self.queue
        if self._pending_walks and self._prioritize:
            for index, request in enumerate(queue):
                if request.is_walk:
                    return index, True
        banks = self.banks
        size = len(queue)
        for index in range(size if size < FR_WINDOW else FR_WINDOW):
            request = queue[index]
            if banks[request.bank].open_row == request.row:
                return index, not self._walk_preempt
        return 0, not self._walk_preempt and size >= FR_WINDOW

    def _issue(self, request: DramRequest, now: int) -> int:
        """Advance bank/bus state for ``request``; returns data-end tick.

        The caller schedules the completion callback: immediately for a
        request issued at a real kick, deferred onto the credit chain
        for a drained one (see module docstring).

        Command timing is floored at the request's *arrival*, not at the
        scheduling instant: a real controller issues ACT/RD commands for
        queued requests while earlier bursts still occupy the data bus,
        so back-to-back row hits stream at the burst rate.  The data bus
        remains the serializing resource.
        """
        bank = self.banks[request.bank]
        arrival = request.enqueue_time
        stats = self.stats
        if bank.open_row == request.row:
            col_ready = bank.col_ready_at
            if col_ready < arrival:
                col_ready = arrival
            stats.row_hits += 1
        else:
            if bank.open_row is None:
                act_at = bank.col_ready_at
                if act_at < arrival:
                    act_at = arrival
            else:
                precharge_at = max(
                    arrival, bank.col_ready_at, bank.act_at + self._tRAS
                )
                act_at = precharge_at + self._tRP
            bank.act_at = act_at
            bank.open_row = request.row
            col_ready = act_at + self._tRCD
            stats.row_misses += 1
        data_start = col_ready + self._tCL
        bus_free = self.bus_free_at
        if data_start < bus_free:
            data_start = bus_free
        if data_start < now:
            data_start = now
        data_end = data_start + self.burst_ticks
        self.bus_free_at = data_end
        write = request.write
        bank.col_ready_at = col_ready + self._tCCD + (self._tWR if write else 0)

        if write:
            stats.writes += 1
        else:
            stats.reads += 1
        stats.bytes_per_core[request.core] += self.transaction_bytes
        stats.queueing_ticks_total += data_end - arrival
        if self.trace is not None:
            self.trace(data_end, self.transaction_bytes, request.core)
        return data_end

"""One DRAM channel: banks, FR-FCFS scheduling, data-bus serialization.

Each channel owns its request queue and schedules requests with
first-ready-first-come-first-served (FR-FCFS): a queued request targeting
an already-open row is preferred over older row-miss requests, within a
bounded reordering window.  Bank state machines enforce tRCD/tRP/tRAS/
tCCD/tWR; the channel's single data bus serializes bursts, which is what
caps a channel at its peak bandwidth.  Periodic all-bank refresh blocks
the channel for tRFC every tREFI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.config.dram import DramConfig
from repro.core.engine import Engine
from repro.dram.stats import DramStats

#: How deep into the queue FR-FCFS may reorder to find a row hit.
FR_WINDOW = 16


@dataclass
class DramRequest:
    """One transaction presented to the memory system.

    ``callback`` fires (via the engine) when the data burst completes.
    ``core`` attributes the traffic for stats/fairness; ``is_walk`` marks
    page-table-walk reads for the PTW traffic breakdown.
    """

    addr: int
    write: bool
    core: int
    callback: Callable[[], None]
    bank: int = 0
    row: int = 0
    enqueue_time: int = 0
    is_walk: bool = False


class Bank:
    """Timing state of one DRAM bank."""

    __slots__ = ("open_row", "col_ready_at", "act_at")

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.col_ready_at: int = 0
        self.act_at: int = 0

    def close(self, until: int) -> None:
        """Precharge the bank (e.g. by refresh) and block it until ``until``."""
        self.open_row = None
        self.col_ready_at = max(self.col_ready_at, until)


@dataclass
class Channel:
    """Scheduler and timing model of a single channel."""

    index: int
    cfg: DramConfig
    engine: Engine
    burst_ticks: int
    stats: DramStats
    #: Optional per-burst hook ``trace(end_tick, nbytes, core)`` used by the
    #: controller to build per-core bandwidth traces (Figures 2b and 12).
    trace: Callable[[int, int, int], None] | None = None
    transaction_bytes: int = 64

    banks: list[Bank] = field(init=False)
    queue: list[DramRequest] = field(init=False, default_factory=list)
    bus_free_at: int = field(init=False, default=0)
    next_refresh_at: int = field(init=False)
    _kick_at: int | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        self.banks = [Bank() for _ in range(self.cfg.banks_per_channel)]
        # Stagger refresh across channels so they do not blink in lockstep.
        offset = (self.index * self.cfg.timing.tREFI) // max(1, self.cfg.channels)
        self.next_refresh_at = self.cfg.timing.tREFI + offset

    # ------------------------------------------------------------------ #

    def enqueue(self, request: DramRequest) -> None:
        """Accept a request into the channel queue and ensure scheduling."""
        request.enqueue_time = self.engine.now
        self.queue.append(request)
        self._ensure_kick(self.engine.now)

    @property
    def occupancy(self) -> int:
        """Requests currently waiting in the channel queue."""
        return len(self.queue)

    # ------------------------------------------------------------------ #

    def _ensure_kick(self, time: int) -> None:
        """Schedule the issue step at ``time`` unless one is already due earlier."""
        if self._kick_at is not None and self._kick_at <= time:
            return
        self._kick_at = time
        self.engine.at(time, self._kick)

    def _kick(self) -> None:
        self._kick_at = None
        if not self.queue:
            return
        now = self.engine.now
        if self.cfg.refresh_enabled and now >= self.next_refresh_at:
            self._refresh(now)
            return
        request = self._select()
        data_end = self._issue(request, now)
        self.queue.remove(request)
        if self.queue:
            # The next issue decision happens when the bus commits to this
            # burst; bank preparation of the next request overlaps it.
            self._ensure_kick(max(now + 1, data_end - self.burst_ticks))

    def _refresh(self, now: int) -> None:
        """Perform an all-bank refresh: banks precharged, channel blocked.

        Refreshes that fell due while the channel sat idle have already
        happened in the background; only the current one blocks traffic.
        """
        timing = self.cfg.timing
        end = now + timing.tRFC
        while self.next_refresh_at <= now:
            self.next_refresh_at += timing.tREFI
        for bank in self.banks:
            bank.close(end)
        self.bus_free_at = max(self.bus_free_at, end)
        self.stats.refreshes += 1
        self._ensure_kick(end)

    def _select(self) -> DramRequest:
        """FR-FCFS with optional walk priority.

        Page-table-walk reads (when ``prioritize_walks``) go first — one
        pending walk gates many data transactions.  Otherwise the oldest
        row-hit within the reorder window wins, falling back to the
        oldest request.
        """
        if self.cfg.prioritize_walks:
            for request in self.queue:
                if request.is_walk:
                    return request
        for request in self.queue[:FR_WINDOW]:
            if self.banks[request.bank].open_row == request.row:
                return request
        return self.queue[0]

    def _issue(self, request: DramRequest, now: int) -> int:
        """Advance bank/bus state for ``request``; returns data-end tick.

        Command timing is floored at the request's *arrival*, not at the
        scheduling instant: a real controller issues ACT/RD commands for
        queued requests while earlier bursts still occupy the data bus,
        so back-to-back row hits stream at the burst rate.  The data bus
        remains the serializing resource.
        """
        timing = self.cfg.timing
        bank = self.banks[request.bank]
        arrival = request.enqueue_time
        if bank.open_row == request.row:
            col_ready = max(arrival, bank.col_ready_at)
            self.stats.row_hits += 1
        else:
            if bank.open_row is None:
                act_at = max(arrival, bank.col_ready_at)
            else:
                precharge_at = max(
                    arrival, bank.col_ready_at, bank.act_at + timing.tRAS
                )
                act_at = precharge_at + timing.tRP
            bank.act_at = act_at
            bank.open_row = request.row
            col_ready = act_at + timing.tRCD
            self.stats.row_misses += 1
        data_start = max(col_ready + timing.tCL, self.bus_free_at, now)
        data_end = data_start + self.burst_ticks
        self.bus_free_at = data_end
        recovery = timing.tWR if request.write else 0
        bank.col_ready_at = col_ready + timing.tCCD + recovery

        if request.write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        self.stats.bytes_per_core[request.core] += self.transaction_bytes
        self.stats.queueing_ticks_total += data_end - request.enqueue_time
        if self.trace is not None:
            self.trace(data_end, self.transaction_bytes, request.core)
        self.engine.at(data_end, request.callback)
        return data_end

"""The shared memory controller: address mapping, routing, partitioning.

The controller decomposes physical addresses into (channel, bank group,
bank, row, column) with a configurable DRAMsim3-style bit order, routes
each transaction to its channel, and implements the paper's bandwidth
*partitioning*: when DRAM is statically partitioned, a core's traffic
interleaves only over its own channel subset (so a 1:7 split of the
dual-core 256 GB/s system is 1 channel vs 7); when DRAM is shared (+D and
up), every core interleaves over all channels and contends in the
channel queues.
"""

from __future__ import annotations

from typing import Callable

from typing import TYPE_CHECKING

from repro.config.dram import DramConfig
from repro.core.engine import Engine
from repro.dram.channel import Channel, DramRequest
from repro.dram.stats import BandwidthTrace, DramStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.tracing import TraceLogger


class DramController:
    """Routes transactions from cores (and page-table walkers) to channels."""

    def __init__(
        self,
        cfg: DramConfig,
        engine: Engine,
        *,
        transaction_bytes: int,
        channels_per_core: dict[int, tuple[int, ...]],
        trace_window_ticks: int | None = None,
        logger: "TraceLogger | None" = None,
    ) -> None:
        """``channels_per_core`` maps core index -> allowed channel tuple.

        Shared DRAM is expressed by giving every core the full channel
        range; static partitions give disjoint subsets.
        """
        if not channels_per_core:
            raise ValueError("at least one core must be wired to the controller")
        for core, channels in channels_per_core.items():
            if not channels:
                raise ValueError(f"core {core} has no DRAM channels")
            for channel in channels:
                if not 0 <= channel < cfg.channels:
                    raise ValueError(f"core {core} assigned invalid channel {channel}")
        self.cfg = cfg
        self.engine = engine
        self.transaction_bytes = transaction_bytes
        self.channels_per_core = dict(channels_per_core)
        self.stats = DramStats()
        self.logger = logger
        self.traces: dict[int, BandwidthTrace] | None = None
        self.total_trace: BandwidthTrace | None = None
        trace_fn: Callable[[int, int, int], None] | None = None
        if trace_window_ticks is not None:
            self.traces = {
                core: BandwidthTrace(trace_window_ticks) for core in channels_per_core
            }
            self.total_trace = BandwidthTrace(trace_window_ticks)
            trace_fn = self._record_trace
        burst = cfg.burst_cycles(transaction_bytes)
        self.channels = [
            Channel(
                index=index,
                cfg=cfg,
                engine=engine,
                burst_ticks=burst,
                stats=self.stats,
                trace=trace_fn,
                transaction_bytes=transaction_bytes,
            )
            for index in range(cfg.channels)
        ]
        # Column field counts transactions per row.
        self._cols_per_row = max(1, cfg.row_bytes // transaction_bytes)

    # ------------------------------------------------------------------ #

    def submit(
        self,
        core: int,
        addr: int,
        write: bool,
        callback: Callable[[], None],
        *,
        is_walk: bool = False,
    ) -> None:
        """Issue one transaction; ``callback`` fires when its burst completes."""
        channel_index, bank, row = self.decompose(core, addr)
        if self.logger is not None:
            callback = self._logged(
                callback, self.engine.now, addr, core, channel_index, write, is_walk
            )
        request = DramRequest(
            addr=addr,
            write=write,
            core=core,
            callback=callback,
            bank=bank,
            row=row,
            is_walk=is_walk,
        )
        self.channels[channel_index].enqueue(request)

    def _logged(self, callback, start, addr, core, channel, write, is_walk):
        def wrapped() -> None:
            assert self.logger is not None
            self.logger.log_dram(
                start, self.engine.now, addr, core, channel, write, is_walk
            )
            callback()
        return wrapped

    def decompose(self, core: int, addr: int) -> tuple[int, int, int]:
        """Map a physical address to (channel, bank-in-channel, row).

        Fields are peeled off the transaction-granular address in the
        configured order (least significant first).  The channel field
        interleaves over the *core's allowed channels*, so partitioned
        cores stripe across their own subset at full spatial locality.
        Addresses beyond capacity wrap (the row field is taken modulo).
        """
        allowed = self.channels_per_core[core]
        value = addr // self.transaction_bytes
        channel = allowed[0]
        bank_group = 0
        bank_in_group = 0
        row = 0
        for token in self.cfg.mapping.order:
            if token == "ch":
                channel = allowed[value % len(allowed)]
                value //= len(allowed)
            elif token == "co":
                value //= self._cols_per_row
            elif token == "ba":
                bank_in_group = value % self.cfg.banks_per_group
                value //= self.cfg.banks_per_group
            elif token == "bg":
                bank_group = value % self.cfg.bank_groups
                value //= self.cfg.bank_groups
            else:  # "ro"
                row = value % self.cfg.rows_per_bank
                value //= self.cfg.rows_per_bank
        bank = bank_group * self.cfg.banks_per_group + bank_in_group
        return channel, bank, row

    # ------------------------------------------------------------------ #

    def _record_trace(self, time: int, nbytes: int, core: int) -> None:
        assert self.traces is not None and self.total_trace is not None
        self.traces[core].record(time, nbytes)
        self.total_trace.record(time, nbytes)

    def peak_bytes_per_tick(self, core: int | None = None) -> float:
        """Peak data-bus bytes per global tick (for a core's channel set)."""
        if core is None:
            count = self.cfg.channels
        else:
            count = len(self.channels_per_core[core])
        return count * self.cfg.channel_bytes_per_cycle

    @property
    def pending(self) -> int:
        """Requests currently queued across all channels."""
        return sum(channel.occupancy for channel in self.channels)

"""The shared memory controller: address mapping, routing, partitioning.

The controller decomposes physical addresses into (channel, bank group,
bank, row, column) with a configurable DRAMsim3-style bit order, routes
each transaction to its channel, and implements the paper's bandwidth
*partitioning*: when DRAM is statically partitioned, a core's traffic
interleaves only over its own channel subset (so a 1:7 split of the
dual-core 256 GB/s system is 1 channel vs 7); when DRAM is shared (+D and
up), every core interleaves over all channels and contends in the
channel queues.
"""

from __future__ import annotations

from typing import Callable

from typing import TYPE_CHECKING

from repro.config.dram import DramConfig
from repro.core.engine import Engine
from repro.dram.channel import Channel, DramRequest
from repro.dram.stats import BandwidthTrace, DramStats, DramStatsView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.tracing import TraceLogger
    from repro.obs.registry import CounterRegistry


class DramController:
    """Routes transactions from cores (and page-table walkers) to channels."""

    def __init__(
        self,
        cfg: DramConfig,
        engine: Engine,
        *,
        transaction_bytes: int,
        channels_per_core: dict[int, tuple[int, ...]],
        trace_window_ticks: int | None = None,
        logger: "TraceLogger | None" = None,
        expect_walks: bool = True,
    ) -> None:
        """``channels_per_core`` maps core index -> allowed channel tuple.

        Shared DRAM is expressed by giving every core the full channel
        range; static partitions give disjoint subsets.  ``expect_walks``
        tells the channels whether prioritized page-table-walk traffic is
        possible at all (it bounds batched issue; see ``Channel``).
        """
        if not channels_per_core:
            raise ValueError("at least one core must be wired to the controller")
        for core, channels in channels_per_core.items():
            if not channels:
                raise ValueError(f"core {core} has no DRAM channels")
            for channel in channels:
                if not 0 <= channel < cfg.channels:
                    raise ValueError(f"core {core} assigned invalid channel {channel}")
        self.cfg = cfg
        self.engine = engine
        self.transaction_bytes = transaction_bytes
        self.channels_per_core = dict(channels_per_core)
        channel_stats = [DramStats() for _ in range(cfg.channels)]
        self.stats = DramStatsView(channel_stats)
        self.logger = logger
        self.traces: dict[int, BandwidthTrace] | None = None
        self.total_trace: BandwidthTrace | None = None
        trace_fn: Callable[[int, int, int], None] | None = None
        if trace_window_ticks is not None:
            self.traces = {
                core: BandwidthTrace(trace_window_ticks) for core in channels_per_core
            }
            self.total_trace = BandwidthTrace(trace_window_ticks)
            trace_fn = self._record_trace
        burst = cfg.burst_cycles(transaction_bytes)
        self.channels = [
            Channel(
                index=index,
                cfg=cfg,
                engine=engine,
                burst_ticks=burst,
                stats=channel_stats[index],
                trace=trace_fn,
                transaction_bytes=transaction_bytes,
                expect_walks=expect_walks,
            )
            for index in range(cfg.channels)
        ]
        # Column field counts transactions per row.
        self._cols_per_row = max(1, cfg.row_bytes // transaction_bytes)
        # ``decompose`` runs once per transaction; the mapping order and
        # every modulus are fixed at construction, so each core gets a
        # specialized decomposer with the field-peeling loop unrolled and
        # all constants inlined (the same trick ``namedtuple`` uses).
        self._decomposers = {
            core: self._compile_decomposer(allowed)
            for core, allowed in self.channels_per_core.items()
        }

    # ------------------------------------------------------------------ #

    def submit(
        self,
        core: int,
        addr: int,
        write: bool,
        callback: Callable[[], None],
        *,
        is_walk: bool = False,
    ) -> None:
        """Issue one transaction; ``callback`` fires when its burst completes."""
        channel_index, bank, row = self._decomposers[core](addr)
        now = self.engine.now
        if self.logger is not None:
            callback = self._logged(
                callback, now, addr, core, channel_index, write, is_walk
            )
        # Positional: (addr, write, core, callback, bank, row,
        # enqueue_time, is_walk) — this runs once per transaction, with
        # ``Channel.enqueue`` inlined (the per-transaction hot path).
        request = DramRequest(addr, write, core, callback, bank, row, now, is_walk)
        channel = self.channels[channel_index]
        channel.queue.append(request)
        if is_walk:
            channel._pending_walks += 1
        kick_at = channel._kick_at
        if kick_at is None or kick_at > now:
            channel._kick_at = now
            self.engine.at(now, channel._kick_cb)

    def _logged(self, callback, start, addr, core, channel, write, is_walk):
        def wrapped() -> None:
            assert self.logger is not None
            self.logger.log_dram(
                start, self.engine.now, addr, core, channel, write, is_walk
            )
            callback()
        return wrapped

    def decompose(self, core: int, addr: int) -> tuple[int, int, int]:
        """Map a physical address to (channel, bank-in-channel, row).

        Fields are peeled off the transaction-granular address in the
        configured order (least significant first).  The channel field
        interleaves over the *core's allowed channels*, so partitioned
        cores stripe across their own subset at full spatial locality.
        Addresses beyond capacity wrap (the row field is taken modulo).
        """
        return self._decomposers[core](addr)

    def _compile_decomposer(
        self, allowed: tuple[int, ...]
    ) -> Callable[[int], tuple[int, int, int]]:
        """Build one core's ``addr -> (channel, bank, row)`` function."""
        cfg = self.cfg
        lines = [
            "def decompose(addr):",
            f"    value = addr // {self.transaction_bytes}",
            f"    channel = {allowed[0]}",
            "    bank_group = 0",
            "    bank_in_group = 0",
            "    row = 0",
        ]
        for token in cfg.mapping.order:
            if token == "ch":
                lines += [
                    f"    channel = _allowed[value % {len(allowed)}]",
                    f"    value //= {len(allowed)}",
                ]
            elif token == "co":
                lines.append(f"    value //= {self._cols_per_row}")
            elif token == "ba":
                lines += [
                    f"    bank_in_group = value % {cfg.banks_per_group}",
                    f"    value //= {cfg.banks_per_group}",
                ]
            elif token == "bg":
                lines += [
                    f"    bank_group = value % {cfg.bank_groups}",
                    f"    value //= {cfg.bank_groups}",
                ]
            else:  # "ro"
                lines += [
                    f"    row = value % {cfg.rows_per_bank}",
                    f"    value //= {cfg.rows_per_bank}",
                ]
        lines.append(
            f"    return channel, bank_group * {cfg.banks_per_group}"
            " + bank_in_group, row"
        )
        namespace: dict = {"_allowed": allowed}
        exec("\n".join(lines), namespace)  # noqa: S102 - constants only
        return namespace["decompose"]

    # ------------------------------------------------------------------ #

    def _record_trace(self, time: int, nbytes: int, core: int) -> None:
        assert self.traces is not None and self.total_trace is not None
        self.traces[core].record(time, nbytes)
        self.total_trace.record(time, nbytes)

    def peak_bytes_per_tick(self, core: int | None = None) -> float:
        """Peak data-bus bytes per global tick (for a core's channel set)."""
        if core is None:
            count = self.cfg.channels
        else:
            count = len(self.channels_per_core[core])
        return count * self.cfg.channel_bytes_per_cycle

    def register_counters(self, registry: "CounterRegistry") -> None:
        """Expose per-channel and aggregate DRAM stats to the registry.

        Pure binding: the registry reads the existing per-channel stat
        objects at snapshot time, never on the transaction hot path.
        """
        for channel in self.channels:
            stats = channel.stats
            registry.bind_many(
                f"dram.ch{channel.index}",
                {
                    "reads": lambda s=stats: s.reads,
                    "writes": lambda s=stats: s.writes,
                    "row_hits": lambda s=stats: s.row_hits,
                    "row_misses": lambda s=stats: s.row_misses,
                    "refreshes": lambda s=stats: s.refreshes,
                    "queueing_ticks_total": lambda s=stats: s.queueing_ticks_total,
                },
            )
            registry.bind_gauge(
                f"dram.ch{channel.index}.queue_depth",
                lambda c=channel: c.occupancy,
            )
        for core in sorted(self.channels_per_core):
            registry.bind_counter(
                f"dram.core{core}.bytes",
                lambda c=core: self.stats.bytes_per_core.get(c, 0),
            )
        registry.bind_counter("dram.requests", lambda: self.stats.requests)
        registry.bind_counter("dram.total_bytes", lambda: self.stats.total_bytes)
        registry.bind_gauge("dram.row_hit_rate", lambda: self.stats.row_hit_rate)

    @property
    def pending(self) -> int:
        """Requests currently queued across all channels."""
        return sum(channel.occupancy for channel in self.channels)

    def queue_depths(self) -> dict[int, int]:
        """Per-channel queue occupancy (stall-watchdog diagnostics)."""
        return {
            channel.index: channel.occupancy for channel in self.channels
        }

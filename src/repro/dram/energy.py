"""DRAM energy accounting (extension; DRAMsim3 is "thermal-capable").

The event-driven DRAM model already counts the operations that dominate
DRAM energy — row activations (row misses), column bursts, refreshes —
so energy is pure post-processing over :class:`~repro.dram.stats.DramStats`
plus elapsed time for background power.  Default coefficients approximate
HBM2 (derived from published IDD-style numbers; they are meant for
*relative* comparisons between configurations, not absolute joules).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dram import DramConfig
from repro.dram.stats import DramStats


@dataclass(frozen=True)
class DramEnergyParams:
    """Per-operation DRAM energy coefficients."""

    act_pre_pj: float = 900.0        #: one activate+precharge pair
    read_pj_per_byte: float = 4.0    #: column read, per data byte
    write_pj_per_byte: float = 4.4   #: column write, per data byte
    refresh_pj: float = 25_000.0     #: one all-bank refresh
    background_pw_per_channel: float = 15_000.0  #: static power, pW per channel

    def __post_init__(self) -> None:
        for name in (
            "act_pre_pj", "read_pj_per_byte", "write_pj_per_byte",
            "refresh_pj", "background_pw_per_channel",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per component, in picojoules."""

    activate_pj: float
    read_pj: float
    write_pj: float
    refresh_pj: float
    background_pj: float

    @property
    def total_pj(self) -> float:
        """Sum of all components."""
        return (
            self.activate_pj + self.read_pj + self.write_pj
            + self.refresh_pj + self.background_pj
        )

    @property
    def dynamic_pj(self) -> float:
        """Everything except background power."""
        return self.total_pj - self.background_pj

    def as_dict(self) -> dict[str, float]:
        """Breakdown plus totals, for reports."""
        return {
            "activate_pj": self.activate_pj,
            "read_pj": self.read_pj,
            "write_pj": self.write_pj,
            "refresh_pj": self.refresh_pj,
            "background_pj": self.background_pj,
            "dynamic_pj": self.dynamic_pj,
            "total_pj": self.total_pj,
        }


def dram_energy(
    stats: DramStats,
    cfg: DramConfig,
    elapsed_ticks: int,
    transaction_bytes: int,
    params: DramEnergyParams = DramEnergyParams(),
) -> EnergyBreakdown:
    """Energy consumed by the DRAM over a simulated interval.

    ``elapsed_ticks`` are global (DRAM-clock) cycles; at 1 GHz one tick
    is 1 ns, so background power in pW contributes pJ per tick directly.
    """
    if elapsed_ticks < 0:
        raise ValueError("elapsed time cannot be negative")
    ns_per_tick = 1000.0 / cfg.freq_mhz
    return EnergyBreakdown(
        activate_pj=stats.row_misses * params.act_pre_pj,
        read_pj=stats.reads * transaction_bytes * params.read_pj_per_byte,
        write_pj=stats.writes * transaction_bytes * params.write_pj_per_byte,
        refresh_pj=stats.refreshes * params.refresh_pj,
        background_pj=(
            elapsed_ticks * ns_per_tick
            * cfg.channels * params.background_pw_per_channel * 1e-3
        ),
    )

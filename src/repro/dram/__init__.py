"""Event-driven DRAM model (the DRAMsim3 substitute — see DESIGN.md)."""

from repro.dram.controller import DramController, DramRequest
from repro.dram.channel import Bank, Channel
from repro.dram.stats import BandwidthTrace, DramStats

__all__ = [
    "DramController",
    "DramRequest",
    "Channel",
    "Bank",
    "DramStats",
    "BandwidthTrace",
]

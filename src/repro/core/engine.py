"""Deterministic discrete-event simulation kernel.

All components of the simulator (cores, DMA engines, MMU, DRAM channels)
share one :class:`Engine`.  Time is an integer count of *global ticks* —
cycles of the DRAM clock, which mNPUsim defines as the global clock that
shared-resource accesses synchronize to (section 3.1).  Events at the
same tick fire in insertion order, which makes every simulation fully
deterministic and reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable


class Engine:
    """A minimal, fast event loop over integer time."""

    __slots__ = ("now", "events_processed", "_queue", "_seq")

    def __init__(self) -> None:
        self.now: int = 0
        self.events_processed: int = 0
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._seq: int = 0

    def at(self, time: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute tick ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._queue, (time, self._seq, fn))
        self._seq += 1

    def after(self, delay: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError("delay cannot be negative")
        self.at(self.now + delay, fn)

    def run(self, until: int | None = None) -> int:
        """Process events until the queue drains (or tick ``until``).

        Returns the final simulation time.  A simulation that never
        drains its queue would loop forever; pass ``until`` as a guard
        when testing potentially-livelocked configurations.
        """
        queue = self._queue
        processed = 0
        while queue:
            time, _, fn = queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(queue)
            self.now = time
            processed += 1
            fn()
        self.events_processed += processed
        return self.now

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        return len(self._queue)

"""Deterministic discrete-event simulation kernel.

All components of the simulator (cores, DMA engines, MMU, DRAM channels)
share one :class:`Engine`.  Time is an integer count of *global ticks* —
cycles of the DRAM clock, which mNPUsim defines as the global clock that
shared-resource accesses synchronize to (section 3.1).  Events at the
same tick fire in insertion order, which makes every simulation fully
deterministic and reproducible.

Hot-path notes: the heap stores plain ``(time, seq, fn)`` tuples (CPython
compares tuples in C; a slotted event record with a Python ``__lt__``
measures slower).  Events scheduled *at the current tick* skip the heap
entirely and go to a FIFO bucket drained after the heap's events for
that tick — ordering is unchanged because every heap entry at tick T was
pushed before T started and therefore precedes anything scheduled during
T, while bucket entries preserve append order among themselves.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable


class Engine:
    """A minimal, fast event loop over integer time."""

    __slots__ = ("now", "events_processed", "_queue", "_seq", "_bucket")

    def __init__(self) -> None:
        self.now: int = 0
        self.events_processed: int = 0
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._seq: int = 0
        self._bucket: deque[Callable[[], None]] = deque()

    def at(self, time: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute tick ``time`` (>= now)."""
        if time <= self.now:
            if time == self.now:
                self._bucket.append(fn)
                return
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._queue, (time, self._seq, fn))
        self._seq += 1

    def after(self, delay: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError("delay cannot be negative")
        self.at(self.now + delay, fn)

    def run(self, until: int | None = None) -> int:
        """Process events until the queue drains (or tick ``until``).

        Returns the final simulation time.  A simulation that never
        drains its queue would loop forever; pass ``until`` as a guard
        when testing potentially-livelocked configurations.
        """
        queue = self._queue
        bucket = self._bucket
        pop = heapq.heappop
        popleft = bucket.popleft
        processed = 0
        now = self.now
        if until is None or now <= until:
            while True:
                if queue and queue[0][0] == now:
                    fn = pop(queue)[2]
                elif bucket:
                    fn = popleft()
                elif queue:
                    time = queue[0][0]
                    if until is not None and time > until:
                        break
                    now = self.now = time
                    fn = pop(queue)[2]
                else:
                    break
                processed += 1
                fn()
        self.events_processed += processed
        return self.now

    def credit_events(self, count: int) -> None:
        """Fold ``count`` elided events into :attr:`events_processed`.

        The batched replay kernel (:mod:`repro.core.replay`) retires
        micro-events off a private heap instead of this one; crediting
        them here keeps ``events_processed`` — a pinned observable of the
        golden suite and the throughput denominator of the benchmarks —
        byte-identical to per-event replay.  Negative counts back out the
        governor's own real wakeup events, which per-event replay never
        schedules.
        """
        self.events_processed += count

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        return len(self._queue) + len(self._bucket)

    def next_time(self) -> int | None:
        """Tick of the earliest pending event, or ``None`` when drained.

        Lets a caller run the simulation in bounded slices
        (``run(until=next_time() + window)``) without ever spinning on an
        empty window — the basis of the stall watchdog's progress checks.
        """
        if self._bucket:
            return self.now
        if self._queue:
            return self._queue[0][0]
        return None

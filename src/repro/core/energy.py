"""NPU-side energy accounting (extension).

Combines compute energy (per MAC), scratchpad energy (per byte moved
through the SPM), translation energy (per TLB lookup and per walk) and
core leakage into a per-workload estimate, and composes it with the DRAM
breakdown of :mod:`repro.dram.energy` into a system view.  Coefficients
approximate a 7 nm-class accelerator and exist for *relative* studies
(e.g. energy-delay product across sharing levels), not absolute joules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.arch import ArchConfig
from repro.core.simulator import WorkloadResult
from repro.dram.energy import EnergyBreakdown


@dataclass(frozen=True)
class NpuEnergyParams:
    """Per-operation NPU energy coefficients."""

    mac_pj: float = 0.3              #: one 8-bit MAC including register movement
    spm_pj_per_byte: float = 1.2     #: one byte through the scratchpad
    tlb_lookup_pj: float = 2.0       #: one TLB access
    walk_pj: float = 150.0           #: walker state machine per walk (DRAM extra)
    leakage_pw_per_pe: float = 25.0  #: static power per PE, pW

    def __post_init__(self) -> None:
        for name in (
            "mac_pj", "spm_pj_per_byte", "tlb_lookup_pj", "walk_pj",
            "leakage_pw_per_pe",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")


@dataclass(frozen=True)
class NpuEnergy:
    """Per-workload NPU-side energy, in picojoules."""

    compute_pj: float
    spm_pj: float
    translation_pj: float
    leakage_pj: float

    @property
    def total_pj(self) -> float:
        """Sum of all components."""
        return self.compute_pj + self.spm_pj + self.translation_pj + self.leakage_pj

    def as_dict(self) -> dict[str, float]:
        """Breakdown plus total, for reports."""
        return {
            "compute_pj": self.compute_pj,
            "spm_pj": self.spm_pj,
            "translation_pj": self.translation_pj,
            "leakage_pj": self.leakage_pj,
            "total_pj": self.total_pj,
        }


def workload_energy(
    result: WorkloadResult,
    arch: ArchConfig,
    macs: int,
    params: NpuEnergyParams = NpuEnergyParams(),
) -> NpuEnergy:
    """NPU-side energy of one workload's first iteration.

    ``macs`` is the workload's MAC count (``network.total_macs``); the
    SPM moves each DRAM-traffic byte once in and once out of the array
    datapath.
    """
    if macs < 0:
        raise ValueError("MAC count cannot be negative")
    ns = result.cycles * 1000.0 / arch.freq_mhz
    return NpuEnergy(
        compute_pj=macs * params.mac_pj,
        spm_pj=2.0 * result.traffic_bytes * params.spm_pj_per_byte,
        translation_pj=(
            result.tlb_lookups * params.tlb_lookup_pj
            + result.walks * params.walk_pj
        ),
        leakage_pj=ns * arch.num_pes * params.leakage_pw_per_pe * 1e-3,
    )


def energy_delay_product(
    npu: NpuEnergy, dram: EnergyBreakdown, cycles: int
) -> float:
    """EDP in pJ·cycles — the figure of merit for sharing-level studies."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return (npu.total_pj + dram.total_pj) * cycles

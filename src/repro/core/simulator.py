"""The top-level multi-core NPU simulator (mNPUsim's HW simulator).

:class:`MultiCoreNPUSim` wires together everything the paper's Figure 3
describes: per-core compiled frontends (the SW stack's per-tile request
trace, resolved through :mod:`repro.compute.tracecache`), per-core DMA
engines and clock domains, the shared MMU (TLBs + walker pool) and the
shared DRAM controller, then replays the traces through the event-driven
co-simulation and reports per-workload cycle counts, PE utilization and
memory-system statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compute.tracecache import TraceSource, trace_source
from repro.config.system import SystemConfig
from repro.errors import (
    CoreDiagnostics,
    SimulationStallError,
    SimulatorReuseError,
)
from repro.core.clock import ClockDomain
from repro.core.dma import DmaEngine
from repro.core.engine import Engine
from repro.core.replay import TurboDma, plan_replay
from repro.core.npu_core import NpuCore
from repro.core.tracing import TraceLogger
from repro.dram.controller import DramController
from repro.dram.stats import DramStatsView
from repro.mmu.mmu import Mmu
from repro.obs.registry import CounterRegistry
from repro.obs.timeline import TimelineTracer
from repro.mmu.pagetable import PageTable, PhysicalLayout
from repro.mmu.ptw import WalkerPool
from repro.models.layers import Network

#: Default stall-watchdog window in global ticks.  A healthy simulation
#: retires a tile every few thousand ticks even under heavy contention,
#: so a window this wide never fires on legitimate runs yet catches a
#: livelock ~5000x earlier than the runner's 50-billion-tick ceiling.
DEFAULT_STALL_WINDOW_TICKS = 10_000_000


@dataclass(frozen=True)
class WorkloadResult:
    """Outcome of one workload on one core (first iteration)."""

    workload: str
    core: int
    cycles: int                #: first-iteration length in local core cycles
    ticks: int                 #: the same, in global (DRAM) ticks
    pe_utilization: float      #: MACs / (cycles * PEs) over the first iteration
    compute_occupancy: float   #: fraction of cycles the array was busy
    traffic_bytes: int         #: data bytes moved per iteration (reads + writes)
    tlb_lookups: int
    tlb_misses: int
    walks: int
    avg_walk_ticks: float
    avg_walk_queue_ticks: float
    completed_iterations: int
    #: Per-layer activity durations in local cycles (first iteration),
    #: indexed by layer.  Adjacent layers pipeline through the double
    #: buffer, so spans overlap slightly; this matches the artifact's
    #: layer-wise ``execution_cycle`` output.
    layer_cycles: tuple[int, ...] = ()

    @property
    def tlb_miss_rate(self) -> float:
        """TLB misses per lookup."""
        return self.tlb_misses / self.tlb_lookups if self.tlb_lookups else 0.0


@dataclass
class MixResult:
    """Outcome of one co-simulation."""

    workloads: tuple[WorkloadResult, ...]
    dram: DramStatsView
    total_ticks: int
    bandwidth_utilization: dict[int, list[tuple[int, float]]] = field(
        default_factory=dict
    )
    #: Counter-registry snapshot (``repro.obs`` schema) when the
    #: simulation ran with ``observe=True``; ``None`` otherwise.  Not
    #: part of the cached result shards, so old caches stay valid.
    counters: dict | None = None

    def cycles_per_core(self) -> tuple[int, ...]:
        """First-iteration local cycle counts, in core order."""
        return tuple(result.cycles for result in self.workloads)

    # Backwards-friendly alias used in docs/examples.
    @property
    def cycles_per_core_tuple(self) -> tuple[int, ...]:
        return self.cycles_per_core()


class MultiCoreNPUSim:
    """Execution-driven co-simulation of N workloads on an N-core NPU."""

    def __init__(
        self,
        system: SystemConfig,
        networks: list[Network] | tuple[Network, ...],
        *,
        trace_bandwidth: bool = False,
        trace_requests: bool = False,
        stall_window_ticks: int | None = None,
        observe: bool = False,
    ) -> None:
        """``stall_window_ticks`` arms the stall watchdog: if no core
        retires a tile or completes an iteration within that many global
        ticks while events keep firing, :meth:`run` raises a
        :class:`SimulationStallError` with per-core diagnostics instead
        of spinning to the ``max_ticks`` ceiling.  ``None`` (default)
        disables the watchdog; the experiment runner arms it for every
        sweep worker.  The watchdog only slices the event loop at window
        boundaries — event order, and therefore every simulation result,
        is byte-identical with and without it.

        ``observe=True`` turns on the observability layer: every
        component registers its stats into :attr:`registry` (a
        :class:`CounterRegistry`), typed spans stream into
        :attr:`timeline` (a :class:`TimelineTracer`, exportable as a
        Perfetto-loadable Chrome trace), and the returned
        :class:`MixResult` carries a counter snapshot.  Observation is
        pure recording — it schedules no events and mutates no simulated
        state — so results are byte-identical with it on or off; when
        off (the default) the instrumentation costs nothing.
        """
        if len(networks) != system.num_cores:
            raise ValueError(
                f"{system.num_cores} cores need {system.num_cores} workloads, "
                f"got {len(networks)}"
            )
        self.system = system
        self.networks = tuple(networks)
        self.engine = Engine()
        if stall_window_ticks is not None and stall_window_ticks <= 0:
            stall_window_ticks = None
        self.stall_window_ticks = stall_window_ticks
        cores = range(system.num_cores)

        layout = PhysicalLayout(system.dram.capacity_bytes, system.num_cores)
        self.page_tables = {
            core: PageTable(
                core,
                system.npumem[core].page_bytes,
                system.npumem[core].walk_levels,
                layout,
            )
            for core in cores
        }

        txn_bytes = {arch.dram_transaction_bytes for arch in system.arch}
        if len(txn_bytes) != 1:
            raise ValueError("heterogeneous DRAM transaction sizes are not supported")
        self._txn_bytes = txn_bytes.pop()
        trace_window = system.misc.trace_window_cycles if trace_bandwidth else None
        self.tracer = TraceLogger() if trace_requests else None
        #: Observability (``observe=True``): the counter registry and the
        #: span timeline; ``None`` when off, so hot paths pay nothing.
        self.registry: CounterRegistry | None = None
        self.timeline: TimelineTracer | None = None
        logger: TraceLogger | TimelineTracer | None = self.tracer
        if observe:
            self.registry = CounterRegistry()
            self.timeline = TimelineTracer(registry=self.registry)
            if self.tracer is not None:
                # One span stream feeds both the Perfetto exporter and
                # the artifact-style text logs.
                self.timeline.attach(self.tracer)
            logger = self.timeline
        walk_traffic = any(cfg.translation_enabled for cfg in system.npumem) and all(
            cfg.walk_in_dram for cfg in system.npumem
        )
        self.dram = DramController(
            system.dram,
            self.engine,
            transaction_bytes=self._txn_bytes,
            channels_per_core={core: system.channels_for_core(core) for core in cores},
            trace_window_ticks=trace_window,
            logger=logger,
            expect_walks=walk_traffic,
        )
        #: The request logger every component records into: the timeline
        #: when observing, else the plain TraceLogger (or ``None``).
        self._logger = logger

        self.clocks = {
            core: ClockDomain(system.arch[core].freq_mhz, system.dram.freq_mhz)
            for core in cores
        }
        self.walkers = self._build_walker_pool()
        self.mmu = Mmu(
            {core: system.npumem[core] for core in cores},
            self.page_tables,
            self.walkers,
            shared_tlb=system.share_tlb and system.num_cores > 1,
            logger=self._logger,
        )

        # The compile phase: each core's frontend is resolved through the
        # process-level trace cache (a CompiledTrace on hit/compile, a
        # live stream-and-discard RequestGenerator when disabled or over
        # budget) before any event executes, so run() is pure replay.
        self.frontends: dict[int, TraceSource] = {
            core: trace_source(self.networks[core], system.arch[core])
            for core in cores
        }
        #: Backwards-compatible alias for :attr:`frontends`.
        self.reqgens = self.frontends
        #: Static per-core batching decisions for the replay kernel
        #: (``misc.replay_mode``); ineligible cores fall back to the
        #: per-event :class:`DmaEngine`, which is byte-identical.
        self.replay_plan = plan_replay(
            system,
            logging_active=logger is not None or trace_window is not None,
        )
        eligible = set(self.replay_plan.eligible_cores())
        self.dmas = {}
        for core in cores:
            args = (self.engine, core, self.mmu, self.dram, self.clocks[core])
            kwargs = dict(
                max_outstanding=system.dram.queue_depth,
                issue_per_cycle=system.arch[core].dma_issue_per_cycle,
                transaction_bytes=self._txn_bytes,
            )
            if core in eligible:
                self.dmas[core] = TurboDma(
                    *args,
                    channels={
                        index: self.dram.channels[index]
                        for index in system.channels_for_core(core)
                    },
                    page_table=self.page_tables[core],
                    fast_forward=self.replay_plan.mode == "auto",
                    **kwargs,
                )
            else:
                self.dmas[core] = DmaEngine(*args, **kwargs)
        self.cores = {
            core: NpuCore(
                self.engine,
                core,
                self.frontends[core],
                self.dmas[core],
                self.clocks[core],
                self._iteration_done,
                timeline=self.timeline,
            )
            for core in cores
        }
        if self.registry is not None:
            self._register_counters(self.registry)
        self._ran = False
        #: Core -> last global tick at which it retired work (watchdog).
        self._last_progress: dict[int, int] = {core: 0 for core in cores}

    def _register_counters(self, registry: CounterRegistry) -> None:
        """Bind every component's stats into the counter registry.

        Purely pull-based: the registry holds read callables over the
        stat objects the components already maintain, evaluated only at
        snapshot time.
        """
        self.dram.register_counters(registry)
        self.mmu.register_counters(registry)
        self.walkers.register_counters(registry)
        for dma in self.dmas.values():
            dma.register_counters(registry)
        for core in self.cores.values():
            core.register_counters(registry)
        registry.bind_gauge("engine.now", lambda: self.engine.now)
        registry.bind_counter(
            "engine.events_processed", lambda: self.engine.events_processed
        )
        # Replay-kernel observability: eligibility per core plus governor
        # outcomes.  The schema is uniform across cores — per-event cores
        # report zeros (TurboDma instances additionally bind the same
        # paths from live ReplayStats via their register_counters).
        for decision in self.replay_plan.decisions:
            prefix = f"replay.core{decision.core}"
            registry.bind_gauge(
                f"{prefix}.eligible", lambda d=decision: int(d.eligible)
            )
            if not isinstance(self.dmas[decision.core], TurboDma):
                registry.bind_many(
                    prefix,
                    {
                        "batched_events": lambda: 0,
                        "wakeup_events": lambda: 0,
                        "fast_forwards": lambda: 0,
                        "fast_forwarded_ticks": lambda: 0,
                    },
                )

    def _build_walker_pool(self) -> WalkerPool:
        system = self.system
        cores = range(system.num_cores)
        walk_in_dram = {cfg.walk_in_dram for cfg in system.npumem}
        if len(walk_in_dram) != 1:
            raise ValueError("walk_in_dram must be uniform across cores")
        capacity = system.total_ptw
        if system.share_ptw:
            upper = system.misc.ptw_upper_bound or capacity
            max_per_core = {core: upper for core in cores}
            reserved = {core: system.misc.ptw_lower_bound for core in cores}
        else:
            assert system.ptw_assignment is not None
            max_per_core = {core: system.ptw_assignment[core] for core in cores}
            reserved = dict(max_per_core)
        fixed = None
        dram = self.dram
        if not walk_in_dram.pop():
            dram = None
            fixed = {
                core: ClockDomain(
                    system.arch[core].freq_mhz, system.dram.freq_mhz
                ).to_global(system.npumem[core].walk_level_latency_cycles)
                for core in cores
            }
        return WalkerPool(
            self.engine,
            capacity,
            self.page_tables,
            dram=dram,
            fixed_level_ticks=fixed,
            max_per_core=max_per_core,
            reserved_per_core=reserved,
            pwc_entries={core: system.npumem[core].pwc_entries for core in cores},
            logger=self._logger,
        )

    # ------------------------------------------------------------------ #

    def _iteration_done(self, core_id: int) -> None:
        misc = self.system.misc
        if misc.iterations > 0:
            if self.cores[core_id].stats.completed_iterations >= misc.iterations:
                self.cores[core_id].halt()
            return
        # iterations == 0: co-runners loop until everyone finished once.
        if all(
            core.stats.first_completion_tick is not None
            for core in self.cores.values()
        ):
            for core in self.cores.values():
                core.halt()

    def _progress_marker(self) -> tuple[tuple[int, int], ...]:
        """Per-core retired-work counters; any change is forward progress."""
        return tuple(
            (core.stats.tiles_computed, core.stats.completed_iterations)
            for core in self.cores.values()
        )

    def diagnostics(self) -> list[CoreDiagnostics]:
        """Per-core progress/queue snapshot (stall reports, debugging)."""
        return [
            CoreDiagnostics(
                core=core_id,
                workload=self.networks[core_id].name,
                tiles_computed=core.stats.tiles_computed,
                completed_iterations=core.stats.completed_iterations,
                outstanding_dma=self.dmas[core_id].outstanding,
                queued_transfers=self.dmas[core_id].queued_transfers,
                outstanding_writes=core.outstanding_writes,
                walks_inflight=self.walkers.inflight[core_id],
                walks_queued=self.walkers.queued_for(core_id),
                last_progress_tick=self._last_progress.get(core_id, 0),
            )
            for core_id, core in sorted(self.cores.items())
        ]

    def _stall_error(self, message: str) -> SimulationStallError:
        return SimulationStallError(
            message,
            diagnostics=self.diagnostics(),
            total_ticks=self.engine.now,
            events_processed=self.engine.events_processed,
            dram_queue_depths=self.dram.queue_depths(),
        )

    def _run_watched(self, max_ticks: int | None, window: int) -> None:
        """Drive the engine in ``window``-sized slices with progress checks.

        Equivalent to one ``engine.run(until=max_ticks)`` call — slicing
        never reorders events — but between slices the watchdog compares
        retired-work counters: a full window of event activity with no
        core retiring anything is a livelock, reported immediately with
        diagnostics instead of after tens of billions of wasted ticks.
        """
        engine = self.engine
        marker = self._progress_marker()
        last_change = engine.now
        while True:
            next_time = engine.next_time()
            if next_time is None:
                return
            if max_ticks is not None and next_time > max_ticks:
                return
            horizon = next_time + window
            if max_ticks is not None:
                horizon = min(horizon, max_ticks)
            engine.run(until=horizon)
            current = self._progress_marker()
            if current != marker:
                now = engine.now
                for core_id, (was, is_now) in enumerate(zip(marker, current)):
                    if was != is_now:
                        self._last_progress[core_id] = now
                marker = current
                last_change = now
            elif engine.now - last_change >= window:
                raise self._stall_error(
                    f"no core retired work for {engine.now - last_change} "
                    f"ticks (watchdog window {window}); the simulation is "
                    "livelocked"
                )

    def run(self, max_ticks: int | None = None) -> MixResult:
        """Run the co-simulation to completion and collect results."""
        if self._ran:
            raise SimulatorReuseError(
                "a simulator instance runs once; build a new one"
            )
        self._ran = True
        misc = self.system.misc
        for core_id, core in self.cores.items():
            core.start(misc.start_cycle + core_id * misc.start_stagger_cycles)
        if self.stall_window_ticks is None:
            self.engine.run(until=max_ticks)
        else:
            self._run_watched(max_ticks, self.stall_window_ticks)
        results = []
        for core_id, core in sorted(self.cores.items()):
            stats = core.stats
            if stats.first_completion_tick is None:
                raise self._stall_error(
                    f"core {core_id} never completed an iteration "
                    f"(simulated {self.engine.now} ticks); raise max_ticks or "
                    "check the configuration"
                )
            ticks = stats.first_completion_tick - stats.start_tick
            clock = self.clocks[core_id]
            cycles = clock.to_local(ticks)
            frontend = self.frontends[core_id]
            network = self.networks[core_id]
            first_iter_macs = network.total_macs
            busy_local = min(stats.compute_busy_local, cycles)
            walk_stats = self.walkers.stats[core_id]
            mmu_stats = self.mmu.stats[core_id]
            summary = frontend.summary()
            layer_cycles = tuple(
                clock.to_local(end - begin)
                for _, (begin, end) in sorted(stats.layer_spans.items())
            )
            results.append(
                WorkloadResult(
                    workload=network.name,
                    core=core_id,
                    cycles=cycles,
                    ticks=ticks,
                    pe_utilization=first_iter_macs
                    / (cycles * self.system.arch[core_id].num_pes),
                    compute_occupancy=busy_local / cycles if cycles else 0.0,
                    traffic_bytes=int(summary["traffic_bytes"]),
                    tlb_lookups=mmu_stats.lookups,
                    tlb_misses=mmu_stats.misses,
                    walks=walk_stats.walks,
                    avg_walk_ticks=walk_stats.avg_walk_ticks(),
                    avg_walk_queue_ticks=walk_stats.avg_queue_ticks(),
                    completed_iterations=stats.completed_iterations,
                    layer_cycles=layer_cycles,
                )
            )
        utilization: dict[int, list[tuple[int, float]]] = {}
        if self.dram.traces is not None:
            for core_id, trace in self.dram.traces.items():
                peak = self.dram.peak_bytes_per_tick(None)
                utilization[core_id] = trace.utilization_series(peak)
        counters = None
        if self.timeline is not None:
            # Layer activity windows are accumulated in CoreStats during
            # the run; emit them as spans once, now that they are final.
            for core_id, core in sorted(self.cores.items()):
                layers = self.networks[core_id].layers
                for index, (begin, end) in sorted(core.stats.layer_spans.items()):
                    name = layers[index].name if index < len(layers) else f"L{index}"
                    self.timeline.log_layer(begin, end, core_id, index, name)
        if self.registry is not None:
            counters = self.registry.snapshot()
        return MixResult(
            workloads=tuple(results),
            dram=self.dram.stats,
            total_ticks=self.engine.now,
            bandwidth_utilization=utilization,
            counters=counters,
        )

"""Performance and fairness metrics used throughout the evaluation.

The paper normalizes every configuration to ``Ideal`` (each workload
monopolizing all shareable resources), reports the *geometric mean* of
per-workload speedups for a mix, and measures fairness with Van
Craeynest et al.'s metric (Equation 1)::

    Fairness_i = 1 - sigma_i / mu_i

where ``mu_i``/``sigma_i`` are the mean and standard deviation of the
*slowdowns* (inverse speedups) of the workloads in mix ``i``.  Fairness
of 1 means perfectly balanced slowdowns.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def speedup(ideal_cycles: float, observed_cycles: float) -> float:
    """Relative speedup vs the Ideal run (< 1 means slower than Ideal)."""
    if ideal_cycles <= 0 or observed_cycles <= 0:
        raise ValueError("cycle counts must be positive")
    return ideal_cycles / observed_cycles


def slowdown(ideal_cycles: float, observed_cycles: float) -> float:
    """Inverse of :func:`speedup`."""
    return observed_cycles / ideal_cycles if ideal_cycles > 0 else math.inf


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ValueError("geomean of nothing")
    if any(value <= 0 for value in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def fairness(slowdowns: Sequence[float]) -> float:
    """Equation 1: ``1 - sigma/mu`` over a mix's slowdowns.

    A single-workload "mix" is perfectly fair by definition.
    """
    if not slowdowns:
        raise ValueError("fairness of an empty mix")
    if any(value <= 0 for value in slowdowns):
        raise ValueError("slowdowns must be positive")
    if len(slowdowns) == 1:
        return 1.0
    mu = sum(slowdowns) / len(slowdowns)
    variance = sum((value - mu) ** 2 for value in slowdowns) / len(slowdowns)
    return 1.0 - math.sqrt(variance) / mu


def cdf_points(values: Sequence[float]) -> list[tuple[float, float]]:
    """``(value, cumulative_fraction)`` pairs for plotting a CDF."""
    if not values:
        return []
    ordered = sorted(values)
    count = len(ordered)
    return [(value, (index + 1) / count) for index, value in enumerate(ordered)]


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile (``fraction`` in [0, 1])."""
    if not values:
        raise ValueError("percentile of nothing")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must lie in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def box_stats(values: Sequence[float]) -> dict[str, float]:
    """Min/Q1/median/Q3/max summary used by Figure 8's box plot."""
    return {
        "min": min(values),
        "q1": percentile(values, 0.25),
        "median": percentile(values, 0.5),
        "q3": percentile(values, 0.75),
        "max": max(values),
    }

"""Resource-sharing levels studied by the paper (section 4.1.3).

The paper defines five configurations for the three shareable resources —
DRAM bandwidth (D), page-table walkers (W) and TLB capacity (T):

* ``IDEAL``  — each workload monopolizes *all* shareable resources (run
  alone on the full system); the normalization baseline.
* ``STATIC`` — every resource split statically and equally across cores;
  no dynamic contention.
* ``D``      — DRAM bandwidth shared dynamically, W and T still private.
* ``DW``     — DRAM and walkers shared, TLB private.
* ``DWT``    — everything shared (first-come-first-served).
"""

from __future__ import annotations

from enum import Enum


class SharingLevel(Enum):
    """Which of (DRAM, PTW, TLB) are dynamically shared between cores."""

    IDEAL = "Ideal"
    STATIC = "Static"
    D = "+D"
    DW = "+DW"
    DWT = "+DWT"

    @property
    def share_dram(self) -> bool:
        """True when DRAM channels are shared dynamically."""
        return self in (SharingLevel.D, SharingLevel.DW, SharingLevel.DWT)

    @property
    def share_ptw(self) -> bool:
        """True when the page-table walker pool is shared dynamically."""
        return self in (SharingLevel.DW, SharingLevel.DWT)

    @property
    def share_tlb(self) -> bool:
        """True when TLB capacity is shared."""
        return self is SharingLevel.DWT

    @property
    def is_contended(self) -> bool:
        """True when the level requires an actual multi-core co-simulation.

        ``IDEAL`` and ``STATIC`` have no dynamic inter-core contention, so
        they can be computed from single-core runs with the corresponding
        resource slice (full system for Ideal, a 1/N slice for Static).
        """
        return self.share_dram

    @property
    def label(self) -> str:
        """The paper's display label (e.g. ``"+DW"``)."""
        return self.value


#: The four levels the paper sweeps in Figures 4–7, in presentation order.
SWEEP_LEVELS = (SharingLevel.STATIC, SharingLevel.D, SharingLevel.DW, SharingLevel.DWT)

#: The dynamically-contended levels that need a real multi-core run.
CONTENDED_LEVELS = (SharingLevel.D, SharingLevel.DW, SharingLevel.DWT)

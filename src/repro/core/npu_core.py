"""One NPU core: the double-buffered tile pipeline driving DMA + array.

Implements the pipelining of paper Figure 2(a): while tile *i* computes
on the systolic array, the DMA prefetches tile *i+1* into the free SPM
half, and finished output tiles write back concurrently.  Compute of a
tile starts when (a) its loads have landed and (b) the array is free.
This is what produces the characteristic bursts of memory requests at
tile boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

from repro.compute.requestgen import TileTraffic
from repro.compute.tracecache import TraceSource
from repro.core.clock import ClockDomain
from repro.core.dma import DmaEngine
from repro.core.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import CounterRegistry
    from repro.obs.timeline import TimelineTracer


@dataclass
class CoreStats:
    """Progress counters of one core."""

    tiles_computed: int = 0
    compute_busy_local: int = 0
    macs_done: int = 0
    completed_iterations: int = 0
    start_tick: int = 0
    first_completion_tick: int | None = None
    iteration_ticks: list[int] = field(default_factory=list)
    #: First-iteration per-layer activity spans, in global ticks:
    #: layer index -> (first tick any of its traffic/compute was active,
    #: tick its last compute/write completed).  This backs the artifact's
    #: layer-wise ``execution_cycle`` output files.
    layer_spans: dict[int, tuple[int, int]] = field(default_factory=dict)


class NpuCore:
    """Tile-pipeline state machine for one core's workload."""

    def __init__(
        self,
        engine: Engine,
        core_id: int,
        trace: TraceSource,
        dma: DmaEngine,
        clock: ClockDomain,
        on_iteration_complete: Callable[[int], None],
        *,
        timeline: "TimelineTracer | None" = None,
    ) -> None:
        """``trace`` is the replay-phase frontend: either a
        :class:`~repro.compute.tracecache.CompiledTrace` (the cached
        compile artifact) or a live stream-and-discard
        :class:`~repro.compute.requestgen.RequestGenerator`; the two are
        observationally identical.

        ``timeline`` (observability) records load/compute/write tile
        spans.  Recording only observes ticks the pipeline already
        reaches — it schedules nothing and mutates no pipeline state, so
        execution is identical with or without it; with ``timeline=None``
        the guards reduce to one predictable never-taken branch per hook.
        """
        self.engine = engine
        self.core_id = core_id
        self.trace = trace
        self.dma = dma
        self.clock = clock
        self.on_iteration_complete = on_iteration_complete
        self.stats = CoreStats()
        self._timeline = timeline
        # Tile-phase span starts: at most one load and one compute are in
        # flight at a time, so a single tick each suffices; write-back
        # starts ride in the completion closure (several may overlap).
        self._load_start_tick = 0
        self._compute_start_tick = 0
        self._tiles: Iterator[TileTraffic] | None = None
        self._loading: TileTraffic | None = None
        self._loaded: TileTraffic | None = None
        self._computing: TileTraffic | None = None
        self._outstanding_writes = 0
        self._exhausted = False
        self._halted = False
        self._started = False

    # ------------------------------------------------------------------ #

    def start(self, at_tick: int) -> None:
        """Begin executing the workload at global tick ``at_tick``."""
        if self._started:
            raise RuntimeError("core already started")
        self._started = True
        self.stats.start_tick = at_tick
        self.engine.at(at_tick, self._begin_iteration)

    def halt(self) -> None:
        """Stop fetching new work; in-flight tiles drain naturally."""
        self._halted = True

    @property
    def reqgen(self) -> TraceSource:
        """Backwards-compatible alias for the core's trace source."""
        return self.trace

    def register_counters(self, registry: "CounterRegistry") -> None:
        """Expose this core's progress stats to the registry (pull-based)."""
        stats = self.stats
        registry.bind_many(
            f"compute.core{self.core_id}",
            {
                "tiles_computed": lambda: stats.tiles_computed,
                "compute_busy_local": lambda: stats.compute_busy_local,
                "macs_done": lambda: stats.macs_done,
                "completed_iterations": lambda: stats.completed_iterations,
            },
        )
        registry.bind_gauge(
            f"compute.core{self.core_id}.outstanding_writes",
            lambda: self._outstanding_writes,
        )

    @property
    def outstanding_writes(self) -> int:
        """Write-back transfers still draining to memory."""
        return self._outstanding_writes

    @property
    def idle(self) -> bool:
        """True when the core has no work in any pipeline stage."""
        return (
            self._loading is None
            and self._loaded is None
            and self._computing is None
            and self._outstanding_writes == 0
        )

    # ------------------------------------------------------------------ #

    def _begin_iteration(self) -> None:
        if self._halted:
            return
        self._tiles = self.trace.all_tiles()
        self._exhausted = False
        self._fetch_next()

    def _fetch_next(self) -> None:
        if self._exhausted or self._loading is not None or self._loaded is not None:
            return
        assert self._tiles is not None
        tile = next(self._tiles, None)
        if tile is None:
            self._exhausted = True
            self._check_iteration_end()
            return
        self._loading = tile
        self._touch_layer(tile.layer_index)
        if self._timeline is not None:
            self._load_start_tick = self.engine.now
        self.dma.transfer(tile.reads, lambda t=tile: self._load_done(t))

    def _load_done(self, tile: TileTraffic) -> None:
        assert self._loading is tile
        self._loading = None
        self._loaded = tile
        if self._timeline is not None:
            self._timeline.log_tile(
                self._load_start_tick,
                self.engine.now,
                self.core_id,
                tile.layer_index,
                "load",
            )
        self._maybe_compute()

    def _maybe_compute(self) -> None:
        if self._computing is not None or self._loaded is None:
            return
        tile = self._loaded
        self._loaded = None
        self._computing = tile
        # The SPM half this tile vacated on compute-start now holds the
        # next tile's load: double buffering.
        self._fetch_next()
        ticks = max(1, self.clock.to_global(tile.compute.cycles))
        if self._timeline is not None:
            self._compute_start_tick = self.engine.now
        self.engine.after(ticks, lambda t=tile: self._compute_done(t))

    def _compute_done(self, tile: TileTraffic) -> None:
        assert self._computing is tile
        self._computing = None
        self.stats.tiles_computed += 1
        self.stats.compute_busy_local += tile.compute.cycles
        self.stats.macs_done += tile.compute.macs
        self._touch_layer(tile.layer_index)
        if self._timeline is not None:
            self._timeline.log_tile(
                self._compute_start_tick,
                self.engine.now,
                self.core_id,
                tile.layer_index,
                "compute",
            )
        if tile.writes:
            self._outstanding_writes += 1
            if self._timeline is None:
                self.dma.transfer(
                    tile.writes,
                    lambda layer=tile.layer_index: self._write_done(layer),
                )
            else:
                self.dma.transfer(
                    tile.writes,
                    lambda layer=tile.layer_index, start=self.engine.now: (
                        self._write_done_observed(layer, start)
                    ),
                )
        self._maybe_compute()
        self._check_iteration_end()

    def _write_done(self, layer_index: int) -> None:
        self._outstanding_writes -= 1
        self._touch_layer(layer_index)
        self._check_iteration_end()

    def _write_done_observed(self, layer_index: int, start_tick: int) -> None:
        assert self._timeline is not None
        self._timeline.log_tile(
            start_tick, self.engine.now, self.core_id, layer_index, "write"
        )
        self._write_done(layer_index)

    def _touch_layer(self, layer_index: int) -> None:
        """Extend the first-iteration activity span of a layer to now."""
        if self.stats.completed_iterations > 0:
            return
        now = self.engine.now
        span = self.stats.layer_spans.get(layer_index)
        if span is None:
            self.stats.layer_spans[layer_index] = (now, now)
        else:
            self.stats.layer_spans[layer_index] = (span[0], max(span[1], now))

    def _check_iteration_end(self) -> None:
        if not self._exhausted or not self.idle:
            return
        now = self.engine.now
        self.stats.completed_iterations += 1
        self.stats.iteration_ticks.append(now)
        if self.stats.first_completion_tick is None:
            self.stats.first_completion_tick = now
        self.on_iteration_complete(self.core_id)
        if not self._halted:
            self._begin_iteration()

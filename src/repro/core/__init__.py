"""The multi-core NPU simulator core: engine, cores, sharing, metrics."""

from repro.core.engine import Engine
from repro.core.clock import ClockDomain
from repro.core.sharing import SharingLevel, SWEEP_LEVELS, CONTENDED_LEVELS
from repro.core.metrics import fairness, geomean, slowdown, speedup

__all__ = [
    "Engine",
    "ClockDomain",
    "SharingLevel",
    "SWEEP_LEVELS",
    "CONTENDED_LEVELS",
    "fairness",
    "geomean",
    "slowdown",
    "speedup",
]

"""Batched replay kernel: vectorized exclusive-ownership DMA/DRAM timing.

Per-event replay spends ~95% of a warm sweep popping one engine event
per DMA pump, per FR-FCFS kick and per burst completion.  This module
retires the same micro-events off a *private* per-core heap — the
"governor" — whenever a core holds **exclusive** ownership of every
resource those events can touch, generalizing the PR 2 credit-chain
argument from one channel drain to the whole DMA→controller→channel
pipeline.

Exclusivity is decided statically per core by :func:`plan_replay`:

* translation is off (``mmu.direct_paddr`` binds the page table
  directly, so no TLB/PTW state is shared and no walk traffic exists);
* the core's DRAM channels are disjoint from every other core's
  (``share_dram=False`` partitions, or a single core) — partitioned
  address decomposition then guarantees *no* foreign request, including
  another core's page-table walks, can ever reach an owned channel;
* no request logger or bandwidth trace observes the memory system
  (observation callbacks must fire at real engine time);
* ``misc.iterations > 0`` (the ``iterations == 0`` co-run rule reads
  *other* cores' completion state inside ``on_complete``, making
  same-tick cross-core ordering significant).

Under those conditions the owned subsystem interacts with the rest of
the simulation through exactly two channels: the core calling
``transfer()`` (always at real ``engine.now``) and the governor firing
``on_complete`` (pinned to real ``engine.now`` below).  Everything in
between — pump, kick, refresh, per-burst completion bookkeeping —
mutates owned state only, so the governor may retire it at *virtual*
times ahead of the engine clock, provided three rules hold:

1. **Horizon.**  Never process a micro-event beyond the engine's next
   real event time: a real event may call ``transfer()``, and its
   arrival order relative to pending micro-events is observable (a
   transfer appended before the active one exhausts issues earlier).
   Processing up to *and including* the horizon tick is safe: the only
   same-tick interaction, ``transfer()``, is confluent with every
   non-delivery micro-event (verified case-by-case: the resulting pump
   schedule and stats are identical in either order).
2. **Real-time delivery.**  ``on_complete`` runs core code that reads
   ``engine.now`` and schedules events; it must fire when the engine
   clock *equals* the micro-event's time.  The governor pauses on any
   delivery-bearing micro-event ahead of the clock and schedules one
   real wakeup at exactly that tick (~one real event per transfer).
3. **Event crediting.**  Every micro-event retired virtually credits
   ``engine.events_processed`` by one; every real wakeup debits one.
   The pinned event count is byte-identical to per-event replay.

The per-event push *sequence* is replicated exactly — including the
credit-chain pops, the refresh catch-up loop and the stall/exhaustion
branches of the DMA pump — by calling the real ``Channel._issue`` /
``_select_index`` on the real channel objects and mirroring the
surrounding scheduling logic onto the private heap.  Request expansion,
translation (order-safe: transfers translate whole at ``transfer()``
time, and FIFO issue makes that the same first-touch order the lazy
per-txn path produces) and address decomposition are vectorized with
numpy per transfer.

**Analytic fast-forward** (``auto`` mode): bandwidth-starved streaming
reaches a *saturated* steady state — ``max_outstanding`` transactions in
flight, the data bus booked exactly ``(max_outstanding - 1)`` bursts
ahead, and a rigid four-micro-event cycle per transaction every
``burst`` ticks::

    COMPLETE @ t          frees one slot, restarts the pump
    PUMP     @ t          issues the next transaction, schedules a kick
    KICK     @ t          sole queued request wins FR-FCFS; the bus (not
                          bank prep) bounds its data start; queue empties
                          before any batching/refresh-lookahead branch
    PUMP     @ t+gap      immediately stalls on the outstanding cap

``_bulk`` recognizes that state exactly (heap = a pure completion ladder
at ``t + burst·j``, queue/chain empty, bus at ``t + (M-1)·burst``) and
replays k cycles in one tight pass over the precomputed request stream,
evolving per-bank row/act/col-ready state with the same formulas as
``Channel._issue`` and *verifying per transaction* that the bus bound
held (``col_ready + tCL <= bus``) — the instant it would not, the block
stops and ordinary micro-event replay resumes.  The only in-cycle read
of ``next_refresh_at`` is the kick-entry comparison, so capping the
block at the refresh tick is exact, not heuristic.  Skipped cycles
credit their four events each; the advance is closed-form but the
result — stats, state, event count — is byte-identical by construction,
and the differential harness holds it to that.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.compute.requestgen import Run
from repro.core.dma import DmaEngine
from repro.dram.channel import Channel, DramRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.config.system import SystemConfig
    from repro.mmu.pagetable import PageTable
    from repro.obs.registry import CounterRegistry

#: The replay-mode axis: ``event`` is the per-event baseline, ``batched``
#: retires micro-events off the private heap, ``auto`` adds the analytic
#: fast-forward on top of batching.
REPLAY_MODES = ("event", "batched", "auto")

#: Default replay mode; descriptors/configs omit the field at this value
#: so every artifact written before the axis existed stays byte-identical.
DEFAULT_REPLAY_MODE = "event"

# Private-heap micro-event kinds (heap entries sort by (time, seq, kind)).
_PUMP = 0
_KICK = 1
_COMPLETE = 2


def validate_replay_mode(mode: str) -> str:
    """Return ``mode`` or raise ``ValueError`` for an unknown one."""
    if mode not in REPLAY_MODES:
        raise ValueError(
            f"unknown replay mode {mode!r}; choose from {', '.join(REPLAY_MODES)}"
        )
    return mode


@dataclass(frozen=True)
class CoreDecision:
    """Why one core is (or is not) driven by the batched governor."""

    core: int
    eligible: bool
    reason: str


@dataclass(frozen=True)
class ReplayPlan:
    """Static per-core batching decisions for one simulation."""

    mode: str
    decisions: tuple[CoreDecision, ...]

    def eligible_cores(self) -> tuple[int, ...]:
        return tuple(d.core for d in self.decisions if d.eligible)


def plan_replay(system: "SystemConfig", *, logging_active: bool = False) -> ReplayPlan:
    """Decide, per core, whether the batched governor may drive replay.

    Purely static: every condition is a property of the system config
    (plus whether any request logger / bandwidth trace is attached).
    A core that fails any condition falls back to per-event replay —
    which is always byte-identical, so ``batched``/``auto`` are safe to
    request unconditionally.
    """
    mode = validate_replay_mode(system.misc.replay_mode)
    cores = range(system.num_cores)
    channel_sets = {core: frozenset(system.channels_for_core(core)) for core in cores}
    decisions = []
    for core in cores:
        reason = None
        if mode == "event":
            reason = "replay mode is event"
        elif logging_active:
            reason = "request logging / bandwidth tracing active"
        elif system.npumem[core].translation_enabled:
            reason = "translation enabled (shared TLB/PTW state)"
        elif system.misc.iterations <= 0:
            reason = "iterations=0 couples completion across cores"
        else:
            mine = channel_sets[core]
            for other in cores:
                if other != core and channel_sets[other] & mine:
                    reason = f"shares DRAM channels with core {other}"
                    break
        if reason is None:
            decisions.append(
                CoreDecision(core, True, "exclusive channels, translation off")
            )
        else:
            decisions.append(CoreDecision(core, False, reason))
    return ReplayPlan(mode=mode, decisions=tuple(decisions))


@dataclass
class ReplayStats:
    """Observable outcomes of one core's governor."""

    batched_events: int = 0      #: micro-events retired off the private heap
    wakeup_events: int = 0       #: real engine events the governor scheduled
    fast_forwards: int = 0       #: analytic warps applied
    fast_forwarded_ticks: int = 0  #: virtual ticks skipped by warps


class _VTransfer:
    """One materialized transfer: vectorized streams plus issue cursor."""

    __slots__ = (
        "addr", "write", "chan", "bank", "row",
        "chan_np", "bank_np", "row_np", "write_np",
        "count", "pos", "outstanding", "issued_all", "on_complete",
    )

    def __init__(self, on_complete: Callable[[], None]):
        self.count = 0
        self.pos = 0
        self.outstanding = 0
        self.issued_all = False
        self.on_complete = on_complete


class TurboDma(DmaEngine):
    """A :class:`DmaEngine` whose pump/kick/completion micro-events run
    on a private heap at virtual times (see module docstring).

    Reuses the real channel objects' queues, banks, bus and stats, and
    the real ``_issue``/``_select_index`` timing code; only the event
    *scheduling* around them is mirrored privately.
    """

    def __init__(
        self,
        *args,
        channels: dict[int, Channel],
        page_table: "PageTable",
        fast_forward: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if self._paddr is None:  # pragma: no cover - guarded by plan_replay
            raise ValueError("TurboDma requires translation off")
        self._channels = channels
        self._owned = [channels[index] for index in sorted(channels)]
        self._table = page_table
        self._page_bytes = page_table.page_bytes
        self._heap: list[tuple[int, int, int, object]] = []
        self._lseq = 0
        self._advancing = False
        self._wake_at: int | None = None
        self._wakeup_cb = self._wakeup
        self.rstats = ReplayStats()
        # Vectorized decomposition constants (mirror of the controller's
        # compiled per-core decomposer).
        dram = self.dram
        self._allowed = np.asarray(dram.channels_per_core[self.core], dtype=np.int64)
        self._map_order = dram.cfg.mapping.order
        self._cols_per_row = dram._cols_per_row
        # Fast-forward machinery (``auto`` only): closed-form replay of
        # saturated streaming cycles; ``_bulk_off_until`` throttles
        # re-probing after a failed ladder scan.
        self._ff_on = fast_forward
        self._delivered = False
        self._bulk_off_until = -1

    # ------------------------------------------------------------------ #
    # Materialization: expand + translate + decompose, vectorized.

    def _materialize(
        self, runs: tuple[Run, ...], on_complete: Callable[[], None]
    ) -> _VTransfer:
        txn = self.transaction_bytes
        # Expand runs without a per-run Python loop (tile streams can
        # carry thousands of short runs): global arange minus each run's
        # start offset gives the within-run index.
        nruns = len(runs)
        counts = np.fromiter((run.count for run in runs), np.int64, count=nruns)
        starts = np.fromiter((run.addr for run in runs), np.int64, count=nruns)
        flags = np.fromiter((run.write for run in runs), bool, count=nruns)
        total = int(counts.sum())
        ends = np.cumsum(counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
        vaddr = np.repeat(starts, counts) + txn * within
        write = np.repeat(flags, counts)
        # Translation: whole-transfer-eager is the same first-touch order
        # as the lazy per-issue path because issue is strictly FIFO across
        # transfers and each transfer is fully translated at call time.
        page = self._page_bytes
        vpn = vaddr // page
        offset = vaddr - vpn * page
        uniq, first, inverse = np.unique(vpn, return_index=True, return_inverse=True)
        frames = np.empty(len(uniq), dtype=np.int64)
        translate = self._table.translate
        for k in np.argsort(first, kind="stable").tolist():
            frames[k] = translate(int(uniq[k]))
        paddr = frames[inverse] * page + offset
        # Decomposition: vectorized replica of the controller's compiled
        # field-peeling decomposer for this core's allowed channels.
        value = paddr // txn
        allowed = self._allowed
        channel = np.full(total, allowed[0], dtype=np.int64)
        bank_group = np.zeros(total, dtype=np.int64)
        bank_in_group = np.zeros(total, dtype=np.int64)
        row = np.zeros(total, dtype=np.int64)
        cfg = self.dram.cfg
        for token in self._map_order:
            if token == "ch":
                channel = allowed[value % len(allowed)]
                value = value // len(allowed)
            elif token == "co":
                value = value // self._cols_per_row
            elif token == "ba":
                bank_in_group = value % cfg.banks_per_group
                value = value // cfg.banks_per_group
            elif token == "bg":
                bank_group = value % cfg.bank_groups
                value = value // cfg.bank_groups
            else:  # "ro"
                row = value % cfg.rows_per_bank
                value = value // cfg.rows_per_bank
        bank = bank_group * cfg.banks_per_group + bank_in_group
        rec = _VTransfer(on_complete)
        rec.count = total
        rec.chan_np = channel
        rec.bank_np = bank
        rec.row_np = row
        rec.write_np = write
        # Python-int lists for the hot scalar path: request fields and
        # stats must stay plain ints (numpy scalars would leak into the
        # serialized results).
        rec.addr = paddr.tolist()
        rec.write = write.tolist()
        rec.chan = channel.tolist()
        rec.bank = bank.tolist()
        rec.row = row.tolist()
        return rec

    # ------------------------------------------------------------------ #
    # The public DmaEngine surface.

    def transfer(self, runs: tuple[Run, ...], on_complete: Callable[[], None]) -> None:
        if not runs:
            self.engine.after(0, on_complete)
            return
        rec = self._materialize(runs, on_complete)
        self._active.append(rec)
        now = self.engine.now
        # Mirror of ``_schedule_pump(max(now, _next_issue_at))``.
        if not self._pump_scheduled:
            self._pump_scheduled = True
            time = self._next_issue_at
            self._vpush(time if time > now else now, _PUMP, None)
        # Do NOT advance synchronously: the calling core handler may
        # append further transfers this tick, and racing ahead virtually
        # before they land would retire stale kicks against a queue the
        # per-event engine would have filled first.  A same-tick bucket
        # wakeup runs after the handler (and every same-tick real event
        # pushed before it) completes.
        if self._heap and not self._advancing:
            self._ensure_wakeup(now)

    def register_counters(self, registry: "CounterRegistry") -> None:
        super().register_counters(registry)
        rstats = self.rstats
        registry.bind_many(
            f"replay.core{self.core}",
            {
                "batched_events": lambda: rstats.batched_events,
                "wakeup_events": lambda: rstats.wakeup_events,
                "fast_forwards": lambda: rstats.fast_forwards,
                "fast_forwarded_ticks": lambda: rstats.fast_forwarded_ticks,
            },
        )

    # ------------------------------------------------------------------ #
    # Private-heap plumbing.

    def _vpush(self, time: int, kind: int, payload) -> None:
        heapq.heappush(self._heap, (time, self._lseq, kind, payload))
        self._lseq += 1

    def _ensure_wakeup(self, time: int) -> None:
        if self._wake_at is not None and self._wake_at <= time:
            return
        self._wake_at = time
        self.engine.at(time, self._wakeup_cb)

    def _wakeup(self) -> None:
        # A real event: the engine counted it, per-event replay wouldn't
        # have scheduled it — debit one to keep the pinned count exact.
        if self._wake_at is not None and self._wake_at <= self.engine.now:
            self._wake_at = None
        self.engine.credit_events(-1)
        self.rstats.wakeup_events += 1
        self._advance()

    def _advance(self) -> None:
        if self._advancing:
            return
        self._advancing = True
        try:
            engine = self.engine
            now = engine.now  # constant within one advance
            # The engine's next real event only changes when a delivery
            # runs core code (``on_complete`` schedules events); cache it
            # across the loop and refresh after deliveries only.
            next_real = engine.next_time()
            pop = heapq.heappop
            max_out = self.max_outstanding
            active = self._active
            ff = self._ff_on
            retired = 0
            while True:
                heap = self._heap  # _bulk rebuilds the list object
                if not heap:
                    break
                entry = heap[0]
                time = entry[0]
                kind = entry[2]
                if time > now:
                    # Horizon: a real event at or before this entry's
                    # tick may still interact.  ``>=`` is load-bearing —
                    # a real event *at* the entry's own tick can precede
                    # it in the per-event engine's seq order (e.g. a
                    # core handler appending a transfer before a stalled
                    # pump fires), so racing ahead to that tick would
                    # reorder the interleaving and skew stall counts.
                    # The wakeup this break arms replays the entry at
                    # its real tick, after every earlier-pushed handler.
                    if next_real is not None and time >= next_real:
                        break
                    if kind == _COMPLETE:
                        rec = entry[3]
                        if rec.issued_all and rec.outstanding == 1:
                            break  # on_complete must run at real time
                    elif kind == _PUMP:
                        if (
                            active
                            and self._outstanding < max_out
                            and (rec := active[0]).pos >= rec.count
                            and rec.outstanding == 0
                        ):
                            break  # exhaustion pop delivers on_complete
                if ff and kind == _COMPLETE and time >= self._bulk_off_until:
                    if self._bulk(time):
                        continue  # ladder rebuilt; re-read the new top
                pop(heap)
                retired += 1
                if kind == _PUMP:
                    self._do_pump(time)
                elif kind == _KICK:
                    self._do_kick(entry[3], time)
                else:
                    self._do_complete(entry[3], time)
                if self._delivered:
                    self._delivered = False
                    next_real = engine.next_time()
            if retired:
                self.rstats.batched_events += retired
                engine.credit_events(retired)
            heap = self._heap
            if heap:
                self._ensure_wakeup(heap[0][0])
        finally:
            self._advancing = False

    # ------------------------------------------------------------------ #
    # Micro-event bodies: exact mirrors of DmaEngine._pump/_complete and
    # Channel._kick/_refresh plus DramController.submit, with every
    # ``engine.at`` push redirected onto the private heap.

    def _do_pump(self, now: int) -> None:
        self._pump_scheduled = False
        active = self._active
        if not active:
            return
        if self._outstanding >= self.max_outstanding:
            self.stats.stall_events += 1
            return  # a completion will restart the pump
        rec = active[0]
        index = rec.pos
        if index >= rec.count:
            rec.issued_all = True
            active.popleft()
            if rec.outstanding == 0:
                self._delivered = True  # core code ran: horizon moved
                rec.on_complete()  # guarded: only reached at real now
            if active and not self._pump_scheduled:
                self._pump_scheduled = True
                time = self._next_issue_at
                self._vpush(time if time > now else now, _PUMP, None)
            return
        rec.pos = index + 1
        rec.outstanding += 1
        self._outstanding += 1
        stats = self.stats
        write = rec.write[index]
        if write:
            stats.write_txns += 1
        else:
            stats.read_txns += 1
        # DramController.submit + Channel.enqueue, inlined for an owned
        # channel (no logger by eligibility; never a walk).  The request
        # carries its (transfer, stream index) in the callback slot — the
        # governor is the only consumer of owned-channel completions.
        channel = self._channels[rec.chan[index]]
        request = DramRequest(
            rec.addr[index], write, self.core, (rec, index),
            rec.bank[index], rec.row[index], now, False,
        )
        channel.queue.append(request)
        kick_at = channel._kick_at
        if kick_at is None or kick_at > now:
            channel._kick_at = now
            self._vpush(now, _KICK, channel)
        time = now + self._issue_gap
        self._next_issue_at = time
        self._pump_scheduled = True
        self._vpush(time, _PUMP, None)

    def _do_kick(self, channel: Channel, now: int) -> None:
        channel._kick_at = None
        chain = channel._chain
        if chain:
            data_end, callback, next_time = chain.popleft()
            self._vpush(data_end, _COMPLETE, callback[0])
            if chain or channel.queue:
                channel._kick_at = next_time
                self._vpush(next_time, _KICK, channel)
            return
        queue = channel.queue
        if not queue:
            return
        refresh = channel._refresh_on
        if refresh and now >= channel.next_refresh_at:
            self._do_refresh(channel, now)
            return
        burst = channel.burst_ticks
        index, _ = channel._select_index()
        request = queue[index]
        data_end = channel._issue(request, now)
        self._vpush(data_end, _COMPLETE, request.callback[0])
        del queue[index]
        if not queue:
            return
        next_time = data_end - burst
        if next_time <= now:
            next_time = now + 1
        if channel._batch and not (refresh and next_time >= channel.next_refresh_at):
            virtual = next_time
            while True:
                index, stable = channel._select_index()
                if not stable:
                    break
                request = queue[index]
                data_end = channel._issue(request, now)
                del queue[index]
                after = data_end - burst
                if after <= virtual:
                    after = virtual + 1
                chain.append((data_end, request.callback, after))
                if not queue or (refresh and after >= channel.next_refresh_at):
                    break
                virtual = after
        channel._kick_at = next_time
        self._vpush(next_time, _KICK, channel)

    def _do_refresh(self, channel: Channel, now: int) -> None:
        timing = channel.cfg.timing
        end = now + timing.tRFC
        while channel.next_refresh_at <= now:
            channel.next_refresh_at += timing.tREFI
        for bank in channel.banks:
            bank.close(end)
        channel.bus_free_at = max(channel.bus_free_at, end)
        channel.stats.refreshes += 1
        if not (channel._kick_at is not None and channel._kick_at <= end):
            channel._kick_at = end
            self._vpush(end, _KICK, channel)

    def _do_complete(self, rec: _VTransfer, now: int) -> None:
        self._outstanding -= 1
        rec.outstanding -= 1
        if rec.issued_all and rec.outstanding == 0:
            self._delivered = True  # core code ran: horizon moved
            rec.on_complete()  # guarded: only reached at real now
        if self._active and not self._pump_scheduled:
            self._pump_scheduled = True
            time = self._next_issue_at
            self._vpush(time if time > now else now, _PUMP, None)

    # ------------------------------------------------------------------ #
    # Analytic fast-forward (``auto``).

    def _bulk(self, t: int) -> int:
        """Closed-form replay of saturated streaming cycles from tick ``t``.

        Called when the private heap's top is a ``_COMPLETE`` at ``t``.
        Recognizes the bus-saturated steady state (module docstring) and
        retires ``n`` whole four-micro-event cycles in one pass over the
        precomputed request stream, applying the exact ``Channel._issue``
        formulas per transaction and *verifying* per transaction that the
        bus — not bank preparation — bounds the data start, which is the
        single condition under which the cycle shape is rigid.  Returns
        the number of cycles retired (0 = state did not match; ordinary
        micro-event replay proceeds).
        """
        owned = self._owned
        if len(owned) != 1:
            return 0
        channel = owned[0]
        active = self._active
        if not active:
            return 0
        # Only the head transfer pumps; a queued-behind transfer does not
        # perturb the cycle (the count cap keeps the block short of the
        # head's exhaustion, so the pump never touches the next one).
        rec = active[0]
        m = self.max_outstanding
        burst = channel.burst_ticks
        gap = self._issue_gap
        heap = self._heap
        if (
            gap <= 0
            or gap >= burst
            or rec.issued_all
            or rec.outstanding != m
            or self._pump_scheduled
            or channel.queue
            or channel._chain
            or channel._kick_at is not None
            or channel._pending_walks
            or channel.trace is not None
            or channel.bus_free_at != t + (m - 1) * burst
            or len(heap) < m
        ):
            return 0
        # O(M) ladder scan: the heap must be this transfer's completion
        # ladder at t + burst*j, plus possibly *stale* kicks — follow-on
        # kick entries superseded by an earlier push.  A stale kick is a
        # provable no-op here: the queue is empty at every in-block tick
        # it can fire (a pump's request is issued the same tick by the
        # cycle's own kick, which every stale entry's older seq
        # precedes), and ``_do_kick`` returns on an empty queue *before*
        # the refresh check.  Throttle re-probing so a failing scan is
        # not repeated every cycle.
        self._bulk_off_until = t + burst * 8
        times = []
        stale = []
        for entry in heap:
            kind = entry[2]
            if kind == _COMPLETE and entry[3] is rec:
                times.append(entry[0])
            elif kind == _KICK and entry[3] is channel:
                stale.append(entry)
            else:
                return 0
        if len(times) != m:
            return 0
        times.sort()
        if times != list(range(t, t + burst * m, burst)):
            return 0
        # Cycle-count caps — each one exact, not heuristic.
        k = rec.count - rec.pos
        if channel._refresh_on:
            refresh_at = channel.next_refresh_at
            if refresh_at <= t:
                return 0  # a refresh is due at the very first kick
            cap = (refresh_at - 1 - t) // burst + 1
            if cap < k:
                k = cap
        next_real = self.engine.next_time()
        if next_real is not None:
            # Last replayed micro-event is the stall pump at
            # t + (k-1)*burst + gap; it must not pass the horizon.
            cap = (next_real - gap - t) // burst + 1
            if cap < k:
                k = cap
        if k < 8:
            return 0  # not worth the block-entry scan; replay normally
        # Tight pass: per-bank row/act/col-ready evolution with the exact
        # _issue formulas.  arrival == kick time == t_j throughout.
        banks = channel.banks
        tRP = channel._tRP
        tRCD = channel._tRCD
        tRAS = channel._tRAS
        tCCD = channel._tCCD
        tCL = channel._tCL
        tWR = channel._tWR
        bus_slack = (m - 1) * burst  # bus_free_j - t_j, constant in-block
        bank_list = rec.bank
        row_list = rec.row
        write_list = rec.write
        i = rec.pos
        stop = i + k
        t_j = t
        hits = 0
        misses = 0
        writes = 0
        while i < stop:
            bank = banks[bank_list[i]]
            row = row_list[i]
            if bank.open_row == row:
                col_ready = bank.col_ready_at
                if col_ready < t_j:
                    col_ready = t_j
                if col_ready + tCL > t_j + bus_slack:
                    break  # bank prep would outrun the bus booking
                hits += 1
            else:
                if bank.open_row is None:
                    act_at = bank.col_ready_at
                    if act_at < t_j:
                        act_at = t_j
                else:
                    act_at = bank.col_ready_at
                    ras = bank.act_at + tRAS
                    if ras > act_at:
                        act_at = ras
                    if act_at < t_j:
                        act_at = t_j
                    act_at += tRP
                col_ready = act_at + tRCD
                if col_ready + tCL > t_j + bus_slack:
                    break  # checked before mutating the bank
                bank.act_at = act_at
                bank.open_row = row
                misses += 1
            if write_list[i]:
                writes += 1
                bank.col_ready_at = col_ready + tCCD + tWR
            else:
                bank.col_ready_at = col_ready + tCCD
            i += 1
            t_j += burst
        n = i - rec.pos
        if n == 0:
            return 0
        # Commit: n completes retired, n transactions issued; outstanding
        # and the in-flight ladder shape are unchanged, shifted n bursts.
        rec.pos = i
        end = t + burst * n
        self._next_issue_at = end - burst + gap
        stats = self.stats
        stats.read_txns += n - writes
        stats.write_txns += writes
        stats.stall_events += n  # one stalled pump per cycle
        cstats = channel.stats
        cstats.reads += n - writes
        cstats.writes += writes
        cstats.row_hits += hits
        cstats.row_misses += misses
        cstats.bytes_per_core[self.core] += n * channel.transaction_bytes
        # data_end_j - arrival_j == m*burst for every in-block txn.
        cstats.queueing_ticks_total += n * m * burst
        channel.bus_free_at += n * burst
        # Rebuild the ladder shifted by n bursts; ascending seqs on a
        # sorted list form a valid heap (times are all distinct).  Stale
        # kicks inside the replayed span fired as no-op events — drop
        # them and credit one event each; later ones stay pending.
        lseq = self._lseq
        new_heap = [
            (end + burst * j, lseq + j, _COMPLETE, rec) for j in range(m)
        ]
        self._lseq = lseq + m
        last = end - burst + gap  # final replayed micro-event tick
        dropped = 0
        for entry in stale:
            if entry[0] <= last:
                dropped += 1
            else:
                new_heap.append(entry)
        if stale:
            heapq.heapify(new_heap)
        self._heap = new_heap
        skipped = 4 * n + dropped
        self.rstats.batched_events += skipped
        self.engine.credit_events(skipped)
        self.rstats.fast_forwards += 1
        self.rstats.fast_forwarded_ticks += burst * n
        self._bulk_off_until = -1  # matched: probe again at the next ladder
        return n

"""The per-core DMA engine moving tiles between SPM and off-chip memory.

Each core owns a private DMA engine (paper Figure 1).  A *transfer* is
one tile-phase burst (the read runs of a tile, or its write-back runs).
The engine expands runs into DRAM-transaction-sized requests, translates
each through the MMU, and paces issue at the core's DMA width with a
bounded in-flight window — the mechanism that turns tile loads into the
bursty request trains of Figure 2(b).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

from typing import TYPE_CHECKING

from repro.compute.requestgen import Run
from repro.core.clock import ClockDomain
from repro.core.engine import Engine
from repro.dram.controller import DramController
from repro.mmu.mmu import Mmu

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import CounterRegistry


@dataclass
class DmaStats:
    """Issue/completion counters of one DMA engine."""

    read_txns: int = 0
    write_txns: int = 0
    stall_events: int = 0

    @property
    def total_txns(self) -> int:
        """All transactions issued."""
        return self.read_txns + self.write_txns


class _Transfer:
    __slots__ = ("txns", "issued_all", "outstanding", "on_complete", "complete")

    def __init__(
        self, txns: Iterator[tuple[int, bool]], on_complete: Callable[[], None]
    ):
        self.txns = txns
        self.issued_all = False
        self.outstanding = 0
        self.on_complete = on_complete
        #: Per-transaction DRAM completion callback, built once by the
        #: owning engine instead of once per transaction.
        self.complete: Callable[[], None] | None = None


class DmaEngine:
    """Paced, windowed request issue for one NPU core."""

    def __init__(
        self,
        engine: Engine,
        core: int,
        mmu: Mmu,
        dram: DramController,
        clock: ClockDomain,
        *,
        max_outstanding: int,
        issue_per_cycle: int = 1,
        transaction_bytes: int = 64,
    ) -> None:
        if max_outstanding <= 0:
            raise ValueError("DMA window must be positive")
        if issue_per_cycle <= 0:
            raise ValueError("issue width must be positive")
        self.engine = engine
        self.core = core
        self.mmu = mmu
        self.dram = dram
        self.clock = clock
        self.max_outstanding = max_outstanding
        self.transaction_bytes = transaction_bytes
        # Global ticks between consecutive issues (>= 1 to stay causal).
        self._issue_gap = max(1, clock.to_global(1) // issue_per_cycle)
        self._active: deque[_Transfer] = deque()
        self._outstanding = 0
        self._next_issue_at = 0
        self._pump_scheduled = False
        # With translation off the MMU is pure function application; bind
        # the page table's mapping once and skip the front-end per txn.
        self._paddr = mmu.direct_paddr(core)
        # Per-transaction call targets bound once: ``self.dram.submit``
        # and ``self.mmu.probe`` would cost two attribute hops plus a
        # bound-method allocation on every pump; ``self._pump`` likewise.
        self._dram_submit = dram.submit
        self._mmu_probe = mmu.probe
        self._pump_cb = self._pump
        self.stats = DmaStats()

    # ------------------------------------------------------------------ #

    def transfer(self, runs: tuple[Run, ...], on_complete: Callable[[], None]) -> None:
        """Start a burst covering ``runs``; ``on_complete`` fires when all land."""
        if not runs:
            self.engine.after(0, on_complete)
            return
        transfer = _Transfer(self._expand(runs), on_complete)
        transfer.complete = lambda: self._complete(transfer)
        self._active.append(transfer)
        self._schedule_pump(max(self.engine.now, self._next_issue_at))

    def register_counters(self, registry: "CounterRegistry") -> None:
        """Expose this engine's issue stats to the registry (pull-based)."""
        stats = self.stats
        registry.bind_many(
            f"dma.core{self.core}",
            {
                "read_txns": lambda: stats.read_txns,
                "write_txns": lambda: stats.write_txns,
                "stall_events": lambda: stats.stall_events,
            },
        )
        registry.bind_gauge(
            f"dma.core{self.core}.outstanding", lambda: self._outstanding
        )

    @property
    def busy(self) -> bool:
        """True while any transfer has unissued or in-flight transactions."""
        return bool(self._active) or self._outstanding > 0

    @property
    def outstanding(self) -> int:
        """Transactions issued to memory but not yet completed."""
        return self._outstanding

    @property
    def queued_transfers(self) -> int:
        """Transfers with unissued transactions (incl. the active one)."""
        return len(self._active)

    # ------------------------------------------------------------------ #

    def _expand(self, runs: tuple[Run, ...]) -> Iterator[tuple[int, bool]]:
        txn = self.transaction_bytes
        for run in runs:
            for index in range(run.count):
                yield run.addr + index * txn, run.write

    def _schedule_pump(self, time: int) -> None:
        if self._pump_scheduled:
            return
        self._pump_scheduled = True
        self.engine.at(max(time, self.engine.now), self._pump_cb)

    def _pump(self) -> None:
        self._pump_scheduled = False
        active = self._active
        if not active:
            return
        if self._outstanding >= self.max_outstanding:
            self.stats.stall_events += 1
            return  # a completion will restart the pump
        transfer = active[0]
        step = next(transfer.txns, None)
        if step is None:
            transfer.issued_all = True
            active.popleft()
            if transfer.outstanding == 0:
                transfer.on_complete()
            if active:
                self._schedule_pump(self._next_issue_at)
            return
        vaddr, write = step
        transfer.outstanding += 1
        self._outstanding += 1
        stats = self.stats
        if write:
            stats.write_txns += 1
        else:
            stats.read_txns += 1
        core = self.core
        paddr_fn = self._paddr
        if paddr_fn is not None:
            self._dram_submit(core, paddr_fn(vaddr), write, transfer.complete)
        else:
            paddr = self._mmu_probe(core, vaddr)
            if paddr is not None:
                self._dram_submit(core, paddr, write, transfer.complete)
            else:
                # Cold path: only a miss pays for a continuation closure.
                self.mmu.miss(
                    self.core,
                    vaddr,
                    lambda p, t=transfer, w=write: self._submit(p, w, t),
                )
        # Nothing in the submit path re-arms the pump synchronously, and
        # the issue gap is >= 1 tick, so schedule the next issue directly.
        engine = self.engine
        time = engine.now + self._issue_gap
        self._next_issue_at = time
        self._pump_scheduled = True
        engine.at(time, self._pump_cb)

    def _submit(self, paddr: int, write: bool, transfer: _Transfer) -> None:
        self.dram.submit(self.core, paddr, write, transfer.complete)

    def _complete(self, transfer: _Transfer) -> None:
        self._outstanding -= 1
        transfer.outstanding -= 1
        if transfer.issued_all and transfer.outstanding == 0:
            transfer.on_complete()
        # Inline of ``_schedule_pump(max(now, _next_issue_at))`` — this
        # runs once per transaction.
        if self._active and not self._pump_scheduled:
            self._pump_scheduled = True
            engine = self.engine
            time = self._next_issue_at
            now = engine.now
            engine.at(time if time > now else now, self._pump_cb)

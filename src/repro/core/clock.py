"""Clock-domain translation between NPU cores and the global DRAM clock.

mNPUsim handles heterogeneous core frequencies by defining a global clock
(the DRAM clock) plus per-core local clocks; shared-resource requests are
synchronized to the global clock, and latencies are translated back into
local cycles where needed (section 3.1).  :class:`ClockDomain` performs
those conversions with exact integer arithmetic, rounding *up* when a
local-duration lands between global ticks (a request cannot complete
early because of a clock boundary).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClockDomain:
    """A local clock of ``local_mhz`` against a global clock of ``global_mhz``."""

    local_mhz: int
    global_mhz: int

    def __post_init__(self) -> None:
        if self.local_mhz <= 0 or self.global_mhz <= 0:
            raise ValueError("clock frequencies must be positive")

    def to_global(self, local_cycles: int) -> int:
        """Global ticks spanning at least ``local_cycles`` local cycles."""
        if local_cycles < 0:
            raise ValueError("cycle counts cannot be negative")
        return -(-local_cycles * self.global_mhz // self.local_mhz)

    def to_local(self, global_ticks: int) -> int:
        """Local cycles spanning at least ``global_ticks`` global ticks."""
        if global_ticks < 0:
            raise ValueError("tick counts cannot be negative")
        return -(-global_ticks * self.local_mhz // self.global_mhz)

    @property
    def is_synchronous(self) -> bool:
        """True when the two domains run at the same frequency."""
        return self.local_mhz == self.global_mhz

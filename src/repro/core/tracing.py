"""Request-log tracing, mirroring the mNPUsim artifact's output files.

The artifact emits per-run logs under ``<result_path>/dramsim_output``:

* ``dram.log``     — one line per DRAM request *start* (enqueue cycle),
* ``dramreq.log``  — one line per DRAM request *end* (completion cycle),
* ``tlb<i>.log``   — core *i*'s TLB accesses (cycle, vpn, hit/miss),
* ``tlb<i>_ptw.log`` — core *i*'s page-table walks (queue/start/end).

:class:`TraceLogger` buffers the same information in memory; the
simulator feeds it when constructed with ``trace_requests=True``, and
:meth:`write_files` emits the artifact-style text files.  Fields follow
the artifact's "time (cycle), address, NPU index, channel number"
convention.

Since the observability layer landed, the entry types are aliases of the
:mod:`repro.obs.spans` span types (identical field layout), and the
logger doubles as a :class:`~repro.obs.spans.SpanSink`: when a
:class:`~repro.obs.timeline.TimelineTracer` drives the simulation, it
fans the same span stream into an attached ``TraceLogger`` through
:meth:`on_dram`/:meth:`on_tlb`/:meth:`on_walk` — artifact text logs and
Perfetto traces come from one recording.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.spans import DramSpan, TlbEvent, WalkSpan

#: Back-compat aliases: the legacy log-entry names now *are* the span
#: types (same fields, same order), so either import path works.
DramLogEntry = DramSpan
TlbLogEntry = TlbEvent
PtwLogEntry = WalkSpan


@dataclass
class TraceLogger:
    """In-memory request logs with artifact-style file output."""

    dram: list[DramSpan] = field(default_factory=list)
    tlb: list[TlbEvent] = field(default_factory=list)
    ptw: list[WalkSpan] = field(default_factory=list)

    # -------------------------------------------------------------- #
    # Recording hooks (called by the simulator components)
    # -------------------------------------------------------------- #

    def log_dram(
        self,
        start_tick: int,
        end_tick: int,
        addr: int,
        core: int,
        channel: int,
        write: bool,
        is_walk: bool,
    ) -> None:
        """Record one completed DRAM transaction."""
        self.dram.append(
            DramSpan(start_tick, end_tick, addr, core, channel, write, is_walk)
        )

    def log_tlb(self, tick: int, core: int, vpn: int, outcome: str) -> None:
        """Record one TLB access."""
        self.tlb.append(TlbEvent(tick, core, vpn, outcome))

    def log_ptw(
        self,
        enqueue_tick: int,
        start_tick: int,
        end_tick: int,
        core: int,
        vpn: int,
        dram_reads: int,
    ) -> None:
        """Record one completed page-table walk."""
        self.ptw.append(
            WalkSpan(enqueue_tick, start_tick, end_tick, core, vpn, dram_reads)
        )

    # -------------------------------------------------------------- #
    # SpanSink interface (fed by an upstream TimelineTracer)
    # -------------------------------------------------------------- #

    def on_dram(self, span: DramSpan) -> None:
        """Consume one DRAM span from the timeline stream."""
        self.dram.append(span)

    def on_tlb(self, event: TlbEvent) -> None:
        """Consume one TLB event from the timeline stream."""
        self.tlb.append(event)

    def on_walk(self, span: WalkSpan) -> None:
        """Consume one page-walk span from the timeline stream."""
        self.ptw.append(span)

    # -------------------------------------------------------------- #
    # Output
    # -------------------------------------------------------------- #

    def cores(self) -> list[int]:
        """Cores that produced any translation activity."""
        seen = {entry.core for entry in self.tlb}
        seen.update(entry.core for entry in self.ptw)
        return sorted(seen)

    def write_files(self, out_dir: str | Path) -> list[Path]:
        """Write artifact-style log files; returns the paths written."""
        directory = Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        written = []

        dram_log = directory / "dram.log"
        dram_log.write_text(
            "".join(
                f"{e.start_tick} 0x{e.addr:x} {e.core} {e.channel} "
                f"{'W' if e.write else 'R'}{' PTW' if e.is_walk else ''}\n"
                for e in self.dram
            )
        )
        written.append(dram_log)

        dramreq_log = directory / "dramreq.log"
        dramreq_log.write_text(
            "".join(
                f"{e.end_tick} 0x{e.addr:x} {e.core} {e.channel} "
                f"{'W' if e.write else 'R'}{' PTW' if e.is_walk else ''}\n"
                for e in sorted(self.dram, key=lambda e: e.end_tick)
            )
        )
        written.append(dramreq_log)

        # Group both logs by core in one pass each (rescanning the full
        # logs per core would be O(entries x cores)).
        tlb_by_core: dict[int, list[str]] = {}
        for e in self.tlb:
            tlb_by_core.setdefault(e.core, []).append(
                f"{e.tick} 0x{e.vpn:x} {e.outcome}\n"
            )
        ptw_by_core: dict[int, list[str]] = {}
        for e in self.ptw:
            ptw_by_core.setdefault(e.core, []).append(
                f"{e.enqueue_tick} {e.start_tick} {e.end_tick} "
                f"0x{e.vpn:x} {e.dram_reads}\n"
            )
        for core in sorted(tlb_by_core.keys() | ptw_by_core.keys()):
            tlb_log = directory / f"tlb{core}.log"
            tlb_log.write_text("".join(tlb_by_core.get(core, ())))
            written.append(tlb_log)
            ptw_log = directory / f"tlb{core}_ptw.log"
            ptw_log.write_text("".join(ptw_by_core.get(core, ())))
            written.append(ptw_log)
        return written

    # -------------------------------------------------------------- #
    # Analysis conveniences
    # -------------------------------------------------------------- #

    def dram_bytes_by_core(self, transaction_bytes: int) -> dict[int, int]:
        """Data moved per core, from the log."""
        totals: dict[int, int] = {}
        for entry in self.dram:
            totals[entry.core] = totals.get(entry.core, 0) + transaction_bytes
        return totals

    def walk_latencies(self, core: int | None = None) -> list[int]:
        """End-to-end walk latencies (ticks), optionally for one core."""
        return [
            entry.end_tick - entry.enqueue_tick
            for entry in self.ptw
            if core is None or entry.core == core
        ]

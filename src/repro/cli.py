"""Command-line interface mirroring the mNPUsim artifact.

The original simulator runs as::

    ./mnpusim <arch_list> <network_list> <dram_config> <npumem_list> \\
              <result_path> <misc_config>

This CLI keeps that shape (``mnpusim run``) while adding conveniences the
artifact documents separately: listing the bundled benchmark zoo, a quick
mix runner over named workloads and sharing levels, per-figure
regeneration (``mnpusim figure``, optionally parallel with ``--jobs``)
and batched multi-figure sweeps (``mnpusim sweep``).  Result files follow
the artifact's layout: ``<result_path>/result/avg_cycle_*.txt``,
``memory_footprint_*``, ``utilization_*`` plus a JSON summary.

The ``mix`` path builds its system through the same :class:`RunSpec` the
experiment runner uses, so CLI mix results and cached experiment results
agree for identical parameters.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import signal
import sys
import threading
from pathlib import Path

from repro.compute import tracecache
from repro.compute.dataflow import registered_dataflows
from repro.core.replay import REPLAY_MODES
from repro.compute.requestgen import RequestGenerator
from repro.config import (
    load_arch_config,
    load_dram_config,
    load_misc_config,
    load_npumem_config,
)
from repro.config.system import SystemConfig
from repro.core.sharing import SharingLevel
from repro.core.simulator import (
    DEFAULT_STALL_WINDOW_TICKS,
    MixResult,
    MultiCoreNPUSim,
)
from repro.errors import SimulationStallError
from repro.experiments.runner import DEFAULT_MAX_TICKS
from repro.experiments.spec import RunSpec
from repro.models import zoo
from repro.models import serving as serving_models
from repro.models.serving import ServingParams
from repro.obs import format_profile, format_tree, human_bytes

#: Workload names the mix-shaped subcommands accept: the benchmark zoo
#: plus the qualified LLM-serving shapes (``gpt2:prefill``/``gpt2:decode``).
WORKLOAD_CHOICES = (*zoo.NAMES, *serving_models.SERVING_NAMES)


def _read_list_file(path: str) -> list[str]:
    """A *_list file: one per-core config path per line."""
    lines = [
        line.strip()
        for line in Path(path).read_text().splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    if not lines:
        raise SystemExit(f"{path}: empty config list")
    return lines


def _write_results(
    result: MixResult, system: SystemConfig, out_dir: Path, networks
) -> None:
    """Write artifact-style per-core result files plus a JSON summary."""
    result_dir = out_dir / "result"
    result_dir.mkdir(parents=True, exist_ok=True)
    summary = []
    for workload, network in zip(result.workloads, networks):
        arch = system.arch[workload.core]
        stem = f"arch_{arch.name}{workload.core}_{workload.workload}{workload.core}"
        (result_dir / f"avg_cycle_{stem}.txt").write_text(f"{workload.cycles}\n")
        footprint = RequestGenerator(network, arch).memory_footprint_bytes
        (result_dir / f"memory_footprint_{stem}.txt").write_text(f"{footprint}\n")
        (result_dir / f"utilization_{stem}.txt").write_text(
            f"{workload.pe_utilization:.6f}\n"
        )
        layer_lines = "".join(
            f"{network.layers[index].name} {cycles}\n"
            for index, cycles in enumerate(workload.layer_cycles)
        )
        (result_dir / f"execution_cycle_{stem}.txt").write_text(layer_lines)
        summary.append(
            {
                "core": workload.core,
                "workload": workload.workload,
                "cycles": workload.cycles,
                "pe_utilization": workload.pe_utilization,
                "tlb_miss_rate": workload.tlb_miss_rate,
                "walks": workload.walks,
                "traffic_bytes": workload.traffic_bytes,
            }
        )
    (result_dir / "summary.json").write_text(json.dumps(summary, indent=2))


def _cmd_run(args: argparse.Namespace) -> int:
    arch_paths = _read_list_file(args.arch_list)
    network_names = _read_list_file(args.network_list)
    npumem_paths = _read_list_file(args.npumem_list)
    if not len(arch_paths) == len(network_names) == len(npumem_paths):
        raise SystemExit("arch, network and npumem lists must have one line per core")
    dram = load_dram_config(args.dram_config)
    misc = load_misc_config(args.misc_config)
    if args.replay_mode is not None:
        # --replay-mode overrides the misc_config file's choice (all
        # modes are byte-identical; see repro.core.replay).
        misc = dataclasses.replace(misc, replay_mode=args.replay_mode)
    arch_configs = tuple(load_arch_config(path) for path in arch_paths)
    if args.dataflow is not None:
        # --dataflow overrides whatever the arch_config files chose, on
        # every core (the files' own `dataflow` key still applies when
        # the flag is absent).
        arch_configs = tuple(
            dataclasses.replace(arch, dataflow=args.dataflow)
            for arch in arch_configs
        )
    system = SystemConfig(
        arch=arch_configs,
        npumem=tuple(load_npumem_config(path) for path in npumem_paths),
        dram=dram,
        misc=misc,
        share_dram=not args.static_dram,
        share_ptw=not args.static_ptw,
        share_tlb=not args.static_tlb,
    )
    networks = _serving_networks(
        network_names, args.scale,
        params=_serving_params(args), default_phase=args.phase,
    )
    tracecache.configure(enabled=not args.no_trace_cache)
    sim = MultiCoreNPUSim(
        system,
        networks,
        trace_requests=args.trace,
        stall_window_ticks=args.stall_window,
    )
    result = _run_sim(sim, args.max_ticks)
    out_dir = Path(args.result_path)
    _write_results(result, system, out_dir, networks)
    if args.trace and sim.tracer is not None:
        sim.tracer.write_files(out_dir / "dramsim_output")
    for workload in result.workloads:
        print(
            f"core{workload.core} {workload.workload}: {workload.cycles} cycles, "
            f"PE util {workload.pe_utilization:.3f}"
        )
    return 0


def _run_sim(sim: MultiCoreNPUSim, max_ticks: int) -> MixResult:
    """Run a simulation under the CLI's tick safety valve + stall watchdog."""
    try:
        return sim.run(max_ticks=max_ticks)
    except SimulationStallError as error:
        # The multi-line detail names where every core is wedged.
        raise SystemExit(f"simulation aborted: {error.detail()}") from error
    except RuntimeError as error:
        raise SystemExit(f"simulation aborted: {error}") from error


def _cmd_mix(args: argparse.Namespace) -> int:
    names = args.workloads
    sharing = (
        SharingLevel[args.sharing.upper().lstrip("+")]
        if args.sharing
        else SharingLevel.DWT
    )
    # The same frozen descriptor the experiment runner plans from, so CLI
    # mixes and cached figure sweeps simulate the identical system
    # (iterations=1, staggered launch — see presets.mix_system).
    try:
        spec = RunSpec.mix(
            names,
            sharing,
            scale=args.scale,
            page_bytes=args.page_bytes,
            dataflow=args.dataflow,
            replay_mode=args.replay_mode,
            phase=args.phase,
            serving=_serving_params(args),
        )
    except ValueError as error:
        raise SystemExit(str(error)) from error
    system = spec.system()
    networks = _serving_networks(
        names, args.scale, params=spec.serving, default_phase=spec.phase
    )
    tracecache.configure(enabled=not args.no_trace_cache)
    sim = MultiCoreNPUSim(system, networks, stall_window_ticks=args.stall_window)
    result = _run_sim(sim, args.max_ticks)
    for workload in result.workloads:
        print(
            f"core{workload.core} {workload.workload}: {workload.cycles} cycles, "
            f"PE util {workload.pe_utilization:.3f}, "
            f"TLB miss rate {workload.tlb_miss_rate:.3f}, walks {workload.walks}"
        )
    if args.result_path:
        _write_results(result, system, Path(args.result_path), networks)
    return 0


def _print_progress(event) -> None:
    """Default sweep progress reporter: one line per completion on stderr."""
    label = event.spec.label if event.spec is not None else "cache"
    eta = (
        f", eta {event.eta_seconds:.0f}s"
        if event.eta_seconds is not None
        else ""
    )
    failed = (
        f", {event.failed} failed" if getattr(event, "failed", 0) else ""
    )
    print(
        f"[{event.completed}/{event.total}] {label} "
        f"({event.cache_hits} cached, {event.elapsed_seconds:.1f}s{eta}{failed})",
        file=sys.stderr,
    )


def _print_cache_summary(runner, quiet: bool) -> None:
    """Structured one-line cache-hit summary after a figure/sweep batch."""
    if quiet or runner.last_outcome is None:
        return
    outcome = runner.last_outcome
    trace = runner.last_trace_stats
    if trace is None:
        trace_part = "trace-cache off"
    else:
        trace_part = (
            f"traces {trace.requests} distinct: {trace.hits} hit "
            f"(memo {trace.memo_hits}, disk {trace.disk_hits}), "
            f"{trace.compiles} compiled, hit-rate {trace.hit_rate:.2f}"
        )
    usage = runner.cache_usage()
    print(
        f"cache: results {outcome.cache_hits}/{outcome.total} cached; "
        f"{trace_part}; "
        f"{usage['shards']} shard(s), {human_bytes(usage['bytes'])} on disk",
        file=sys.stderr,
    )


def _report_failures(runner) -> int:
    """Structured one-line error per failed spec; the process exit code."""
    failures = getattr(runner, "failures", None) or {}
    for failure in failures.values():
        print(
            f"error: {failure.key[:12]} ({failure.label}): "
            f"[{failure.kind}] {failure.error} "
            f"after {failure.attempts} attempt(s)",
            file=sys.stderr,
        )
    return 1 if failures else 0


def _figure_mixes(args: argparse.Namespace):
    """The (dual, quad) mix lists a figure/sweep invocation asked for."""
    from repro.experiments.mixes import mixes_for

    dual = mixes_for(2, args.mixes)
    quad = mixes_for(4, args.mixes if args.mixes else 60)
    return dual, quad


def _figure_producers(runner, dual, quad):
    """``figure name -> callable`` printing-ready headline reductions."""
    from repro.experiments import figures

    return {
        "fig4": lambda: figures.fig4_dual_performance(runner, dual)["overall"],
        "fig5": lambda: figures.fig5_quad_performance(runner, quad)["overall"],
        "fig6": lambda: figures.fig6_dual_fairness(runner, dual)["overall"],
        "fig7": lambda: figures.fig7_quad_fairness(runner, quad)["overall"],
        "fig8": lambda: figures.fig8_sensitivity(runner, dual)["range"],
        "fig9": lambda: figures.fig9_bandwidth_partition_performance(runner, dual)[
            "overall"
        ],
        "fig10": lambda: figures.fig10_bandwidth_partition_fairness(runner, dual)[
            "overall"
        ],
        "fig11": lambda: {
            name: series[-1][1]
            for name, series in figures.fig11_bandwidth_sweep(runner)["speedup"].items()
            if series
        },
        "fig13": lambda: figures.fig13_ptw_partition_performance(runner, dual)[
            "overall"
        ],
        "fig14": lambda: figures.fig14_ptw_partition_fairness(runner, dual)["overall"],
        "fig15": lambda: figures.fig15_pagesize_single(runner)["overall"],
        "dataflow_compare": lambda: figures.dataflow_compare(runner)["overall"],
        "serving_colocation": lambda: figures.serving_colocation(runner)["overall"],
    }


def _make_runner(args: argparse.Namespace, *, profile: bool = False):
    from repro.experiments.runner import ExperimentRunner

    # Progress reporting is always on (serial and parallel alike) unless
    # --quiet asked for silence, so figure and sweep behave identically.
    return ExperimentRunner(
        scale=args.scale,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        progress=None if args.quiet else _print_progress,
        dataflow=args.dataflow,
        replay_mode=args.replay_mode,
        phase=args.phase,
        serving=_serving_params(args),
        run_timeout=args.run_timeout,
        trace_cache=not args.no_trace_cache,
        profile=profile,
    )


def _cmd_figure(args: argparse.Namespace) -> int:
    """Regenerate one paper figure through the cached experiment runner."""
    from repro.experiments.report import format_mapping

    runner = _make_runner(args)
    dual, quad = _figure_mixes(args)
    producers = _figure_producers(runner, dual, quad)
    if args.name not in producers:
        raise SystemExit(
            f"unknown figure {args.name!r}; pick one of {sorted(producers)}"
        )
    data = _round4(producers[args.name]())
    _print_cache_summary(runner, args.quiet)
    print(format_mapping(f"{args.name} (scale={args.scale})", data))
    return _report_failures(runner)


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Regenerate several figures from one deduplicated parallel batch.

    All named figures' spec sets are planned first and executed in a
    single :meth:`ExperimentRunner.run_many` call, so overlapping specs
    (the Ideal/Static solos every sharing figure needs, the shared
    fig4/fig6 and fig9/fig10 sweeps) simulate exactly once.
    """
    return _sweep_with(_make_runner(args), args)


def _sweep_with(runner, args: argparse.Namespace) -> int:
    """The sweep body, on a caller-built runner (plain or profiled)."""
    from repro.experiments import figures
    from repro.experiments.report import format_mapping

    dual, quad = _figure_mixes(args)
    producers = _figure_producers(runner, dual, quad)
    unknown = [name for name in args.names if name not in producers]
    if unknown:
        raise SystemExit(
            f"unknown figures {unknown}; pick from {sorted(producers)}"
        )
    specs = [
        spec
        for name in args.names
        for spec in figures.FIGURE_PLANNERS[name](runner, dual, quad)
    ]
    try:
        with _graceful_termination():
            runner.run_many(specs)
    except KeyboardInterrupt:
        return _report_interrupted_sweep(runner)
    _print_cache_summary(runner, args.quiet)
    for name in args.names:
        data = _round4(producers[name]())
        print(format_mapping(f"{name} (scale={args.scale})", data))
    return _report_failures(runner)


class _graceful_termination:
    """Route SIGTERM through KeyboardInterrupt for the enclosed block.

    SIGINT already raises KeyboardInterrupt; mapping SIGTERM onto the
    same path means a supervisor's polite kill gets the identical
    graceful unwind — the runner journals an ``interrupt`` record and
    everything settled so far stays durable in the cache.  Only the main
    thread may install signal handlers; elsewhere (tests driving the CLI
    from worker threads) this is a no-op.
    """

    def __enter__(self):
        self._previous = None
        if threading.current_thread() is threading.main_thread():
            self._previous = signal.signal(signal.SIGTERM, self._interrupt)
        return self

    def __exit__(self, *exc_info):
        if self._previous is not None:
            signal.signal(signal.SIGTERM, self._previous)
        return False

    @staticmethod
    def _interrupt(signum, frame):
        raise KeyboardInterrupt


def _report_interrupted_sweep(runner) -> int:
    """Partial-failure summary after an interrupted sweep; exit code 130."""
    outcome = runner.last_outcome
    if outcome is not None:
        print(
            f"interrupted: {outcome.succeeded}/{outcome.total} settled "
            f"({outcome.cache_hits} cached, {outcome.executed} executed, "
            f"{len(outcome.failures)} failed); "
            "settled results are cached — rerun to resume",
            file=sys.stderr,
        )
    else:
        print("interrupted before any spec settled", file=sys.stderr)
    _report_failures(runner)
    return 130


def _round4(data: dict) -> dict:
    """Round numeric headline values; keep missing (None) markers as-is."""
    return {
        key: round(value, 4) if isinstance(value, (int, float)) else value
        for key, value in data.items()
    }


def _cmd_models(args: argparse.Namespace) -> int:
    print(f"{'model':8s} {'type':15s} {'layers':>6s} {'MACs':>14s} {'bytes':>12s}")
    for name in zoo.NAMES:
        network = zoo.get(name, args.scale)
        print(
            f"{name:8s} {zoo.CATEGORIES[name]:15s} {len(network.layers):6d} "
            f"{network.total_macs:14d} {network.total_bytes:12d}"
        )
    return 0


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by the ``figure`` and ``sweep`` subcommands."""
    parser.add_argument(
        "--mixes", type=int, default=None,
        help="limit the workload-mix count (default: full dual, 60 quad)",
    )
    parser.add_argument("--scale", default="mini", choices=("mini", "full"))
    parser.add_argument(
        "--dataflow", default="os", choices=registered_dataflows(),
        help="dataflow engine the planned runs default to (dataflow_compare "
             "sweeps all registered engines regardless)",
    )
    parser.add_argument(
        "--replay-mode", default="event", choices=REPLAY_MODES,
        help="replay kernel the planned runs default to (all modes "
             "byte-identical; auto fast-forwards exclusive streaming)",
    )
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for cold simulations (1 = in-process serial)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-run progress lines on stderr",
    )
    parser.add_argument(
        "--run-timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock budget; overruns fail the spec, not the sweep",
    )
    _add_serving_options(parser)
    _add_no_trace_cache_option(parser)


def _add_no_trace_cache_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-trace-cache", action="store_true",
        help="disable the compiled-frontend trace cache (escape hatch: "
             "every run regenerates its request traces live)",
    )


#: CLI flag -> ServingParams field.  A flag left at its ``None`` default
#: means "use the ServingParams default"; when *every* flag is None the
#: whole serving block is omitted so non-serving runs keep their exact
#: legacy cache keys.
_SERVING_FLAG_FIELDS = (
    ("serving_batch", "batch"),
    ("serving_prompt", "prompt"),
    ("decode_steps", "decode_steps"),
    ("experts", "experts"),
    ("capacity_factor", "capacity_factor"),
    ("moe_skew", "moe_skew"),
    ("zipf_alpha", "zipf_alpha"),
    ("arrival", "arrival"),
    ("arrival_rate", "arrival_rate"),
    ("serving_seed", "seed"),
)


def _add_serving_options(parser: argparse.ArgumentParser) -> None:
    """LLM-serving knobs shared by run/mix/figure/sweep/stats/profile."""
    group = parser.add_argument_group(
        "LLM serving",
        "shape gpt2:prefill / gpt2:decode workloads (see repro.models.serving); "
        "--phase applies to bare 'gpt2' workload names",
    )
    group.add_argument(
        "--phase", default=None, choices=serving_models.PHASES,
        help="serving phase bare serving-base workloads resolve to",
    )
    group.add_argument(
        "--serving-batch", type=int, default=None, metavar="N",
        help="concurrent request slots (continuous batching width)",
    )
    group.add_argument(
        "--serving-prompt", type=int, default=None, metavar="TOKENS",
        help="prompt length per request",
    )
    group.add_argument(
        "--decode-steps", type=int, default=None, metavar="N",
        help="decode schedule horizon in steps",
    )
    group.add_argument(
        "--experts", type=int, default=None, metavar="N",
        help="MoE expert count per FFN block",
    )
    group.add_argument(
        "--capacity-factor", type=float, default=None, metavar="F",
        help="per-expert token capacity multiplier (>= 1.0)",
    )
    group.add_argument(
        "--moe-skew", default=None, choices=serving_models.SKEWS,
        help="token-to-expert routing distribution",
    )
    group.add_argument(
        "--zipf-alpha", type=float, default=None, metavar="A",
        help="skew exponent when --moe-skew=zipf",
    )
    group.add_argument(
        "--arrival", default=None, choices=serving_models.ARRIVALS,
        help="request-arrival model (poisson or closed-loop)",
    )
    group.add_argument(
        "--arrival-rate", type=float, default=None, metavar="P",
        help="per-step arrival probability for --arrival=poisson",
    )
    group.add_argument(
        "--serving-seed", type=int, default=None, metavar="SEED",
        help="seed for the arrival and routing trace streams",
    )


def _serving_params(args: argparse.Namespace) -> ServingParams | None:
    """Build ServingParams from flags; None when no serving flag was given."""
    overrides = {
        field: getattr(args, flag)
        for flag, field in _SERVING_FLAG_FIELDS
        if getattr(args, flag, None) is not None
    }
    if not overrides:
        return None
    try:
        return ServingParams(**overrides)
    except ValueError as error:
        raise SystemExit(str(error)) from error


def _serving_networks(names, scale, *, params, default_phase):
    """Resolve workload names serving-aware; exit cleanly on bad names."""
    try:
        return serving_models.networks_for(
            names, scale, params=params, default_phase=default_phase
        )
    except (KeyError, ValueError) as error:
        raise SystemExit(str(error)) from error


def _trace_shards_by_dataflow(store) -> dict[str, int]:
    """Trace-shard counts grouped by dataflow tag, registry order first.

    Trace shards are named after their frontend fingerprint, which leads
    with the compiling engine's name (``os-<digest>.json``), so the tag
    is recoverable from the filename alone.  Shards written before
    fingerprints carried the tag have no ``-`` and group as "untagged".
    """
    counts: dict[str, int] = {}
    for name in store.shard_names():
        stem = name.rsplit(".", 1)[0]
        tag = stem.split("-", 1)[0] if "-" in stem else "untagged"
        counts[tag] = counts.get(tag, 0) + 1
    known = [df for df in registered_dataflows() if df in counts]
    other = sorted(tag for tag in counts if tag not in known)
    return {tag: counts[tag] for tag in (*known, *other)}


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the on-disk result and trace shard stores."""
    from repro.storage import ShardStore

    cache_dir = (
        Path(args.cache_dir) if args.cache_dir else Path.cwd() / ".repro_cache"
    )
    stores = {
        "results": ShardStore(cache_dir),
        "traces": ShardStore(cache_dir / "traces"),
    }
    kinds = [args.only] if args.only else list(stores)
    if args.action == "stats":
        for kind in kinds:
            store = stores[kind]
            usage = store.usage()
            quarantine = f"{usage['quarantined']} quarantined"
            if usage["quarantined"]:
                quarantine += f" ({human_bytes(usage['quarantine_bytes'])})"
            print(
                f"{kind:8s} {usage['shards']:5d} shard(s), "
                f"{human_bytes(usage['bytes']):>10s}, "
                f"{quarantine}  ({store.directory})"
            )
            if kind == "traces":
                for tag, count in _trace_shards_by_dataflow(store).items():
                    print(f"{'':8s} {count:5d} shard(s) tagged {tag}")
        return 0
    for kind in kinds:
        store = stores[kind]
        if getattr(args, "quarantine", False):
            removed = store.clear_quarantine()
            print(
                f"cleared {removed} quarantined {kind} shard(s) "
                f"from {store.quarantine_dir}"
            )
        else:
            removed = store.clear()
            print(f"cleared {removed} {kind} shard(s) from {store.directory}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the sweep daemon until SIGTERM/SIGINT, then drain and exit.

    The runner is built with ``keep_pool=True`` so the supervised worker
    pool stays warm across requests, and the service owns the cache
    (memo + disk), single-flight dedup, bounded admission, deadline
    propagation and the circuit breaker (see :mod:`repro.serve.server`).
    """
    from repro.experiments.runner import ExperimentRunner
    from repro.serve.server import CircuitBreaker, ServeDaemon, SweepService

    runner = ExperimentRunner(
        scale=args.scale,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        progress=None,
        dataflow=args.dataflow,
        replay_mode=args.replay_mode,
        run_timeout=args.run_timeout,
        trace_cache=not args.no_trace_cache,
        keep_pool=True,
    )
    service = SweepService(
        runner,
        queue_limit=args.queue_limit,
        default_deadline_seconds=args.default_deadline,
        drain_timeout=args.drain_timeout,
        breaker=CircuitBreaker(
            threshold=args.breaker_threshold,
            cooldown=args.breaker_cooldown,
        ),
    )
    daemon = ServeDaemon(service, host=args.host, port=args.port)
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: daemon.request_stop())
    daemon.start()
    # The smoke harness and operators parse this line for the bound port
    # (--port 0 asks the OS for an ephemeral one).
    print(f"serving on {daemon.url}", flush=True)
    while not daemon.wait_for_stop(0.2):
        pass
    print("shutdown requested; draining...", file=sys.stderr, flush=True)
    drained = daemon.stop()
    print(
        "stopped (clean drain)" if drained else "stopped (drain timed out)",
        file=sys.stderr,
    )
    return 0 if drained else 1


def _run_observed(args: argparse.Namespace):
    """Build and run the requested mix with observability armed.

    The same :class:`RunSpec` path as ``mnpusim mix``, but the simulator
    is constructed with ``observe=True`` so every component registers
    into the counter registry and the timeline tracer records spans.
    """
    sharing = (
        SharingLevel[args.sharing.upper().lstrip("+")]
        if args.sharing
        else SharingLevel.DWT
    )
    try:
        spec = RunSpec.mix(
            args.workloads,
            sharing,
            scale=args.scale,
            page_bytes=args.page_bytes,
            phase=args.phase,
            serving=_serving_params(args),
        )
    except ValueError as error:
        raise SystemExit(str(error)) from error
    networks = _serving_networks(
        args.workloads, args.scale, params=spec.serving, default_phase=spec.phase
    )
    tracecache.configure(enabled=not args.no_trace_cache)
    sim = MultiCoreNPUSim(
        spec.system(),
        networks,
        observe=True,
        stall_window_ticks=args.stall_window,
    )
    result = _run_sim(sim, args.max_ticks)
    return sim, result


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run a mix with observability on and render the counter tree."""
    sim, result = _run_observed(args)
    snapshot = result.counters
    assert snapshot is not None  # observe=True guarantees a registry
    if args.json:
        target = Path(args.json)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(snapshot, indent=2, sort_keys=True))
        print(f"counter snapshot written to {target}", file=sys.stderr)
    print(format_tree(snapshot, max_depth=args.depth))
    return 0


def _cmd_profile_run(args: argparse.Namespace) -> int:
    """One observed run: counter tree, span summary, Perfetto export."""
    sim, result = _run_observed(args)
    for workload in result.workloads:
        print(
            f"core{workload.core} {workload.workload}: {workload.cycles} cycles, "
            f"PE util {workload.pe_utilization:.3f}"
        )
    timeline = sim.timeline
    assert timeline is not None
    print(
        f"timeline: {timeline.total_spans()} spans buffered "
        f"({timeline.total_dropped()} dropped)",
        file=sys.stderr,
    )
    if args.trace:
        target = timeline.export(args.trace)
        print(
            f"Perfetto trace written to {target} "
            f"(open at https://ui.perfetto.dev)",
            file=sys.stderr,
        )
    snapshot = result.counters
    assert snapshot is not None
    if args.counters:
        target = Path(args.counters)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(snapshot, indent=2, sort_keys=True))
        print(f"counter snapshot written to {target}", file=sys.stderr)
    print(format_tree(snapshot, max_depth=args.depth))
    return 0


def _cmd_profile_sweep(args: argparse.Namespace) -> int:
    """A figure sweep under the phase profiler; prints the phase table."""
    runner = _make_runner(args, profile=True)
    code = _sweep_with(runner, args)
    assert runner.profiler is not None
    print(format_profile(runner.profiler.snapshot()))
    return code


def _add_observed_mix_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by ``stats`` and ``profile run`` (mix-shaped)."""
    parser.add_argument(
        "workloads", nargs="+", choices=WORKLOAD_CHOICES, metavar="workload"
    )
    parser.add_argument("--sharing", default="DWT", help="D, DW or DWT")
    parser.add_argument("--scale", default="mini", choices=("mini", "full"))
    parser.add_argument("--page-bytes", type=int, default=4096)
    parser.add_argument(
        "--max-ticks", type=int, default=DEFAULT_MAX_TICKS,
        help="abort a run exceeding this many global ticks (safety valve)",
    )
    parser.add_argument(
        "--stall-window", type=int, default=DEFAULT_STALL_WINDOW_TICKS,
        help="livelock watchdog: abort when no core retires work for this "
             "many global ticks (0 disables)",
    )
    parser.add_argument(
        "--depth", type=int, default=None, metavar="N",
        help="truncate the counter tree below this depth",
    )
    _add_serving_options(parser)
    _add_no_trace_cache_option(parser)


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``mnpusim`` console script."""
    parser = argparse.ArgumentParser(
        prog="mnpusim", description="Multi-core NPU simulator (mNPUsim reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run from mNPUsim-style config files")
    run.add_argument("arch_list", help="file listing one arch_config path per core")
    run.add_argument("network_list", help="file listing one benchmark name per core")
    run.add_argument("dram_config", help="shared DRAM config file")
    run.add_argument("npumem_list", help="file listing one npumem_config path per core")
    run.add_argument("result_path", help="output directory")
    run.add_argument("misc_config", help="misc (execution mode) config file")
    run.add_argument("--scale", default="mini", choices=("mini", "full"))
    run.add_argument(
        "--dataflow", default=None, choices=registered_dataflows(),
        help="override the arch_config files' dataflow engine on every core",
    )
    run.add_argument(
        "--replay-mode", default=None, choices=REPLAY_MODES,
        help="override the misc_config file's replay kernel (event = "
             "per-event baseline, batched = private-heap batching, auto "
             "= batched + analytic fast-forward; all byte-identical)",
    )
    run.add_argument(
        "--static-dram", action="store_true", help="partition channels statically"
    )
    run.add_argument(
        "--static-ptw", action="store_true", help="partition walkers statically"
    )
    run.add_argument("--static-tlb", action="store_true", help="keep per-core TLBs")
    run.add_argument(
        "--trace", action="store_true",
        help="write dram/tlb/ptw request logs (the artifact's DRAMREQ_NPU_TRACE)",
    )
    run.add_argument(
        "--max-ticks", type=int, default=DEFAULT_MAX_TICKS,
        help="abort a run exceeding this many global ticks (safety valve)",
    )
    run.add_argument(
        "--stall-window", type=int, default=DEFAULT_STALL_WINDOW_TICKS,
        help="livelock watchdog: abort when no core retires work for this "
             "many global ticks (0 disables)",
    )
    _add_serving_options(run)
    _add_no_trace_cache_option(run)
    run.set_defaults(func=_cmd_run)

    mix = sub.add_parser("mix", help="co-run named benchmarks under a sharing level")
    mix.add_argument(
        "workloads", nargs="+", choices=WORKLOAD_CHOICES, metavar="workload"
    )
    mix.add_argument("--sharing", default="DWT", help="D, DW or DWT")
    mix.add_argument("--scale", default="mini", choices=("mini", "full"))
    mix.add_argument("--page-bytes", type=int, default=4096)
    mix.add_argument(
        "--dataflow", default="os", choices=registered_dataflows(),
        help="dataflow engine compiling every core's traces (default: os)",
    )
    mix.add_argument(
        "--replay-mode", default="event", choices=REPLAY_MODES,
        help="replay kernel (default: event; batched/auto are proven "
             "byte-identical and faster on exclusively-owned resources)",
    )
    mix.add_argument("--result-path", default=None)
    mix.add_argument(
        "--max-ticks", type=int, default=DEFAULT_MAX_TICKS,
        help="abort a run exceeding this many global ticks (safety valve)",
    )
    mix.add_argument(
        "--stall-window", type=int, default=DEFAULT_STALL_WINDOW_TICKS,
        help="livelock watchdog: abort when no core retires work for this "
             "many global ticks (0 disables)",
    )
    _add_serving_options(mix)
    _add_no_trace_cache_option(mix)
    mix.set_defaults(func=_cmd_mix)

    models = sub.add_parser("models", help="list the bundled benchmark zoo")
    models.add_argument("--scale", default="mini", choices=("mini", "full"))
    models.set_defaults(func=_cmd_models)

    figure = sub.add_parser(
        "figure", help="regenerate one paper figure's headline numbers"
    )
    figure.add_argument(
        "name",
        help="fig4, fig5, ..., fig15, dataflow_compare or serving_colocation",
    )
    _add_sweep_options(figure)
    figure.set_defaults(func=_cmd_figure)

    sweep = sub.add_parser(
        "sweep",
        help="regenerate several figures from one deduplicated parallel batch",
    )
    sweep.add_argument("names", nargs="+", metavar="figure",
                       help="figure names, e.g. fig4 fig6 fig9")
    _add_sweep_options(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    stats = sub.add_parser(
        "stats",
        help="run a mix with observability on and render the counter tree",
    )
    _add_observed_mix_options(stats)
    stats.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the full counter snapshot as JSON",
    )
    stats.set_defaults(func=_cmd_stats)

    profile = sub.add_parser(
        "profile",
        help="observability deep-dive: Perfetto traces and phase profiles",
    )
    profile_sub = profile.add_subparsers(dest="mode", required=True)

    profile_run = profile_sub.add_parser(
        "run",
        help="one observed mix: counter tree, span summary, Perfetto export",
    )
    _add_observed_mix_options(profile_run)
    profile_run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="export the timeline as Chrome trace-event JSON "
             "(open at https://ui.perfetto.dev)",
    )
    profile_run.add_argument(
        "--counters", default=None, metavar="PATH",
        help="also write the counter snapshot as JSON",
    )
    profile_run.set_defaults(func=_cmd_profile_run)

    profile_sweep = profile_sub.add_parser(
        "sweep",
        help="run a figure sweep under the phase profiler",
    )
    profile_sweep.add_argument("names", nargs="+", metavar="figure",
                               help="figure names, e.g. fig4 fig6 fig9")
    _add_sweep_options(profile_sweep)
    profile_sweep.set_defaults(func=_cmd_profile_sweep)

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk result/trace caches"
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument("--cache-dir", default=None,
                       help="cache root (default: ./.repro_cache)")
    cache.add_argument(
        "--only", choices=("results", "traces"), default=None,
        help="restrict the action to one shard store",
    )
    cache.add_argument(
        "--quarantine", action="store_true",
        help="clear only the quarantined (corrupt) shards, keeping the "
             "healthy cache intact",
    )
    cache.set_defaults(func=_cmd_cache)

    serve = sub.add_parser(
        "serve",
        help="run the sweep daemon: cached, deduplicated runs over HTTP",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 = ephemeral; the bound port is printed)",
    )
    serve.add_argument("--scale", default="mini", choices=("mini", "full"))
    serve.add_argument(
        "--dataflow", default="os", choices=registered_dataflows(),
        help="dataflow engine served runs default to",
    )
    serve.add_argument(
        "--replay-mode", default="event", choices=REPLAY_MODES,
        help="replay kernel served runs default to",
    )
    serve.add_argument("--cache-dir", default=None,
                       help="cache root (default: ./.repro_cache)")
    serve.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes for cold simulations",
    )
    serve.add_argument(
        "--run-timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock budget (request deadlines tighten it)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="max queued cold runs before shedding with 429",
    )
    serve.add_argument(
        "--default-deadline", type=float, default=300.0, metavar="SECONDS",
        help="deadline applied to requests that carry none",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="max time to let in-flight runs settle on shutdown",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive worker-pool crashes that open the circuit breaker",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS",
        help="seconds the breaker stays open before a half-open probe",
    )
    _add_no_trace_cache_option(serve)
    serve.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

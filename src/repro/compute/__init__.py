"""Compute-side models: dataflow engines, tiling, trace compilation."""

from repro.compute.dataflow import (
    DataflowEngine,
    get_engine,
    register,
    registered_dataflows,
)
from repro.compute.systolic import (
    gemm_on_array,
    is_pass_cycles,
    os_pass_cycles,
    ws_pass_cycles,
)
from repro.compute.tiling import Tile, TileShape, choose_tile_shape, tiles_for_gemm
from repro.compute.requestgen import RequestGenerator, Run, TileTraffic
from repro.compute.tracecache import (
    CompiledTrace,
    TraceCache,
    compile_trace,
    frontend_fingerprint,
    trace_source,
)

__all__ = [
    "DataflowEngine",
    "get_engine",
    "register",
    "registered_dataflows",
    "os_pass_cycles",
    "ws_pass_cycles",
    "is_pass_cycles",
    "gemm_on_array",
    "TileShape",
    "Tile",
    "choose_tile_shape",
    "tiles_for_gemm",
    "RequestGenerator",
    "Run",
    "TileTraffic",
    "CompiledTrace",
    "TraceCache",
    "compile_trace",
    "frontend_fingerprint",
    "trace_source",
]

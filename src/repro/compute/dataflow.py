"""Pluggable dataflow engines: tiling policy plus compute-cycle model.

The paper evaluates only the output-stationary dataflow and lists the
others as future work (section 4.1.2).  This module makes the dataflow a
*component* rather than a branch (the SCALE-Sim v3 / ONNXim structure):
each engine is a named object owning the two decisions a dataflow
actually makes on a systolic array —

* **tiling policy** (:meth:`DataflowEngine.tile_shape` /
  :meth:`DataflowEngine.tiles`): how a GEMM is decomposed under the
  half-SPM double-buffering budget and in which order tiles execute;
* **compute-cycle model** (:meth:`DataflowEngine.estimate`): how many
  array cycles one ``(m, k, n)`` tile costs.

Every engine produces the same per-tile artifacts — ``Run`` lists and
:class:`~repro.compute.systolic.ComputeEstimate` objects flowing through
:class:`~repro.compute.requestgen.RequestGenerator` into the
``CompiledTrace`` path — so the event-loop replay side is completely
indifferent to which engine compiled a trace.

Engines register themselves in a process-wide registry keyed by the
``ArchConfig.dataflow`` string.  The registry is the single source of
truth for which dataflows exist: ``ArchConfig`` validation, the CLI's
``--dataflow`` choices and the ``dataflow_compare`` figure all enumerate
it instead of hardcoding names.

**Fingerprint versioning rule**: each engine carries an integer
``version``.  :func:`~repro.compute.tracecache.frontend_fingerprint`
mixes ``(name, version)`` into the trace-cache key, so refining one
engine's timing or tiling model invalidates exactly that engine's cached
traces — bump the engine's ``version`` whenever its emitted tiles,
runs or cycle counts change for any input.  The shared
``TRACE_VERSION`` stays reserved for changes to the shard *format*.

The three stock engines:

* ``os`` — output stationary, the paper's dataflow.  Partial sums stay
  in place; ``ceil(m/R) * ceil(n/C)`` passes of
  ``2R + C + k - 2`` cycles.  Byte-identical to the pre-registry
  implementation (pinned by the golden-equivalence suite).
* ``ws`` — weight stationary.  An ``R x C`` weight block is pre-loaded
  and all ``n`` activation columns stream through it:
  ``ceil(k/R) * ceil(m/C)`` folds of ``R + (n + R + C - 2)`` cycles.
  Its slab tiling grows ``Tm`` in ``array_cols`` steps, because ``m``
  maps to array *columns* under WS.
* ``is`` — input stationary, the mirror of WS: an ``R x C`` block of the
  input activations stays resident and the weight columns stream.
  ``ceil(k/R) * ceil(n/C)`` folds of ``R + (m + R + C - 2)`` cycles, so
  IS amortizes the input load over large ``m`` the way WS amortizes the
  weight load over large ``n``.  Its slab tiling aligns ``Tk`` (the
  resident reduction rows) down to an ``array_rows`` multiple so folds
  run full.
"""

from __future__ import annotations

from typing import ClassVar, Iterator

from repro.compute.systolic import (
    ComputeEstimate,
    is_pass_cycles,
    os_pass_cycles,
    ws_pass_cycles,
)
from repro.compute.tiling import (
    Tile,
    TileShape,
    choose_tile_shape,
    tiles_for_gemm,
)
from repro.config.arch import ArchConfig
from repro.models.layers import GemmOp


def _check_dims(m: int, k: int, n: int) -> None:
    if min(m, k, n) <= 0:
        raise ValueError("GEMM dimensions must be positive")


def _estimate(arch: ArchConfig, cycles: int, m: int, k: int, n: int) -> ComputeEstimate:
    """Package ``cycles`` with the MAC count and PE utilization.

    Utilization is MACs divided by the MAC slots the array offers during
    the computation (``cycles * R * C``) — the under-utilization metric
    that motivates multi-core NPUs in the paper's introduction.
    """
    macs = m * k * n
    return ComputeEstimate(
        cycles=cycles,
        macs=macs,
        pe_utilization=macs / (cycles * arch.num_pes),
    )


class DataflowEngine:
    """One dataflow: a tiling policy and a compute-cycle model.

    Subclasses set ``name`` (the ``ArchConfig.dataflow`` string) and
    ``version`` (the fingerprint tag — bump on any output-changing
    model refinement), and implement :meth:`estimate`.  The tiling
    hooks default to the shared slab policy of
    :mod:`repro.compute.tiling`; override them when the dataflow wants
    a different decomposition.
    """

    name: ClassVar[str]
    version: ClassVar[int]

    def tile_shape(self, gemm: GemmOp, arch: ArchConfig) -> TileShape:
        """The tile shape this engine compiles ``gemm`` with."""
        return choose_tile_shape(gemm, arch)

    def tiles(self, gemm: GemmOp, shape: TileShape) -> Iterator[Tile]:
        """Tile execution order (reduction innermost by default)."""
        return tiles_for_gemm(gemm, shape)

    def estimate(self, arch: ArchConfig, m: int, k: int, n: int) -> ComputeEstimate:
        """Array cycles / utilization of one ``(m, k, n)`` GEMM tile."""
        raise NotImplementedError


class OutputStationary(DataflowEngine):
    """The paper's dataflow: outputs accumulate in place."""

    name = "os"
    version = 1

    def estimate(self, arch: ArchConfig, m: int, k: int, n: int) -> ComputeEstimate:
        _check_dims(m, k, n)
        rows, cols = arch.array_rows, arch.array_cols
        passes = -(-m // rows) * (-(-n // cols))
        return _estimate(arch, passes * os_pass_cycles(rows, cols, k), m, k, n)


class WeightStationary(DataflowEngine):
    """Weights resident, activations stream (SCALE-Sim WS timing)."""

    name = "ws"
    version = 1

    def tile_shape(self, gemm: GemmOp, arch: ArchConfig) -> TileShape:
        # Under WS, m maps to array columns: grow the slab's Tm in
        # array-width steps so every fold drives full column groups.
        return choose_tile_shape(gemm, arch, m_step=arch.array_cols)

    def estimate(self, arch: ArchConfig, m: int, k: int, n: int) -> ComputeEstimate:
        _check_dims(m, k, n)
        rows, cols = arch.array_rows, arch.array_cols
        folds = -(-k // rows) * (-(-m // cols))
        return _estimate(arch, folds * ws_pass_cycles(rows, cols, n), m, k, n)


class InputStationary(DataflowEngine):
    """Inputs resident, weights stream — the mirror of WS."""

    name = "is"
    version = 1

    def tile_shape(self, gemm: GemmOp, arch: ArchConfig) -> TileShape:
        # The resident input block spans Tk reduction rows; align Tk
        # down to the array height so every fold loads a full block.
        return choose_tile_shape(gemm, arch, k_align=arch.array_rows)

    def estimate(self, arch: ArchConfig, m: int, k: int, n: int) -> ComputeEstimate:
        _check_dims(m, k, n)
        rows, cols = arch.array_rows, arch.array_cols
        folds = -(-k // rows) * (-(-n // cols))
        return _estimate(arch, folds * is_pass_cycles(rows, cols, m), m, k, n)


# ---------------------------------------------------------------------- #
# The registry
# ---------------------------------------------------------------------- #

_REGISTRY: dict[str, DataflowEngine] = {}


def register(engine: DataflowEngine) -> DataflowEngine:
    """Add an engine to the registry (its ``name`` becomes the key).

    Registration order is preserved — it is the order ``ArchConfig``
    error messages, CLI choices and ``dataflow_compare`` enumerate.
    Duplicate names raise: an engine's identity (name, version) is what
    content-addresses its traces, so silently replacing one would alias
    two different models under one cache key.
    """
    if engine.name in _REGISTRY:
        raise ValueError(f"dataflow engine {engine.name!r} is already registered")
    _REGISTRY[engine.name] = engine
    return engine


def get_engine(name: str) -> DataflowEngine:
    """The registered engine for ``name``; raises with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown dataflow {name!r}; registered engines: "
            + ", ".join(_REGISTRY)
        ) from None


def registered_dataflows() -> tuple[str, ...]:
    """Names of all registered engines, in registration order."""
    return tuple(_REGISTRY)


register(OutputStationary())
register(WeightStationary())
register(InputStationary())

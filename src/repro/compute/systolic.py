"""Systolic-array timing models (SCALE-Sim style).

The paper implements the output-stationary (OS) dataflow and lists other
dataflows as future work (section 4.1.2); this module implements OS *and*
that future work, weight stationary (WS).

**Output stationary**: an ``R x C`` array computes an ``R x C`` block of
outputs per *pass*: A-operand rows stream in from the left, B-operand
columns from the top, partial sums stay in place.  SCALE-Sim's timing for
one pass over a reduction depth ``k`` is::

    pass_cycles = 2*R + C + k - 2

(``k`` cycles of streaming plus the skew/fill/drain of the array).  A
``(m, k, n)`` GEMM needs ``ceil(m/R) * ceil(n/C)`` passes.

**Weight stationary**: the array pre-loads an ``R x C`` block of the
weight matrix A (``R`` reduction rows by ``C`` output features), then
streams all ``n`` activation columns through it::

    pass_cycles = R + (n + R + C - 2)

(``R`` cycles of weight loading, then ``n`` columns with fill/drain
skew).  A GEMM needs ``ceil(k/R) * ceil(m/C)`` weight folds.  WS
amortizes weight loads over large ``n`` and pays per-fold overheads for
deep reductions — the classic OS/WS trade-off SCALE-Sim exposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.arch import ArchConfig


def os_pass_cycles(rows: int, cols: int, k: int) -> int:
    """Cycles for one output-stationary pass over reduction depth ``k``."""
    if rows <= 0 or cols <= 0 or k <= 0:
        raise ValueError("pass dimensions must be positive")
    return 2 * rows + cols + k - 2


@dataclass(frozen=True)
class ComputeEstimate:
    """Timing/utilization of one GEMM (or GEMM tile) on the array."""

    cycles: int
    macs: int
    pe_utilization: float


def ws_pass_cycles(rows: int, cols: int, n: int) -> int:
    """Cycles for one weight-stationary fold streaming ``n`` columns."""
    if rows <= 0 or cols <= 0 or n <= 0:
        raise ValueError("pass dimensions must be positive")
    return rows + n + rows + cols - 2


def gemm_on_array(arch: ArchConfig, m: int, k: int, n: int) -> ComputeEstimate:
    """Cycles and PE utilization of an ``(m, k, n)`` GEMM on ``arch``.

    Utilization is MACs divided by the MAC slots the array offers during
    the computation (``cycles * R * C``).  Small ``m``/``n`` relative to
    the array dimensions waste PEs — the under-utilization problem that
    motivates multi-core NPUs in the paper's introduction.
    """
    if min(m, k, n) <= 0:
        raise ValueError("GEMM dimensions must be positive")
    rows, cols = arch.array_rows, arch.array_cols
    if arch.dataflow == "ws":
        folds = -(-k // rows) * (-(-m // cols))
        cycles = folds * ws_pass_cycles(rows, cols, n)
    else:  # output stationary
        passes = -(-m // rows) * (-(-n // cols))
        cycles = passes * os_pass_cycles(rows, cols, k)
    macs = m * k * n
    return ComputeEstimate(
        cycles=cycles,
        macs=macs,
        pe_utilization=macs / (cycles * arch.num_pes),
    )

"""Systolic-array timing primitives (SCALE-Sim style).

The paper implements the output-stationary (OS) dataflow and lists other
dataflows as future work (section 4.1.2).  This module holds the
per-pass timing formulas those dataflows are built from; the dataflow
*engines* that compose them (tiling policy + tile-level cost model) live
in :mod:`repro.compute.dataflow`.

**Output stationary**: an ``R x C`` array computes an ``R x C`` block of
outputs per *pass*: A-operand rows stream in from the left, B-operand
columns from the top, partial sums stay in place.  SCALE-Sim's timing for
one pass over a reduction depth ``k`` is::

    pass_cycles = 2*R + C + k - 2

(``k`` cycles of streaming plus the skew/fill/drain of the array).  A
``(m, k, n)`` GEMM needs ``ceil(m/R) * ceil(n/C)`` passes.

**Weight stationary**: the array pre-loads an ``R x C`` block of the
weight matrix A (``R`` reduction rows by ``C`` output features), then
streams all ``n`` activation columns through it::

    pass_cycles = R + (n + R + C - 2)

(``R`` cycles of weight loading, then ``n`` columns with fill/drain
skew).  A GEMM needs ``ceil(k/R) * ceil(m/C)`` weight folds.  WS
amortizes weight loads over large ``n`` and pays per-fold overheads for
deep reductions — the classic OS/WS trade-off SCALE-Sim exposes.

**Input stationary**: the mirror of WS — an ``R x C`` block of the
*input* activations (``R`` reduction rows by ``C`` output columns) stays
resident while the ``m`` weight rows stream through it::

    pass_cycles = R + (m + R + C - 2)

A GEMM needs ``ceil(k/R) * ceil(n/C)`` input folds, so IS amortizes the
input load over large ``m`` the way WS amortizes weights over large
``n``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.config.arch import ArchConfig


def os_pass_cycles(rows: int, cols: int, k: int) -> int:
    """Cycles for one output-stationary pass over reduction depth ``k``."""
    if rows <= 0 or cols <= 0 or k <= 0:
        raise ValueError("pass dimensions must be positive")
    return 2 * rows + cols + k - 2


@dataclass(frozen=True)
class ComputeEstimate:
    """Timing/utilization of one GEMM (or GEMM tile) on the array."""

    cycles: int
    macs: int
    pe_utilization: float


def ws_pass_cycles(rows: int, cols: int, n: int) -> int:
    """Cycles for one weight-stationary fold streaming ``n`` columns."""
    if rows <= 0 or cols <= 0 or n <= 0:
        raise ValueError("pass dimensions must be positive")
    return rows + n + rows + cols - 2


def is_pass_cycles(rows: int, cols: int, m: int) -> int:
    """Cycles for one input-stationary fold streaming ``m`` weight rows."""
    if rows <= 0 or cols <= 0 or m <= 0:
        raise ValueError("pass dimensions must be positive")
    return rows + m + rows + cols - 2


def gemm_on_array(arch: ArchConfig, m: int, k: int, n: int) -> ComputeEstimate:
    """Deprecated: cycles/utilization of an ``(m, k, n)`` GEMM on ``arch``.

    This predates the dataflow-engine registry and is kept as a shim for
    external callers and old scripts; it routes through the engine named
    by ``arch.dataflow`` and returns exactly what that engine's
    ``estimate`` does.  New code should resolve the engine itself::

        from repro.compute.dataflow import get_engine
        get_engine(arch.dataflow).estimate(arch, m, k, n)
    """
    warnings.warn(
        "gemm_on_array is deprecated; use "
        "repro.compute.dataflow.get_engine(arch.dataflow).estimate(arch, m, k, n)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.compute.dataflow import get_engine

    return get_engine(arch.dataflow).estimate(arch, m, k, n)

"""The compile phase: per-frontend trace compilation and its caches.

mNPUsim's own architecture is trace-driven (paper Figure 3): the SW
stack lowers each core's workload into a per-tile DRAM request trace
*once*, and the HW simulator replays that trace against the contended
memory system.  This module makes the split explicit for the
reproduction:

* **Compile** — :func:`compile_trace` lowers one ``(Network,
  ArchConfig)`` pair through the full SW stack (im2col → GEMM → tiling →
  run-list generation → systolic timing) into an immutable
  :class:`CompiledTrace`: every layer's tile sequence with its
  :class:`~repro.compute.requestgen.Run` lists and
  :class:`~repro.compute.systolic.ComputeEstimate`, plus the pre-run
  summary statistics.
* **Replay** — :class:`~repro.core.npu_core.NpuCore` consumes any
  *trace source* (``all_tiles()`` / ``summary()`` /
  ``memory_footprint_bytes``); a :class:`CompiledTrace` replays stored
  tuples, a live :class:`~repro.compute.requestgen.RequestGenerator`
  streams-and-discards.  The two are observationally identical (pinned
  by the golden-equivalence suite), so caching is purely a wall-time
  optimization.

The cache is two-level and content-addressed by
:func:`frontend_fingerprint`, a stable hash over the network topology
and the *traffic-affecting* arch fields only — memory-side sweeps
(bandwidth partitions, page sizes, TLB/PTW splits, DRAM timing) share
one compiled frontend across every configuration they try:

1. an in-process LRU memo bounded by total object count
   (:data:`MEMO_MAX_OBJECTS`, the budget that used to live inside
   ``RequestGenerator``), and
2. an on-disk shard store (``.repro_cache/traces/`` by default) reusing
   the crash-safe machinery of :mod:`repro.storage`: atomic tmp+rename
   publication, sha256 sidecar, quarantine-and-recompile on corruption.

Workloads whose trace would exceed the memo budget are *not*
materialized: :meth:`TraceCache.get` returns ``None`` and callers fall
back to the bounded-memory stream-and-discard
:class:`RequestGenerator` path, exactly as before this cache existed.

The process-level cache used by :class:`~repro.core.simulator.
MultiCoreNPUSim` is managed with :func:`configure` /
:func:`trace_source`; set the environment variable
``REPRO_NO_TRACE_CACHE=1`` (or pass ``--no-trace-cache`` to the CLI) to
disable it entirely.
"""

from __future__ import annotations

import dataclasses
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Protocol, Union

from repro.compute.dataflow import get_engine
from repro.compute.requestgen import RequestGenerator, Run, TileTraffic
from repro.compute.systolic import ComputeEstimate
from repro.compute.tiling import Tile
from repro.config.arch import ArchConfig
from repro.models.layers import Network
from repro.storage import ShardStore

try:  # blake2b is the fastest stdlib hash for short payloads
    from hashlib import blake2b as _fingerprint_hash
except ImportError:  # pragma: no cover - blake2 ships with CPython
    from hashlib import sha256 as _fingerprint_hash

#: Bump when the trace shard layout (or trace semantics) changes;
#: mismatched shards are quarantined and recompiled.
TRACE_VERSION = 1

#: Total objects (tiles + runs) the in-process memo may hold across all
#: compiled traces.  Traces that alone exceed this are never
#: materialized — their workloads keep the stream-and-discard path — so
#: full-scale runs cannot balloon memory through the cache.  This is the
#: budget formerly enforced per-``RequestGenerator``.
MEMO_MAX_OBJECTS = 1 << 20

#: Environment escape hatch: any non-empty value disables the process
#: cache (the CLI's ``--no-trace-cache`` sets the same switch).
DISABLE_ENV = "REPRO_NO_TRACE_CACHE"

#: Arch fields that shape the generated traffic/compute trace.  Clock
#: frequency and DMA issue width deliberately excluded: they change
#: *when* requests issue, not which requests exist, and live entirely on
#: the replay side.
_TRAFFIC_ARCH_FIELDS = (
    "array_rows",
    "array_cols",
    "spm_bytes",
    "dataflow",
    "element_bytes",
    "dram_transaction_bytes",
)


class TraceSource(Protocol):
    """What the replay side needs from a frontend (compiled or live)."""

    @property
    def memory_footprint_bytes(self) -> int: ...

    @property
    def num_layers(self) -> int: ...

    def all_tiles(self) -> Iterator[TileTraffic]: ...

    def summary(self) -> dict[str, float]: ...


def frontend_fingerprint(network: Network, arch: ArchConfig) -> str:
    """Stable content hash of one frontend: topology + traffic arch fields.

    The fingerprint is computed from a canonical JSON rendering, so it is
    identical across processes, machines and Python hash seeds; any
    change to a layer definition or to a traffic-affecting arch field
    yields a new fingerprint (and therefore a recompile), while replay-
    side knobs (frequency, DMA width, the whole memory system) share the
    compiled trace.

    The dataflow engine that compiles the trace contributes its
    ``(name, version)`` pair to the hashed payload — bumping an engine's
    ``version`` after a model refinement invalidates exactly that
    engine's cached traces — and the engine name also prefixes the
    returned fingerprint (``os-<digest>``), so on-disk trace shards are
    attributable to their dataflow by filename alone (``mnpusim cache
    stats`` groups on this tag).

    Serving frontends (networks named with the
    :data:`repro.models.serving.NAME_PREFIX` ``srv-`` marker) carry that
    marker between the engine tag and the digest (``os-srv-<digest>``),
    so schedule-unrolled serving traces are identifiable on disk too.
    The network *name* is deliberately not part of the hashed payload —
    identical layer lists share a trace regardless of naming — so the
    tag rides outside the digest.
    """
    engine = get_engine(arch.dataflow)
    layers = [
        [type(layer).__name__, dataclasses.asdict(layer)]
        for layer in network.layers
    ]
    payload = {
        "version": TRACE_VERSION,
        "engine": [engine.name, engine.version],
        "arch": {name: getattr(arch, name) for name in _TRAFFIC_ARCH_FIELDS},
        "layers": layers,
    }
    digest = _fingerprint_hash(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    )
    tag = "srv-" if network.name.startswith("srv-") else ""
    return f"{engine.name}-{tag}{digest.hexdigest()[:32]}"


@dataclass(frozen=True, eq=False)
class CompiledTrace:
    """One frontend, fully lowered: the immutable compile-phase artifact.

    Replaying a compiled trace is indistinguishable from re-running the
    request generator (all objects are frozen and generation is
    deterministic); ``all_tiles()`` hands the replay loop prebuilt
    :class:`TileTraffic` tuples instead of re-deriving them.
    """

    fingerprint: str
    network_name: str
    memory_footprint_bytes: int
    layers: tuple[tuple[TileTraffic, ...], ...]
    stats: dict[str, float] = field(repr=False)
    object_cost: int = 0

    @property
    def num_layers(self) -> int:
        """Layers in the workload."""
        return len(self.layers)

    @property
    def num_tiles(self) -> int:
        """Total tiles across all layers."""
        return sum(len(layer) for layer in self.layers)

    def layer_tiles(self, layer_index: int) -> Iterator[TileTraffic]:
        """Replay the tile traffic of one layer, in execution order."""
        return iter(self.layers[layer_index])

    def all_tiles(self) -> Iterator[TileTraffic]:
        """Replay every tile of every layer, in execution order."""
        for layer in self.layers:
            yield from layer

    def summary(self) -> dict[str, float]:
        """The pre-run statistics computed at compile time."""
        return dict(self.stats)


def _trace_cost(layers: list[tuple[TileTraffic, ...]]) -> int:
    """Objects (tiles + runs) a materialized trace holds."""
    return sum(
        1 + len(tile.reads) + len(tile.writes)
        for layer in layers
        for tile in layer
    )


def compile_trace(
    network: Network,
    arch: ArchConfig,
    *,
    max_objects: int | None = None,
    fingerprint: str | None = None,
) -> CompiledTrace | None:
    """Lower one frontend into a :class:`CompiledTrace`.

    Returns ``None`` when the trace would exceed ``max_objects`` (tiles
    plus runs): oversized workloads keep the bounded-memory
    stream-and-discard :class:`RequestGenerator` path instead of
    materializing gigabytes of request lists.  The budget is checked
    while compiling, so an oversized workload costs at most one partial
    generation pass.
    """
    generator = RequestGenerator(network, arch)
    layers: list[tuple[TileTraffic, ...]] = []
    cost = 0
    for layer_index in range(generator.num_layers):
        tiles = tuple(generator.layer_tiles(layer_index))
        cost += _trace_cost([tiles])
        if max_objects is not None and cost > max_objects:
            return None
        layers.append(tiles)
    return CompiledTrace(
        fingerprint=fingerprint
        if fingerprint is not None
        else frontend_fingerprint(network, arch),
        network_name=network.name,
        memory_footprint_bytes=generator.memory_footprint_bytes,
        layers=tuple(layers),
        stats=_summarize(layers, arch),
        object_cost=cost,
    )


def _summarize(
    layers: list[tuple[TileTraffic, ...]], arch: ArchConfig
) -> dict[str, float]:
    """The pre-run summary, accumulated exactly like the live generator."""
    total_macs = 0
    total_cycles = 0
    read_txns = 0
    write_txns = 0
    for layer in layers:
        for traffic in layer:
            total_macs += traffic.compute.macs
            total_cycles += traffic.compute.cycles
            read_txns += traffic.read_txns
            write_txns += traffic.write_txns
    traffic_bytes = (read_txns + write_txns) * arch.dram_transaction_bytes
    return {
        "macs": float(total_macs),
        "ideal_compute_cycles": float(total_cycles),
        "pe_utilization": total_macs / (total_cycles * arch.num_pes),
        "read_txns": float(read_txns),
        "write_txns": float(write_txns),
        "traffic_bytes": float(traffic_bytes),
        "bytes_per_cycle": traffic_bytes / total_cycles,
    }


# ---------------------------------------------------------------------- #
# Serialization (the on-disk shard format)
# ---------------------------------------------------------------------- #


def encode_trace(trace: CompiledTrace) -> bytes:
    """Serialize a trace to its compact JSON shard payload.

    Floats survive the round trip exactly (``json`` emits the shortest
    representation that parses back to the identical double), so a
    disk-loaded trace replays byte-identically to a fresh compile.
    """
    layers = [
        [
            [
                [t.m0, t.n0, t.k0, t.tm, t.tn, t.tk,
                 int(t.first_k), int(t.last_k)],
                [[run.addr, run.count] for run in tile.reads],
                [[run.addr, run.count] for run in tile.writes],
                [tile.compute.cycles, tile.compute.macs,
                 tile.compute.pe_utilization],
            ]
            for tile in layer
            for t in (tile.tile,)
        ]
        for layer in trace.layers
    ]
    payload = {
        "version": TRACE_VERSION,
        "fingerprint": trace.fingerprint,
        "network": trace.network_name,
        "footprint": trace.memory_footprint_bytes,
        "summary": trace.stats,
        "layers": layers,
    }
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()


def decode_trace(
    raw: bytes, fingerprint: str
) -> tuple[CompiledTrace | None, str | None]:
    """``(trace, None)`` when the shard is sound, else ``(None, reason)``.

    Matches the :meth:`repro.storage.ShardStore.read_validated` contract,
    so corrupt or stale shards are quarantined and recompiled.
    """
    try:
        payload = json.loads(raw)
    except ValueError:
        return None, "unparseable JSON (truncated write?)"
    if not isinstance(payload, dict):
        return None, "malformed shard structure"
    if payload.get("version") != TRACE_VERSION:
        return None, (
            f"trace-version mismatch ({payload.get('version')} != {TRACE_VERSION})"
        )
    if payload.get("fingerprint") != fingerprint:
        return None, "fingerprint does not match request"
    try:
        layers = []
        for layer_index, encoded in enumerate(payload["layers"]):
            tiles = []
            for shape, reads, writes, compute in encoded:
                m0, n0, k0, tm, tn, tk, first_k, last_k = shape
                tiles.append(
                    TileTraffic(
                        layer_index=layer_index,
                        tile=Tile(
                            m0=m0, n0=n0, k0=k0, tm=tm, tn=tn, tk=tk,
                            first_k=bool(first_k), last_k=bool(last_k),
                        ),
                        reads=tuple(
                            Run._unchecked(addr, count, False)
                            for addr, count in reads
                        ),
                        writes=tuple(
                            Run._unchecked(addr, count, True)
                            for addr, count in writes
                        ),
                        compute=ComputeEstimate(
                            cycles=compute[0], macs=compute[1],
                            pe_utilization=compute[2],
                        ),
                    )
                )
            layers.append(tuple(tiles))
        trace = CompiledTrace(
            fingerprint=fingerprint,
            network_name=payload["network"],
            memory_footprint_bytes=payload["footprint"],
            layers=tuple(layers),
            stats=payload["summary"],
            object_cost=_trace_cost(layers),
        )
    except (KeyError, TypeError, ValueError, IndexError):
        return None, "malformed trace payload"
    return trace, None


# ---------------------------------------------------------------------- #
# The two-level cache
# ---------------------------------------------------------------------- #


@dataclass
class TraceCacheStats:
    """Counters of one :class:`TraceCache` (monotonic over its lifetime)."""

    memo_hits: int = 0
    disk_hits: int = 0
    compiles: int = 0
    oversize: int = 0
    quarantined: int = 0

    @property
    def requests(self) -> int:
        """Total ``get`` calls resolved."""
        return self.memo_hits + self.disk_hits + self.compiles + self.oversize

    @property
    def hits(self) -> int:
        """Requests served without a (re)compile."""
        return self.memo_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from memo or disk."""
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> "TraceCacheStats":
        return dataclasses.replace(self)

    def since(self, earlier: "TraceCacheStats") -> "TraceCacheStats":
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        return TraceCacheStats(
            memo_hits=self.memo_hits - earlier.memo_hits,
            disk_hits=self.disk_hits - earlier.disk_hits,
            compiles=self.compiles - earlier.compiles,
            oversize=self.oversize - earlier.oversize,
            quarantined=self.quarantined - earlier.quarantined,
        )

    def summary(self) -> dict[str, float]:
        """JSON-friendly rendering (journal / bench / CLI one-liners)."""
        return {
            "requests": self.requests,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "compiles": self.compiles,
            "oversize": self.oversize,
            "quarantined": self.quarantined,
            "hit_rate": round(self.hit_rate, 4),
        }


class TraceCache:
    """Two-level (memo + disk) cache of :class:`CompiledTrace` artifacts.

    Content-addressed by :func:`frontend_fingerprint`, so entries can
    never go stale — a changed topology or arch simply misses.  The memo
    is LRU-bounded by total object count; the optional disk level is a
    crash-safe :class:`~repro.storage.ShardStore` whose shards survive
    across processes (sweep workers load them instead of recompiling).
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        max_memo_objects: int = MEMO_MAX_OBJECTS,
    ) -> None:
        self.max_memo_objects = max_memo_objects
        self.stats = TraceCacheStats()
        self._memo: OrderedDict[str, CompiledTrace] = OrderedDict()
        self._memo_cost = 0
        self._oversize: set[str] = set()
        self.store: ShardStore | None = None
        if directory is not None:
            self.set_directory(directory)

    # ------------------------------------------------------------------ #

    def set_directory(self, directory: str | Path | None) -> None:
        """Attach (or detach, with ``None``) the disk level.

        The memo survives re-pointing: entries are content-addressed, so
        they remain valid for any directory.
        """
        if directory is None:
            self.store = None
            return
        self.store = ShardStore(
            Path(directory), on_quarantine=self._count_quarantine
        )

    def _count_quarantine(self, name: str, reason: str) -> None:
        self.stats.quarantined += 1

    @staticmethod
    def shard_name(fingerprint: str) -> str:
        return f"{fingerprint}.json"

    def clear_memo(self) -> None:
        """Drop the in-process level (disk shards are untouched)."""
        self._memo.clear()
        self._memo_cost = 0
        self._oversize.clear()

    @property
    def memo_objects(self) -> int:
        """Objects currently held across all memoized traces."""
        return self._memo_cost

    # ------------------------------------------------------------------ #

    def get(self, network: Network, arch: ArchConfig) -> CompiledTrace | None:
        """The compiled trace of one frontend, or ``None`` if oversized.

        Resolution order: memo → disk shard (quarantining corruption) →
        compile (publishing a shard when a disk level is attached).
        """
        fingerprint = frontend_fingerprint(network, arch)
        trace = self._memo.get(fingerprint)
        if trace is not None:
            self._memo.move_to_end(fingerprint)
            self.stats.memo_hits += 1
            # The store may have been (re)attached after this entry was
            # memoized; sweep workers rely on the shard existing on disk,
            # so publish it on the way out.
            self._publish(trace)
            return trace
        if fingerprint in self._oversize:
            self.stats.oversize += 1
            return None
        if self.store is not None:
            trace = self.store.read_validated(
                self.shard_name(fingerprint),
                lambda raw: decode_trace(raw, fingerprint),
            )
            if trace is not None:
                self.stats.disk_hits += 1
                self._remember(trace)
                return trace
        trace = compile_trace(
            network,
            arch,
            max_objects=self.max_memo_objects,
            fingerprint=fingerprint,
        )
        self.stats.compiles += 1
        if trace is None:
            self._oversize.add(fingerprint)
            self.stats.oversize += 1
            return None
        self._remember(trace)
        self._publish(trace, force=True)
        return trace

    def _publish(self, trace: CompiledTrace, force: bool = False) -> None:
        """Write the shard for ``trace`` unless it is already on disk."""
        if self.store is None:
            return
        name = self.shard_name(trace.fingerprint)
        if force or not self.store.path(name).exists():
            self.store.write(name, encode_trace(trace))

    def _remember(self, trace: CompiledTrace) -> None:
        previous = self._memo.pop(trace.fingerprint, None)
        if previous is not None:
            self._memo_cost -= previous.object_cost
        self._memo[trace.fingerprint] = trace
        self._memo_cost += trace.object_cost
        while self._memo_cost > self.max_memo_objects and len(self._memo) > 1:
            _, evicted = self._memo.popitem(last=False)
            self._memo_cost -= evicted.object_cost


# ---------------------------------------------------------------------- #
# The process-level cache (what the simulator uses by default)
# ---------------------------------------------------------------------- #

_UNSET = object()

_process_cache = TraceCache()
_process_enabled = not os.environ.get(DISABLE_ENV)


def process_cache() -> TraceCache:
    """The cache :func:`trace_source` resolves through."""
    return _process_cache


def is_enabled() -> bool:
    """Whether the process cache currently serves compiled traces."""
    return _process_enabled


def configure(
    directory: str | Path | None | object = _UNSET,
    *,
    enabled: bool | None = None,
) -> TraceCache:
    """(Re)configure the process-level cache; returns it.

    ``directory`` attaches the disk level (``None`` detaches it); omit
    the argument to leave it unchanged.  ``enabled=False`` makes
    :func:`trace_source` fall back to live request generators — the
    ``--no-trace-cache`` escape hatch.  Re-pointing the directory keeps
    the memo: entries are content-addressed and can never go stale.
    """
    global _process_enabled
    if directory is not _UNSET:
        _process_cache.set_directory(directory)  # type: ignore[arg-type]
    if enabled is not None:
        _process_enabled = enabled
    return _process_cache


def trace_source(
    network: Network, arch: ArchConfig
) -> Union[CompiledTrace, RequestGenerator]:
    """The frontend the replay loop should consume for one core.

    A :class:`CompiledTrace` from the process cache when enabled and
    within budget; otherwise a live stream-and-discard
    :class:`RequestGenerator`.  Both are observationally identical.
    """
    if _process_enabled:
        trace = _process_cache.get(network, arch)
        if trace is not None:
            return trace
    return RequestGenerator(network, arch)

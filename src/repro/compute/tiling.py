"""GEMM tiling under the double-buffered scratchpad budget.

When a layer's operands exceed half the SPM (the other half holds the
next tile — double buffering, paper Figure 2a), the GEMM is decomposed
into ``(Tm, Tn, Tk)`` tiles.  One tile must fit A (``Tm x Tk``), B
(``Tk x Tn``) and the output accumulator C (``Tm x Tn``) in the half-SPM
budget.  Tiles execute in ``(mi, ni, ki)`` loop order: the reduction
(``ki``) is innermost so C tiles accumulate in place, and the C tile is
written back to DRAM only after the last ``ki`` step — matching the
output-stationary dataflow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.config.arch import ArchConfig
from repro.models.layers import GemmOp


@dataclass(frozen=True)
class TileShape:
    """Nominal tile dimensions (edge tiles may be smaller)."""

    tm: int
    tn: int
    tk: int

    def footprint_elems(self) -> int:
        """SPM elements a full tile occupies (A + B + C)."""
        return self.tm * self.tk + self.tk * self.tn + self.tm * self.tn


@dataclass(frozen=True)
class Tile:
    """One tile instance of a tiled GEMM.

    ``(m0, n0, k0)`` is the tile's origin in the iteration space and
    ``(tm, tn, tk)`` its actual (edge-clipped) extent.  ``last_k`` marks
    the final reduction step, after which the C tile is written back.
    """

    m0: int
    n0: int
    k0: int
    tm: int
    tn: int
    tk: int
    first_k: bool
    last_k: bool

    @property
    def macs(self) -> int:
        """MACs this tile performs."""
        return self.tm * self.tn * self.tk


def _align_down(value: int, unit: int) -> int:
    """Largest multiple of ``unit`` not exceeding ``value`` (min ``unit``)."""
    return max(unit, (value // unit) * unit)


def choose_tile_shape(
    gemm: GemmOp,
    arch: ArchConfig,
    *,
    m_step: int | None = None,
    k_align: int = 1,
) -> TileShape:
    """Pick a tile shape fitting the half-SPM budget.

    Strategy: if the whole GEMM fits, use it as a single tile.  Otherwise
    prefer *slab* tiles that keep the B operand full-width (``Tn = N``):
    full-width rows are contiguous in memory, so the DMA streams whole
    slabs sequentially — the access pattern systolic NPU compilers
    produce, and the one that makes translation misses compulsory,
    page-granular and bursty (paper section 2.3).  ``Tm`` stays a
    multiple of ``m_step`` so array passes run full; the reduction depth
    ``Tk`` absorbs whatever budget remains.  When ``N`` alone is too
    wide for the budget, fall back to a balanced square tile (correct,
    just strided).

    The two knobs are how dataflow engines specialize the shared policy:
    ``m_step`` is the granularity ``Tm`` grows in (default
    ``array_rows``, the output-stationary pass height; weight-stationary
    uses ``array_cols`` because ``m`` maps to array columns there), and
    ``k_align`` rounds ``Tk`` down to a multiple of itself when possible
    (input-stationary aligns its resident reduction rows to the array
    height).  The defaults reproduce the original output-stationary
    policy exactly.
    """
    budget = arch.half_spm_bytes // arch.element_bytes
    if gemm.total_bytes * arch.element_bytes <= arch.half_spm_bytes:
        return TileShape(gemm.m, gemm.n, gemm.k)
    step = m_step if m_step is not None else arch.array_rows
    slab = _slab_shape(gemm, budget, m_step=step, k_align=k_align)
    if slab is not None:
        return slab
    return _square_shape(gemm, arch, budget, k_align=k_align)


def _aligned_k(tk: int, k_align: int) -> int:
    """``tk`` rounded down to a ``k_align`` multiple when that keeps >= 1."""
    if k_align > 1 and tk >= k_align:
        return (tk // k_align) * k_align
    return tk


def _slab_shape(
    gemm: GemmOp, budget: int, *, m_step: int, k_align: int
) -> TileShape | None:
    """Full-width-N tile, or None when N does not fit the budget."""
    tn = gemm.n
    tm = min(gemm.m, m_step)
    # Grow tm in m_step increments while at least one reduction row fits.
    while True:
        grown = tm + m_step
        if grown > gemm.m or grown * tn + (grown + tn) > budget:
            break
        tm = grown
    tk = _aligned_k((budget - tm * tn) // (tm + tn), k_align)
    if tk < 1:
        return None
    return TileShape(tm, tn, min(gemm.k, tk))


def _square_shape(
    gemm: GemmOp, arch: ArchConfig, budget: int, *, k_align: int = 1
) -> TileShape:
    """Balanced near-cubic tile for GEMMs whose N is too wide to slab."""
    side = max(1, int(math.sqrt(budget / 3)))
    tm = min(
        gemm.m,
        _align_down(side, arch.array_rows) if side >= arch.array_rows else side,
    )
    tn = min(
        gemm.n,
        _align_down(side, arch.array_cols) if side >= arch.array_cols else side,
    )
    while True:
        tk = _aligned_k((budget - tm * tn) // (tm + tn), k_align)
        if tk >= 1:
            break
        # Budget too small for this (tm, tn): shrink the larger dimension.
        if tm >= tn and tm > 1:
            tm = max(1, tm // 2)
        elif tn > 1:
            tn = max(1, tn // 2)
        else:
            raise ValueError(
                f"SPM budget of {arch.half_spm_bytes} bytes cannot hold any tile "
                f"of GEMM {gemm.name}"
            )
    return TileShape(tm, tn, min(gemm.k, tk))


def tiles_for_gemm(gemm: GemmOp, shape: TileShape) -> Iterator[Tile]:
    """Yield tiles in ``(mi, ni, ki)`` loop order (reduction innermost)."""
    k_steps = -(-gemm.k // shape.tk)
    for m0 in range(0, gemm.m, shape.tm):
        tm = min(shape.tm, gemm.m - m0)
        for n0 in range(0, gemm.n, shape.tn):
            tn = min(shape.tn, gemm.n - n0)
            for ki in range(k_steps):
                k0 = ki * shape.tk
                yield Tile(
                    m0=m0,
                    n0=n0,
                    k0=k0,
                    tm=tm,
                    tn=tn,
                    tk=min(shape.tk, gemm.k - k0),
                    first_k=ki == 0,
                    last_k=ki == k_steps - 1,
                )


def tile_count(gemm: GemmOp, shape: TileShape) -> int:
    """Number of tiles ``tiles_for_gemm`` will yield."""
    return (
        (-(-gemm.m // shape.tm))
        * (-(-gemm.n // shape.tn))
        * (-(-gemm.k // shape.tk))
    )

"""The SW request generator (mNPUsim's "software stack", Figure 3).

From a network topology and a core's arch config this produces, per tile,
the list of DRAM requests (address, size, type) the DMA engine must move
between SPM and off-chip memory.  The HW simulator then replays these
requests against the contended memory system.

Virtual layout: each layer's three operands get their own page-aligned
regions, allocated sequentially in the core's virtual address space (the
artifact's ``intermediate_config`` performs the equivalent "absolute
address translation").  Requests are emitted as :class:`Run` objects —
``count`` back-to-back transactions from ``addr`` — which the DMA expands
lazily; rows that are contiguous in DRAM are merged into single runs, as
a real DMA descriptor would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.compute.dataflow import get_engine
from repro.compute.systolic import ComputeEstimate
from repro.compute.tiling import Tile, TileShape
from repro.config.arch import ArchConfig
from repro.models.layers import GemmOp, Network

#: Virtual regions are aligned to this to keep layouts page-size agnostic
#: (covers the largest supported page, 1 MB).
_REGION_ALIGN = 1 << 20

#: A scattered (gathered-embedding) operand's B rows hash over a span this
#: many times larger than the traffic they produce.  Rows land sparsely
#: enough to defeat small-page TLB reach, while the bounded span models
#: the hot-row subset real recommendation traffic concentrates on.
_SCATTER_SPREAD = 4

#: Knuth's multiplicative-hash constant; spreads gather rows over the
#: table region deterministically.
_HASH_MULT = 0x9E3779B1


@dataclass(frozen=True)
class Run:
    """``count`` consecutive DRAM transactions starting at ``addr``."""

    addr: int
    count: int
    write: bool

    def __post_init__(self) -> None:
        if self.addr < 0 or self.count <= 0:
            raise ValueError("run needs a non-negative address and positive count")

    @classmethod
    def _unchecked(cls, addr: int, count: int, write: bool) -> "Run":
        """Construct without ``__post_init__`` validation.

        Millions of runs are built per compile, all satisfying the
        generator's layout invariants by construction (non-negative
        region bases, positive tile extents, positive transaction size —
        validated once in :meth:`RequestGenerator.__init__`), so the
        per-instance checks stay on the public constructor for external
        callers only.
        """
        run = object.__new__(cls)
        object.__setattr__(run, "addr", addr)
        object.__setattr__(run, "count", count)
        object.__setattr__(run, "write", write)
        return run


@dataclass(frozen=True)
class TileTraffic:
    """Everything the HW simulator needs to execute one tile."""

    layer_index: int
    tile: Tile
    reads: tuple[Run, ...]
    writes: tuple[Run, ...]
    compute: ComputeEstimate

    @property
    def read_txns(self) -> int:
        """Total read transactions of this tile."""
        return sum(run.count for run in self.reads)

    @property
    def write_txns(self) -> int:
        """Total write transactions of this tile."""
        return sum(run.count for run in self.writes)


@dataclass(frozen=True)
class _LayerLayout:
    """Resolved virtual base addresses of one layer's operands."""

    gemm: GemmOp
    shape: TileShape
    a_base: int
    b_base: int
    c_base: int
    b_scatter_span: int = 0  #: span gather rows hash over (<= reserved region)


def _align_up(value: int, unit: int) -> int:
    return -(-value // unit) * unit


class RequestGenerator:
    """Generates per-tile memory traffic for one workload on one core.

    The generator is deterministic and cheap to construct; tile traffic is
    produced lazily so multi-gigabyte full-scale workloads do not
    materialize their request lists up front.
    """

    def __init__(self, network: Network, arch: ArchConfig, va_base: int = 0) -> None:
        # Boundary validation: everything a Run's own checks would verify
        # is implied by these invariants plus the layout construction
        # below (bases start at the aligned va_base and only grow, tile
        # extents are positive), so the hot path builds runs through
        # Run._unchecked.
        if va_base < 0:
            raise ValueError("virtual base cannot be negative")
        if arch.dram_transaction_bytes <= 0 or arch.element_bytes <= 0:
            raise ValueError("transaction and element sizes must be positive")
        self.network = network
        self.arch = arch
        # The dataflow engine owns tiling policy and compute-cycle model;
        # everything else here (layout, run merging) is engine-neutral.
        self._engine = get_engine(arch.dataflow)
        self._txn = arch.dram_transaction_bytes
        self._elem = arch.element_bytes
        self._layouts: list[_LayerLayout] = []
        cursor = _align_up(va_base, _REGION_ALIGN)
        for gemm in network.gemms():
            a_bytes, b_bytes, c_bytes = gemm.operand_bytes(self._elem)
            scatter_span = b_bytes * _SCATTER_SPREAD if gemm.b_scatter else 0
            a_base = cursor
            b_base = a_base + _align_up(a_bytes, _REGION_ALIGN)
            c_base = b_base + _align_up(max(b_bytes, scatter_span), _REGION_ALIGN)
            cursor = c_base + _align_up(c_bytes, _REGION_ALIGN)
            self._layouts.append(
                _LayerLayout(
                    gemm=gemm,
                    shape=self._engine.tile_shape(gemm, arch),
                    a_base=a_base,
                    b_base=b_base,
                    c_base=c_base,
                    b_scatter_span=scatter_span,
                )
            )
        self._va_end = cursor
        self._summary: dict[str, float] | None = None

    # ------------------------------------------------------------------ #
    # Layout / summary queries
    # ------------------------------------------------------------------ #

    @property
    def num_layers(self) -> int:
        """Layers in the workload."""
        return len(self._layouts)

    @property
    def memory_footprint_bytes(self) -> int:
        """Span of the allocated virtual address range."""
        return self._va_end - self._layouts[0].a_base

    def layer_shape(self, layer_index: int) -> TileShape:
        """The tile shape chosen for a layer."""
        return self._layouts[layer_index].shape

    def summary(self) -> dict[str, float]:
        """Pre-run statistics (no simulation): traffic, MACs, ideal cycles.

        These are the profiled per-workload features the mapping predictor
        of section 4.6 consumes: PE utilization in the memory-ideal case,
        memory traffic per execution, and the ideal execution length.
        """
        if self._summary is not None:
            return dict(self._summary)
        total_macs = 0
        total_cycles = 0
        read_txns = 0
        write_txns = 0
        for layer_index in range(self.num_layers):
            for traffic in self.layer_tiles(layer_index):
                total_macs += traffic.compute.macs
                total_cycles += traffic.compute.cycles
                read_txns += traffic.read_txns
                write_txns += traffic.write_txns
        traffic_bytes = (read_txns + write_txns) * self._txn
        self._summary = {
            "macs": float(total_macs),
            "ideal_compute_cycles": float(total_cycles),
            "pe_utilization": total_macs / (total_cycles * self.arch.num_pes),
            "read_txns": float(read_txns),
            "write_txns": float(write_txns),
            "traffic_bytes": float(traffic_bytes),
            "bytes_per_cycle": traffic_bytes / total_cycles,
        }
        return dict(self._summary)

    # ------------------------------------------------------------------ #
    # Traffic generation
    # ------------------------------------------------------------------ #

    def layer_tiles(self, layer_index: int) -> Iterator[TileTraffic]:
        """Yield the tile traffic of one layer, in execution order.

        This is the bounded-memory stream-and-discard path: nothing is
        retained between iterations.  Workloads that fit the trace budget
        are compiled once into a :class:`~repro.compute.tracecache.
        CompiledTrace` and replayed from there instead; generation is
        deterministic, so the two are indistinguishable.
        """
        layout = self._layouts[layer_index]
        gemm = layout.gemm
        for tile in self._engine.tiles(gemm, layout.shape):
            reads: list[Run] = []
            # A tile: rows m0..m0+tm, columns k0..k0+tk of an M x K matrix.
            reads.extend(
                self._matrix_runs(
                    layout.a_base, gemm.k,
                    tile.m0, tile.tm, tile.k0, tile.tk, write=False,
                )
            )
            # B tile: rows k0..k0+tk, columns n0..n0+tn of a K x N matrix
            # (or, for gathers, tk scattered table rows).
            if gemm.b_scatter:
                reads.extend(
                    self._scatter_runs(layout, tile.k0, tile.tk, tile.tn)
                )
            else:
                reads.extend(
                    self._matrix_runs(
                        layout.b_base, gemm.n,
                        tile.k0, tile.tk, tile.n0, tile.tn, write=False,
                    )
                )
            writes: tuple[Run, ...] = ()
            if tile.last_k:
                # C tile: rows m0..m0+tm, columns n0..n0+tn of an M x N matrix.
                writes = tuple(
                    self._matrix_runs(
                        layout.c_base, gemm.n,
                        tile.m0, tile.tm, tile.n0, tile.tn, write=True,
                    )
                )
            yield TileTraffic(
                layer_index=layer_index,
                tile=tile,
                reads=tuple(reads),
                writes=writes,
                compute=self._engine.estimate(self.arch, tile.tm, tile.tk, tile.tn),
            )

    def all_tiles(self) -> Iterator[TileTraffic]:
        """Yield every tile of every layer, in execution order."""
        for layer_index in range(self.num_layers):
            yield from self.layer_tiles(layer_index)

    def _matrix_runs(
        self,
        base: int,
        row_len: int,
        row0: int,
        nrows: int,
        col0: int,
        ncols: int,
        *,
        write: bool,
    ) -> Iterator[Run]:
        """Runs covering a ``nrows x ncols`` sub-matrix of a row-major matrix."""
        elem = self._elem
        if ncols == row_len:
            # Full-width rows are contiguous in memory: one merged run.
            yield self._byte_run(
                base + row0 * row_len * elem, nrows * row_len * elem, write
            )
            return
        for row in range(row0, row0 + nrows):
            start = base + (row * row_len + col0) * elem
            yield self._byte_run(start, ncols * elem, write)

    def _scatter_runs(
        self, layout: _LayerLayout, row0: int, nrows: int, ncols: int
    ) -> Iterator[Run]:
        """One run per gathered row, hashed across the table region."""
        row_bytes = ncols * self._elem
        slots = max(1, layout.b_scatter_span // self._txn)
        for row in range(row0, row0 + nrows):
            slot = (row * _HASH_MULT) % slots
            yield self._byte_run(layout.b_base + slot * self._txn, row_bytes, False)

    def _byte_run(self, start: int, nbytes: int, write: bool) -> Run:
        """A transaction-aligned run covering ``[start, start+nbytes)``.

        ``start >= 0`` and ``nbytes > 0`` hold by construction (invariants
        checked once in ``__init__``), so this uses the unchecked
        constructor.
        """
        txn = self._txn
        first = start - (start % txn)
        last = _align_up(start + nbytes, txn)
        return Run._unchecked(first, (last - first) // txn, write)

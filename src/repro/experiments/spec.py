"""Declarative run descriptors: one :class:`RunSpec` per simulation.

Every simulation behind the paper's figures is either a *solo* run (one
workload alone on an explicit resource slice — Ideal, equal Static and
the ratio partitions of sections 4.3/4.4) or a *mix* run (a genuine
multi-core co-simulation under one of the dynamic sharing levels).  A
:class:`RunSpec` captures everything that distinguishes one such run
from another, and serves three roles at once:

* the **cache key** — :meth:`RunSpec.descriptor` reproduces the exact
  JSON descriptor the on-disk result cache has always been keyed by, so
  caches written before this API existed stay valid;
* the **batch-submission unit** — specs are frozen and hashable, so a
  sweep is a plain list that can be deduplicated with ``dict.fromkeys``
  and sharded across worker processes;
* the **public API surface** — :meth:`RunSpec.system` builds the
  :class:`~repro.config.system.SystemConfig` a worker needs, with no
  reference back to the runner that planned it.

Build specs with the :meth:`RunSpec.solo` / :meth:`RunSpec.mix`
constructors (which resolve per-scale resource defaults), or with the
``plan_*`` helpers on :class:`~repro.experiments.runner.ExperimentRunner`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Sequence

from repro.compute.dataflow import registered_dataflows
from repro.config import presets
from repro.config.arch import ArchConfig
from repro.config.misc import MiscConfig
from repro.config.system import SystemConfig
from repro.core.replay import DEFAULT_REPLAY_MODE, REPLAY_MODES
from repro.core.sharing import SharingLevel
from repro.models import serving as serving_module
from repro.models.serving import ServingParams

#: Bump to invalidate cached results when simulator semantics change.
RESULTS_VERSION = 10

#: The paper's dataflow.  Specs at the default omit the ``dataflow``
#: descriptor key entirely, keeping every pre-axis cache shard (and the
#: golden hashes pinned on them) byte-identical.
DEFAULT_DATAFLOW = "os"


@dataclass(frozen=True)
class RunSpec:
    """A complete, immutable description of one solo or mix simulation.

    ``kind`` is ``"solo"`` or ``"mix"``.  Solo runs carry an explicit
    resource slice (``channels`` / ``num_ptw`` / ``tlb_entries``); mix
    runs carry a dynamic ``sharing`` level (the :class:`SharingLevel`
    *name*, kept as a string so specs stay trivially JSON/pickle-stable)
    plus the optional walker-partitioning overrides of figure 13.

    Solo resource fields may be left ``None`` and resolved later against
    the scale's Table 2 per-core defaults with :meth:`resolve` (this is
    what ``ExperimentRunner.plan`` does); an unresolved spec refuses to
    produce a cache key.
    """

    kind: str
    workloads: tuple[str, ...]
    scale: str = "mini"
    sharing: str | None = None
    channels: int | None = None
    num_ptw: int | None = None
    tlb_entries: int | None = None
    page_bytes: int = 4096
    translation: bool = True
    ptw_split: tuple[int, ...] | None = None
    num_ptw_per_core: int | None = None
    tlb_entries_per_core: int | None = None
    dataflow: str = DEFAULT_DATAFLOW
    replay_mode: str = DEFAULT_REPLAY_MODE
    phase: str | None = None
    serving: ServingParams | None = None
    version: int = RESULTS_VERSION

    def __post_init__(self) -> None:
        if self.dataflow not in registered_dataflows():
            raise ValueError(
                f"unknown dataflow {self.dataflow!r}; registered engines: "
                + ", ".join(registered_dataflows())
            )
        if self.replay_mode not in REPLAY_MODES:
            raise ValueError(
                f"unknown replay mode {self.replay_mode!r}; choose from "
                + ", ".join(REPLAY_MODES)
            )
        object.__setattr__(self, "workloads", tuple(self.workloads))
        if self.ptw_split is not None:
            object.__setattr__(self, "ptw_split", tuple(self.ptw_split))
        # A ServingParams at all-defaults describes the same run as no
        # override at all; normalize it to None so spec equality, batch
        # dedup and the cache key all see a single canonical spec.
        if self.serving is not None and self.serving == ServingParams():
            object.__setattr__(self, "serving", None)
        bare_bases = 0
        serving_targets = 0
        for name in self.workloads:
            base, wl_phase = serving_module.split_name(name)
            if wl_phase is not None:
                if base not in serving_module.SERVING_BASES:
                    raise ValueError(
                        f"workload {name!r}: {base!r} has no serving "
                        "frontend; serving bases: "
                        + ", ".join(sorted(serving_module.SERVING_BASES))
                    )
                if wl_phase not in serving_module.PHASES:
                    raise ValueError(
                        f"workload {name!r}: unknown phase {wl_phase!r}; "
                        "choose from " + ", ".join(serving_module.PHASES)
                    )
                serving_targets += 1
            elif base in serving_module.SERVING_BASES:
                bare_bases += 1
        if self.phase is not None:
            if self.phase not in serving_module.PHASES:
                raise ValueError(
                    f"unknown phase {self.phase!r}; choose from "
                    + ", ".join(serving_module.PHASES)
                )
            if not bare_bases:
                raise ValueError(
                    "phase only applies to bare serving-base workloads "
                    f"(e.g. 'gpt2'); none in {self.workloads!r} — either "
                    "drop 'phase' or phase-qualify the names directly"
                )
            serving_targets += bare_bases
        if self.serving is not None and not serving_targets:
            raise ValueError(
                "serving parameters need a serving workload (a "
                "phase-qualified name like 'gpt2:prefill', or a bare "
                f"serving base plus 'phase'); got {self.workloads!r}"
            )
        if self.kind not in ("solo", "mix"):
            raise ValueError(f"kind must be 'solo' or 'mix', got {self.kind!r}")
        if not self.workloads:
            raise ValueError("a run needs at least one workload")
        if self.kind == "solo":
            if len(self.workloads) != 1:
                raise ValueError("solo runs take exactly one workload")
            if self.sharing is not None:
                raise ValueError(
                    "solo runs are uncontended; drop 'sharing' and describe "
                    "the resource slice instead"
                )
            if self.ptw_split is not None or self.num_ptw_per_core is not None:
                raise ValueError("walker-partitioning fields are mix-only")
        else:
            if self.sharing is None:
                raise ValueError("mix runs need a sharing level")
            if not self.sharing_level.is_contended:
                raise ValueError(
                    f"{self.sharing_level.label} has no dynamic contention; "
                    "use solo runs"
                )
            if self.channels is not None or self.num_ptw is not None:
                raise ValueError(
                    "explicit resource slices are solo-only; mixes size "
                    "their pools from the core count"
                )
            if self.ptw_split is not None and len(self.ptw_split) != len(
                self.workloads
            ):
                raise ValueError("one walker count per core required")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def solo(
        cls,
        workload: str,
        *,
        scale: str = "mini",
        channels: int | None = None,
        num_ptw: int | None = None,
        tlb_entries: int | None = None,
        page_bytes: int = 4096,
        translation: bool = True,
        dataflow: str = DEFAULT_DATAFLOW,
        replay_mode: str = DEFAULT_REPLAY_MODE,
        phase: str | None = None,
        serving: ServingParams | None = None,
    ) -> "RunSpec":
        """One workload alone on a resource slice (defaults: one per-core
        Table 2 share, i.e. the equal Static split)."""
        return cls(
            kind="solo",
            workloads=(workload,),
            scale=scale,
            channels=channels,
            num_ptw=num_ptw,
            tlb_entries=tlb_entries,
            page_bytes=page_bytes,
            translation=translation,
            dataflow=dataflow,
            replay_mode=replay_mode,
            phase=phase,
            serving=serving,
        ).resolve()

    @classmethod
    def ideal(
        cls,
        workload: str,
        num_cores: int,
        *,
        scale: str = "mini",
        page_bytes: int = 4096,
        translation: bool = True,
        dataflow: str = DEFAULT_DATAFLOW,
        replay_mode: str = DEFAULT_REPLAY_MODE,
        phase: str | None = None,
        serving: ServingParams | None = None,
    ) -> "RunSpec":
        """The Ideal baseline: alone with the whole N-core resource pool."""
        per_core = presets.per_core_resources(scale)
        return cls.solo(
            workload,
            scale=scale,
            channels=per_core["channels"] * num_cores,
            num_ptw=per_core["num_ptw"] * num_cores,
            tlb_entries=per_core["tlb_entries"] * num_cores,
            page_bytes=page_bytes,
            translation=translation,
            dataflow=dataflow,
            replay_mode=replay_mode,
            phase=phase,
            serving=serving,
        )

    @classmethod
    def mix(
        cls,
        workloads: Sequence[str],
        sharing: SharingLevel | str,
        *,
        scale: str = "mini",
        page_bytes: int = 4096,
        translation: bool = True,
        ptw_split: Sequence[int] | None = None,
        num_ptw_per_core: int | None = None,
        tlb_entries_per_core: int | None = None,
        dataflow: str = DEFAULT_DATAFLOW,
        replay_mode: str = DEFAULT_REPLAY_MODE,
        phase: str | None = None,
        serving: ServingParams | None = None,
    ) -> "RunSpec":
        """A co-simulation of ``workloads`` under a dynamic sharing level."""
        if isinstance(sharing, SharingLevel):
            sharing = sharing.name
        return cls(
            kind="mix",
            workloads=tuple(workloads),
            scale=scale,
            sharing=sharing,
            page_bytes=page_bytes,
            translation=translation,
            ptw_split=tuple(ptw_split) if ptw_split is not None else None,
            num_ptw_per_core=num_ptw_per_core,
            tlb_entries_per_core=tlb_entries_per_core,
            dataflow=dataflow,
            replay_mode=replay_mode,
            phase=phase,
            serving=serving,
        )

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #

    @property
    def sharing_level(self) -> SharingLevel:
        """The sharing level as an enum (mix runs only)."""
        if self.sharing is None:
            raise ValueError("solo runs have no sharing level")
        return SharingLevel[self.sharing]

    @property
    def is_resolved(self) -> bool:
        """True when every cache-key-relevant field is concrete."""
        if self.kind == "solo":
            return None not in (self.channels, self.num_ptw, self.tlb_entries)
        return True

    @property
    def label(self) -> str:
        """Short human-readable identity, e.g. ``"mix ncf+gpt2 +DWT"``."""
        names = "+".join(self.workloads)
        if self.kind == "solo":
            label = f"solo {names} ch={self.channels} pg={self.page_bytes}"
        else:
            label = f"mix {names} {self.sharing_level.label}"
        if self.dataflow != DEFAULT_DATAFLOW:
            label += f" df={self.dataflow}"
        if self.replay_mode != DEFAULT_REPLAY_MODE:
            label += f" rm={self.replay_mode}"
        if self.phase is not None:
            label += f" ph={self.phase}"
        if self.serving is not None:
            label += f" srv[{self.serving.tag()}]"
        return label

    def resolve(self) -> "RunSpec":
        """Fill unset solo resource fields with the scale's per-core share."""
        if self.is_resolved:
            return self
        per_core = presets.per_core_resources(self.scale)
        return dataclasses.replace(
            self,
            channels=self.channels if self.channels is not None
            else per_core["channels"],
            num_ptw=self.num_ptw if self.num_ptw is not None
            else per_core["num_ptw"],
            tlb_entries=self.tlb_entries if self.tlb_entries is not None
            else per_core["tlb_entries"],
        )

    def descriptor(self) -> dict[str, Any]:
        """The JSON cache descriptor (identical to the pre-RunSpec format)."""
        if not self.is_resolved:
            raise ValueError(
                f"unresolved spec {self!r}: call .resolve() or plan it "
                "through an ExperimentRunner first"
            )
        if self.kind == "solo":
            descriptor: dict[str, Any] = {
                "version": self.version,
                "kind": "solo",
                "scale": self.scale,
                "workload": self.workloads[0],
                "channels": self.channels,
                "num_ptw": self.num_ptw,
                "tlb_entries": self.tlb_entries,
                "page_bytes": self.page_bytes,
                "translation": self.translation,
            }
        else:
            descriptor = {
                "version": self.version,
                "kind": "mix",
                "scale": self.scale,
                "workloads": list(self.workloads),
                "sharing": self.sharing,
                "page_bytes": self.page_bytes,
                "translation": self.translation,
                "ptw_split": list(self.ptw_split) if self.ptw_split else None,
                "num_ptw_per_core": self.num_ptw_per_core,
                "tlb_entries_per_core": self.tlb_entries_per_core,
            }
        if self.dataflow != DEFAULT_DATAFLOW:
            # Omitted at the default so every descriptor (and result
            # shard) written before the dataflow axis existed stays
            # byte-identical — the golden shard hashes pin this.
            descriptor["dataflow"] = self.dataflow
        if self.replay_mode != DEFAULT_REPLAY_MODE:
            # Same omission rule as ``dataflow``: pre-axis shards keep
            # their keys, and each non-default mode gets a distinct one.
            # (Results are proven byte-identical across modes, but a
            # shard must record how it was produced to stay auditable.)
            descriptor["replay_mode"] = self.replay_mode
        if self.phase is not None:
            # Serving axes follow the same omission rule: every
            # descriptor written before the serving frontend existed —
            # and every non-serving descriptor written after — stays
            # byte-identical, so the pre-existing golden cache keys pin
            # this exactly.
            descriptor["phase"] = self.phase
        if self.serving is not None:
            descriptor["serving"] = self.serving.descriptor()
        return descriptor

    def cache_key(self) -> str:
        """Stable content hash of the descriptor (the cache file stem)."""
        payload = json.dumps(self.descriptor(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    def frontends(self) -> tuple[tuple[str, ArchConfig], ...]:
        """The compile units of this run: one (workload, arch) per core.

        This is what the sweep planner deduplicates across a batch — the
        whole SW frontend (tiling, run lists, systolic timing) depends
        only on these pairs, so memory-side sweeps (channels, page sizes,
        PTW/TLB splits, sharing levels) share compiled traces across
        every spec they contain.
        """
        system = self.system()
        return tuple(
            (name, system.arch[core])
            for core, name in enumerate(self.workloads)
        )

    def system(self) -> SystemConfig:
        """Build the :class:`SystemConfig` this spec describes.

        Workers reconstruct the whole simulation from the spec alone, so
        this is the single source of truth for how solo slices and mixes
        are configured (the CLI's ``mix`` path uses it too, keeping CLI
        results bit-identical to the experiment runner's).
        """
        if self.kind == "solo":
            spec = self.resolve()
            return presets.solo_slice(
                scale=spec.scale,
                channels=spec.channels,
                num_ptw=spec.num_ptw,
                tlb_entries=spec.tlb_entries,
                page_bytes=spec.page_bytes,
                translation_enabled=spec.translation,
                dataflow=spec.dataflow,
                misc=MiscConfig(iterations=1, replay_mode=spec.replay_mode),
            )
        return presets.mix_system(
            len(self.workloads),
            self.sharing_level,
            scale=self.scale,
            page_bytes=self.page_bytes,
            translation_enabled=self.translation,
            ptw_split=self.ptw_split,
            num_ptw_per_core=self.num_ptw_per_core,
            tlb_entries_per_core=self.tlb_entries_per_core,
            dataflow=self.dataflow,
            misc=MiscConfig(
                iterations=1,
                start_stagger_cycles=presets.MIX_STAGGER_CYCLES,
                replay_mode=self.replay_mode,
            ),
        )

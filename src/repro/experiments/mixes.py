"""Workload-mix enumeration (paper section 4.1.1).

The paper evaluates *every* multiset of the eight benchmarks: M(8,2) = 36
dual-core mixes, M(8,4) = 330 quad-core mixes, and M(8,8) = 6435
eight-workload sets for the mapping study (combinations with repetition).
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.models import zoo


def all_mixes(k: int, names: Sequence[str] | None = None) -> list[tuple[str, ...]]:
    """All multisets of size ``k`` over the benchmark names, sorted."""
    if k <= 0:
        raise ValueError("mix size must be positive")
    pool = tuple(names) if names is not None else zoo.NAMES
    return list(itertools.combinations_with_replacement(pool, k))


def mix_label(mix: Sequence[str]) -> str:
    """Canonical display label, e.g. ``"ncf+gpt2"``."""
    return "+".join(mix)


def mixes_for(
    k: int, limit: int | None = None, names: Sequence[str] | None = None
) -> list[tuple[str, ...]]:
    """The mixes a sweep should evaluate: all of them, or a spread subset.

    ``limit=None`` means the full :func:`all_mixes` enumeration; anything
    else delegates to :func:`subset_mixes`.  This is the one knob the CLI
    and the benchmark harness expose.
    """
    if limit is None:
        return all_mixes(k, names)
    return subset_mixes(k, limit, names)


def subset_mixes(
    k: int, limit: int, names: Sequence[str] | None = None
) -> list[tuple[str, ...]]:
    """A deterministic, evenly-spread subset of ``all_mixes(k)``.

    Used by the quick benchmark mode on machines where the full 330-mix
    quad sweep is too slow; strided selection keeps the workload-type
    coverage balanced.
    """
    mixes = all_mixes(k, names)
    if limit <= 0:
        raise ValueError("limit must be positive")
    if limit >= len(mixes):
        return mixes
    stride = len(mixes) / limit
    return [mixes[int(index * stride)] for index in range(limit)]

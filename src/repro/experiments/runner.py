"""Cached experiment executor built around :class:`RunSpec` descriptors.

Every figure of the paper reduces to a fan-out of independent solo/mix
simulations (see :mod:`repro.experiments.spec` for the taxonomy).  The
runner's job is to execute such fan-outs efficiently:

* :meth:`ExperimentRunner.plan` / ``plan_*`` — turn parameters into a
  frozen, fully-resolved :class:`RunSpec`;
* :meth:`ExperimentRunner.run` — execute one spec, cache-first;
* :meth:`ExperimentRunner.run_many` — deduplicate a batch of specs,
  satisfy cache hits, then shard the cold runs across a
  ``ProcessPoolExecutor`` (``jobs`` workers), writing one cache shard per
  completed run and reporting progress/ETA through a pluggable callback.

Workers rebuild the whole simulation from the spec alone (plus the
pickled network topologies), so parallel and serial execution produce
byte-identical cache files and results.

Runs are memoized on disk (JSON, keyed by a hash of every parameter), so
re-generating a figure after the first sweep is instant and benchmark
reruns do not repay the simulation cost.

The kwarg-form ``solo()`` / ``ideal()`` / ``static_equal()`` / ``mix()``
methods remain as thin wrappers that build a :class:`RunSpec` internally;
new code should plan specs and call :meth:`run_many`.
"""

from __future__ import annotations

import dataclasses
import json
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.config import presets
from repro.core.sharing import SharingLevel
from repro.core.simulator import MultiCoreNPUSim, WorkloadResult
from repro.experiments.spec import RESULTS_VERSION, RunSpec
from repro.models import zoo

__all__ = [
    "DEFAULT_MAX_TICKS",
    "MIX_STAGGER_CYCLES",
    "RESULTS_VERSION",
    "ExperimentRunner",
    "RunProgress",
    "RunSpec",
]

#: Safety valve: a run exceeding this many global ticks raises instead of
#: spinning forever.
DEFAULT_MAX_TICKS = 50_000_000_000

#: Re-exported for back-compat; the constant lives with the presets now.
MIX_STAGGER_CYCLES = presets.MIX_STAGGER_CYCLES


def _result_dict(result: WorkloadResult) -> dict[str, Any]:
    payload = dataclasses.asdict(result)
    # Normalize to JSON-stable types so fresh and cached results compare equal.
    payload["layer_cycles"] = list(payload["layer_cycles"])
    return payload


def _execute_spec(
    spec: RunSpec, networks: Sequence[Any], max_ticks: int
) -> list[dict[str, Any]]:
    """Run one spec to completion; the process-pool worker entry point.

    Deliberately a module-level function of picklable arguments: workers
    reconstruct the simulator purely from the spec plus the network
    topologies, so results cannot depend on parent-process state.
    """
    sim = MultiCoreNPUSim(spec.system(), list(networks))
    mix_result = sim.run(max_ticks=max_ticks)
    return [_result_dict(result) for result in mix_result.workloads]


@dataclass(frozen=True)
class RunProgress:
    """One progress event from :meth:`ExperimentRunner.run_many`.

    ``completed`` counts specs whose results are available (cache hits
    included); ``eta_seconds`` extrapolates from the cold runs finished
    so far and is ``None`` until the first one lands.
    """

    completed: int
    total: int
    cache_hits: int
    spec: RunSpec | None
    elapsed_seconds: float
    eta_seconds: float | None


#: Signature of the pluggable progress reporter.
ProgressCallback = Callable[[RunProgress], None]


class ExperimentRunner:
    """Plans, executes (and caches) the simulations behind every figure."""

    def __init__(
        self,
        scale: str = "mini",
        cache_dir: str | Path | None = None,
        max_ticks: int = DEFAULT_MAX_TICKS,
        jobs: int = 1,
        progress: ProgressCallback | None = None,
    ) -> None:
        self.scale = scale
        self.max_ticks = max_ticks
        self.jobs = max(1, jobs)
        self.progress = progress
        if cache_dir is None:
            cache_dir = Path.cwd() / ".repro_cache"
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.per_core = presets.per_core_resources(scale)
        self.runs_executed = 0
        self.cache_hits = 0
        self._networks: dict[str, Any] = {}

    def register_network(self, network: Any) -> None:
        """Make a non-zoo network (e.g. a random net) runnable by name.

        Registered names shadow zoo names, so keep them distinct.  Cache
        entries are keyed by name: a registered network must always carry
        the same topology for its name (random nets are seed-named, which
        guarantees this).  Registered topologies are pickled to the
        worker processes of :meth:`run_many`, so they work there too.
        """
        self._networks[network.name] = network

    def _network(self, name: str) -> Any:
        if name in self._networks:
            return self._networks[name]
        return zoo.get(name, self.scale)

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #

    def plan(self, spec: RunSpec) -> RunSpec:
        """Resolve a spec against this runner's scale defaults.

        Solo specs with unset resource fields get the scale's Table 2
        per-core share (the equal Static split).  Specs planned here are
        safe to hand to :meth:`run` / :meth:`run_many` or to hash.
        """
        if spec.kind == "solo" and not spec.is_resolved:
            per_core = presets.per_core_resources(spec.scale)
            spec = dataclasses.replace(
                spec,
                channels=spec.channels if spec.channels is not None
                else per_core["channels"],
                num_ptw=spec.num_ptw if spec.num_ptw is not None
                else per_core["num_ptw"],
                tlb_entries=spec.tlb_entries if spec.tlb_entries is not None
                else per_core["tlb_entries"],
            )
        return spec

    def plan_solo(
        self,
        workload: str,
        *,
        channels: int | None = None,
        num_ptw: int | None = None,
        tlb_entries: int | None = None,
        page_bytes: int = 4096,
        translation: bool = True,
    ) -> RunSpec:
        """Spec for one workload alone on an explicit resource slice."""
        return RunSpec.solo(
            workload,
            scale=self.scale,
            channels=channels,
            num_ptw=num_ptw,
            tlb_entries=tlb_entries,
            page_bytes=page_bytes,
            translation=translation,
        )

    def plan_ideal(
        self,
        workload: str,
        num_cores: int,
        *,
        page_bytes: int = 4096,
        translation: bool = True,
    ) -> RunSpec:
        """Spec for the Ideal baseline: the whole N-core resource pool."""
        return RunSpec.ideal(
            workload,
            num_cores,
            scale=self.scale,
            page_bytes=page_bytes,
            translation=translation,
        )

    def plan_static_equal(
        self,
        workload: str,
        *,
        page_bytes: int = 4096,
        translation: bool = True,
    ) -> RunSpec:
        """Spec for the equal Static split: one per-core resource share."""
        return self.plan_solo(
            workload, page_bytes=page_bytes, translation=translation
        )

    def plan_mix(
        self,
        names: Sequence[str],
        sharing: SharingLevel,
        *,
        page_bytes: int = 4096,
        translation: bool = True,
        ptw_split: Sequence[int] | None = None,
        num_ptw_per_core: int | None = None,
        tlb_entries_per_core: int | None = None,
    ) -> RunSpec:
        """Spec for a co-simulation under a dynamic sharing level."""
        return RunSpec.mix(
            names,
            sharing,
            scale=self.scale,
            page_bytes=page_bytes,
            translation=translation,
            ptw_split=ptw_split,
            num_ptw_per_core=num_ptw_per_core,
            tlb_entries_per_core=tlb_entries_per_core,
        )

    # ------------------------------------------------------------------ #
    # Cache plumbing
    # ------------------------------------------------------------------ #

    def _cache_path(self, spec: RunSpec) -> Path:
        return self.cache_dir / f"{spec.cache_key()}.json"

    def _cached(self, spec: RunSpec) -> list[dict[str, Any]] | None:
        path = self._cache_path(spec)
        if path.exists():
            self.cache_hits += 1
            return json.loads(path.read_text())["results"]
        return None

    def _store(self, spec: RunSpec, results: list[dict[str, Any]]) -> None:
        self._cache_path(spec).write_text(
            json.dumps(
                {"descriptor": spec.descriptor(), "results": results}, indent=1
            )
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self, spec: RunSpec) -> list[dict[str, Any]]:
        """Execute one spec in-process, cache-first."""
        spec = self.plan(spec)
        cached = self._cached(spec)
        if cached is not None:
            return cached
        results = _execute_spec(
            spec,
            [self._network(name) for name in spec.workloads],
            self.max_ticks,
        )
        self._store(spec, results)
        self.runs_executed += 1
        return results

    def run_many(
        self,
        specs: Iterable[RunSpec],
        jobs: int | None = None,
        progress: ProgressCallback | None = None,
    ) -> dict[RunSpec, list[dict[str, Any]]]:
        """Execute a batch of specs, in parallel when ``jobs > 1``.

        The batch is deduplicated (specs are frozen and hashable), cache
        hits are satisfied first, and the remaining cold runs are sharded
        across a process pool.  The parent process writes one cache shard
        per completed run — workers never touch the cache directory — and
        reports progress through ``progress`` (or the runner's default
        callback) after every completion.

        Returns a mapping from each *planned* spec to its per-workload
        result dicts; look results up with the specs returned by the
        ``plan_*`` helpers.
        """
        jobs = self.jobs if jobs is None else max(1, jobs)
        progress = progress if progress is not None else self.progress
        ordered = list(dict.fromkeys(self.plan(spec) for spec in specs))
        started = time.monotonic()
        results: dict[RunSpec, list[dict[str, Any]]] = {}
        cold: list[RunSpec] = []
        for spec in ordered:
            cached = self._cached(spec)
            if cached is not None:
                results[spec] = cached
            else:
                cold.append(spec)
        hits = len(results)
        cold_done = 0

        def report(spec: RunSpec | None) -> None:
            if progress is None:
                return
            elapsed = time.monotonic() - started
            eta = None
            if cold_done and cold_done < len(cold):
                eta = elapsed / cold_done * (len(cold) - cold_done)
            progress(
                RunProgress(
                    completed=hits + cold_done,
                    total=len(ordered),
                    cache_hits=hits,
                    spec=spec,
                    elapsed_seconds=elapsed,
                    eta_seconds=eta,
                )
            )

        def finish(spec: RunSpec, payload: list[dict[str, Any]]) -> None:
            nonlocal cold_done
            self._store(spec, payload)
            self.runs_executed += 1
            results[spec] = payload
            cold_done += 1
            report(spec)

        report(None)
        if not cold:
            return results
        if jobs == 1 or len(cold) == 1:
            for spec in cold:
                finish(
                    spec,
                    _execute_spec(
                        spec,
                        [self._network(name) for name in spec.workloads],
                        self.max_ticks,
                    ),
                )
            return results
        with ProcessPoolExecutor(max_workers=min(jobs, len(cold))) as pool:
            pending = {
                pool.submit(
                    _execute_spec,
                    spec,
                    tuple(self._network(name) for name in spec.workloads),
                    self.max_ticks,
                ): spec
                for spec in cold
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    finish(pending.pop(future), future.result())
        return results

    # ------------------------------------------------------------------ #
    # Back-compat kwarg API (thin wrappers over RunSpec)
    # ------------------------------------------------------------------ #

    def solo(
        self,
        workload: str,
        *,
        channels: int | None = None,
        num_ptw: int | None = None,
        tlb_entries: int | None = None,
        page_bytes: int = 4096,
        translation: bool = True,
    ) -> dict[str, Any]:
        """One workload alone on an explicit resource slice.

        Deprecated kwarg form; equivalent to ``run(plan_solo(...))[0]``.
        """
        return self.run(
            self.plan_solo(
                workload,
                channels=channels,
                num_ptw=num_ptw,
                tlb_entries=tlb_entries,
                page_bytes=page_bytes,
                translation=translation,
            )
        )[0]

    def ideal(
        self,
        workload: str,
        num_cores: int,
        *,
        page_bytes: int = 4096,
        translation: bool = True,
    ) -> dict[str, Any]:
        """The Ideal baseline: alone with the whole N-core resource pool."""
        return self.run(
            self.plan_ideal(
                workload,
                num_cores,
                page_bytes=page_bytes,
                translation=translation,
            )
        )[0]

    def static_equal(
        self,
        workload: str,
        *,
        page_bytes: int = 4096,
        translation: bool = True,
    ) -> dict[str, Any]:
        """The equal Static split: exactly one per-core resource share."""
        return self.solo(workload, page_bytes=page_bytes, translation=translation)

    def mix(
        self,
        names: Sequence[str],
        sharing: SharingLevel,
        *,
        page_bytes: int = 4096,
        translation: bool = True,
        ptw_split: Sequence[int] | None = None,
        num_ptw_per_core: int | None = None,
        tlb_entries_per_core: int | None = None,
    ) -> list[dict[str, Any]]:
        """Co-simulate ``names`` under a dynamic sharing level.

        Deprecated kwarg form; equivalent to ``run(plan_mix(...))``.  See
        :meth:`plan_mix` for the walker-partitioning overrides.
        """
        return self.run(
            self.plan_mix(
                names,
                sharing,
                page_bytes=page_bytes,
                translation=translation,
                ptw_split=ptw_split,
                num_ptw_per_core=num_ptw_per_core,
                tlb_entries_per_core=tlb_entries_per_core,
            )
        )

"""Cached, supervised experiment executor built around :class:`RunSpec`.

Every figure of the paper reduces to a fan-out of independent solo/mix
simulations (see :mod:`repro.experiments.spec` for the taxonomy).  The
runner's job is to execute such fan-outs efficiently *and to survive
them*:

* :meth:`ExperimentRunner.plan` / ``plan_*`` — turn parameters into a
  frozen, fully-resolved :class:`RunSpec`;
* :meth:`ExperimentRunner.run` — execute one spec, cache-first;
* :meth:`ExperimentRunner.run_many` — deduplicate a batch of specs,
  satisfy cache hits, then shard the cold runs across a supervised
  ``ProcessPoolExecutor`` (``jobs`` workers), writing one cache shard per
  completed run and reporting progress/ETA through a pluggable callback.

Supervision (the fault-tolerance layer):

* **Per-run timeouts** — each worker arms a SIGALRM wall-clock budget
  (``run_timeout``); the parent additionally hard-kills the pool when a
  worker overshoots the budget plus a grace period, so even a worker
  stuck in uninterruptible simulation code cannot wedge a sweep.
* **Bounded retries with backoff** — retriable failures (killed worker
  processes, :class:`TransientWorkerError`) are requeued up to
  ``max_attempts`` executions with exponential backoff.  After a pool
  breakage the formerly in-flight specs re-run *one at a time* so a
  recurring crash is attributed to the spec that causes it instead of
  burning the attempts of innocent co-runners.
* **Failure isolation** — a spec that exhausts its attempts (or fails
  deterministically) becomes a structured :class:`RunFailure` in
  ``runner.failures`` instead of aborting the batch; every other spec
  still completes and is cached.
* **Crash-safe cache** — shards are written atomically (unique temp file
  + ``os.replace``) with a checksum sidecar; shards that fail validation
  on read (truncated JSON, descriptor/results-version mismatch, checksum
  mismatch) are quarantined to ``<cache_dir>/quarantine/`` with a logged
  warning and transparently re-run.
* **Sweep journal** — every sweep appends to ``<cache_dir>/journal.jsonl``
  (one JSON object per line: submissions, completions, retries,
  failures, quarantines).  Because results are cache-first, re-running an
  interrupted sweep re-executes only the missing specs — the journal
  records what happened, the cache makes resume automatic.

Workers rebuild the whole simulation from the spec alone (plus the
pickled network topologies), so parallel, serial, and retried execution
produce byte-identical cache files and results.

The kwarg-form ``solo()`` / ``ideal()`` / ``static_equal()`` / ``mix()``
methods remain as thin wrappers that build a :class:`RunSpec` internally;
new code should plan specs and call :meth:`run_many`.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import random
import signal
import time
import traceback as traceback_module
from collections import deque
from contextlib import nullcontext
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.compute import tracecache
from repro.config import presets
from repro.obs.profiling import PhaseProfiler
from repro.storage import (
    QUARANTINE_DIR,
    ShardStore,
    atomic_write_bytes,
    checksum_path,
    encode_result_shard,
)
from repro.core.sharing import SharingLevel
from repro.core.simulator import (
    DEFAULT_STALL_WINDOW_TICKS,
    MultiCoreNPUSim,
    WorkloadResult,
)
from repro.errors import (
    RunFailedError,
    RunFailure,
    RunTimeoutError,
    SimulationStallError,
    SweepOutcome,
    TransientWorkerError,
)
from repro.experiments import faults as faults_module
from repro.experiments.spec import (
    DEFAULT_DATAFLOW,
    DEFAULT_REPLAY_MODE,
    RESULTS_VERSION,
    RunSpec,
)
from repro.models import serving as serving_module
from repro.models import zoo
from repro.models.serving import ServingParams

__all__ = [
    "DEFAULT_MAX_TICKS",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_RETRY_BACKOFF",
    "MIX_STAGGER_CYCLES",
    "QUARANTINE_DIR",
    "RESULTS_VERSION",
    "ExperimentRunner",
    "RunFailedError",
    "RunFailure",
    "RunProgress",
    "RunSpec",
    "SweepJournal",
    "SweepOutcome",
]

_LOG = logging.getLogger("repro.experiments.runner")

#: Safety valve: a run exceeding this many global ticks raises instead of
#: spinning forever.
DEFAULT_MAX_TICKS = 50_000_000_000

#: Executions (first try + retries) a retriable spec may consume.
DEFAULT_MAX_ATTEMPTS = 3

#: Base of the exponential retry backoff, in seconds.
DEFAULT_RETRY_BACKOFF = 0.5

#: Default jitter fraction applied to each backoff sleep.  A sleep of
#: ``base`` becomes ``base * (1 + U[0, jitter])`` so a fleet of retrying
#: specs (or serve clients resubmitting after a pool crash) decorrelates
#: instead of thundering back in lockstep.
DEFAULT_RETRY_JITTER = 0.25

#: Longest single backoff sleep, in seconds.
MAX_BACKOFF_SECONDS = 30.0

#: Extra wall-clock slack the parent grants past ``run_timeout`` before
#: hard-killing a worker whose SIGALRM apparently never fired.
TIMEOUT_GRACE_SECONDS = 5.0

#: How often the parent wakes to check for overdue workers.
_POLL_INTERVAL_SECONDS = 0.25

#: File name of the sweep journal inside the cache directory.
JOURNAL_NAME = "journal.jsonl"

#: Subdirectory of the result cache holding compiled-trace shards.
TRACE_DIR_NAME = "traces"

#: Re-exported for back-compat; the constant lives with the presets now.
MIX_STAGGER_CYCLES = presets.MIX_STAGGER_CYCLES

#: Sentinel distinguishing "argument omitted" from an explicit ``None``
#: for per-call overrides of runner-level defaults (``run_timeout``).
_UNSET: Any = object()


def _configure_worker_trace_cache(directory: str | None, enabled: bool) -> None:
    """Pool initializer: point each worker at the shared trace store.

    Under the default ``fork`` start method workers additionally inherit
    the parent's warmed in-process memo, so they rarely touch the disk
    level at all; under ``spawn``/``forkserver`` they load the shards the
    parent published during planning instead of recompiling.
    """
    tracecache.configure(
        directory=Path(directory) if directory else None, enabled=enabled
    )


def _result_dict(result: WorkloadResult) -> dict[str, Any]:
    payload = dataclasses.asdict(result)
    # Normalize to JSON-stable types so fresh and cached results compare equal.
    payload["layer_cycles"] = list(payload["layer_cycles"])
    return payload


def _execute_spec(
    spec: RunSpec,
    networks: Sequence[Any],
    max_ticks: int,
    stall_window: int | None = None,
) -> list[dict[str, Any]]:
    """Run one spec to completion (no supervision — the bare simulation).

    Deliberately a module-level function of picklable arguments: workers
    reconstruct the simulator purely from the spec plus the network
    topologies, so results cannot depend on parent-process state.
    """
    sim = MultiCoreNPUSim(
        spec.system(), list(networks), stall_window_ticks=stall_window
    )
    mix_result = sim.run(max_ticks=max_ticks)
    return [_result_dict(result) for result in mix_result.workloads]


def _supervised_execute(
    spec: RunSpec,
    networks: Sequence[Any],
    max_ticks: int,
    *,
    stall_window: int | None = None,
    timeout: float | None = None,
    attempt: int = 1,
    fault: "faults_module.Fault | None" = None,
    in_pool: bool = False,
) -> list[dict[str, Any]]:
    """The supervised worker entry point: fault hook + wall-clock budget.

    When ``timeout`` is set, a SIGALRM interval timer bounds the whole
    execution; the handler raises :class:`RunTimeoutError` from wherever
    the simulation happens to be.  This relies on workers running tasks
    in their main thread (true for ``ProcessPoolExecutor`` workers and
    for serial in-process execution).
    """
    def execute() -> list[dict[str, Any]]:
        if fault is not None:
            faults_module.trigger(
                fault, spec, tuple(networks), attempt=attempt,
                timeout=timeout, in_pool=in_pool,
            )
        return _execute_spec(spec, networks, max_ticks, stall_window)

    if timeout is None:
        return execute()

    def on_alarm(signum: int, frame: Any) -> None:
        raise RunTimeoutError(
            f"run exceeded {timeout:.1f}s wall clock: {spec.label}"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return execute()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _failure_kind(error: BaseException) -> str:
    """Classify a terminal exception for :class:`RunFailure.kind`."""
    if isinstance(error, RunTimeoutError):
        return "timeout"
    if isinstance(error, SimulationStallError):
        return "stall"
    if isinstance(error, (TransientWorkerError, BrokenProcessPool)):
        return "crash"
    return "error"


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when its workers are stuck in simulation.

    ``shutdown`` alone waits on workers that may never look at the call
    queue again, so kill the processes first.  ``_processes`` is CPython
    implementation detail; guarded so exotic executors degrade to a
    plain shutdown.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            if process.is_alive():
                process.terminate()
        except Exception:  # pragma: no cover - racing process exit
            pass
    pool.shutdown(wait=True, cancel_futures=True)


class SweepJournal:
    """Append-only JSONL record of sweep execution events.

    One JSON object per line, each with an ``event`` tag and a wall-clock
    ``ts``.  Journaling is strictly best-effort: a full disk or read-only
    cache must never take down the sweep itself, so write errors are
    swallowed, and :meth:`read` skips lines truncated by a crash.
    """

    def __init__(self, path: Path) -> None:
        self.path = path

    def append(self, event: str, **fields: Any) -> None:
        """Record one event; silently drops the record on OS errors."""
        record = {"event": event, "ts": round(time.time(), 3), **fields}
        try:
            with self.path.open("a", encoding="utf-8") as handle:
                # A crash mid-append leaves a torn line with no trailing
                # newline; writing onto it would glue this record to the
                # garbage and lose both.  Start on a fresh line instead —
                # the torn line stays skippable, this record stays whole.
                if handle.tell() > 0:
                    with self.path.open("rb") as reader:
                        reader.seek(-1, os.SEEK_END)
                        if reader.read(1) != b"\n":
                            handle.write("\n")
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:  # pragma: no cover - depends on filesystem state
            pass

    def read(self) -> list[dict[str, Any]]:
        """Every parseable record, oldest first.

        A crash mid-append leaves a truncated final line (the journal is
        plain appended JSONL, deliberately not atomic); resume must shrug
        that off, so unparseable lines are skipped with a warning rather
        than raised — losing one journal record never loses any results,
        which live in the content-addressed shard store.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        records = []
        for number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                _LOG.warning(
                    "sweep journal %s: skipping unparseable line %d "
                    "(crash mid-write?)",
                    self.path,
                    number,
                )
                continue
            if isinstance(record, dict):
                records.append(record)
        return records


@dataclass(frozen=True)
class RunProgress:
    """One progress event from :meth:`ExperimentRunner.run_many`.

    ``completed`` counts specs whose outcome is settled (cache hits and
    failures included); ``eta_seconds`` extrapolates from the cold runs
    settled so far and is ``None`` until the first one lands.
    """

    completed: int
    total: int
    cache_hits: int
    spec: RunSpec | None
    elapsed_seconds: float
    eta_seconds: float | None
    failed: int = 0


#: Signature of the pluggable progress reporter.
ProgressCallback = Callable[[RunProgress], None]


class ExperimentRunner:
    """Plans, executes (supervises, caches) the simulations behind every figure."""

    def __init__(
        self,
        scale: str = "mini",
        cache_dir: str | Path | None = None,
        max_ticks: int = DEFAULT_MAX_TICKS,
        jobs: int = 1,
        progress: ProgressCallback | None = None,
        *,
        dataflow: str = DEFAULT_DATAFLOW,
        replay_mode: str = DEFAULT_REPLAY_MODE,
        phase: str | None = None,
        serving: ServingParams | None = None,
        run_timeout: float | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
        retry_jitter: float = DEFAULT_RETRY_JITTER,
        retry_budget: float | None = None,
        stall_window_ticks: int | None = DEFAULT_STALL_WINDOW_TICKS,
        fault_plan: "faults_module.FaultPlan | None" = None,
        journal: bool = True,
        trace_cache: bool = True,
        profile: bool = False,
        keep_pool: bool = False,
    ) -> None:
        """``dataflow`` is the engine the ``plan_*`` helpers default to
        (the CLI's ``--dataflow`` flag sets it; individual specs may
        still override it explicitly); ``replay_mode`` likewise seeds the
        ``plan_*`` helpers (``--replay-mode``; all modes are proven
        byte-identical, see :mod:`repro.core.replay`); ``run_timeout``
        bounds each run's
        wall clock (seconds, ``None``
        = unbounded); ``max_attempts`` caps executions per retriable spec;
        ``retry_jitter`` randomizes each backoff sleep by up to that
        fraction (0 restores the deterministic exponential schedule);
        ``retry_budget`` caps the total wall clock (seconds) a single
        spec may spend across all its attempts *and* backoff sleeps —
        once exceeded the spec fails terminally instead of retrying;
        ``stall_window_ticks`` arms the engine stall watchdog (``None``
        disables it); ``fault_plan`` injects deterministic failures for
        testing; ``journal=False`` turns off the sweep journal;
        ``keep_pool=True`` keeps the supervised worker pool alive across
        :meth:`run_many` batches (the ``mnpusim serve`` daemon's warm
        pool — call :meth:`close` when done; a broken pool is still
        rebuilt transparently);
        ``trace_cache=False`` disables the compiled-frontend cache (the
        ``--no-trace-cache`` escape hatch — every run regenerates its
        request traces live); ``profile=True`` arms :attr:`profiler` (a
        :class:`~repro.obs.profiling.PhaseProfiler`) so runs and sweeps
        account per-phase wall time — cache reads, frontend compilation,
        simulation, cache writes — surfaced by ``mnpusim profile`` and a
        ``profile`` sweep-journal event.  ``cache_write`` time is spent
        inside the ``execute`` window (shards are stored as runs settle),
        so phase times overlap and need not sum to the elapsed total.
        """
        self.scale = scale
        self.dataflow = dataflow
        self.replay_mode = replay_mode
        #: Default serving axes the ``plan_*`` helpers thread into specs
        #: (``--phase`` and the serving knobs of the CLI); per-spec
        #: values still override them, mirroring ``dataflow``.
        self.phase = phase
        self.serving = serving
        self.max_ticks = max_ticks
        self.jobs = max(1, jobs)
        self.progress = progress
        self.run_timeout = run_timeout
        self.max_attempts = max(1, max_attempts)
        self.retry_backoff = max(0.0, retry_backoff)
        self.retry_jitter = max(0.0, retry_jitter)
        self.retry_budget = retry_budget
        self.keep_pool = keep_pool
        self._pool: ProcessPoolExecutor | None = None
        self.stall_window_ticks = stall_window_ticks
        self.fault_plan = fault_plan
        if cache_dir is None:
            cache_dir = Path.cwd() / ".repro_cache"
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._result_store = ShardStore(
            self.cache_dir, on_quarantine=self._on_result_quarantine
        )
        self.trace_cache = trace_cache
        self.trace_dir = self.cache_dir / TRACE_DIR_NAME
        # The compile phase resolves through the process-level cache; the
        # runner points its disk level under its own cache directory so
        # result shards and trace shards travel together.
        tracecache.configure(directory=self.trace_dir, enabled=trace_cache)
        self.journal: SweepJournal | None = (
            SweepJournal(self.cache_dir / JOURNAL_NAME) if journal else None
        )
        #: Wall-time phase accounting (``profile=True``); ``None`` when off.
        self.profiler: PhaseProfiler | None = PhaseProfiler() if profile else None
        self.per_core = presets.per_core_resources(scale)
        self.runs_executed = 0
        self.cache_hits = 0
        self.quarantined = 0
        #: Trace-cache counter deltas of the most recent planning pass.
        self.last_trace_stats: tracecache.TraceCacheStats | None = None
        #: Spec -> terminal failure record, from this runner's lifetime.
        self.failures: dict[RunSpec, RunFailure] = {}
        #: Aggregate of the most recent :meth:`run_many` batch.
        self.last_outcome: SweepOutcome | None = None
        self._networks: dict[str, Any] = {}
        # Injectable for tests: supervision sleeps (backoff) route here,
        # and backoff jitter draws from this RNG.
        self._sleep: Callable[[float], None] = time.sleep
        self._random = random.Random()

    def register_network(self, network: Any) -> None:
        """Make a non-zoo network (e.g. a random net) runnable by name.

        Registered names shadow zoo names, so keep them distinct.  Cache
        entries are keyed by name: a registered network must always carry
        the same topology for its name (random nets are seed-named, which
        guarantees this).  Registered topologies are pickled to the
        worker processes of :meth:`run_many`, so they work there too.
        """
        self._networks[network.name] = network

    def _network(self, name: str) -> Any:
        if name in self._networks:
            return self._networks[name]
        return zoo.get(name, self.scale)

    def _network_for(self, spec: RunSpec, name: str) -> Any:
        """Resolve one of ``spec``'s workloads to its topology.

        Registered networks shadow everything (as before); serving
        names (``gpt2:prefill``, or a bare base under ``spec.phase``)
        build their schedule-unrolled networks from the spec's serving
        parameters; everything else falls back to the zoo.
        """
        if name in self._networks:
            return self._networks[name]
        network = serving_module.resolve(
            name,
            spec.scale,
            params=spec.serving,
            default_phase=spec.phase,
        )
        if network is not None:
            return network
        return zoo.get(name, self.scale)

    def _networks_for(self, spec: RunSpec) -> list[Any]:
        return [self._network_for(spec, name) for name in spec.workloads]

    # ------------------------------------------------------------------ #
    # Pool lifecycle (persistent under ``keep_pool=True``)
    # ------------------------------------------------------------------ #

    def _make_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_configure_worker_trace_cache,
            initargs=(
                str(self.trace_dir) if self.trace_cache else None,
                self.trace_cache,
            ),
        )

    def _acquire_pool(self, workers: int) -> ProcessPoolExecutor:
        """The pool a batch executes on.

        With ``keep_pool`` the runner owns one long-lived pool sized to
        ``self.jobs`` (idle workers are cheap; a warm pool saves the
        daemon a fork storm per request); otherwise each batch gets a
        right-sized throwaway pool, as before.
        """
        if not self.keep_pool:
            return self._make_pool(workers)
        if self._pool is None:
            self._pool = self._make_pool(self.jobs)
        return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Tear ``pool`` down; forget it if it was the persistent one."""
        if pool is self._pool:
            self._pool = None
        _terminate_pool(pool)

    def close(self) -> None:
        """Release the persistent worker pool (no-op when none is live)."""
        if self._pool is not None:
            self._discard_pool(self._pool)

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #

    def plan(self, spec: RunSpec) -> RunSpec:
        """Resolve a spec against this runner's scale defaults.

        Solo specs with unset resource fields get the scale's Table 2
        per-core share (the equal Static split).  Specs planned here are
        safe to hand to :meth:`run` / :meth:`run_many` or to hash.
        """
        if spec.kind == "solo" and not spec.is_resolved:
            per_core = presets.per_core_resources(spec.scale)
            spec = dataclasses.replace(
                spec,
                channels=spec.channels if spec.channels is not None
                else per_core["channels"],
                num_ptw=spec.num_ptw if spec.num_ptw is not None
                else per_core["num_ptw"],
                tlb_entries=spec.tlb_entries if spec.tlb_entries is not None
                else per_core["tlb_entries"],
            )
        return spec

    def _plan_serving(
        self,
        workloads: Sequence[str],
        phase: str | None,
        serving: ServingParams | None,
    ) -> tuple[str | None, ServingParams | None]:
        """Runner-default serving axes, applied only where they can bind.

        ``--phase`` / serving knobs set runner-wide defaults, but most
        planned specs in a sweep run plain zoo workloads; pushing the
        defaults onto those would be rejected by :class:`RunSpec`
        validation (a phase with no serving workload is a silent no-op
        and therefore an error).  So the defaults bind exactly when the
        workload list can use them, and stay off otherwise.
        """
        bare_base = any(
            name in serving_module.SERVING_BASES for name in workloads
        )
        qualified = any(
            serving_module.split_name(name)[1] is not None
            for name in workloads
        )
        if phase is None and self.phase is not None and bare_base:
            phase = self.phase
        if (
            serving is None
            and self.serving is not None
            and (qualified or (phase is not None and bare_base))
        ):
            serving = self.serving
        return phase, serving

    def plan_solo(
        self,
        workload: str,
        *,
        channels: int | None = None,
        num_ptw: int | None = None,
        tlb_entries: int | None = None,
        page_bytes: int = 4096,
        translation: bool = True,
        dataflow: str | None = None,
        replay_mode: str | None = None,
        phase: str | None = None,
        serving: ServingParams | None = None,
    ) -> RunSpec:
        """Spec for one workload alone on an explicit resource slice."""
        phase, serving = self._plan_serving((workload,), phase, serving)
        return RunSpec.solo(
            workload,
            scale=self.scale,
            channels=channels,
            num_ptw=num_ptw,
            tlb_entries=tlb_entries,
            page_bytes=page_bytes,
            translation=translation,
            dataflow=dataflow if dataflow is not None else self.dataflow,
            replay_mode=replay_mode if replay_mode is not None
            else self.replay_mode,
            phase=phase,
            serving=serving,
        )

    def plan_ideal(
        self,
        workload: str,
        num_cores: int,
        *,
        page_bytes: int = 4096,
        translation: bool = True,
        dataflow: str | None = None,
        replay_mode: str | None = None,
        phase: str | None = None,
        serving: ServingParams | None = None,
    ) -> RunSpec:
        """Spec for the Ideal baseline: the whole N-core resource pool."""
        phase, serving = self._plan_serving((workload,), phase, serving)
        return RunSpec.ideal(
            workload,
            num_cores,
            scale=self.scale,
            page_bytes=page_bytes,
            translation=translation,
            dataflow=dataflow if dataflow is not None else self.dataflow,
            replay_mode=replay_mode if replay_mode is not None
            else self.replay_mode,
            phase=phase,
            serving=serving,
        )

    def plan_static_equal(
        self,
        workload: str,
        *,
        page_bytes: int = 4096,
        translation: bool = True,
        dataflow: str | None = None,
        replay_mode: str | None = None,
        phase: str | None = None,
        serving: ServingParams | None = None,
    ) -> RunSpec:
        """Spec for the equal Static split: one per-core resource share."""
        return self.plan_solo(
            workload,
            page_bytes=page_bytes,
            translation=translation,
            dataflow=dataflow,
            replay_mode=replay_mode,
            phase=phase,
            serving=serving,
        )

    def plan_mix(
        self,
        names: Sequence[str],
        sharing: SharingLevel,
        *,
        page_bytes: int = 4096,
        translation: bool = True,
        ptw_split: Sequence[int] | None = None,
        num_ptw_per_core: int | None = None,
        tlb_entries_per_core: int | None = None,
        dataflow: str | None = None,
        replay_mode: str | None = None,
        phase: str | None = None,
        serving: ServingParams | None = None,
    ) -> RunSpec:
        """Spec for a co-simulation under a dynamic sharing level."""
        phase, serving = self._plan_serving(names, phase, serving)
        return RunSpec.mix(
            names,
            sharing,
            scale=self.scale,
            page_bytes=page_bytes,
            translation=translation,
            ptw_split=ptw_split,
            num_ptw_per_core=num_ptw_per_core,
            tlb_entries_per_core=tlb_entries_per_core,
            dataflow=dataflow if dataflow is not None else self.dataflow,
            replay_mode=replay_mode if replay_mode is not None
            else self.replay_mode,
            phase=phase,
            serving=serving,
        )

    # ------------------------------------------------------------------ #
    # Cache plumbing (crash-safe, delegated to repro.storage.ShardStore)
    # ------------------------------------------------------------------ #

    def _on_result_quarantine(self, name: str, reason: str) -> None:
        self.quarantined += 1
        self._journal("quarantine", shard=name, reason=reason)

    def _shard_name(self, spec: RunSpec) -> str:
        return f"{spec.cache_key()}.json"

    def _cache_path(self, spec: RunSpec) -> Path:
        return self._result_store.path(self._shard_name(spec))

    @staticmethod
    def _checksum_path(path: Path) -> Path:
        return checksum_path(path)

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        atomic_write_bytes(path, data)

    def _store(self, spec: RunSpec, results: list[dict[str, Any]]) -> None:
        # The shard byte format is pinned by the golden-equivalence suite;
        # integrity metadata therefore lives in a sidecar, not the shard.
        # The encoding is shared with the serve daemon so HTTP payloads
        # and disk shards are byte-identical.
        payload = encode_result_shard(spec.descriptor(), results)
        self._result_store.write(self._shard_name(spec), payload)

    def _validate_shard(
        self, spec: RunSpec, raw: bytes
    ) -> tuple[list[dict[str, Any]] | None, str | None]:
        """``(results, None)`` when the shard is sound, else ``(None, reason)``."""
        try:
            payload = json.loads(raw)
        except ValueError:
            return None, "unparseable JSON (truncated write?)"
        if not isinstance(payload, dict) or not isinstance(
            payload.get("results"), list
        ):
            return None, "malformed shard structure"
        descriptor = payload.get("descriptor")
        if descriptor != spec.descriptor():
            if (
                isinstance(descriptor, dict)
                and descriptor.get("version") != RESULTS_VERSION
            ):
                return None, (
                    f"results-version mismatch "
                    f"({descriptor.get('version')} != {RESULTS_VERSION})"
                )
            return None, "descriptor does not match spec"
        return payload["results"], None

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt shard (and its sidecar) out of the cache."""
        self._result_store.quarantine(path.name, reason)

    def _cached(self, spec: RunSpec) -> list[dict[str, Any]] | None:
        results = self._result_store.read_validated(
            self._shard_name(spec), lambda raw: self._validate_shard(spec, raw)
        )
        if results is None:
            return None
        self.cache_hits += 1
        return results

    def cache_usage(self) -> dict[str, int]:
        """Disk usage of the result store: shards / bytes / quarantined."""
        return self._result_store.usage()

    def cached_payload(self, spec: RunSpec) -> bytes | None:
        """The validated result-shard bytes for ``spec``, or ``None``.

        Exactly the bytes a cold run of the spec would publish to disk —
        the serve daemon's cache-first read path, giving HTTP responses
        that are byte-identical to CLI shards.
        """
        spec = self.plan(spec)
        results = self._cached(spec)
        if results is None:
            return None
        return encode_result_shard(spec.descriptor(), results)

    def _journal(self, event: str, **fields: Any) -> None:
        if self.journal is not None:
            self.journal.append(event, **fields)

    def _phase(self, name: str):
        """Profiling context for one runner phase (no-op when off)."""
        if self.profiler is None:
            return nullcontext()
        return self.profiler.phase(name)

    def _count(self, name: str, amount: int = 1) -> None:
        if self.profiler is not None and amount:
            self.profiler.count(name, amount)

    def _journal_profile(self) -> None:
        """Append the profiler snapshot to the sweep journal."""
        if self.profiler is not None:
            self._journal("profile", **self.profiler.snapshot())

    # ------------------------------------------------------------------ #
    # Trace precompilation (the sweep's compile phase)
    # ------------------------------------------------------------------ #

    def _claim_trace_cache(self) -> None:
        """Point the process-level trace cache at *this* runner's store.

        The cache is process-global (so forked workers inherit a warm
        memo), but several runners can coexist in one process; whichever
        is executing owns the disk level for the duration, so its trace
        shards land next to its result shards.  The memo is content-
        addressed and survives re-pointing.
        """
        tracecache.configure(directory=self.trace_dir, enabled=self.trace_cache)

    def _precompile_frontends(
        self, cold: Sequence[RunSpec]
    ) -> "tracecache.TraceCacheStats | None":
        """Compile each distinct frontend of a batch exactly once, here.

        A sweep of S specs over C cores would otherwise regenerate
        S x C frontends inside the workers; the distinct ``(workload,
        arch)`` pairs — usually a handful, since characterization sweeps
        vary memory-side config only — are compiled (or loaded from the
        trace store) once in the parent instead.  Workers then inherit
        the warmed memo (``fork``) or load the just-published shards.
        Returns the counter deltas of this pass, or ``None`` when the
        cache is disabled.
        """
        if not tracecache.is_enabled():
            self.last_trace_stats = None
            return None
        cache = tracecache.process_cache()
        before = cache.stats.snapshot()
        seen: set[str] = set()
        for spec in cold:
            for name, arch in spec.frontends():
                network = self._network_for(spec, name)
                fingerprint = tracecache.frontend_fingerprint(network, arch)
                if fingerprint in seen:
                    continue
                seen.add(fingerprint)
                cache.get(network, arch)
        delta = cache.stats.since(before)
        self.last_trace_stats = delta
        if cold:
            self._journal("trace_cache", distinct=len(seen), **delta.summary())
        return delta

    # ------------------------------------------------------------------ #
    # Supervision primitives
    # ------------------------------------------------------------------ #

    def _fault_for(self, spec: RunSpec) -> "faults_module.Fault | None":
        if self.fault_plan is None:
            return None
        return self.fault_plan.lookup(spec)

    def _backoff(self, attempt: int) -> float:
        """Sleep before retry ``attempt + 1``: exponential, capped, jittered.

        Jitter is additive-proportional (``base * (1 + U[0, jitter])``)
        so concurrent retriers spread out instead of synchronizing; the
        cap applies after jitter so the bound is absolute.
        """
        base = self.retry_backoff * (2 ** (attempt - 1))
        if self.retry_jitter:
            base *= 1.0 + self.retry_jitter * self._random.random()
        return min(MAX_BACKOFF_SECONDS, base)

    def _budget_spent(self, started: float, backoff: float) -> bool:
        """True when retrying after ``backoff`` would bust ``retry_budget``.

        The budget covers everything a spec has consumed since its first
        attempt started — execution time and backoff sleeps alike — so a
        crash-looping spec cannot monopolize a sweep (or the serve
        daemon's pool) indefinitely even with generous ``max_attempts``.
        """
        if self.retry_budget is None:
            return False
        return (time.monotonic() - started) + backoff > self.retry_budget

    def _failure(
        self,
        spec: RunSpec,
        kind: str,
        attempts: int,
        error: BaseException,
        started: float,
    ) -> RunFailure:
        trace = "".join(
            traceback_module.format_exception(type(error), error, error.__traceback__)
        )
        return RunFailure(
            spec=spec,
            kind=kind,
            attempts=attempts,
            error=f"{type(error).__name__}: {error}",
            traceback=trace,
            elapsed_seconds=time.monotonic() - started,
        )

    def _execute_with_retry(
        self, spec: RunSpec, run_timeout: float | None = _UNSET
    ) -> list[dict[str, Any]]:
        """In-process execution with timeout + bounded retries.

        ``run_timeout`` overrides the runner default for this call (the
        serve daemon's per-request deadline propagation).  Raises
        :class:`RunFailedError` (failure attached, not yet recorded)
        when the spec fails terminally.
        """
        if run_timeout is _UNSET:
            run_timeout = self.run_timeout
        networks = self._networks_for(spec)
        attempt = 1
        started = time.monotonic()
        while True:
            try:
                return _supervised_execute(
                    spec,
                    networks,
                    self.max_ticks,
                    stall_window=self.stall_window_ticks,
                    timeout=run_timeout,
                    attempt=attempt,
                    fault=self._fault_for(spec),
                    in_pool=False,
                )
            except TransientWorkerError as error:
                backoff = self._backoff(attempt)
                if attempt >= self.max_attempts or self._budget_spent(
                    started, backoff
                ):
                    raise RunFailedError(
                        self._failure(spec, "crash", attempt, error, started)
                    ) from error
                self._journal(
                    "retry",
                    key=spec.cache_key(),
                    label=spec.label,
                    attempt=attempt,
                    error=str(error),
                )
                self._sleep(backoff)
                attempt += 1
            except Exception as error:
                raise RunFailedError(
                    self._failure(
                        spec, _failure_kind(error), attempt, error, started
                    )
                ) from error

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self, spec: RunSpec) -> list[dict[str, Any]]:
        """Execute one spec in-process, cache-first.

        Raises :class:`RunFailedError` when the spec fails terminally —
        including when a previous :meth:`run_many` batch already recorded
        the spec in :attr:`failures` (so figure reducers consuming a
        partially-failed sweep get a typed error, not a re-execution).
        """
        spec = self.plan(spec)
        self._claim_trace_cache()
        with self._phase("cache_read"):
            cached = self._cached(spec)
        if cached is not None:
            self._count("cache_hits")
            self.failures.pop(spec, None)
            return cached
        failure = self.failures.get(spec)
        if failure is not None:
            raise RunFailedError(failure)
        try:
            with self._phase("execute"):
                results = self._execute_with_retry(spec)
        except RunFailedError as error:
            self.failures[spec] = error.failure
            self._journal("fail", **error.failure.summary())
            raise
        self._count("cold_runs")
        with self._phase("cache_write"):
            self._store(spec, results)
        self.runs_executed += 1
        self._journal("done", key=spec.cache_key(), label=spec.label)
        return results

    def run_many(
        self,
        specs: Iterable[RunSpec],
        jobs: int | None = None,
        progress: ProgressCallback | None = None,
        *,
        run_timeout: float | None = _UNSET,
        force_pool: bool = False,
    ) -> dict[RunSpec, list[dict[str, Any]]]:
        """Execute a batch of specs, in parallel when ``jobs > 1``.

        The batch is deduplicated (specs are frozen and hashable), cache
        hits are satisfied first, and the remaining cold runs are sharded
        across a supervised process pool.  The parent process writes one
        cache shard per completed run — workers never touch the cache
        directory — and reports progress through ``progress`` (or the
        runner's default callback) after every settled spec.

        ``run_timeout`` overrides the runner-level wall-clock budget for
        this batch only (the serve daemon propagates request deadlines
        through it).  ``force_pool=True`` executes cold runs in the
        worker pool even when a serial fast path would apply — required
        whenever the caller is not the process main thread (the in-worker
        SIGALRM timeout only arms there) and whenever worker crashes must
        not take the calling process down.

        A spec that fails terminally does **not** abort the batch: it is
        recorded in :attr:`failures` (and the sweep journal) and simply
        omitted from the returned mapping.  Check :attr:`last_outcome`
        for the batch aggregate.

        Returns a mapping from each *planned* spec to its per-workload
        result dicts; look results up with the specs returned by the
        ``plan_*`` helpers.
        """
        jobs = self.jobs if jobs is None else max(1, jobs)
        progress = progress if progress is not None else self.progress
        if run_timeout is _UNSET:
            run_timeout = self.run_timeout
        self._claim_trace_cache()
        ordered = list(dict.fromkeys(self.plan(spec) for spec in specs))
        started = time.monotonic()
        results: dict[RunSpec, list[dict[str, Any]]] = {}
        cold: list[RunSpec] = []
        with self._phase("cache_read"):
            for spec in ordered:
                # A new batch is a fresh start: stale failure records must
                # not mask a spec that might succeed now.
                self.failures.pop(spec, None)
                cached = self._cached(spec)
                if cached is not None:
                    results[spec] = cached
                else:
                    cold.append(spec)
        hits = len(results)
        self._count("cache_hits", hits)
        self._count("cold_runs", len(cold))
        cold_done = 0
        batch_failures: list[RunFailure] = []
        self._journal(
            "sweep",
            total=len(ordered),
            cache_hits=hits,
            cold=len(cold),
            jobs=jobs,
        )
        # Compile phase: every distinct frontend of the cold runs is
        # resolved once before any simulation executes.
        with self._phase("compile"):
            self._precompile_frontends(cold)

        def report(spec: RunSpec | None) -> None:
            if progress is None:
                return
            elapsed = time.monotonic() - started
            eta = None
            if cold_done and cold_done < len(cold):
                eta = elapsed / cold_done * (len(cold) - cold_done)
            progress(
                RunProgress(
                    completed=hits + cold_done,
                    total=len(ordered),
                    cache_hits=hits,
                    spec=spec,
                    elapsed_seconds=elapsed,
                    eta_seconds=eta,
                    failed=len(batch_failures),
                )
            )

        def finish(spec: RunSpec, payload: list[dict[str, Any]]) -> None:
            nonlocal cold_done
            with self._phase("cache_write"):
                self._store(spec, payload)
            self.runs_executed += 1
            results[spec] = payload
            cold_done += 1
            self._journal("done", key=spec.cache_key(), label=spec.label)
            report(spec)

        def fail(spec: RunSpec, failure: RunFailure) -> None:
            nonlocal cold_done
            self.failures[spec] = failure
            batch_failures.append(failure)
            cold_done += 1
            self._journal("fail", **failure.summary())
            _LOG.warning(
                "spec failed after %d attempt(s): %s: %s",
                failure.attempts,
                failure.label,
                failure.error,
            )
            report(spec)

        report(None)
        try:
            if cold:
                with self._phase("execute"):
                    if not force_pool and (jobs == 1 or len(cold) == 1):
                        self._run_serial(cold, finish, fail, run_timeout)
                    else:
                        self._run_pool(cold, jobs, finish, fail, run_timeout)
        except KeyboardInterrupt:
            # Graceful interruption (SIGINT, or the CLI's SIGTERM
            # handler): record where the sweep stood so a resumed run
            # can be audited, then let the caller unwind.  Results are
            # cache-first, so everything settled so far is durable.
            self.last_outcome = SweepOutcome(
                total=len(ordered),
                cache_hits=hits,
                executed=cold_done - len(batch_failures),
                failures=tuple(batch_failures),
            )
            self._journal(
                "interrupt",
                total=len(ordered),
                settled=hits + cold_done,
                failed=len(batch_failures),
                remaining=len(cold) - cold_done,
            )
            self._journal_profile()
            raise
        self.last_outcome = SweepOutcome(
            total=len(ordered),
            cache_hits=hits,
            executed=len(cold) - len(batch_failures),
            failures=tuple(batch_failures),
        )
        self._journal_profile()
        return results

    def _run_serial(
        self,
        cold: Sequence[RunSpec],
        finish: Callable[[RunSpec, list[dict[str, Any]]], None],
        fail: Callable[[RunSpec, RunFailure], None],
        run_timeout: float | None,
    ) -> None:
        for spec in cold:
            try:
                payload = self._execute_with_retry(spec, run_timeout)
            except RunFailedError as error:
                fail(spec, error.failure)
            else:
                finish(spec, payload)

    def _run_pool(
        self,
        cold: Sequence[RunSpec],
        jobs: int,
        finish: Callable[[RunSpec, list[dict[str, Any]]], None],
        fail: Callable[[RunSpec, RunFailure], None],
        run_timeout: float | None,
    ) -> None:
        """The supervised parallel executor.

        Invariants:

        * ``pending`` holds (spec, attempt) pairs not yet submitted;
          ``inflight`` maps live futures to (spec, attempt, start time).
        * After a pool breakage, every formerly in-flight retriable spec
          moves to ``suspects`` and re-runs strictly one at a time (the
          pool is drained first), so a spec that *reliably* kills its
          worker crashes alone and is attributed correctly, while specs
          that were innocent bystanders complete on their isolated run.
        * When ``run_timeout`` is set, the parent polls for workers that
          overshot the budget plus :data:`TIMEOUT_GRACE_SECONDS` (their
          in-worker SIGALRM evidently never fired) and hard-kills the
          pool; the overdue specs fail as timeouts, the rest re-run.
        """
        workers = min(jobs, len(cold))
        pending: deque[tuple[RunSpec, int]] = deque((spec, 1) for spec in cold)
        suspects: deque[tuple[RunSpec, int]] = deque()
        inflight: dict[Future, tuple[RunSpec, int, float]] = {}
        # Retry budgets count from a spec's *first* submission, not the
        # current attempt's, so crash-looping specs cannot reset the clock.
        first_started: dict[RunSpec, float] = {}

        pool = self._acquire_pool(workers)
        hard_limit = (
            None
            if run_timeout is None
            else run_timeout + TIMEOUT_GRACE_SECONDS
        )

        def submit(spec: RunSpec, attempt: int, origin: deque) -> bool:
            try:
                future = pool.submit(
                    _supervised_execute,
                    spec,
                    tuple(self._networks_for(spec)),
                    self.max_ticks,
                    stall_window=self.stall_window_ticks,
                    timeout=run_timeout,
                    attempt=attempt,
                    fault=self._fault_for(spec),
                    in_pool=True,
                )
            except BrokenProcessPool:
                origin.appendleft((spec, attempt))
                return False
            inflight[future] = (spec, attempt, time.monotonic())
            first_started.setdefault(spec, time.monotonic())
            return True

        def rebuild() -> None:
            nonlocal pool
            self._discard_pool(pool)
            pool = self._acquire_pool(workers)

        def handle_breakage(timed_out: set[RunSpec] | None = None) -> None:
            # Pool death took every in-flight run with it; settle each one.
            timed_out = timed_out or set()
            solo = len(inflight) == 1
            for spec, attempt, t0 in list(inflight.values()):
                if spec in timed_out:
                    assert run_timeout is not None
                    error: BaseException = RunTimeoutError(
                        f"run exceeded {run_timeout:.1f}s wall clock "
                        f"(worker killed): {spec.label}"
                    )
                    fail(spec, self._failure(spec, "timeout", attempt, error, t0))
                elif attempt >= self.max_attempts or self._budget_spent(
                    first_started.get(spec, t0), self._backoff(attempt)
                ):
                    error = TransientWorkerError(
                        "worker process died (BrokenProcessPool)"
                    )
                    fail(spec, self._failure(spec, "crash", attempt, error, t0))
                else:
                    self._journal(
                        "requeue",
                        key=spec.cache_key(),
                        label=spec.label,
                        attempt=attempt,
                        isolated=solo,
                    )
                    suspects.append((spec, attempt + 1))
            inflight.clear()
            if suspects:
                self._sleep(self._backoff(max(1, suspects[0][1] - 1)))
            rebuild()

        try:
            while pending or suspects or inflight:
                if not inflight and suspects:
                    # One suspect at a time: crashes become attributable.
                    spec, attempt = suspects.popleft()
                    if not submit(spec, attempt, suspects):
                        handle_breakage()
                        continue
                elif not suspects:
                    broke = False
                    while pending and len(inflight) < workers:
                        spec, attempt = pending.popleft()
                        if not submit(spec, attempt, pending):
                            handle_breakage()
                            broke = True
                            break
                    if broke:
                        continue
                if not inflight:
                    continue
                poll = _POLL_INTERVAL_SECONDS if hard_limit is not None else None
                done, _ = wait(
                    list(inflight), timeout=poll, return_when=FIRST_COMPLETED
                )
                if not done:
                    now = time.monotonic()
                    assert hard_limit is not None
                    overdue = {
                        spec
                        for spec, _attempt, t0 in inflight.values()
                        if now - t0 > hard_limit
                    }
                    if overdue:
                        handle_breakage(timed_out=overdue)
                    continue
                for future in done:
                    spec, attempt, t0 = inflight.pop(future)
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        inflight[future] = (spec, attempt, t0)
                        handle_breakage()
                        break
                    except TransientWorkerError as error:
                        backoff = self._backoff(attempt)
                        if attempt >= self.max_attempts or self._budget_spent(
                            first_started.get(spec, t0), backoff
                        ):
                            fail(
                                spec,
                                self._failure(spec, "crash", attempt, error, t0),
                            )
                        else:
                            self._journal(
                                "retry",
                                key=spec.cache_key(),
                                label=spec.label,
                                attempt=attempt,
                                error=str(error),
                            )
                            self._sleep(backoff)
                            pending.appendleft((spec, attempt + 1))
                    except Exception as error:
                        fail(
                            spec,
                            self._failure(
                                spec, _failure_kind(error), attempt, error, t0
                            ),
                        )
                    else:
                        finish(spec, payload)
        except BaseException:
            # Interrupt or internal error: the pool's state is unknown
            # (workers may hold half-executed runs), so never keep it.
            self._discard_pool(pool)
            raise
        else:
            if not self.keep_pool:
                self._discard_pool(pool)

    # ------------------------------------------------------------------ #
    # Back-compat kwarg API (thin wrappers over RunSpec)
    # ------------------------------------------------------------------ #

    def solo(
        self,
        workload: str,
        *,
        channels: int | None = None,
        num_ptw: int | None = None,
        tlb_entries: int | None = None,
        page_bytes: int = 4096,
        translation: bool = True,
        dataflow: str | None = None,
    ) -> dict[str, Any]:
        """One workload alone on an explicit resource slice.

        Deprecated kwarg form; equivalent to ``run(plan_solo(...))[0]``.
        """
        return self.run(
            self.plan_solo(
                workload,
                channels=channels,
                num_ptw=num_ptw,
                tlb_entries=tlb_entries,
                page_bytes=page_bytes,
                translation=translation,
                dataflow=dataflow,
            )
        )[0]

    def ideal(
        self,
        workload: str,
        num_cores: int,
        *,
        page_bytes: int = 4096,
        translation: bool = True,
        dataflow: str | None = None,
    ) -> dict[str, Any]:
        """The Ideal baseline: alone with the whole N-core resource pool."""
        return self.run(
            self.plan_ideal(
                workload,
                num_cores,
                page_bytes=page_bytes,
                translation=translation,
                dataflow=dataflow,
            )
        )[0]

    def static_equal(
        self,
        workload: str,
        *,
        page_bytes: int = 4096,
        translation: bool = True,
        dataflow: str | None = None,
    ) -> dict[str, Any]:
        """The equal Static split: exactly one per-core resource share."""
        return self.solo(
            workload,
            page_bytes=page_bytes,
            translation=translation,
            dataflow=dataflow,
        )

    def mix(
        self,
        names: Sequence[str],
        sharing: SharingLevel,
        *,
        page_bytes: int = 4096,
        translation: bool = True,
        ptw_split: Sequence[int] | None = None,
        num_ptw_per_core: int | None = None,
        tlb_entries_per_core: int | None = None,
        dataflow: str | None = None,
    ) -> list[dict[str, Any]]:
        """Co-simulate ``names`` under a dynamic sharing level.

        Deprecated kwarg form; equivalent to ``run(plan_mix(...))``.  See
        :meth:`plan_mix` for the walker-partitioning overrides.
        """
        return self.run(
            self.plan_mix(
                names,
                sharing,
                page_bytes=page_bytes,
                translation=translation,
                ptw_split=ptw_split,
                num_ptw_per_core=num_ptw_per_core,
                tlb_entries_per_core=tlb_entries_per_core,
                dataflow=dataflow,
            )
        )

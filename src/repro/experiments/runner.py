"""Cached experiment executor.

Every figure of the paper reduces to two kinds of simulation:

* **solo runs** — one workload alone on an explicit resource slice.
  ``Ideal`` (the whole N-core pool), equal ``Static`` (one per-core
  share) and every static-ratio partition of section 4.3/4.4 are solo
  runs, because statically partitioned resources have no inter-core
  contention.
* **mix runs** — a genuine multi-core co-simulation under one of the
  dynamic sharing levels (+D / +DW / +DWT), optionally with a static
  walker split (figure 13) layered on top.

Runs are memoized on disk (JSON, keyed by a hash of every parameter), so
re-generating a figure after the first sweep is instant and benchmark
reruns do not repay the simulation cost.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Sequence

from repro.config import presets
from repro.config.misc import MiscConfig
from repro.config.system import SystemConfig
from repro.core.sharing import SharingLevel
from repro.core.simulator import MultiCoreNPUSim, WorkloadResult
from repro.models import zoo

#: Bump to invalidate cached results when simulator semantics change.
RESULTS_VERSION = 10

#: Safety valve: a run exceeding this many global ticks raises instead of
#: spinning forever.
DEFAULT_MAX_TICKS = 50_000_000_000

#: Per-core launch offset used in mix co-simulations (about half a tile
#: period at mini scale): identical workloads launched on the same tick
#: would otherwise burst in artificial lockstep forever.
MIX_STAGGER_CYCLES = 1500


def _result_dict(result: WorkloadResult) -> dict[str, Any]:
    payload = dataclasses.asdict(result)
    # Normalize to JSON-stable types so fresh and cached results compare equal.
    payload["layer_cycles"] = list(payload["layer_cycles"])
    return payload


class ExperimentRunner:
    """Runs (and caches) the solo/mix simulations behind every figure."""

    def __init__(
        self,
        scale: str = "mini",
        cache_dir: str | Path | None = None,
        max_ticks: int = DEFAULT_MAX_TICKS,
    ) -> None:
        self.scale = scale
        self.max_ticks = max_ticks
        if cache_dir is None:
            cache_dir = Path.cwd() / ".repro_cache"
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.per_core = presets.per_core_resources(scale)
        self.runs_executed = 0
        self.cache_hits = 0
        self._networks: dict[str, Any] = {}

    def register_network(self, network: Any) -> None:
        """Make a non-zoo network (e.g. a random net) runnable by name.

        Registered names shadow zoo names, so keep them distinct.  Cache
        entries are keyed by name: a registered network must always carry
        the same topology for its name (random nets are seed-named, which
        guarantees this).
        """
        self._networks[network.name] = network

    def _network(self, name: str) -> Any:
        if name in self._networks:
            return self._networks[name]
        return zoo.get(name, self.scale)

    # ------------------------------------------------------------------ #
    # Cache plumbing
    # ------------------------------------------------------------------ #

    def _cached(self, descriptor: dict[str, Any]) -> list[dict[str, Any]] | None:
        payload = json.dumps(descriptor, sort_keys=True)
        key = hashlib.sha256(payload.encode()).hexdigest()[:24]
        path = self.cache_dir / f"{key}.json"
        if path.exists():
            self.cache_hits += 1
            return json.loads(path.read_text())["results"]
        return None

    def _store(
        self, descriptor: dict[str, Any], results: list[dict[str, Any]]
    ) -> None:
        payload = json.dumps(descriptor, sort_keys=True)
        key = hashlib.sha256(payload.encode()).hexdigest()[:24]
        path = self.cache_dir / f"{key}.json"
        path.write_text(
            json.dumps({"descriptor": descriptor, "results": results}, indent=1)
        )

    def _execute(
        self, descriptor: dict[str, Any], system: SystemConfig, names: Sequence[str]
    ) -> list[dict[str, Any]]:
        cached = self._cached(descriptor)
        if cached is not None:
            return cached
        networks = [self._network(name) for name in names]
        sim = MultiCoreNPUSim(system, networks)
        mix_result = sim.run(max_ticks=self.max_ticks)
        results = [_result_dict(result) for result in mix_result.workloads]
        self._store(descriptor, results)
        self.runs_executed += 1
        return results

    # ------------------------------------------------------------------ #
    # Solo runs (Ideal / Static / ratio slices)
    # ------------------------------------------------------------------ #

    def solo(
        self,
        workload: str,
        *,
        channels: int | None = None,
        num_ptw: int | None = None,
        tlb_entries: int | None = None,
        page_bytes: int = 4096,
        translation: bool = True,
    ) -> dict[str, Any]:
        """One workload alone on an explicit resource slice."""
        channels = channels if channels is not None else self.per_core["channels"]
        num_ptw = num_ptw if num_ptw is not None else self.per_core["num_ptw"]
        tlb_entries = (
            tlb_entries if tlb_entries is not None else self.per_core["tlb_entries"]
        )
        descriptor = {
            "version": RESULTS_VERSION,
            "kind": "solo",
            "scale": self.scale,
            "workload": workload,
            "channels": channels,
            "num_ptw": num_ptw,
            "tlb_entries": tlb_entries,
            "page_bytes": page_bytes,
            "translation": translation,
        }
        system = presets.solo_slice(
            scale=self.scale,
            channels=channels,
            num_ptw=num_ptw,
            tlb_entries=tlb_entries,
            page_bytes=page_bytes,
            translation_enabled=translation,
            misc=MiscConfig(iterations=1),
        )
        return self._execute(descriptor, system, [workload])[0]

    def ideal(
        self,
        workload: str,
        num_cores: int,
        *,
        page_bytes: int = 4096,
        translation: bool = True,
    ) -> dict[str, Any]:
        """The Ideal baseline: alone with the whole N-core resource pool."""
        return self.solo(
            workload,
            channels=self.per_core["channels"] * num_cores,
            num_ptw=self.per_core["num_ptw"] * num_cores,
            tlb_entries=self.per_core["tlb_entries"] * num_cores,
            page_bytes=page_bytes,
            translation=translation,
        )

    def static_equal(
        self,
        workload: str,
        *,
        page_bytes: int = 4096,
        translation: bool = True,
    ) -> dict[str, Any]:
        """The equal Static split: exactly one per-core resource share."""
        return self.solo(
            workload, page_bytes=page_bytes, translation=translation
        )

    # ------------------------------------------------------------------ #
    # Mix runs (dynamic sharing levels)
    # ------------------------------------------------------------------ #

    def mix(
        self,
        names: Sequence[str],
        sharing: SharingLevel,
        *,
        page_bytes: int = 4096,
        translation: bool = True,
        ptw_split: Sequence[int] | None = None,
        num_ptw_per_core: int | None = None,
        tlb_entries_per_core: int | None = None,
    ) -> list[dict[str, Any]]:
        """Co-simulate ``names`` under a dynamic sharing level.

        ``ptw_split`` overrides walker sharing with a static per-core
        split (figure 13's partitioning schemes) while DRAM stays at the
        given sharing level.  ``num_ptw_per_core`` enlarges the walker
        pool (the walker-partitioning study needs enough walkers to
        split at the paper's 1:7..7:1 ratios).
        """
        if not sharing.is_contended:
            raise ValueError(
                f"{sharing.label} has no dynamic contention; use solo runs"
            )
        descriptor = {
            "version": RESULTS_VERSION,
            "kind": "mix",
            "scale": self.scale,
            "workloads": list(names),
            "sharing": sharing.name,
            "page_bytes": page_bytes,
            "translation": translation,
            "ptw_split": list(ptw_split) if ptw_split else None,
            "num_ptw_per_core": num_ptw_per_core,
            "tlb_entries_per_core": tlb_entries_per_core,
        }
        cached = self._cached(descriptor)
        if cached is not None:
            return cached
        system = presets.cloud_npu(
            len(names),
            sharing,
            scale=self.scale,
            page_bytes=page_bytes,
            translation_enabled=translation,
            # The paper launches the mix simultaneously and runs each
            # workload once: early finishers go idle and the remaining
            # workloads inherit the freed shared resources.  A small
            # per-core launch stagger breaks the artificial cycle-exact
            # phase lock of repeated workloads in a mix.
            misc=MiscConfig(iterations=1, start_stagger_cycles=MIX_STAGGER_CYCLES),
        )
        overrides: dict[str, Any] = {}
        if num_ptw_per_core is not None:
            overrides["num_ptw"] = num_ptw_per_core
        if tlb_entries_per_core is not None:
            overrides["tlb_entries"] = tlb_entries_per_core
            overrides["tlb_assoc"] = min(8, tlb_entries_per_core)
        if overrides:
            npumem = tuple(
                dataclasses.replace(cfg, **overrides) for cfg in system.npumem
            )
            system = dataclasses.replace(system, npumem=npumem)
        if ptw_split is not None:
            if len(ptw_split) != len(names):
                raise ValueError("one walker count per core required")
            system = dataclasses.replace(
                system, share_ptw=False, ptw_assignment=tuple(ptw_split)
            )
        return self._execute(descriptor, system, names)

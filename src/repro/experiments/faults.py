"""Deterministic fault injection for the supervised experiment runner.

The supervision layer in :mod:`repro.experiments.runner` exists to
survive worker crashes, wall-clock timeouts, livelocked simulations and
corrupted cache shards — none of which occur naturally in CI.  This
module makes every one of those failure modes *injectable on demand* so
the recovery paths are exercised by ordinary tests:

* a :class:`FaultPlan` maps spec cache keys to :class:`Fault`
  descriptors and travels (pickled) into worker processes, so injection
  works identically in serial and process-pool execution;
* :func:`trigger` fires the fault at the top of a worker's execution —
  hard process death for ``crash``, a genuine SIGALRM-interrupted sleep
  for ``timeout``, a genuinely livelocked simulation for ``stall``;
* :func:`corrupt_shard` damages an on-disk cache shard the same way a
  SIGKILL mid-write or bit rot would, for the quarantine tests.

Faults are keyed by cache key and bounded by attempt count
(``fail_attempts``), so "crash twice then succeed" scenarios — the shape
that proves retry-with-backoff actually recovers — are expressible and
fully deterministic.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.core.simulator import MultiCoreNPUSim
from repro.errors import (
    InjectedFaultError,
    RunTimeoutError,
    TransientWorkerError,
)

#: ``fail_attempts`` sentinel: the fault fires on every attempt.
ALWAYS = 10**9

#: Recognized fault kinds.
KINDS = ("crash", "timeout", "error", "stall", "transient")

#: Exit code of an injected hard worker death (visible in process logs).
CRASH_EXIT_CODE = 86

#: Stall window used by injected livelocks — small so tests are fast,
#: large enough that a couple of keepalive events always fit inside it.
STALL_WINDOW_TICKS = 50_000


@dataclass(frozen=True)
class Fault:
    """One injectable failure, bounded by attempt count.

    ``kind``:

    * ``"crash"`` — hard worker death (``os._exit``) in pool workers; a
      retriable :class:`TransientWorkerError` in serial execution.
    * ``"timeout"`` — sleep past the per-run wall-clock budget so the
      worker's SIGALRM fires (or raise directly when no budget is set).
    * ``"error"`` — a deterministic in-worker exception.
    * ``"stall"`` — a genuinely livelocked simulation: every core's DMA
      is wedged while keepalive events keep the engine busy, which the
      engine stall watchdog must detect and diagnose.
    * ``"transient"`` — a retriable error without process death (the
      backoff path, testable in serial mode).

    Attempts ``1..fail_attempts`` fault; later attempts run normally.
    """

    kind: str
    fail_attempts: int = ALWAYS

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; pick from {KINDS}")
        if self.fail_attempts < 1:
            raise ValueError("fail_attempts must be >= 1")

    def active(self, attempt: int) -> bool:
        """True when this fault should fire on execution ``attempt``."""
        return attempt <= self.fail_attempts


@dataclass(frozen=True)
class FaultPlan:
    """Spec cache key -> :class:`Fault`; picklable, worker-safe."""

    by_key: Mapping[str, Fault]

    @classmethod
    def for_specs(cls, faults: Mapping[Any, Fault]) -> "FaultPlan":
        """Build a plan from ``{spec: fault}`` (specs are hashed to keys)."""
        return cls({spec.cache_key(): fault for spec, fault in faults.items()})

    def lookup(self, spec: Any) -> Fault | None:
        """The fault planned for ``spec``, if any."""
        return self.by_key.get(spec.cache_key())


def trigger(
    fault: Fault,
    spec: Any,
    networks: tuple[Any, ...],
    *,
    attempt: int,
    timeout: float | None = None,
    in_pool: bool = False,
) -> None:
    """Fire ``fault`` for execution ``attempt``; no-op when inactive.

    Called at the top of the worker entry point, before the real
    simulation starts, so a faulted attempt consumes no simulation time
    and a recovered attempt produces byte-identical results.
    """
    if not fault.active(attempt):
        return
    if fault.kind == "crash":
        if in_pool:
            os._exit(CRASH_EXIT_CODE)
        raise TransientWorkerError(
            f"injected worker crash (attempt {attempt}): {spec.label}"
        )
    if fault.kind == "transient":
        raise TransientWorkerError(
            f"injected transient failure (attempt {attempt}): {spec.label}"
        )
    if fault.kind == "error":
        raise InjectedFaultError(
            f"injected deterministic failure (attempt {attempt}): {spec.label}"
        )
    if fault.kind == "timeout":
        if timeout is not None:
            # Sleep until the worker's SIGALRM interrupts us — the real
            # timeout path.  The deadline backstop only matters if the
            # alarm was never armed.
            deadline = time.monotonic() + 4.0 * timeout + 1.0
            while time.monotonic() < deadline:
                time.sleep(0.01)
        raise RunTimeoutError(f"injected timeout: {spec.label}")
    _stall(spec, networks)


def _stall(spec: Any, networks: tuple[Any, ...]) -> None:
    """Run a genuinely livelocked simulation of ``spec``.

    Every core's DMA swallows its transfers (tiles never load, so no
    work ever retires) while a self-perpetuating keepalive event keeps
    the engine processing — exactly the events-without-progress
    signature the stall watchdog exists to catch.  The watchdog raises
    :class:`~repro.errors.SimulationStallError` with full diagnostics.
    """
    sim = MultiCoreNPUSim(
        spec.system(), list(networks), stall_window_ticks=STALL_WINDOW_TICKS
    )
    for dma in sim.dmas.values():
        dma.transfer = lambda runs, on_complete: None  # type: ignore[method-assign]

    def keepalive() -> None:
        sim.engine.after(1_000, keepalive)

    sim.engine.after(1, keepalive)
    sim.run(max_ticks=10**9)
    raise AssertionError("injected stall failed to stall")  # pragma: no cover


def corrupt_shard(path: Path, mode: str) -> None:
    """Damage a cache shard on disk the way real corruption would.

    * ``"truncate"`` — keep only the first half of the file, emulating a
      worker killed mid-write (pre-atomic-write) or a torn copy;
    * ``"version"`` — rewrite the descriptor with a bumped results
      version (a shard from an incompatible simulator);
    * ``"payload"`` — perturb the results payload while leaving the
      descriptor intact, detectable only by the checksum sidecar.
    """
    raw = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(raw[: max(1, len(raw) // 2)])
        return
    payload = json.loads(raw)
    if mode == "version":
        payload["descriptor"]["version"] = payload["descriptor"].get("version", 0) + 1
    elif mode == "payload":
        results = payload["results"]
        results[0]["cycles"] = results[0].get("cycles", 0) + 1
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    path.write_bytes(json.dumps(payload, indent=1).encode())

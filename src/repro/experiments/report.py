"""Plain-text rendering of experiment results (the bench harness output)."""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[col]) for row in cells))
        if cells
        else len(str(header))
        for col, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(value.ljust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


def format_mapping(title: str, mapping: Mapping[str, Any]) -> str:
    """Render a key/value mapping as a two-column table."""
    return format_table(
        ["key", "value"], [(key, value) for key, value in mapping.items()], title=title
    )


def format_failures(failures: Sequence[Mapping[str, Any]]) -> str:
    """Render the failure summaries a degraded reducer attaches.

    ``failures`` is the list of :meth:`RunFailure.summary` dicts found
    under a figure's ``"failures"`` key; the rendering names every spec
    that could not be simulated so a partially-missing figure is never
    mistaken for a complete one.
    """
    if not failures:
        return ""
    rows = [
        (
            record.get("label", "?"),
            record.get("kind", "?"),
            record.get("attempts", "?"),
            record.get("error", "?"),
        )
        for record in failures
    ]
    return format_table(
        ["spec", "kind", "attempts", "error"],
        rows,
        title=f"incomplete: {len(failures)} run(s) failed",
    )


def cdf_summary(points: Sequence[tuple[float, float]]) -> dict[str, float]:
    """p10/p50/p90 summary of a CDF's value axis."""
    if not points:
        return {}
    values = [value for value, _ in points]
    def pick(fraction: float) -> float:
        index = min(len(values) - 1, int(fraction * len(values)))
        return values[index]
    return {"p10": pick(0.10), "p50": pick(0.50), "p90": pick(0.90)}


def _fmt(value: Any) -> str:
    if value is None:
        return "-"  # missing data point (the run behind it failed)
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)

"""Experiment harness regenerating every table and figure of the paper."""

from repro.experiments.mixes import all_mixes, mix_label
from repro.experiments.runner import ExperimentRunner
from repro.experiments import figures
from repro.experiments.report import format_table

__all__ = [
    "all_mixes",
    "mix_label",
    "ExperimentRunner",
    "figures",
    "format_table",
]

"""Experiment harness regenerating every table and figure of the paper."""

from repro.experiments.mixes import all_mixes, mix_label, mixes_for
from repro.experiments.runner import ExperimentRunner, RunProgress
from repro.experiments.spec import RunSpec
from repro.experiments import figures
from repro.experiments.report import format_table

__all__ = [
    "all_mixes",
    "mix_label",
    "mixes_for",
    "ExperimentRunner",
    "RunProgress",
    "RunSpec",
    "figures",
    "format_table",
]

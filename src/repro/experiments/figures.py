"""Per-figure/table reducers: each function regenerates one paper result.

Every function returns plain dicts/lists ready for printing (see
``repro.experiments.report``) or plotting.  Simulation results come from
an :class:`~repro.experiments.runner.ExperimentRunner`, so repeated calls
are served from the on-disk cache.

The hot reducers follow the *plan-then-execute* pattern: a ``*_specs``
planner first collects every :class:`RunSpec` the figure needs, one
:meth:`ExperimentRunner.run_many` call executes the whole deduplicated
batch (in parallel when the runner's ``jobs > 1``), and only then does
the reduction read results — each individual read is a cache hit.  The
:data:`FIGURE_PLANNERS` registry exposes the planners so callers (the
``mnpusim sweep`` subcommand) can batch *several* figures' specs into a
single parallel fan-out.

Index (paper -> function):

====== =============================================
Fig 2b :func:`fig2_burstiness`
Fig 4  :func:`fig4_dual_performance`
Fig 5  :func:`fig5_quad_performance`
Fig 6  :func:`fig6_dual_fairness`
Fig 7  :func:`fig7_quad_fairness`
Fig 8  :func:`fig8_sensitivity`
Fig 9  :func:`fig9_bandwidth_partition_performance`
Fig 10 :func:`fig10_bandwidth_partition_fairness`
Fig 11 :func:`fig11_bandwidth_sweep`
Fig 12 :func:`fig12_bandwidth_utilization`
Fig 13 :func:`fig13_ptw_partition_performance`
Fig 14 :func:`fig14_ptw_partition_fairness`
Fig 15 :func:`fig15_pagesize_single`
Fig 16 :func:`fig16_pagesize_multi`
Fig 17 :func:`repro.mapping.mapper.fig17_mapping_performance`
Fig 18 :func:`repro.mapping.mapper.fig18_mapping_fairness`
Tab 1  :func:`table1_models`
Tab 2  :func:`table2_configuration`
====== =============================================
"""

from __future__ import annotations


from typing import Any, Sequence

from repro.compute.dataflow import registered_dataflows
from repro.config import presets
from repro.config.misc import MiscConfig
from repro.core.metrics import box_stats, cdf_points, fairness, geomean
from repro.core.sharing import CONTENDED_LEVELS, SWEEP_LEVELS, SharingLevel
from repro.core.simulator import MultiCoreNPUSim
from repro.errors import RunFailedError
from repro.experiments.mixes import all_mixes, mix_label
from repro.experiments.runner import ExperimentRunner
from repro.experiments.spec import RunSpec
from repro.models import zoo
from repro.models.serving import ServingParams

#: DRAM-bandwidth ratio splits of section 4.3 (eight channels, dual-core).
BW_SPLITS = ((1, 7), (2, 6), (4, 4), (6, 2), (7, 1))


# --------------------------------------------------------------------- #
# Shared helpers
# --------------------------------------------------------------------- #


def _maybe(call: Any) -> Any:
    """Result of a runner call, or ``None`` when its spec failed.

    The degradation primitive: reducers consume partially-failed sweeps
    by treating every failed run as a missing data point rather than
    letting :class:`RunFailedError` abort the whole figure.
    """
    try:
        return call()
    except RunFailedError:
        return None


def _safe_geomean(values: Sequence[float]) -> float | None:
    """Geomean over the present values; ``None`` when all are missing."""
    present = [value for value in values if value is not None]
    return geomean(present) if present else None


def _failure_summaries(runner: ExperimentRunner) -> list[dict[str, Any]]:
    """JSON digests of the runner's recorded failures (may be empty)."""
    failures = getattr(runner, "failures", None) or {}
    return [
        failure.summary()
        for failure in failures.values()
        if hasattr(failure, "summary")
    ]


def _attach_failures(
    result: dict[str, Any], runner: ExperimentRunner
) -> dict[str, Any]:
    """Append the failure summary to a reducer's output when non-empty.

    Keeps fully-successful outputs byte-identical to the pre-degradation
    format: the ``"failures"`` key only appears when something failed.
    """
    summaries = _failure_summaries(runner)
    if summaries:
        result["failures"] = summaries
    return result


def _ideal_specs(
    runner: ExperimentRunner,
    num_cores: int,
    *,
    page_bytes: int = 4096,
    translation: bool = True,
) -> list[RunSpec]:
    return [
        runner.plan_ideal(
            name, num_cores, page_bytes=page_bytes, translation=translation
        )
        for name in zoo.NAMES
    ]


def _static_specs(
    runner: ExperimentRunner,
    *,
    page_bytes: int = 4096,
    translation: bool = True,
) -> list[RunSpec]:
    return [
        runner.plan_static_equal(
            name, page_bytes=page_bytes, translation=translation
        )
        for name in zoo.NAMES
    ]


def _ideal_cycles(
    runner: ExperimentRunner,
    num_cores: int,
    *,
    page_bytes: int = 4096,
    translation: bool = True,
) -> dict[str, int]:
    cycles: dict[str, int] = {}
    for name in zoo.NAMES:
        result = _maybe(
            lambda n=name: runner.ideal(
                n, num_cores, page_bytes=page_bytes, translation=translation
            )
        )
        if result is not None:
            cycles[name] = result["cycles"]
    return cycles


def _static_cycles(
    runner: ExperimentRunner,
    *,
    page_bytes: int = 4096,
    translation: bool = True,
) -> dict[str, int]:
    cycles: dict[str, int] = {}
    for name in zoo.NAMES:
        result = _maybe(
            lambda n=name: runner.static_equal(
                n, page_bytes=page_bytes, translation=translation
            )
        )
        if result is not None:
            cycles[name] = result["cycles"]
    return cycles


def mix_speedups(
    runner: ExperimentRunner,
    mix: Sequence[str],
    level: SharingLevel,
    ideal: dict[str, int],
    static: dict[str, int],
    *,
    page_bytes: int = 4096,
    translation: bool = True,
) -> list[float]:
    """Per-workload speedups (vs Ideal) of a mix under one sharing level.

    Returns ``[]`` when the mix run (or any baseline it needs) failed —
    the missing-data marker reducers degrade on.
    """
    if level is SharingLevel.STATIC:
        if any(name not in ideal or name not in static for name in mix):
            return []
        return [ideal[name] / static[name] for name in mix]
    if any(name not in ideal for name in mix):
        return []
    results = _maybe(
        lambda: runner.mix(
            mix, level, page_bytes=page_bytes, translation=translation
        )
    )
    if results is None:
        return []
    return [
        ideal[name] / result["cycles"] for name, result in zip(mix, results)
    ]


def sharing_sweep_specs(
    runner: ExperimentRunner,
    num_cores: int,
    mixes: Sequence[tuple[str, ...]] | None = None,
) -> list[RunSpec]:
    """Every spec behind Figures 4-7: Ideal/Static solos + contended mixes."""
    mixes = list(mixes) if mixes is not None else all_mixes(num_cores)
    specs = _ideal_specs(runner, num_cores) + _static_specs(runner)
    for mix in mixes:
        for level in CONTENDED_LEVELS:
            specs.append(runner.plan_mix(mix, level))
    return specs


def _sharing_sweep(
    runner: ExperimentRunner,
    num_cores: int,
    mixes: Sequence[tuple[str, ...]] | None,
) -> dict[str, Any]:
    """Speedups and fairness for every mix under all four sweep levels."""
    mixes = list(mixes) if mixes is not None else all_mixes(num_cores)
    runner.run_many(sharing_sweep_specs(runner, num_cores, mixes))
    ideal = _ideal_cycles(runner, num_cores)
    static = _static_cycles(runner)
    per_mix: dict[str, dict[str, list[float]]] = {}
    for mix in mixes:
        label = mix_label(mix)
        per_mix[label] = {}
        for level in SWEEP_LEVELS:
            per_mix[label][level.label] = mix_speedups(
                runner, mix, level, ideal, static
            )
    return {
        "num_cores": num_cores,
        "mixes": [mix_label(mix) for mix in mixes],
        "mix_tuples": [list(mix) for mix in mixes],
        "levels": [level.label for level in SWEEP_LEVELS],
        "speedups": per_mix,
    }


def _geomeans_by_level(sweep: dict[str, Any]) -> dict[str, dict[str, float]]:
    # Empty speedup lists are failed runs: the level is simply absent
    # from that mix's reduction.
    result: dict[str, dict[str, float]] = {}
    for label, by_level in sweep["speedups"].items():
        result[label] = {
            level: geomean(speeds)
            for level, speeds in by_level.items()
            if speeds
        }
    return result


def _fairness_by_level(sweep: dict[str, Any]) -> dict[str, dict[str, float]]:
    result: dict[str, dict[str, float]] = {}
    for label, by_level in sweep["speedups"].items():
        result[label] = {
            level: fairness([1.0 / value for value in speeds])
            for level, speeds in by_level.items()
            if speeds
        }
    return result


# --------------------------------------------------------------------- #
# Tables 1 & 2
# --------------------------------------------------------------------- #


def table1_models(scale: str = "mini") -> list[dict[str, Any]]:
    """Table 1: the benchmark models, with their topology statistics."""
    rows = []
    for name in zoo.NAMES:
        network = zoo.get(name, scale)
        rows.append(
            {
                "type": zoo.CATEGORIES[name],
                "model": name,
                "layers": len(network.layers),
                "macs": network.total_macs,
                "unique_bytes": network.total_bytes,
                "arithmetic_intensity": round(network.arithmetic_intensity, 2),
            }
        )
    return rows


def table2_configuration(scale: str = "mini") -> dict[str, Any]:
    """Table 2: the baseline single-core NPU + DRAM configuration."""
    arch = presets.cloud_arch(scale)
    npumem = presets.cloud_npumem(scale)
    dram = presets.hbm2_dram(scale)
    return {
        "scale": scale,
        "systolic_array": f"{arch.array_rows}x{arch.array_cols}",
        "spm_bytes": arch.spm_bytes,
        "core_freq_mhz": arch.freq_mhz,
        "tlb_associativity": npumem.tlb_assoc,
        "tlb_entries_per_npu": npumem.tlb_entries,
        "ptw_per_npu": npumem.num_ptw,
        "dram_model": dram.preset,
        "bandwidth_per_npu_gbs": dram.peak_bandwidth_bytes_per_sec() / 1e9,
        "dram_capacity_bytes": dram.capacity_bytes,
        "dram_freq_mhz": dram.freq_mhz,
    }


# --------------------------------------------------------------------- #
# Figure 2(b): burstiness
# --------------------------------------------------------------------- #


def fig2_burstiness(
    workload: str = "ncf",
    scale: str = "mini",
    window: int = 1000,
) -> dict[str, Any]:
    """Moving count of DRAM requests per window for a single-core run."""
    system = presets.solo_slice(
        scale=scale, misc=MiscConfig(iterations=1, trace_window_cycles=window)
    )
    sim = MultiCoreNPUSim(system, [zoo.get(workload, scale)], trace_bandwidth=True)
    result = sim.run()
    trace = sim.dram.traces[0]
    txn = system.arch[0].dram_transaction_bytes
    series = [(start, nbytes // txn) for start, nbytes in trace.series()]
    counts = [count for _, count in series]
    peak = max(counts)
    mean = sum(counts) / len(counts)
    return {
        "workload": workload,
        "window_cycles": window,
        "series": series,
        "peak_requests_per_window": peak,
        "mean_requests_per_window": mean,
        "burst_ratio": peak / mean if mean else 0.0,
        "total_cycles": result.workloads[0].cycles,
    }


# --------------------------------------------------------------------- #
# Figures 4-7: sharing levels, performance and fairness
# --------------------------------------------------------------------- #


def fig4_dual_performance(
    runner: ExperimentRunner, mixes: Sequence[tuple[str, ...]] | None = None
) -> dict[str, Any]:
    """Dual-core per-mix geomean speedups for Static/+D/+DW/+DWT."""
    sweep = _sharing_sweep(runner, 2, mixes)
    per_mix = _geomeans_by_level(sweep)
    overall = {
        level.label: _safe_geomean(
            [
                per_mix[m][level.label]
                for m in sweep["mixes"]
                if level.label in per_mix[m]
            ]
        )
        for level in SWEEP_LEVELS
    }
    return _attach_failures(
        {"per_mix": per_mix, "overall": overall, "sweep": sweep}, runner
    )


def fig5_quad_performance(
    runner: ExperimentRunner, mixes: Sequence[tuple[str, ...]] | None = None
) -> dict[str, Any]:
    """Quad-core CDF of per-mix geomean speedups per sharing level."""
    sweep = _sharing_sweep(runner, 4, mixes)
    per_mix = _geomeans_by_level(sweep)
    cdfs = {}
    overall = {}
    for level in SWEEP_LEVELS:
        values = [
            per_mix[m][level.label]
            for m in sweep["mixes"]
            if level.label in per_mix[m]
        ]
        cdfs[level.label] = cdf_points(values) if values else []
        overall[level.label] = _safe_geomean(values)
    return _attach_failures(
        {"per_mix": per_mix, "cdf": cdfs, "overall": overall, "sweep": sweep},
        runner,
    )


def fig6_dual_fairness(
    runner: ExperimentRunner, mixes: Sequence[tuple[str, ...]] | None = None
) -> dict[str, Any]:
    """Dual-core fairness (Equation 1) per mix and sharing level."""
    sweep = _sharing_sweep(runner, 2, mixes)
    per_mix = _fairness_by_level(sweep)
    overall = {
        level.label: _safe_geomean(
            [
                per_mix[m][level.label]
                for m in sweep["mixes"]
                if level.label in per_mix[m]
            ]
        )
        for level in SWEEP_LEVELS
    }
    return _attach_failures({"per_mix": per_mix, "overall": overall}, runner)


def fig7_quad_fairness(
    runner: ExperimentRunner, mixes: Sequence[tuple[str, ...]] | None = None
) -> dict[str, Any]:
    """Quad-core fairness CDF per sharing level."""
    sweep = _sharing_sweep(runner, 4, mixes)
    per_mix = _fairness_by_level(sweep)
    cdfs = {}
    overall = {}
    for level in SWEEP_LEVELS:
        values = [
            per_mix[m][level.label]
            for m in sweep["mixes"]
            if level.label in per_mix[m]
        ]
        cdfs[level.label] = cdf_points(values) if values else []
        overall[level.label] = _safe_geomean(values)
    return _attach_failures(
        {"per_mix": per_mix, "cdf": cdfs, "overall": overall}, runner
    )


# --------------------------------------------------------------------- #
# Figure 8: per-workload contention sensitivity
# --------------------------------------------------------------------- #


def fig8_specs(
    runner: ExperimentRunner,
    mixes: Sequence[tuple[str, ...]] | None = None,
) -> list[RunSpec]:
    """Every spec behind Figure 8: dual-core Ideal solos + DWT mixes."""
    mixes = list(mixes) if mixes is not None else all_mixes(2)
    return _ideal_specs(runner, 2) + [
        runner.plan_mix(mix, SharingLevel.DWT) for mix in mixes
    ]


def fig8_sensitivity(
    runner: ExperimentRunner, mixes: Sequence[tuple[str, ...]] | None = None
) -> dict[str, Any]:
    """Distribution of each workload's +DWT speedup across co-runners."""
    mixes = list(mixes) if mixes is not None else all_mixes(2)
    runner.run_many(fig8_specs(runner, mixes))
    ideal = _ideal_cycles(runner, 2)
    samples: dict[str, list[float]] = {name: [] for name in zoo.NAMES}
    for mix in mixes:
        results = _maybe(lambda m=mix: runner.mix(m, SharingLevel.DWT))
        if results is None:
            continue
        for name, result in zip(mix, results):
            if name in ideal:
                samples[name].append(ideal[name] / result["cycles"])
    boxes = {
        name: box_stats(values) for name, values in samples.items() if values
    }
    spread = {
        name: box["max"] - box["min"] for name, box in boxes.items()
    }
    return _attach_failures(
        {"samples": samples, "boxes": boxes, "range": spread}, runner
    )


# --------------------------------------------------------------------- #
# Figures 9-10: DRAM bandwidth partitioning (translation disabled)
# --------------------------------------------------------------------- #


def bw_partition_specs(
    runner: ExperimentRunner,
    mixes: Sequence[tuple[str, ...]] | None = None,
) -> list[RunSpec]:
    """Every spec behind Figures 9-10: channel-share solos + +D mixes."""
    mixes = list(mixes) if mixes is not None else all_mixes(2)
    channels = runner.per_core["channels"]
    specs = _ideal_specs(runner, 2, translation=False)
    for share in sorted({part for split in BW_SPLITS for part in split}):
        specs += [
            runner.plan_solo(
                name, channels=channels * 2 * share // 8, translation=False
            )
            for name in zoo.NAMES
        ]
    specs += [
        runner.plan_mix(mix, SharingLevel.D, translation=False) for mix in mixes
    ]
    return specs


def _bw_partition_sweep(
    runner: ExperimentRunner, mixes: Sequence[tuple[str, ...]] | None
) -> dict[str, Any]:
    mixes = list(mixes) if mixes is not None else all_mixes(2)
    runner.run_many(bw_partition_specs(runner, mixes))
    channels = runner.per_core["channels"]
    ideal = _ideal_cycles(runner, 2, translation=False)
    # Solo cycles at each static channel share (1..7 of 8).
    share_cycles: dict[int, dict[str, int]] = {}
    for share in sorted({part for split in BW_SPLITS for part in split}):
        share_cycles[share] = {}
        for name in zoo.NAMES:
            result = _maybe(
                lambda n=name, s=share: runner.solo(
                    n, channels=channels * 2 * s // 8, translation=False
                )
            )
            if result is not None:
                share_cycles[share][name] = result["cycles"]
    per_mix: dict[str, dict[str, Any]] = {}
    for mix in mixes:
        label = mix_label(mix)
        schemes: dict[str, list[float]] = {}
        for left, right in BW_SPLITS:
            if (
                mix[0] in ideal
                and mix[1] in ideal
                and mix[0] in share_cycles[left]
                and mix[1] in share_cycles[right]
            ):
                schemes[f"{left}:{right}"] = [
                    ideal[mix[0]] / share_cycles[left][mix[0]],
                    ideal[mix[1]] / share_cycles[right][mix[1]],
                ]
        dynamic = _maybe(
            lambda m=mix: runner.mix(m, SharingLevel.D, translation=False)
        )
        if dynamic is not None and all(name in ideal for name in mix):
            schemes["Dynamic"] = [
                ideal[name] / result["cycles"]
                for name, result in zip(mix, dynamic)
            ]
        static_present = [
            f"{l}:{r}" for l, r in BW_SPLITS if f"{l}:{r}" in schemes
        ]
        best = None
        if static_present:
            best = max(
                static_present, key=lambda scheme: geomean(schemes[scheme])
            )
            schemes["Static Best"] = schemes[best]
        per_mix[label] = {"schemes": schemes, "best_static": best}
    return {"per_mix": per_mix, "mixes": [mix_label(mix) for mix in mixes]}


def fig9_bandwidth_partition_performance(
    runner: ExperimentRunner, mixes: Sequence[tuple[str, ...]] | None = None
) -> dict[str, Any]:
    """Geomean performance per bandwidth-partitioning scheme (dual-core)."""
    sweep = _bw_partition_sweep(runner, mixes)
    scheme_names = [f"{l}:{r}" for l, r in BW_SPLITS] + ["Static Best", "Dynamic"]
    overall = {}
    per_mix = {}
    for scheme in scheme_names:
        values = []
        for label in sweep["mixes"]:
            speeds = sweep["per_mix"][label]["schemes"].get(scheme)
            if not speeds:
                continue
            value = geomean(speeds)
            per_mix.setdefault(label, {})[scheme] = value
            values.append(value)
        overall[scheme] = _safe_geomean(values)
    return _attach_failures(
        {"per_mix": per_mix, "overall": overall, "schemes": scheme_names},
        runner,
    )


def fig10_bandwidth_partition_fairness(
    runner: ExperimentRunner, mixes: Sequence[tuple[str, ...]] | None = None
) -> dict[str, Any]:
    """Geomean fairness per bandwidth-partitioning scheme (dual-core)."""
    sweep = _bw_partition_sweep(runner, mixes)
    scheme_names = [f"{l}:{r}" for l, r in BW_SPLITS] + ["Static Best", "Dynamic"]
    overall = {}
    per_mix = {}
    for scheme in scheme_names:
        values = []
        for label in sweep["mixes"]:
            speeds = sweep["per_mix"][label]["schemes"].get(scheme)
            if not speeds:
                continue
            value = fairness([1.0 / s for s in speeds])
            per_mix.setdefault(label, {})[scheme] = value
            values.append(value)
        overall[scheme] = _safe_geomean(values)
    return _attach_failures(
        {"per_mix": per_mix, "overall": overall, "schemes": scheme_names},
        runner,
    )


# --------------------------------------------------------------------- #
# Figure 11: bandwidth sweep
# --------------------------------------------------------------------- #


#: Channel counts of the Figure 11 bandwidth sweep (32-256 GB/s at full
#: scale: every channel is one 32 GB/s share).
FIG11_CHANNEL_COUNTS = (1, 2, 4, 6, 8)


def fig11_specs(runner: ExperimentRunner) -> list[RunSpec]:
    """Every spec behind Figure 11: solos at each channel count."""
    return [
        runner.plan_solo(name, channels=count)
        for name in zoo.NAMES
        for count in FIG11_CHANNEL_COUNTS
    ]


def fig11_bandwidth_sweep(runner: ExperimentRunner) -> dict[str, Any]:
    """Single-core speedup vs DRAM bandwidth, normalized to the smallest.

    Channel counts 1/2/4/6/8 reproduce the paper's 32-256 GB/s sweep
    (every channel is one 32 GB/s share at full scale).
    """
    runner.run_many(fig11_specs(runner))
    counts = FIG11_CHANNEL_COUNTS
    per_workload: dict[str, list[tuple[int, float]]] = {}
    for name in zoo.NAMES:
        baseline = _maybe(lambda n=name: runner.solo(n, channels=counts[0]))
        if baseline is None:
            continue
        base = baseline["cycles"]
        series = []
        for count in counts:
            result = _maybe(lambda n=name, c=count: runner.solo(n, channels=c))
            if result is not None:
                series.append((count, base / result["cycles"]))
        per_workload[name] = series
    return _attach_failures(
        {"channel_counts": counts, "speedup": per_workload}, runner
    )


# --------------------------------------------------------------------- #
# Figure 12: bandwidth utilization over time
# --------------------------------------------------------------------- #


def fig12_bandwidth_utilization(
    workloads: tuple[str, str] = ("ds2", "gpt2"),
    scale: str = "mini",
    window: int = 1000,
) -> dict[str, Any]:
    """Per-workload bandwidth utilization under Ideal, plus their sum.

    Each workload runs alone on the dual-core Ideal resource pool; the
    summed series shows how often the combined demand exceeds half (and
    even all) of the peak — the paper's argument for dynamic sharing.
    """
    per = presets.per_core_resources(scale)
    series: dict[str, list[tuple[int, float]]] = {}
    for name in workloads:
        system = presets.solo_slice(
            scale=scale,
            channels=per["channels"] * 2,
            num_ptw=per["num_ptw"] * 2,
            tlb_entries=per["tlb_entries"] * 2,
            misc=MiscConfig(iterations=1, trace_window_cycles=window),
        )
        sim = MultiCoreNPUSim(system, [zoo.get(name, scale)], trace_bandwidth=True)
        sim.run()
        peak = sim.dram.peak_bytes_per_tick()
        series[name] = sim.dram.traces[0].utilization_series(peak)
    length = max(len(values) for values in series.values())
    combined = []
    for index in range(length):
        total = 0.0
        for values in series.values():
            if index < len(values):
                total += values[index][1]
        combined.append((index * window, total))
    label = "+".join(workloads)
    over_half = sum(1 for _, value in combined if value > 0.5) / len(combined)
    over_peak = sum(1 for _, value in combined if value > 1.0) / len(combined)
    return {
        "series": series,
        "combined": {label: combined},
        "fraction_over_half_peak": over_half,
        "fraction_over_peak": over_peak,
    }


# --------------------------------------------------------------------- #
# Figures 13-14: PTW partitioning
# --------------------------------------------------------------------- #


#: Walker splits of section 4.4.1.  The paper splits its 16-walker dual
#: pool at ratios 1:7..7:1; the mini system's baseline pool (1 walker per
#: core) cannot express ratios, so this study doubles the per-core walker
#: count to a 4-walker pool and splits it 1:3 / 2:2 / 3:1 — analogous to
#: how the bandwidth study of section 4.3 disables translation to
#: isolate its resource.
PTW_SPLITS = ((1, 3), (2, 2), (3, 1))
_PTW_PER_CORE_FACTOR = 2


def ptw_partition_specs(
    runner: ExperimentRunner,
    mixes: Sequence[tuple[str, ...]] | None = None,
) -> list[RunSpec]:
    """Every spec behind Figures 13-14: big-pool solos + split/DW mixes."""
    mixes = list(mixes) if mixes is not None else all_mixes(2)
    per_core = runner.per_core["num_ptw"] * _PTW_PER_CORE_FACTOR
    specs = [
        runner.plan_solo(
            name,
            channels=runner.per_core["channels"] * 2,
            num_ptw=per_core * 2,
            tlb_entries=runner.per_core["tlb_entries"] * 2,
        )
        for name in zoo.NAMES
    ]
    for mix in mixes:
        for left, right in PTW_SPLITS:
            specs.append(
                runner.plan_mix(
                    mix,
                    SharingLevel.D,
                    ptw_split=(left, right),
                    num_ptw_per_core=per_core,
                )
            )
        specs.append(
            runner.plan_mix(mix, SharingLevel.DW, num_ptw_per_core=per_core)
        )
    return specs


def _ptw_partition_sweep(
    runner: ExperimentRunner, mixes: Sequence[tuple[str, ...]] | None
) -> dict[str, Any]:
    mixes = list(mixes) if mixes is not None else all_mixes(2)
    runner.run_many(ptw_partition_specs(runner, mixes))
    per_core = runner.per_core["num_ptw"] * _PTW_PER_CORE_FACTOR
    ideal = {}
    for name in zoo.NAMES:
        result = _maybe(
            lambda n=name: runner.solo(
                n,
                channels=runner.per_core["channels"] * 2,
                num_ptw=per_core * 2,
                tlb_entries=runner.per_core["tlb_entries"] * 2,
            )
        )
        if result is not None:
            ideal[name] = result["cycles"]
    per_mix: dict[str, dict[str, list[float]]] = {}
    for mix in mixes:
        label = mix_label(mix)
        schemes: dict[str, list[float]] = {}
        baselines_known = all(name in ideal for name in mix)
        for left, right in PTW_SPLITS:
            results = _maybe(
                lambda m=mix, sp=(left, right): runner.mix(
                    m,
                    SharingLevel.D,
                    ptw_split=sp,
                    num_ptw_per_core=per_core,
                )
            )
            if results is not None and baselines_known:
                schemes[f"{left}:{right}"] = [
                    ideal[name] / result["cycles"]
                    for name, result in zip(mix, results)
                ]
        dynamic = _maybe(
            lambda m=mix: runner.mix(
                m, SharingLevel.DW, num_ptw_per_core=per_core
            )
        )
        if dynamic is not None and baselines_known:
            schemes["Dynamic"] = [
                ideal[name] / result["cycles"]
                for name, result in zip(mix, dynamic)
            ]
        per_mix[label] = schemes
    scheme_names = [f"{l}:{r}" for l, r in PTW_SPLITS] + ["Dynamic"]
    return {
        "per_mix": per_mix,
        "mixes": [mix_label(mix) for mix in mixes],
        "schemes": scheme_names,
    }


def fig13_ptw_partition_performance(
    runner: ExperimentRunner, mixes: Sequence[tuple[str, ...]] | None = None
) -> dict[str, Any]:
    """Geomean performance per walker-partitioning scheme (dual-core)."""
    sweep = _ptw_partition_sweep(runner, mixes)
    overall = {}
    per_mix: dict[str, dict[str, float]] = {}
    for scheme in sweep["schemes"]:
        values = []
        for label in sweep["mixes"]:
            speeds = sweep["per_mix"][label].get(scheme)
            if not speeds:
                continue
            value = geomean(speeds)
            per_mix.setdefault(label, {})[scheme] = value
            values.append(value)
        overall[scheme] = _safe_geomean(values)
    return _attach_failures(
        {"per_mix": per_mix, "overall": overall, "schemes": sweep["schemes"]},
        runner,
    )


def fig14_ptw_partition_fairness(
    runner: ExperimentRunner, mixes: Sequence[tuple[str, ...]] | None = None
) -> dict[str, Any]:
    """Geomean fairness per walker-partitioning scheme (dual-core)."""
    sweep = _ptw_partition_sweep(runner, mixes)
    overall = {}
    per_mix: dict[str, dict[str, float]] = {}
    for scheme in sweep["schemes"]:
        values = []
        for label in sweep["mixes"]:
            speeds = sweep["per_mix"][label].get(scheme)
            if not speeds:
                continue
            value = fairness([1.0 / s for s in speeds])
            per_mix.setdefault(label, {})[scheme] = value
            values.append(value)
        overall[scheme] = _safe_geomean(values)
    return _attach_failures(
        {"per_mix": per_mix, "overall": overall, "schemes": sweep["schemes"]},
        runner,
    )


# --------------------------------------------------------------------- #
# Figures 15-16: page sizes
# --------------------------------------------------------------------- #

PAGE_SIZES = (4096, 65536, 1048576)
_PAGE_LABELS = {4096: "4KB", 65536: "64KB", 1048576: "1MB"}


def fig15_specs(runner: ExperimentRunner) -> list[RunSpec]:
    """Every spec behind Figure 15: solos at each page size."""
    return [
        runner.plan_solo(name, page_bytes=size)
        for name in zoo.NAMES
        for size in PAGE_SIZES
    ]


def fig15_pagesize_single(runner: ExperimentRunner) -> dict[str, Any]:
    """Single-core speedup of 64KB/1MB pages over 4KB, per workload."""
    runner.run_many(fig15_specs(runner))
    per_workload: dict[str, dict[str, float]] = {}
    for name in zoo.NAMES:
        baseline = _maybe(lambda n=name: runner.solo(n, page_bytes=4096))
        if baseline is None:
            continue
        base = baseline["cycles"]
        per_workload[name] = {}
        for size in PAGE_SIZES[1:]:
            result = _maybe(lambda n=name, s=size: runner.solo(n, page_bytes=s))
            if result is not None:
                per_workload[name][_PAGE_LABELS[size]] = (
                    base / result["cycles"]
                )
    overall = {
        label: _safe_geomean(
            [
                per_workload[name][label]
                for name in per_workload
                if label in per_workload[name]
            ]
        )
        for label in ("64KB", "1MB")
    }
    return _attach_failures(
        {"per_workload": per_workload, "overall": overall}, runner
    )


def fig16_specs(
    runner: ExperimentRunner,
    num_cores: int,
    mixes: Sequence[tuple[str, ...]] | None = None,
) -> list[RunSpec]:
    """Every spec behind Figure 16: per-page-size Ideal solos + DWT mixes."""
    mixes = list(mixes) if mixes is not None else all_mixes(num_cores)
    specs = [
        spec
        for size in PAGE_SIZES
        for spec in _ideal_specs(runner, num_cores, page_bytes=size)
    ]
    specs += [
        runner.plan_mix(mix, SharingLevel.DWT, page_bytes=size)
        for mix in mixes
        for size in PAGE_SIZES
    ]
    return specs


def fig16_pagesize_multi(
    runner: ExperimentRunner,
    num_cores: int,
    mixes: Sequence[tuple[str, ...]] | None = None,
) -> dict[str, Any]:
    """Multi-core (+DWT) page-size performance and fairness.

    Performance is normalized to the 4KB page (per mix geomean of cycle
    ratios); fairness baseline is Ideal at the matching page size.
    """
    mixes = list(mixes) if mixes is not None else all_mixes(num_cores)
    runner.run_many(fig16_specs(runner, num_cores, mixes))
    perf: dict[str, dict[str, float]] = {}
    fair: dict[str, dict[str, float]] = {}
    ideal = {
        size: _ideal_cycles(runner, num_cores, page_bytes=size)
        for size in PAGE_SIZES
    }
    for mix in mixes:
        label = mix_label(mix)
        by_size: dict[int, list[dict[str, Any]] | None] = {
            size: _maybe(
                lambda m=mix, s=size: runner.mix(
                    m, SharingLevel.DWT, page_bytes=s
                )
            )
            for size in PAGE_SIZES
        }
        if by_size[4096] is None:
            continue  # the normalization baseline failed: mix is missing
        perf[label] = {}
        fair[label] = {}
        base = [result["cycles"] for result in by_size[4096]]
        for size in PAGE_SIZES:
            results = by_size[size]
            if results is None:
                continue
            cycles = [result["cycles"] for result in results]
            perf[label][_PAGE_LABELS[size]] = geomean(
                [b / c for b, c in zip(base, cycles)]
            )
            if all(name in ideal[size] for name in mix):
                slowdowns = [
                    result["cycles"] / ideal[size][name]
                    for name, result in zip(mix, results)
                ]
                fair[label][_PAGE_LABELS[size]] = fairness(slowdowns)
    labels = [_PAGE_LABELS[size] for size in PAGE_SIZES]
    overall_perf = {
        label: _safe_geomean(
            [perf[m][label] for m in perf if label in perf[m]]
        )
        for label in labels
    }
    overall_fair = {
        label: _safe_geomean(
            [fair[m][label] for m in fair if label in fair[m]]
        )
        for label in labels
    }
    return _attach_failures(
        {
            "num_cores": num_cores,
            "performance": perf,
            "fairness": fair,
            "overall_performance": overall_perf,
            "overall_fairness": overall_fair,
        },
        runner,
    )


# --------------------------------------------------------------------- #
# Dataflow comparison (engine ablation)
# --------------------------------------------------------------------- #


def dataflow_compare_specs(
    runner: ExperimentRunner,
    workloads: Sequence[str] | None = None,
    dataflows: Sequence[str] | None = None,
) -> list[RunSpec]:
    """Every spec behind the dataflow comparison: one solo per engine.

    Each workload runs on the equal Static slice under every registered
    dataflow engine (or an explicit subset), so the figure isolates the
    compute-side effect of the tiling/timing model with the memory
    system held fixed.
    """
    names = list(workloads) if workloads is not None else list(zoo.NAMES)
    engines = (
        list(dataflows) if dataflows is not None else list(registered_dataflows())
    )
    return [
        runner.plan_solo(name, dataflow=engine)
        for name in names
        for engine in engines
    ]


def dataflow_compare(
    runner: ExperimentRunner,
    workloads: Sequence[str] | None = None,
    dataflows: Sequence[str] | None = None,
) -> dict[str, Any]:
    """Per-workload cycles and speedup of each dataflow engine vs ``os``.

    The paper evaluates output stationary and names other dataflows as
    future work; this figure sweeps the registered engines over the model
    zoo and reports, per workload, total cycles under each engine plus
    the speedup relative to the ``os`` baseline (values above 1 mean the
    engine finished faster than output stationary).
    """
    names = list(workloads) if workloads is not None else list(zoo.NAMES)
    engines = (
        list(dataflows) if dataflows is not None else list(registered_dataflows())
    )
    runner.run_many(dataflow_compare_specs(runner, names, engines))
    cycles: dict[str, dict[str, int]] = {}
    for name in names:
        cycles[name] = {}
        for engine in engines:
            result = _maybe(
                lambda n=name, e=engine: runner.solo(n, dataflow=e)
            )
            if result is not None:
                cycles[name][engine] = result["cycles"]
    speedup_vs_os: dict[str, dict[str, float]] = {}
    for name, by_engine in cycles.items():
        base = by_engine.get("os")
        if base is None:
            continue
        speedup_vs_os[name] = {
            engine: base / value for engine, value in by_engine.items()
        }
    overall = {
        engine: _safe_geomean(
            [
                speedup_vs_os[name][engine]
                for name in speedup_vs_os
                if engine in speedup_vs_os[name]
            ]
        )
        for engine in engines
    }
    return _attach_failures(
        {
            "workloads": names,
            "dataflows": engines,
            "cycles": cycles,
            "speedup_vs_os": speedup_vs_os,
            "overall": overall,
        },
        runner,
    )


# --------------------------------------------------------------------- #
# LLM-serving co-location (prefill/decode phases x MoE skew x sharing)
# --------------------------------------------------------------------- #


#: The serving phases as runnable workload names.
SERVING_PHASE_NAMES = ("gpt2:prefill", "gpt2:decode")

#: Co-location pairs of the serving study: phase-homogeneous and mixed.
SERVING_PAIRS = (
    ("gpt2:prefill", "gpt2:prefill"),
    ("gpt2:prefill", "gpt2:decode"),
    ("gpt2:decode", "gpt2:decode"),
)

#: The shared-vs-private-TLB axis: +DW keeps TLBs private, +DWT shares.
SERVING_SHARINGS = (SharingLevel.DW, SharingLevel.DWT)

#: MoE routing skews swept by the serving figure.
SERVING_SKEWS = ("uniform", "zipf")


def serving_colocation_specs(
    runner: ExperimentRunner,
    skews: Sequence[str] = SERVING_SKEWS,
) -> list[RunSpec]:
    """Every spec behind the serving co-location figure.

    Per MoE skew: a dual-pool Ideal solo of each phase (the speedup
    baseline) plus every phase pair under +DW (private TLBs) and +DWT
    (shared TLB) — 8 specs per skew.  Uniform skew normalizes to the
    default :class:`ServingParams`, so its specs share cache keys with
    any other default-parameter serving run.
    """
    specs = []
    for skew in skews:
        params = ServingParams(moe_skew=skew)
        for name in SERVING_PHASE_NAMES:
            specs.append(runner.plan_ideal(name, 2, serving=params))
        for pair in SERVING_PAIRS:
            for level in SERVING_SHARINGS:
                specs.append(runner.plan_mix(pair, level, serving=params))
    return specs


def _pair_label(pair: Sequence[str]) -> str:
    return "+".join(name.split(":", 1)[1] for name in pair)


def serving_colocation(
    runner: ExperimentRunner,
    skews: Sequence[str] = SERVING_SKEWS,
) -> dict[str, Any]:
    """Does sharing the TLB (+DWT over +DW) help or hurt serving mixes?

    The question the paper's DNN study never reaches: with co-runners
    that are prefill (GEMM-bursty), decode (KV-cache streaming) or
    Zipf-skewed MoE, per-scenario geomean speedups vs the dual-pool
    Ideal are reported for private TLBs (+DW) and the shared TLB
    (+DWT); ``dwt_gain`` is their ratio (>1: sharing helps).
    """
    runner.run_many(serving_colocation_specs(runner, skews))
    per_scenario: dict[str, dict[str, Any]] = {}
    level_values: dict[str, list[float]] = {
        level.label: [] for level in SERVING_SHARINGS
    }
    dwt_gains: list[float] = []
    for skew in skews:
        params = ServingParams(moe_skew=skew)
        ideal: dict[str, int] = {}
        for name in SERVING_PHASE_NAMES:
            result = _maybe(
                lambda n=name, p=params: runner.run(
                    runner.plan_ideal(n, 2, serving=p)
                )
            )
            if result is not None:
                ideal[name] = result[0]["cycles"]
        for pair in SERVING_PAIRS:
            label = f"{skew}/{_pair_label(pair)}"
            entry: dict[str, Any] = {}
            for level in SERVING_SHARINGS:
                if any(name not in ideal for name in pair):
                    continue
                results = _maybe(
                    lambda pr=pair, lv=level, p=params: runner.run(
                        runner.plan_mix(pr, lv, serving=p)
                    )
                )
                if results is None:
                    continue
                entry[level.label] = geomean(
                    [
                        ideal[name] / result["cycles"]
                        for name, result in zip(pair, results)
                    ]
                )
                level_values[level.label].append(entry[level.label])
            if "+DW" in entry and "+DWT" in entry:
                entry["dwt_gain"] = entry["+DWT"] / entry["+DW"]
                entry["verdict"] = (
                    "helps" if entry["dwt_gain"] >= 1.0 else "hurts"
                )
                dwt_gains.append(entry["dwt_gain"])
            per_scenario[label] = entry
    overall: dict[str, Any] = {
        level.label: _safe_geomean(level_values[level.label])
        for level in SERVING_SHARINGS
    }
    overall["dwt_gain"] = _safe_geomean(dwt_gains)
    if overall["dwt_gain"] is not None:
        overall["verdict"] = (
            "helps" if overall["dwt_gain"] >= 1.0 else "hurts"
        )
    return _attach_failures(
        {
            "skews": list(skews),
            "pairs": [_pair_label(pair) for pair in SERVING_PAIRS],
            "sharings": [level.label for level in SERVING_SHARINGS],
            "per_scenario": per_scenario,
            "overall": overall,
        },
        runner,
    )


# --------------------------------------------------------------------- #
# Planner registry
# --------------------------------------------------------------------- #


def _plan_fig4(runner, dual, quad):
    return sharing_sweep_specs(runner, 2, dual)


def _plan_fig5(runner, dual, quad):
    return sharing_sweep_specs(runner, 4, quad)


def _plan_fig8(runner, dual, quad):
    return fig8_specs(runner, dual)


def _plan_bw(runner, dual, quad):
    return bw_partition_specs(runner, dual)


def _plan_fig11(runner, dual, quad):
    return fig11_specs(runner)


def _plan_ptw(runner, dual, quad):
    return ptw_partition_specs(runner, dual)


def _plan_fig15(runner, dual, quad):
    return fig15_specs(runner)


def _plan_fig16(runner, dual, quad):
    return fig16_specs(runner, 2, dual)


def _plan_dataflow(runner, dual, quad):
    return dataflow_compare_specs(runner)


def _plan_serving(runner, dual, quad):
    return serving_colocation_specs(runner)


#: ``figure name -> planner(runner, dual_mixes, quad_mixes) -> [RunSpec]``.
#: Figures 2 and 12 trace bandwidth inside one ad-hoc simulation and have
#: no cacheable spec set; figures 17/18 live in :mod:`repro.mapping`.
FIGURE_PLANNERS = {
    "fig4": _plan_fig4,
    "fig5": _plan_fig5,
    "fig6": _plan_fig4,  # same sweep as fig4, reduced to fairness
    "fig7": _plan_fig5,  # same sweep as fig5, reduced to fairness
    "fig8": _plan_fig8,
    "fig9": _plan_bw,
    "fig10": _plan_bw,
    "fig11": _plan_fig11,
    "fig13": _plan_ptw,
    "fig14": _plan_ptw,
    "fig15": _plan_fig15,
    "fig16": _plan_fig16,
    "dataflow_compare": _plan_dataflow,
    "serving_colocation": _plan_serving,
}

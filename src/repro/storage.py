"""Crash-safe content shards: atomic writes, checksums, quarantine.

Both on-disk caches — the experiment runner's result shards in
``.repro_cache/`` and the compile frontend's trace shards in
``.repro_cache/traces/`` — need the same durability contract:

* **Atomic publication.**  A shard is written to a unique temp file and
  published with ``os.replace``, so readers only ever observe an absent
  or a complete file, even with concurrent runners sharing one
  directory.
* **Integrity sidecar.**  Each shard carries a ``<name>.sum`` sidecar
  holding the sha256 of the payload.  The shard's *own* byte format
  never changes for integrity metadata (the golden-equivalence suite
  pins result-shard bytes), which is why the checksum lives next to the
  shard instead of inside it.
* **Quarantine, never crash.**  A shard that fails validation — torn
  JSON, version/descriptor mismatch, checksum mismatch — is moved to a
  ``quarantine/`` subdirectory with a logged warning, and the caller
  simply regenerates it.  Corruption costs one re-run, not a sweep.

:class:`ShardStore` packages that contract once;
:class:`~repro.experiments.runner.ExperimentRunner` and
:class:`~repro.compute.tracecache.TraceCache` both build on it.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Any, Callable

_LOG = logging.getLogger("repro.storage")

#: Subdirectory of a store holding quarantined corrupt shards.
QUARANTINE_DIR = "quarantine"


def encode_result_shard(descriptor: dict[str, Any], results: list[Any]) -> bytes:
    """The canonical result-shard byte encoding.

    This exact byte sequence is what the experiment runner publishes to
    disk *and* what ``mnpusim serve`` returns over HTTP, so a served
    payload's sha256 always matches the shard a cold CLI run of the same
    spec would write.  The format is pinned by the golden-equivalence
    suite — do not change it without bumping ``RESULTS_VERSION``.
    """
    return json.dumps(
        {"descriptor": descriptor, "results": results}, indent=1
    ).encode("utf-8")


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` so readers only ever see absent or complete files.

    The temp name embeds the pid, so concurrent runners sharing one
    cache directory never clobber each other's in-progress writes;
    ``os.replace`` makes publication atomic on POSIX filesystems.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def checksum_path(path: Path) -> Path:
    """The sha256 sidecar file belonging to a shard."""
    return path.with_name(path.name + ".sum")


class ShardStore:
    """One directory of checksummed shards with a quarantine policy.

    ``on_quarantine(shard_name, reason)`` is invoked after a corrupt
    shard has been moved aside, so callers can count/journal the event.
    """

    def __init__(
        self,
        directory: Path,
        *,
        on_quarantine: Callable[[str, str], None] | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.on_quarantine = on_quarantine

    # ------------------------------------------------------------------ #

    def path(self, name: str) -> Path:
        """Absolute path of the shard called ``name``."""
        return self.directory / name

    @property
    def quarantine_dir(self) -> Path:
        return self.directory / QUARANTINE_DIR

    def write(self, name: str, payload: bytes) -> Path:
        """Atomically publish ``payload`` as shard ``name`` + its sidecar."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path(name)
        atomic_write_bytes(path, payload)
        atomic_write_bytes(
            checksum_path(path),
            hashlib.sha256(payload).hexdigest().encode("ascii"),
        )
        return path

    def read_bytes(self, name: str) -> bytes | None:
        """Raw shard bytes, or ``None`` when the shard does not exist."""
        try:
            return self.path(name).read_bytes()
        except OSError:
            return None

    def checksum_ok(self, name: str, raw: bytes) -> bool:
        """True when the sidecar is absent (legacy shard) or matches."""
        try:
            expected = checksum_path(self.path(name)).read_text("ascii").strip()
        except OSError:
            return True  # sidecar optional: pre-existing caches lack it
        return not expected or expected == hashlib.sha256(raw).hexdigest()

    def read_validated(
        self,
        name: str,
        validate: Callable[[bytes], tuple[Any, str | None]],
    ) -> Any:
        """Read + validate shard ``name``; quarantine anything unsound.

        ``validate(raw)`` returns ``(value, None)`` for a sound shard or
        ``(None, reason)`` otherwise; the checksum sidecar is verified
        only for semantically-valid shards (mirroring the historical
        runner behaviour, so quarantine reasons stay stable).  Returns
        the validated value, or ``None`` when the shard is absent or was
        quarantined.
        """
        raw = self.read_bytes(name)
        if raw is None:
            return None
        value, reason = validate(raw)
        if value is not None and not self.checksum_ok(name, raw):
            value, reason = None, "payload checksum mismatch"
        if value is None:
            self.quarantine(name, reason or "unknown corruption")
            return None
        return value

    def quarantine(self, name: str, reason: str) -> None:
        """Move a corrupt shard (and its sidecar) out of the store."""
        path = self.path(name)
        quarantine = self.quarantine_dir
        quarantine.mkdir(parents=True, exist_ok=True)
        target = quarantine / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = quarantine / f"{path.name}.{suffix}"
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - lost a race with another runner
            path.unlink(missing_ok=True)
        checksum_path(path).unlink(missing_ok=True)
        _LOG.warning(
            "quarantined corrupt cache shard %s (%s); it will be regenerated",
            path.name,
            reason,
        )
        if self.on_quarantine is not None:
            self.on_quarantine(path.name, reason)

    # ------------------------------------------------------------------ #
    # Maintenance (the ``mnpusim cache`` subcommand)
    # ------------------------------------------------------------------ #

    def shard_names(self, suffix: str = ".json") -> list[str]:
        """Names of the shards currently in the store (sidecars excluded).

        An absent or unreadable directory is an empty store, never an
        error — ``mnpusim cache stats`` must work before any run exists.
        """
        try:
            return sorted(
                entry.name
                for entry in self.directory.iterdir()
                if entry.is_file() and entry.name.endswith(suffix)
            )
        except OSError:
            return []

    def usage(self, suffix: str = ".json") -> dict[str, int]:
        """Disk usage: ``shards``/``bytes`` plus quarantine count/bytes.

        The quarantine numbers make the store's *hidden* disk footprint
        inspectable — quarantined shards are dead weight that only
        ``clear_quarantine`` reclaims, so a long-running daemon's
        operator needs to see them growing.
        """
        shards = self.shard_names(suffix)
        total = 0
        for name in shards:
            try:
                total += self.path(name).stat().st_size
            except OSError:  # pragma: no cover - racing deletion
                pass
        quarantined = 0
        quarantine_bytes = 0
        try:
            for entry in self.quarantine_dir.iterdir():
                if not entry.is_file():
                    continue
                quarantined += 1
                try:
                    quarantine_bytes += entry.stat().st_size
                except OSError:  # pragma: no cover - racing cleanup
                    pass
        except OSError:  # absent quarantine dir, or racing cleanup
            pass
        return {
            "shards": len(shards),
            "bytes": total,
            "quarantined": quarantined,
            "quarantine_bytes": quarantine_bytes,
        }

    def clear(self, suffix: str = ".json") -> int:
        """Delete every shard (+sidecar) in the store; returns the count."""
        removed = 0
        for name in self.shard_names(suffix):
            path = self.path(name)
            path.unlink(missing_ok=True)
            checksum_path(path).unlink(missing_ok=True)
            removed += 1
        return removed

    def clear_quarantine(self) -> int:
        """Delete every quarantined shard; returns the count removed."""
        removed = 0
        try:
            entries = list(self.quarantine_dir.iterdir())
        except OSError:  # absent quarantine dir: nothing to prune
            return 0
        for entry in entries:
            if not entry.is_file():
                continue
            try:
                entry.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                continue
            removed += 1
        return removed

"""Typed timeline spans and the bounded ring buffers that hold them.

A *span* is one piece of simulated activity with a position on the tick
timeline.  The taxonomy mirrors the resources the paper studies:

===============  ====================================================
:class:`DramSpan`   one DRAM transaction (enqueue → completion)
:class:`TlbEvent`   one TLB access (an instant, not an interval)
:class:`WalkSpan`   one page-table walk (enqueue → walker finish)
:class:`TileSpan`   one tile pipeline phase (load / compute / write)
:class:`LayerSpan`  one layer's first-iteration activity on a core
===============  ====================================================

:class:`DramSpan`, :class:`TlbEvent` and :class:`WalkSpan` carry exactly
the field layout of the legacy ``core.tracing`` log entries — the legacy
names are now aliases of these types, which is what lets the
artifact-style :class:`~repro.core.tracing.TraceLogger` consume the same
span stream as the Perfetto exporter without conversion.

Spans are buffered in :class:`RingBuffer`\\ s: append-only, bounded, and
counting what they drop, so tracing a pathological run cannot exhaust
memory — the newest spans win, and the exporter reports the drop count.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generic, Iterator, Protocol, TypeVar

T = TypeVar("T")

#: Default ring capacity per span kind.  At ~60 bytes/span this bounds a
#: fully-traced run around a few hundred MB worst case across all rings.
DEFAULT_RING_CAPACITY = 1_000_000


@dataclass(frozen=True)
class DramSpan:
    """One DRAM transaction's lifetime (field-compatible with the legacy
    ``DramLogEntry``)."""

    start_tick: int
    end_tick: int
    addr: int
    core: int
    channel: int
    write: bool
    is_walk: bool


@dataclass(frozen=True)
class TlbEvent:
    """One TLB access — an instant event (legacy ``TlbLogEntry``)."""

    tick: int
    core: int
    vpn: int
    outcome: str  #: "hit", "miss" (walk started) or "coalesced"


@dataclass(frozen=True)
class WalkSpan:
    """One page-table walk's lifetime (legacy ``PtwLogEntry``)."""

    enqueue_tick: int
    start_tick: int
    end_tick: int
    core: int
    vpn: int
    dram_reads: int


@dataclass(frozen=True)
class TileSpan:
    """One phase of one tile moving through a core's pipeline."""

    start_tick: int
    end_tick: int
    core: int
    layer_index: int
    phase: str  #: "load", "compute" or "write"


@dataclass(frozen=True)
class LayerSpan:
    """One layer's first-iteration activity window on one core."""

    start_tick: int
    end_tick: int
    core: int
    layer_index: int
    name: str


class SpanSink(Protocol):
    """A consumer of the raw span stream.

    :class:`~repro.obs.timeline.TimelineTracer` fans every recorded span
    out to attached sinks; the artifact-style ``TraceLogger`` is the
    canonical implementation.  All methods are optional in spirit —
    implementors may treat any of them as a no-op.
    """

    def on_dram(self, span: DramSpan) -> None: ...

    def on_tlb(self, event: TlbEvent) -> None: ...

    def on_walk(self, span: WalkSpan) -> None: ...


class RingBuffer(Generic[T]):
    """A bounded append-only buffer keeping the newest items.

    Backed by :class:`collections.deque` with ``maxlen``, plus a counter
    of how many items were evicted — exporters surface that count so a
    truncated trace is never mistaken for a complete one.
    """

    __slots__ = ("_items", "capacity", "pushed")

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self.pushed = 0
        self._items: deque[T] = deque(maxlen=capacity)

    def append(self, item: T) -> None:
        self.pushed += 1
        self._items.append(item)

    @property
    def dropped(self) -> int:
        """Items evicted to make room (0 when the trace is complete)."""
        return self.pushed - len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

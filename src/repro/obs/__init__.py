"""``repro.obs`` — the unified observability layer.

Three cooperating pieces, all zero-overhead when not enabled:

* :mod:`repro.obs.registry` — a hierarchical :class:`CounterRegistry` of
  counters, gauges and histograms addressed by dotted component paths
  (``dram.ch0.row_hits``, ``mmu.core1.tlb.misses``, ``ptw.queue_depth``).
  Simulator components *register* their existing hot-path stat objects
  into it; snapshots render to a stable JSON schema.
* :mod:`repro.obs.timeline` — a :class:`TimelineTracer` span stream:
  typed spans (DRAM transactions, page walks, tile load/compute/write
  phases, per-core layer activity) recorded into bounded ring buffers
  and exported as Chrome trace-event JSON viewable in Perfetto.  The
  artifact-style :class:`~repro.core.tracing.TraceLogger` is one
  consumer of the same stream.
* :mod:`repro.obs.profiling` — :class:`PhaseProfiler` wall-time/count
  accounting for the experiment runner's phases (compile, execute,
  cache I/O), surfaced through ``mnpusim profile`` and the sweep
  journal.

Enable it per simulation with ``MultiCoreNPUSim(..., observe=True)`` or
from the CLI with ``mnpusim profile run``.
"""

from repro.obs.profiling import (
    PhaseProfiler,
    format_profile,
    human_bytes,
    human_seconds,
)
from repro.obs.registry import (
    COUNTERS_SCHEMA,
    Counter,
    CounterRegistry,
    Gauge,
    Histogram,
    format_tree,
    merge_snapshots,
)
from repro.obs.spans import (
    DramSpan,
    LayerSpan,
    RingBuffer,
    SpanSink,
    TileSpan,
    TlbEvent,
    WalkSpan,
)
from repro.obs.timeline import TRACE_SCHEMA_NOTE, TimelineTracer

__all__ = [
    "COUNTERS_SCHEMA",
    "Counter",
    "CounterRegistry",
    "DramSpan",
    "Gauge",
    "Histogram",
    "LayerSpan",
    "PhaseProfiler",
    "RingBuffer",
    "SpanSink",
    "TRACE_SCHEMA_NOTE",
    "TileSpan",
    "TimelineTracer",
    "TlbEvent",
    "WalkSpan",
    "format_profile",
    "format_tree",
    "human_bytes",
    "human_seconds",
    "merge_snapshots",
]

"""Timeline tracer: typed span stream → Chrome trace-event JSON.

:class:`TimelineTracer` exposes the same ``log_dram``/``log_tlb``/
``log_ptw`` recording interface as the artifact-style
:class:`~repro.core.tracing.TraceLogger`, so the simulator wires it in
as *the* logger when observability is on.  Every recorded span lands in
a bounded :class:`~repro.obs.spans.RingBuffer` and is fanned out to any
attached :class:`~repro.obs.spans.SpanSink` consumers (the TraceLogger
being the canonical one — artifact text logs and Perfetto traces come
from a single stream).

Export follows the Chrome trace-event JSON format (the "JSON Object
Format": ``{"traceEvents": [...]}``), which Perfetto's UI at
https://ui.perfetto.dev opens directly.  Simulated ticks are emitted as
microseconds — Perfetto's time axis then reads directly in ticks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.registry import CounterRegistry, Histogram
from repro.obs.spans import (
    DEFAULT_RING_CAPACITY,
    DramSpan,
    LayerSpan,
    RingBuffer,
    SpanSink,
    TileSpan,
    TlbEvent,
    WalkSpan,
)

#: How spans map onto Perfetto's process/thread hierarchy.
TRACE_SCHEMA_NOTE = (
    "Chrome trace-event JSON (JSON Object Format). 1 tick == 1 us. "
    "pid 1 = DRAM (tid = channel, 'X' complete events, PTW traffic "
    "flagged in args); pid 2 = MMU/PTW (tid = core: walk 'X' spans and "
    "TLB access 'i' instants); pid 10+core = NPU core (tid 0/1/2 = "
    "load/compute/write tile phases, tid 3 = layer activity spans)."
)

_DRAM_PID = 1
_MMU_PID = 2
_CORE_PID_BASE = 10
_PHASE_TID = {"load": 0, "compute": 1, "write": 2}
_LAYER_TID = 3


class TimelineTracer:
    """Records typed spans into ring buffers; exports Perfetto traces.

    Parameters
    ----------
    capacity:
        Per-ring span cap; the newest spans are kept and drops counted.
    registry:
        Optional :class:`CounterRegistry` to receive the tracer's own
        derived distributions (``timeline.dram.latency_ticks``,
        ``timeline.ptw.walk_ticks``) and drop counters.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_RING_CAPACITY,
        registry: CounterRegistry | None = None,
    ) -> None:
        self.dram: RingBuffer[DramSpan] = RingBuffer(capacity)
        self.tlb: RingBuffer[TlbEvent] = RingBuffer(capacity)
        self.ptw: RingBuffer[WalkSpan] = RingBuffer(capacity)
        self.tiles: RingBuffer[TileSpan] = RingBuffer(capacity)
        self.layers: RingBuffer[LayerSpan] = RingBuffer(capacity)
        self._sinks: list[SpanSink] = []
        self._dram_latency: Histogram | None = None
        self._walk_latency: Histogram | None = None
        if registry is not None:
            self._dram_latency = registry.histogram("timeline.dram.latency_ticks")
            self._walk_latency = registry.histogram("timeline.ptw.walk_ticks")
            registry.bind_gauge("timeline.spans.dropped", self.total_dropped)

    def attach(self, sink: SpanSink) -> None:
        """Fan recorded spans out to ``sink`` as well."""
        self._sinks.append(sink)

    # -------------------------------------------------------------- #
    # Recording interface (TraceLogger-compatible)
    # -------------------------------------------------------------- #

    def log_dram(
        self,
        start_tick: int,
        end_tick: int,
        addr: int,
        core: int,
        channel: int,
        write: bool,
        is_walk: bool,
    ) -> None:
        """Record one completed DRAM transaction."""
        span = DramSpan(start_tick, end_tick, addr, core, channel, write, is_walk)
        self.dram.append(span)
        if self._dram_latency is not None:
            self._dram_latency.record(end_tick - start_tick)
        for sink in self._sinks:
            sink.on_dram(span)

    def log_tlb(self, tick: int, core: int, vpn: int, outcome: str) -> None:
        """Record one TLB access."""
        event = TlbEvent(tick, core, vpn, outcome)
        self.tlb.append(event)
        for sink in self._sinks:
            sink.on_tlb(event)

    def log_ptw(
        self,
        enqueue_tick: int,
        start_tick: int,
        end_tick: int,
        core: int,
        vpn: int,
        dram_reads: int,
    ) -> None:
        """Record one completed page-table walk."""
        span = WalkSpan(enqueue_tick, start_tick, end_tick, core, vpn, dram_reads)
        self.ptw.append(span)
        if self._walk_latency is not None:
            self._walk_latency.record(end_tick - enqueue_tick)
        for sink in self._sinks:
            sink.on_walk(span)

    def log_tile(
        self, start_tick: int, end_tick: int, core: int, layer_index: int, phase: str
    ) -> None:
        """Record one tile pipeline phase (load / compute / write)."""
        self.tiles.append(TileSpan(start_tick, end_tick, core, layer_index, phase))

    def log_layer(
        self, start_tick: int, end_tick: int, core: int, layer_index: int, name: str
    ) -> None:
        """Record one layer's activity window on one core."""
        self.layers.append(LayerSpan(start_tick, end_tick, core, layer_index, name))

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #

    def total_spans(self) -> int:
        """Spans currently buffered across every ring."""
        return sum(
            len(ring)
            for ring in (self.dram, self.tlb, self.ptw, self.tiles, self.layers)
        )

    def total_dropped(self) -> int:
        """Spans evicted across every ring (0 for a complete trace)."""
        return sum(
            ring.dropped
            for ring in (self.dram, self.tlb, self.ptw, self.tiles, self.layers)
        )

    # -------------------------------------------------------------- #
    # Export
    # -------------------------------------------------------------- #

    def chrome_trace(self) -> dict[str, Any]:
        """The full trace as a Chrome trace-event JSON object.

        Events use "X" (complete: ``ts`` + ``dur``) for intervals, "i"
        (instant) for TLB accesses, and "M" (metadata) for process and
        thread naming.  All timestamps are simulated ticks.
        """
        events: list[dict[str, Any]] = []
        meta_done: set[tuple[int, int]] = set()

        def name_row(pid: int, tid: int, process: str, thread: str) -> None:
            if (pid, tid) in meta_done:
                return
            meta_done.add((pid, tid))
            if not any(key[0] == pid for key in meta_done if key != (pid, tid)):
                events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": process},
                    }
                )
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread},
                }
            )

        for d in self.dram:
            name_row(_DRAM_PID, d.channel, "DRAM", f"channel {d.channel}")
            events.append(
                {
                    "name": ("walk " if d.is_walk else "")
                    + ("write" if d.write else "read"),
                    "cat": "dram",
                    "ph": "X",
                    "ts": d.start_tick,
                    "dur": max(0, d.end_tick - d.start_tick),
                    "pid": _DRAM_PID,
                    "tid": d.channel,
                    "args": {"addr": f"0x{d.addr:x}", "core": d.core},
                }
            )

        for w in self.ptw:
            name_row(_MMU_PID, w.core, "MMU/PTW", f"core {w.core} walks")
            events.append(
                {
                    "name": f"walk 0x{w.vpn:x}",
                    "cat": "ptw",
                    "ph": "X",
                    "ts": w.enqueue_tick,
                    "dur": max(0, w.end_tick - w.enqueue_tick),
                    "pid": _MMU_PID,
                    "tid": w.core,
                    "args": {
                        "queued_ticks": w.start_tick - w.enqueue_tick,
                        "dram_reads": w.dram_reads,
                    },
                }
            )

        for t in self.tlb:
            name_row(_MMU_PID, t.core, "MMU/PTW", f"core {t.core} walks")
            events.append(
                {
                    "name": f"tlb {t.outcome}",
                    "cat": "tlb",
                    "ph": "i",
                    "s": "t",
                    "ts": t.tick,
                    "pid": _MMU_PID,
                    "tid": t.core,
                    "args": {"vpn": f"0x{t.vpn:x}"},
                }
            )

        for tile in self.tiles:
            pid = _CORE_PID_BASE + tile.core
            tid = _PHASE_TID[tile.phase]
            name_row(pid, tid, f"NPU core {tile.core}", tile.phase)
            events.append(
                {
                    "name": f"{tile.phase} L{tile.layer_index}",
                    "cat": "tile",
                    "ph": "X",
                    "ts": tile.start_tick,
                    "dur": max(0, tile.end_tick - tile.start_tick),
                    "pid": pid,
                    "tid": tid,
                    "args": {"layer": tile.layer_index},
                }
            )

        for layer in self.layers:
            pid = _CORE_PID_BASE + layer.core
            name_row(pid, _LAYER_TID, f"NPU core {layer.core}", "layers")
            events.append(
                {
                    "name": layer.name,
                    "cat": "layer",
                    "ph": "X",
                    "ts": layer.start_tick,
                    "dur": max(0, layer.end_tick - layer.start_tick),
                    "pid": pid,
                    "tid": _LAYER_TID,
                    "args": {"layer": layer.layer_index},
                }
            )

        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": TRACE_SCHEMA_NOTE,
                "dropped_spans": self.total_dropped(),
            },
        }

    def export(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON to ``path``; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.chrome_trace()))
        return target

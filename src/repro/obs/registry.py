"""Hierarchical counter registry with a stable JSON snapshot schema.

The paper's analysis is *about* per-resource counters — DRAM bandwidth
shares, TLB hit rates, walker queue depths — so the reproduction gives
them a first-class home.  A :class:`CounterRegistry` is a flat map from
dotted component paths (``dram.ch0.row_hits``, ``mmu.core1.tlb.misses``,
``ptw.queue_depth``) to metrics of three kinds:

* **counter** — a monotonically increasing count;
* **gauge** — an instantaneous level (queue depth, current tick);
* **histogram** — a fixed-bucket distribution (walk latency).

Metrics come in two flavours.  *Owned* metrics (:class:`Counter`,
:class:`Gauge`, :class:`Histogram`) are allocated by the registry and
mutated by whoever holds them.  *Bound* metrics wrap a zero-argument
callable reading an existing hot-path stat field — this is how simulator
components register their scattered stats without adding a single
instruction to the simulation hot path: the registry only *reads* on
:meth:`CounterRegistry.snapshot`, never on the simulated fast path.

Snapshots follow a stable, self-describing JSON schema
(:data:`COUNTERS_SCHEMA`) so they can be attached to results, journaled,
diffed across runs, and merged (:func:`merge_snapshots`) without the
registry that produced them.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

#: Version tag embedded in every snapshot.  Bump on layout changes.
COUNTERS_SCHEMA = "repro-obs-counters/1"

#: Default histogram bucket upper bounds (ticks): powers of four give a
#: compact latency profile from L1-ish to catastrophically-queued.
DEFAULT_BUCKETS = (4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144)


def _check_path(path: str) -> str:
    if not path or any(not part for part in path.split(".")):
        raise ValueError(f"invalid metric path {path!r}")
    for ch in path:
        if not (ch.isalnum() or ch in "._-"):
            raise ValueError(f"invalid character {ch!r} in metric path {path!r}")
    return path


class Counter:
    """A registry-owned monotonic counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1)."""
        self.value += amount

    def read(self) -> int:
        return self.value


class Gauge:
    """A registry-owned instantaneous level."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def read(self) -> float:
        return self.value


class Histogram:
    """A fixed-bucket histogram of non-negative samples.

    ``bounds`` are inclusive upper bucket edges; samples above the last
    edge land in the implicit overflow bucket.  Count and sum are kept so
    means survive snapshotting.
    """

    __slots__ = ("bounds", "buckets", "count", "total")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        if not self.bounds or list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be sorted and distinct")
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0

    def record(self, value: float) -> None:
        """Account one sample."""
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def read(self) -> dict[str, Any]:
        """The histogram's snapshot value (see :data:`COUNTERS_SCHEMA`)."""
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": [
                [bound, self.buckets[index]] for index, bound in enumerate(self.bounds)
            ]
            + [["inf", self.buckets[-1]]],
        }

    def reset(self) -> None:
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0


class _Entry:
    __slots__ = ("kind", "read", "owned", "baseline")

    def __init__(self, kind: str, read: Callable[[], Any], owned: Any) -> None:
        self.kind = kind
        self.read = read
        self.owned = owned          #: the owned metric object, if any
        self.baseline: Any = 0      #: subtracted from counters (reset())


class CounterRegistry:
    """A hierarchy of named metrics addressed by dotted paths."""

    def __init__(self) -> None:
        self._entries: dict[str, _Entry] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def _add(self, path: str, entry: _Entry) -> None:
        path = _check_path(path)
        if path in self._entries:
            raise ValueError(f"metric path {path!r} already registered")
        self._entries[path] = entry

    def counter(self, path: str) -> Counter:
        """Allocate an owned counter at ``path``."""
        metric = Counter()
        self._add(path, _Entry("counter", metric.read, metric))
        return metric

    def gauge(self, path: str) -> Gauge:
        """Allocate an owned gauge at ``path``."""
        metric = Gauge()
        self._add(path, _Entry("gauge", metric.read, metric))
        return metric

    def histogram(
        self, path: str, bounds: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Allocate an owned histogram at ``path``."""
        metric = Histogram(bounds)
        self._add(path, _Entry("histogram", metric.read, metric))
        return metric

    def bind_counter(self, path: str, read: Callable[[], Any]) -> None:
        """Register an existing hot-path count behind ``path``.

        ``read`` is only invoked at snapshot time, so binding adds zero
        cost to the simulation itself.
        """
        self._add(path, _Entry("counter", read, None))

    def bind_gauge(self, path: str, read: Callable[[], Any]) -> None:
        """Register an existing instantaneous level behind ``path``."""
        self._add(path, _Entry("gauge", read, None))

    def bind_many(
        self, prefix: str, reads: Mapping[str, Callable[[], Any]], kind: str = "counter"
    ) -> None:
        """Bind several metrics under one prefix (``prefix.name``)."""
        for name, read in reads.items():
            if kind == "counter":
                self.bind_counter(f"{prefix}.{name}", read)
            elif kind == "gauge":
                self.bind_gauge(f"{prefix}.{name}", read)
            else:
                raise ValueError(f"bind_many cannot bind kind {kind!r}")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def paths(self) -> list[str]:
        """Every registered metric path, sorted."""
        return sorted(self._entries)

    def __contains__(self, path: str) -> bool:
        return path in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def value(self, path: str) -> Any:
        """Current value of one metric (baseline-adjusted for counters)."""
        entry = self._entries[path]
        value = entry.read()
        if entry.kind == "counter":
            return value - entry.baseline
        return value

    # ------------------------------------------------------------------ #
    # Snapshot / merge / reset
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, Any]:
        """A stable, JSON-serializable rendering of every metric.

        Schema (:data:`COUNTERS_SCHEMA`)::

            {"schema": "repro-obs-counters/1",
             "metrics": {
               "<path>": {"kind": "counter", "value": <int>},
               "<path>": {"kind": "gauge", "value": <number>},
               "<path>": {"kind": "histogram", "count": n, "sum": s,
                          "buckets": [[upper_bound, count], ..., ["inf", count]]}}}

        Paths are emitted in sorted order so two snapshots of the same
        state serialize byte-identically.
        """
        metrics: dict[str, Any] = {}
        for path in sorted(self._entries):
            entry = self._entries[path]
            if entry.kind == "histogram":
                metrics[path] = {"kind": "histogram", **entry.read()}
            else:
                metrics[path] = {"kind": entry.kind, "value": self.value(path)}
        return {"schema": COUNTERS_SCHEMA, "metrics": metrics}

    def reset(self) -> None:
        """Zero every metric *as observed through this registry*.

        Owned metrics are cleared in place.  Bound counters cannot be
        cleared (the underlying stat object belongs to the simulator), so
        the current reading becomes a baseline subtracted from subsequent
        snapshots; bound gauges are instantaneous and unaffected.
        """
        for entry in self._entries.values():
            if isinstance(entry.owned, Counter):
                entry.owned.value = 0
                entry.baseline = 0
            elif isinstance(entry.owned, Gauge):
                entry.owned.value = 0
            elif isinstance(entry.owned, Histogram):
                entry.owned.reset()
            elif entry.kind == "counter":
                entry.baseline = entry.read()


def merge_snapshots(*snapshots: Mapping[str, Any]) -> dict[str, Any]:
    """Combine snapshots: counters/histograms add, gauges keep the last.

    Merging is defined on the *snapshot* schema (not live registries) so
    per-shard or per-worker snapshots can be aggregated after the fact.
    Histograms must share bucket bounds; mismatches raise ``ValueError``.
    """
    merged: dict[str, Any] = {}
    for snap in snapshots:
        if snap.get("schema") != COUNTERS_SCHEMA:
            raise ValueError(
                f"cannot merge snapshot with schema {snap.get('schema')!r}"
            )
        for path, metric in snap["metrics"].items():
            if path not in merged:
                merged[path] = json_copy(metric)
                continue
            base = merged[path]
            if base["kind"] != metric["kind"]:
                raise ValueError(f"kind mismatch for {path!r}")
            if metric["kind"] == "counter":
                base["value"] += metric["value"]
            elif metric["kind"] == "gauge":
                base["value"] = metric["value"]
            else:  # histogram
                bounds = [edge for edge, _ in base["buckets"]]
                if bounds != [edge for edge, _ in metric["buckets"]]:
                    raise ValueError(f"histogram bounds mismatch for {path!r}")
                base["count"] += metric["count"]
                base["sum"] += metric["sum"]
                base["buckets"] = [
                    [edge, count + other[1]]
                    for (edge, count), other in zip(base["buckets"], metric["buckets"])
                ]
    return {
        "schema": COUNTERS_SCHEMA,
        "metrics": {path: merged[path] for path in sorted(merged)},
    }


def json_copy(value: Any) -> Any:
    """A deep copy of a JSON-shaped value (dicts/lists/scalars)."""
    if isinstance(value, dict):
        return {key: json_copy(item) for key, item in value.items()}
    if isinstance(value, list):
        return [json_copy(item) for item in value]
    return value


def format_tree(snapshot: Mapping[str, Any], *, max_depth: int | None = None) -> str:
    """Render a snapshot as an indented component tree.

    ``dram.ch0.row_hits = 42`` becomes::

        dram
          ch0
            row_hits                         42

    Histograms render as ``count=N mean=M``.  ``max_depth`` truncates the
    tree (deeper leaves are rolled up and elided).
    """
    lines: list[str] = []
    emitted_groups: set[tuple[str, ...]] = set()
    for path in sorted(snapshot["metrics"]):
        metric = snapshot["metrics"][path]
        parts = tuple(path.split("."))
        if max_depth is not None and len(parts) > max_depth:
            continue
        for depth in range(len(parts) - 1):
            group = parts[: depth + 1]
            if group not in emitted_groups:
                emitted_groups.add(group)
                lines.append("  " * depth + group[-1])
        indent = "  " * (len(parts) - 1)
        label = f"{indent}{parts[-1]}"
        if metric["kind"] == "histogram":
            mean = metric["sum"] / metric["count"] if metric["count"] else 0.0
            value = f"count={metric['count']} mean={mean:.1f}"
        else:
            value = metric["value"]
            if isinstance(value, float):
                value = f"{value:.4f}" if value != int(value) else int(value)
        lines.append(f"{label:<44s} {value}")
    return "\n".join(lines)

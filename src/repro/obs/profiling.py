"""Wall-time phase profiling for the experiment runner.

Where the registry and timeline observe the *simulated* machine, the
:class:`PhaseProfiler` observes the *simulator*: how long a run or sweep
spent compiling frontends, reading and writing cache shards, and
executing the event loop, plus how many cache lookups hit.  The runner
feeds it; ``mnpusim profile sweep`` and the sweep journal's ``profile``
event render it.

Also home to the human-unit formatters (:func:`human_bytes`,
:func:`human_seconds`) shared by the CLI.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

#: Version tag embedded in every profiler snapshot.
PROFILE_SCHEMA = "repro-obs-profile/1"

#: Canonical runner phases, in display order.  Phases outside this list
#: are accepted and rendered after these.
RUNNER_PHASES = ("plan", "cache_read", "compile", "execute", "cache_write")


class PhaseProfiler:
    """Accumulates wall time and entry counts per named phase."""

    def __init__(self, clock: Any = time.perf_counter) -> None:
        self._clock = clock
        self._seconds: dict[str, float] = {}
        self._entries: dict[str, int] = {}
        self._counts: dict[str, int] = {}
        self._started = self._clock()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one entry into phase ``name`` (reentrancy-safe: nested
        entries of different phases each accumulate their own wall time,
        so overlapping phases can sum past the elapsed total)."""
        start = self._clock()
        try:
            yield
        finally:
            self._seconds[name] = self._seconds.get(name, 0.0) + (
                self._clock() - start
            )
            self._entries[name] = self._entries.get(name, 0) + 1

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a free-form event counter (e.g. ``cache_hits``)."""
        self._counts[name] = self._counts.get(name, 0) + amount

    # -------------------------------------------------------------- #

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def elapsed(self) -> float:
        """Wall time since the profiler was created."""
        return self._clock() - self._started

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable rendering (schema :data:`PROFILE_SCHEMA`).

        ``phases`` maps name → ``{"seconds": s, "entries": n}``;
        ``counts`` holds the free-form counters; ``elapsed_seconds`` is
        total wall time, of which time in no phase is ``other_seconds``.
        """
        phased = sum(self._seconds.values())
        elapsed = self.elapsed()
        return {
            "schema": PROFILE_SCHEMA,
            "elapsed_seconds": elapsed,
            "other_seconds": max(0.0, elapsed - phased),
            "phases": {
                name: {
                    "seconds": self._seconds[name],
                    "entries": self._entries.get(name, 0),
                }
                for name in sorted(self._seconds)
            },
            "counts": {name: self._counts[name] for name in sorted(self._counts)},
        }


def format_profile(snapshot: Mapping[str, Any]) -> str:
    """Render a profiler snapshot as an aligned text table."""
    elapsed = snapshot["elapsed_seconds"]
    lines = [f"{'phase':<14s} {'time':>10s} {'share':>7s} {'entries':>8s}"]

    def row(name: str, seconds: float, entries: int | None) -> None:
        share = f"{seconds / elapsed:6.1%}" if elapsed > 0 else "   n/a"
        count = "" if entries is None else str(entries)
        lines.append(
            f"{name:<14s} {human_seconds(seconds):>10s} {share:>7s} {count:>8s}"
        )

    phases = snapshot["phases"]
    ordered = [name for name in RUNNER_PHASES if name in phases]
    ordered += [name for name in phases if name not in RUNNER_PHASES]
    for name in ordered:
        row(name, phases[name]["seconds"], phases[name]["entries"])
    row("(other)", snapshot["other_seconds"], None)
    row("total", elapsed, None)
    if snapshot["counts"]:
        lines.append("")
        for name, value in snapshot["counts"].items():
            lines.append(f"{name:<24s} {value}")
    return "\n".join(lines)


def human_bytes(size: float) -> str:
    """``1536`` → ``'1.5 KiB'``; sizes below 1 KiB stay exact."""
    size = float(size)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if size < 1024 or unit == "TiB":
            if unit == "B":
                return f"{int(size)} B"
            return f"{size:.1f} {unit}"
        size /= 1024
    raise AssertionError("unreachable")


def human_seconds(seconds: float) -> str:
    """``0.00042`` → ``'420us'``; ``75.3`` → ``'1m15s'``."""
    if seconds < 0:
        return f"-{human_seconds(-seconds)}"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60:
        return f"{seconds:.2f}s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rem:.0f}s"

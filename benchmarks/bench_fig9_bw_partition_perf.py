"""Figure 9: DRAM-bandwidth partitioning schemes, performance."""

from conftest import emit, run_once

from repro.experiments import figures
from repro.experiments.report import format_table


def test_fig9_bandwidth_partition_performance(benchmark, runner, dual_mixes):
    data = run_once(
        benchmark,
        lambda: figures.fig9_bandwidth_partition_performance(runner, dual_mixes),
    )
    rows = [
        (scheme, round(data["overall"][scheme], 3)) for scheme in data["schemes"]
    ]
    emit(format_table(
        ["scheme", "geomean speedup vs Ideal"], rows,
        title="\nFigure 9: bandwidth partitioning (translation disabled)",
    ))
    overall = data["overall"]
    # Paper shape: the equal 4:4 split is the best static ratio; dynamic
    # sharing beats even the per-mix best static scheme.
    static_ratios = ["1:7", "2:6", "4:4", "6:2", "7:1"]
    assert overall["4:4"] == max(overall[s] for s in static_ratios)
    assert overall["Dynamic"] > overall["4:4"]
    assert overall["Dynamic"] >= overall["Static Best"] - 0.01
    # Unequal splits cost real performance (paper: "severe degradation").
    assert overall["1:7"] < overall["4:4"] - 0.02
    # Dynamic sharing recovers a large part of the static loss; the paper
    # reports 84% of Ideal vs 73% for 4:4 (a 1.14x gap).
    assert overall["Dynamic"] / overall["4:4"] > 1.02

"""Figure 8: per-workload contention sensitivity under +DWT (box plot)."""

from conftest import emit, run_once

from repro.experiments import figures
from repro.experiments.report import format_table


def test_fig8_sensitivity(benchmark, runner, dual_mixes):
    data = run_once(
        benchmark, lambda: figures.fig8_sensitivity(runner, dual_mixes)
    )
    rows = [
        (name, round(box["min"], 3), round(box["q1"], 3),
         round(box["median"], 3), round(box["q3"], 3), round(box["max"], 3),
         round(data["range"][name], 3))
        for name, box in data["boxes"].items()
    ]
    emit(format_table(
        ["workload", "min", "q1", "median", "q3", "max", "range"], rows,
        title="\nFigure 8: +DWT speedup distribution per workload (dual-core)",
    ))
    ranges = data["range"]
    # Paper shape: memory-intensive workloads (sfrnn, dlrm) see wider
    # performance swings across co-runners than the compute-intensive
    # CNNs (yt, res) and gpt2.
    assert ranges["sfrnn"] > ranges["yt"]
    assert ranges["dlrm"] > ranges["gpt2"]
    assert ranges["gpt2"] == min(ranges.values()) or ranges["yt"] < 0.35
    # Every workload is slowed by contention at least sometimes.
    for name, box in data["boxes"].items():
        assert box["min"] < 1.01, name

"""Shared fixtures for the figure/table benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper: it runs
the required simulations through the cached :class:`ExperimentRunner`
(so reruns are nearly free), prints the same rows/series the paper
reports, and asserts the qualitative *shape* — who wins, by roughly what
factor — documented in EXPERIMENTS.md.

Environment knobs:

* ``REPRO_QUAD_MIXES``  — quad-core mixes to simulate (default 60 of the
  330; set to 330 for the paper's full sweep — hours of CPU time on one
  core).
* ``REPRO_DUAL_MIXES``  — dual-core mixes (default: all 36).
* ``REPRO_CACHE_DIR``   — result cache location (default ./.repro_cache).
* ``REPRO_JOBS``        — worker processes for cold simulations (default
  1).  The figure reducers plan their whole spec set up front and execute
  it through one ``run_many`` batch, so a cold-cache regeneration scales
  with the cores you give it.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.mixes import subset_mixes
from repro.experiments.runner import ExperimentRunner


#: Report blocks emitted by the benches, flushed after capture ends.
_EMITTED: list[str] = []


def emit(text: str) -> None:
    """Queue a benchmark's report for the end-of-run summary.

    pytest's fd-level capture swallows direct writes during the test, so
    the tables are printed from ``pytest_terminal_summary`` instead —
    after capture is torn down, where ``tee``/CI logs can see them.
    """
    _EMITTED.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every regenerated table/figure after the test summary."""
    if not _EMITTED:
        return
    terminalreporter.section("regenerated tables and figures")
    for block in _EMITTED:
        terminalreporter.write_line(block)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One cached experiment runner shared by every benchmark."""
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    return ExperimentRunner(cache_dir=cache_dir, jobs=jobs)


@pytest.fixture(scope="session")
def dual_mixes() -> list[tuple[str, ...]]:
    """The dual-core mixes to evaluate (paper: all M(8,2) = 36)."""
    limit = int(os.environ.get("REPRO_DUAL_MIXES", "36"))
    return subset_mixes(2, limit)


@pytest.fixture(scope="session")
def quad_mixes() -> list[tuple[str, ...]]:
    """The quad-core mixes to evaluate (paper: all M(8,4) = 330).

    Defaults to a deterministic 60-mix subset so the suite completes in
    minutes on one CPU; set ``REPRO_QUAD_MIXES=330`` for the full sweep.
    """
    limit = int(os.environ.get("REPRO_QUAD_MIXES", "60"))
    return subset_mixes(4, limit)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The figures are regenerations, not micro-benchmarks: a second round
    would only measure the result cache.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)

"""Figure 4: dual-core performance per sharing level, normalized to Ideal."""

from conftest import emit, run_once

from repro.experiments import figures
from repro.experiments.report import format_table


def test_fig4_dual_performance(benchmark, runner, dual_mixes):
    data = run_once(
        benchmark, lambda: figures.fig4_dual_performance(runner, dual_mixes)
    )
    levels = ["Static", "+D", "+DW", "+DWT"]
    rows = [
        (mix, *(round(values[level], 3) for level in levels))
        for mix, values in sorted(data["per_mix"].items())
    ]
    rows.append(("GEOMEAN", *(round(data["overall"][level], 3) for level in levels)))
    emit(format_table(
        ["mix"] + levels, rows,
        title="\nFigure 4: dual-core geomean speedup vs Ideal per mix",
    ))
    overall = data["overall"]
    # Paper shape: every sharing level beats the equal static partition;
    # walker sharing adds a further notable gain; TLB sharing is small.
    assert overall["+D"] >= overall["Static"]
    assert overall["+DW"] > overall["+D"]
    assert abs(overall["+DWT"] - overall["+DW"]) < 0.05
    # Magnitudes: +D lands in the paper's 0.6-0.9 band below Ideal.
    assert 0.6 < overall["+D"] < 0.95

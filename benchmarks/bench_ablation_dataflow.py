"""Ablation (extension): output-stationary vs weight-stationary dataflow.

The paper evaluates the OS dataflow and lists WS as future work
(section 4.1.2); this reproduction implements both.  This bench compares
single-core latency per workload under each dataflow on the same system.
"""

import dataclasses

from conftest import emit, run_once

from repro.config import presets
from repro.core.simulator import MultiCoreNPUSim
from repro.experiments.report import format_table
from repro.models import zoo


def _cycles(name: str, dataflow: str) -> int:
    system = presets.solo_slice()
    arch = dataclasses.replace(system.arch[0], dataflow=dataflow)
    system = dataclasses.replace(system, arch=(arch,))
    return MultiCoreNPUSim(system, [zoo.mini(name)]).run().workloads[0].cycles


def test_ablation_dataflow(benchmark):
    def compute():
        return {
            name: {"os": _cycles(name, "os"), "ws": _cycles(name, "ws")}
            for name in zoo.NAMES
        }

    data = run_once(benchmark, compute)
    rows = [
        (name, values["os"], values["ws"], round(values["os"] / values["ws"], 2))
        for name, values in data.items()
    ]
    emit(format_table(
        ["workload", "OS cycles", "WS cycles", "OS/WS"], rows,
        title="\nAblation: dataflow choice (single-core, mini scale)",
    ))
    # Both dataflows must run everything; neither dominates universally —
    # WS favors long activation streams, OS favors deep reductions.
    ratios = [values["os"] / values["ws"] for values in data.values()]
    assert all(v["os"] > 0 and v["ws"] > 0 for v in data.values())
    assert max(ratios) > 1.0 or min(ratios) < 1.0

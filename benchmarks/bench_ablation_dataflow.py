"""Ablation (extension): output- vs weight- vs input-stationary dataflow.

The paper evaluates the OS dataflow and lists WS as future work
(section 4.1.2); this reproduction implements OS, WS, and IS as
registered engines.  This bench compares single-core latency per
workload under each dataflow on the same system.
"""

import dataclasses

from conftest import emit, run_once

from repro.compute.dataflow import registered_dataflows
from repro.config import presets
from repro.core.simulator import MultiCoreNPUSim
from repro.experiments.report import format_table
from repro.models import zoo


def _cycles(name: str, dataflow: str) -> int:
    system = presets.solo_slice()
    arch = dataclasses.replace(system.arch[0], dataflow=dataflow)
    system = dataclasses.replace(system, arch=(arch,))
    return MultiCoreNPUSim(system, [zoo.mini(name)]).run().workloads[0].cycles


def test_ablation_dataflow(benchmark):
    engines = registered_dataflows()

    def compute():
        return {
            name: {engine: _cycles(name, engine) for engine in engines}
            for name in zoo.NAMES
        }

    data = run_once(benchmark, compute)
    rows = [
        (
            name,
            *(values[engine] for engine in engines),
            round(values["os"] / values["ws"], 2),
            round(values["os"] / values["is"], 2),
        )
        for name, values in data.items()
    ]
    emit(format_table(
        ["workload", *(f"{e.upper()} cycles" for e in engines), "OS/WS", "OS/IS"],
        rows,
        title="\nAblation: dataflow choice (single-core, mini scale)",
    ))
    # Every dataflow must run everything; none dominates universally —
    # WS favors long activation streams, IS favors tall outputs, OS
    # favors deep reductions.
    assert all(
        values[engine] > 0 for values in data.values() for engine in engines
    )
    for alt in ("ws", "is"):
        ratios = [values["os"] / values[alt] for values in data.values()]
        assert max(ratios) > 1.0 or min(ratios) < 1.0

"""Figure 18: workload-mapping fairness CDF (4 dual-core NPUs)."""

import os

import pytest
from conftest import emit, run_once

from repro.experiments.mixes import subset_mixes
from repro.experiments.report import cdf_summary, format_table
from repro.mapping import MappingStudy, fig18_mapping_fairness


@pytest.fixture(scope="module")
def study(runner):
    return MappingStudy(runner)


def test_fig18_mapping_fairness(benchmark, study):
    limit = int(os.environ.get("REPRO_MAPPING_SETS", "6435"))
    sets = subset_mixes(8, limit)
    data = run_once(benchmark, lambda: fig18_mapping_fairness(study, sets))
    rows = []
    for policy in ("oracle", "model", "random", "worst"):
        summary = cdf_summary(data["cdf"][policy])
        rows.append(
            (policy, round(summary["p10"], 3), round(summary["p50"], 3),
             round(summary["p90"], 3))
        )
    emit(format_table(
        ["policy", "p10", "p50", "p90"], rows,
        title=(f"\nFigure 18: mapping fairness over {len(sets)} "
               "eight-workload sets, normalized to random placement"),
    ))
    emit(
        "model improves fairness over random placement in "
        f"{data['model_improved_fraction']:.1%} of scenarios "
        "(paper: 60.90%)"
    )
    norm = data["normalized"]
    for i in range(len(norm["model"])):
        assert norm["oracle"][i] >= norm["model"][i] - 1e-9
        assert norm["model"][i] >= norm["worst"][i] - 1e-9
    # Paper shape: the model improves fairness in a majority-ish share of
    # scenarios (60.9% in the paper).
    assert data["model_improved_fraction"] > 0.4

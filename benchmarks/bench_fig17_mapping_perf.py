"""Figure 17: workload-mapping performance CDF (4 dual-core NPUs)."""

import os

import pytest
from conftest import emit, run_once

from repro.experiments.mixes import subset_mixes
from repro.experiments.report import cdf_summary, format_table
from repro.mapping import MappingStudy, fig17_mapping_performance


@pytest.fixture(scope="module")
def study(runner):
    return MappingStudy(runner)


def _sets():
    """Eight-workload sets to evaluate (paper: all M(8,8) = 6435)."""
    limit = int(os.environ.get("REPRO_MAPPING_SETS", "6435"))
    return subset_mixes(8, limit)


def test_fig17_mapping_performance(benchmark, study):
    sets = _sets()
    data = run_once(benchmark, lambda: fig17_mapping_performance(study, sets))
    rows = []
    for policy in ("oracle", "model", "random", "worst"):
        summary = cdf_summary(data["cdf"][policy])
        rows.append(
            (policy, round(summary["p10"], 3), round(summary["p50"], 3),
             round(summary["p90"], 3))
        )
    emit(format_table(
        ["policy", "p10", "p50", "p90"], rows,
        title=(f"\nFigure 17: mapping performance over {len(sets)} "
               "eight-workload sets, normalized to random placement"),
    ))
    emit(
        "model beats random placement in "
        f"{data['model_improved_fraction']:.1%} of scenarios "
        "(paper: 50.04%)"
    )
    norm = data["normalized"]
    count = len(norm["model"])
    # Paper shape: oracle >= model >= worst everywhere; the model beats
    # random in roughly half the scenarios while avoiding the worst case.
    for i in range(count):
        assert norm["oracle"][i] >= norm["model"][i] - 1e-9
        assert norm["model"][i] >= norm["worst"][i] - 1e-9
    assert 0.3 < data["model_improved_fraction"] <= 1.0
    model_median = cdf_summary(data["cdf"]["model"])["p50"]
    worst_median = cdf_summary(data["cdf"]["worst"])["p50"]
    assert model_median > worst_median

"""Extension: energy and energy-delay product across sharing levels.

Not a paper figure — DRAMsim3 (which mNPUsim embeds) is power-capable,
so this reproduction adds the equivalent accounting and asks the natural
follow-up question: does dynamic sharing also win on energy-delay
product, or only on throughput?
"""

from conftest import emit, run_once

from repro.config import presets
from repro.core.energy import energy_delay_product, workload_energy
from repro.core.metrics import geomean
from repro.core.sharing import SharingLevel
from repro.core.simulator import MultiCoreNPUSim
from repro.dram.energy import dram_energy
from repro.experiments.report import format_table
from repro.models import zoo

MIXES = (("res", "sfrnn"), ("ds2", "dlrm"), ("ncf", "gpt2"))
LEVELS = (SharingLevel.STATIC, SharingLevel.D, SharingLevel.DWT)


def _mix_edp(mix, level):
    system = presets.cloud_npu(2, level)
    networks = [zoo.mini(name) for name in mix]
    sim = MultiCoreNPUSim(system, networks)
    result = sim.run()
    txn = system.arch[0].dram_transaction_bytes
    dram = dram_energy(result.dram, system.dram, result.total_ticks, txn)
    edps = []
    for workload, network in zip(result.workloads, networks):
        npu = workload_energy(workload, system.arch[workload.core], network.total_macs)
        edps.append(energy_delay_product(npu, dram, workload.cycles))
    return geomean(edps)


def test_ext_energy_delay_product(benchmark):
    def compute():
        return {
            mix: {level.label: _mix_edp(mix, level) for level in LEVELS}
            for mix in MIXES
        }

    data = run_once(benchmark, compute)
    rows = []
    for mix, values in data.items():
        base = values["Static"]
        rows.append(
            ("+".join(mix),
             *(round(values[level.label] / base, 3) for level in LEVELS))
        )
    emit(format_table(
        ["mix"] + [level.label for level in LEVELS], rows,
        title="\nExtension: geomean EDP per sharing level, normalized to Static",
    ))
    # Shape: the latency gains of sharing carry over to EDP — fully
    # dynamic sharing must not be dramatically worse than Static on
    # energy-delay, and should win for at least one mix.
    ratios = [values["+DWT"] / values["Static"] for values in data.values()]
    assert min(ratios) < 1.0
    assert max(ratios) < 1.3

"""Table 1: the evaluated benchmark models."""

from conftest import emit, run_once

from repro.experiments import figures
from repro.experiments.report import format_table
from repro.models import zoo


def test_table1_models(benchmark):
    rows = run_once(benchmark, lambda: figures.table1_models())
    emit(format_table(
        ["type", "model", "layers", "MACs", "bytes", "MACs/byte"],
        [
            (r["type"], r["model"], r["layers"], r["macs"],
             r["unique_bytes"], r["arithmetic_intensity"])
            for r in rows
        ],
        title="\nTable 1: evaluated benchmark models (mini scale)",
    ))
    assert len(rows) == 8
    assert [r["model"] for r in rows] == list(zoo.NAMES)
    by_type = {}
    for row in rows:
        by_type.setdefault(row["type"], []).append(row["model"])
    # The paper's category counts: 3 CNNs, 2 RNNs, 2 recsys, 1 attention.
    assert len(by_type["CNN"]) == 3
    assert len(by_type["RNN"]) == 2
    assert len(by_type["Recommendation"]) == 2
    assert len(by_type["Attention"]) == 1

"""Figure 12: DRAM bandwidth utilization of ds2 and gpt2 over time."""

from conftest import emit, run_once

from repro.experiments import figures


def test_fig12_bandwidth_utilization(benchmark):
    data = run_once(benchmark, lambda: figures.fig12_bandwidth_utilization())
    label = next(iter(data["combined"]))
    combined = data["combined"][label]
    emit(f"\nFigure 12: bandwidth utilization, Ideal dual-core pool ({label})")
    emit(f"{'window':>10s} {'ds2':>6s} {'gpt2':>6s} {'sum':>6s}")
    ds2 = dict(data["series"]["ds2"])
    gpt2 = dict(data["series"]["gpt2"])
    for start, total in combined[:30]:
        emit(
            f"{start:>10d} {ds2.get(start, 0.0):>6.2f} "
            f"{gpt2.get(start, 0.0):>6.2f} {total:>6.2f}"
        )
    emit(
        f"fraction of windows with combined demand > half peak: "
        f"{data['fraction_over_half_peak']:.0%}; > full peak: "
        f"{data['fraction_over_peak']:.0%}"
    )
    # Paper shape: the combined demand exceeds half the peak bandwidth
    # during a large share of execution (why a 50% static cap hurts) and
    # even exceeds the full peak at times (why even dynamic sharing
    # cannot reach Ideal).
    assert data["fraction_over_half_peak"] > 0.2
    assert data["fraction_over_peak"] > 0.0
    # Each workload alone respects the peak.
    for name, series in data["series"].items():
        assert all(value <= 1.01 for _, value in series), name

"""Table 2: the baseline mNPUsim configuration."""

from conftest import emit, run_once

from repro.experiments import figures
from repro.experiments.report import format_mapping


def test_table2_configuration(benchmark):
    config = run_once(benchmark, lambda: figures.table2_configuration("full"))
    emit(format_mapping("\nTable 2: basic configuration (full scale)", config))
    # The paper's Table 2 values.
    assert config["systolic_array"] == "128x128"
    assert config["spm_bytes"] == 36 * 1024 * 1024
    assert config["core_freq_mhz"] == 1000
    assert config["tlb_associativity"] == 8
    assert config["tlb_entries_per_npu"] == 2048
    assert config["ptw_per_npu"] == 8
    assert config["dram_model"] == "HBM2"
    assert config["bandwidth_per_npu_gbs"] == 128.0

    mini = figures.table2_configuration("mini")
    emit(format_mapping("\nTable 2 (mini scale used by the sweeps)", mini))
    # Mini keeps the architecture shape at reduced magnitude.
    assert mini["systolic_array"] == "32x32"
    assert mini["bandwidth_per_npu_gbs"] < config["bandwidth_per_npu_gbs"]

"""Figure 5: quad-core performance CDF per sharing level."""

from conftest import emit, run_once

from repro.experiments import figures
from repro.experiments.report import cdf_summary, format_table


def test_fig5_quad_performance(benchmark, runner, quad_mixes):
    data = run_once(
        benchmark, lambda: figures.fig5_quad_performance(runner, quad_mixes)
    )
    levels = ["Static", "+D", "+DW", "+DWT"]
    rows = []
    for level in levels:
        summary = cdf_summary(data["cdf"][level])
        rows.append(
            (level, round(data["overall"][level], 3),
             round(summary["p10"], 3), round(summary["p50"], 3),
             round(summary["p90"], 3))
        )
    emit(format_table(
        ["level", "geomean", "p10", "p50", "p90"], rows,
        title=f"\nFigure 5: quad-core speedup CDF over {len(quad_mixes)} mixes",
    ))
    overall = data["overall"]
    # Paper shape: quad-core contention is heavier than dual-core, the
    # sharing levels keep the same ordering, walker sharing still helps.
    assert overall["+D"] >= overall["Static"] - 0.01
    assert overall["+DW"] > overall["+D"]
    assert abs(overall["+DWT"] - overall["+DW"]) < 0.06
    assert overall["+D"] < 0.95  # well below Ideal, as in the paper's 63%

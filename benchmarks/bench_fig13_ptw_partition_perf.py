"""Figure 13: page-table-walker partitioning schemes, performance."""

from conftest import emit, run_once

from repro.experiments import figures
from repro.experiments.report import format_table


def test_fig13_ptw_partition_performance(benchmark, runner, dual_mixes):
    data = run_once(
        benchmark,
        lambda: figures.fig13_ptw_partition_performance(runner, dual_mixes),
    )
    rows = [
        (scheme, round(data["overall"][scheme], 3)) for scheme in data["schemes"]
    ]
    emit(format_table(
        ["scheme", "geomean speedup vs Ideal"], rows,
        title="\nFigure 13: walker partitioning (4-walker dual-core pool)",
    ))
    overall = data["overall"]
    skewed = [s for s in data["schemes"] if s not in ("2:2", "Dynamic")]
    # Paper shape: skewed walker splits lose performance; the equal split
    # and dynamic sharing are the competitive schemes.  (At mini scale
    # a 2-walker-per-core pool is no longer scarce, so dynamic sharing
    # matches rather than beats the equal split — see EXPERIMENTS.md;
    # the dynamic-sharing *win* under the baseline walker-scarce pool is
    # Figure 4's +D -> +DW step.)
    for scheme in skewed:
        assert overall[scheme] < overall["2:2"], scheme
        assert overall["Dynamic"] > overall[scheme] - 0.01, scheme
    assert abs(overall["Dynamic"] - overall["2:2"]) < 0.035
